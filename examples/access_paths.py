#!/usr/bin/env python3
"""Access paths and work sharing: indexes, index joins, shared scans.

Shows the engine's §5.1/§5.2 machinery:

1. a B+tree index turns a selective predicate from a full-table pass
   into a few leaf pages plus clustered heap reads;
2. the planner picks the index automatically when it pays — and keeps
   the table scan when the predicate is wide;
3. an index nested-loop join avoids the hash table entirely;
4. cooperative scans run a batch of queries over ONE physical pass.
"""

from repro.core.report import format_table
from repro.hardware.profiles import commodity
from repro.optimizer import CostModel, Objective, Planner, QuerySpec
from repro.optimizer.planner import TableRef
from repro.relational.executor import ExecutionContext, Executor
from repro.relational.expr import Between, col
from repro.relational.operators import (
    AggregateSpec,
    Filter,
    HashAggregate,
    IndexNestedLoopJoin,
    IndexScan,
    TableScan,
)
from repro.relational.plan import explain
from repro.relational.shared import SharedScanSession, run_independently
from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType
from repro.sim import Simulation
from repro.storage.manager import StorageManager

SCALE = 400.0


def build():
    sim = Simulation()
    server, array = commodity(sim)
    storage = StorageManager(sim)
    orders = storage.create_table(
        TableSchema("orders", [
            Column("o_id", DataType.INT64, nullable=False),
            Column("o_cust", DataType.INT64, nullable=False),
            Column("o_total", DataType.FLOAT64, nullable=False),
        ]), layout="row", placement=array)
    orders.load([(i, i % 200, float(i % 997)) for i in range(8000)])
    orders.create_index("o_id", clustered=True)
    orders.create_index("o_cust")
    customers = storage.create_table(
        TableSchema("customers", [
            Column("c_id", DataType.INT64, nullable=False),
            Column("c_seg", DataType.VARCHAR, nullable=False),
        ]), layout="row", placement=array)
    customers.load([(i, ["gold", "silver"][i % 2]) for i in range(200)])
    return sim, server, orders, customers


def index_vs_scan(sim, server, orders):
    print("--- 1. index scan vs full scan for a 1% predicate ---")
    executor = Executor(ExecutionContext(sim=sim, server=server,
                                         scale=SCALE))
    rows = []
    for name, plan in [
        ("full scan + filter",
         Filter(TableScan(orders), Between(col("o_id"), 0, 79))),
        ("clustered index scan",
         IndexScan(orders, "o_id", low=0, high=79)),
    ]:
        result = executor.run(plan)
        rows.append((name, result.row_count,
                     round(result.elapsed_seconds * 1e3, 2),
                     round(result.energy_joules, 3)))
    print(format_table(["plan", "rows", "ms", "joules"], rows))


def planner_picks(server, orders):
    print("\n--- 2. the planner chooses the access path by cost ---")
    planner = Planner(CostModel(server, scale=SCALE), Objective.TIME)
    for label, predicate in [("narrow (1%)", Between(col("o_id"), 0, 79)),
                             ("wide (90%)", col("o_id") >= 800)]:
        planned = planner.plan(QuerySpec(
            tables=[TableRef(orders, predicate=predicate)]))
        first_line = explain(planned.root).splitlines()[-1].strip()
        print(f"  {label:12s} -> {first_line[:70]}")


def index_join(sim, server, orders, customers):
    print("\n--- 3. index NLJ vs hash join for a point-selective outer ---")
    from repro.relational.operators import HashJoin
    executor = Executor(ExecutionContext(sim=sim, server=server,
                                         scale=SCALE))
    rows = []
    for name, builder in [
        ("index NLJ", lambda: IndexNestedLoopJoin(
            Filter(TableScan(customers), col("c_id") == 7),
            orders, "o_cust", "c_id")),
        ("hash join", lambda: HashJoin(
            Filter(TableScan(customers), col("c_id") == 7),
            TableScan(orders), ["c_id"], ["o_cust"])),
    ]:
        result = executor.run(builder())
        rows.append((name, result.row_count,
                     round(result.elapsed_seconds * 1e3, 1),
                     round(result.energy_joules, 2)))
    print(format_table(["join", "rows", "ms", "joules"], rows))
    print("  (on SPINNING disks the hash join wins: every index probe "
          "and rid\n   fetch pays a positioning delay.  On flash the "
          "verdict flips for\n   selective outers — see "
          "benchmarks/test_a11_index_join_flip.py)")


def shared_scans(orders):
    print("\n--- 4. cooperative scans: 6 queries, one physical pass ---")

    def builders(table):
        out = []
        for i in range(6):
            def make(i=i):
                return HashAggregate(
                    Filter(TableScan(table), col("o_cust") == i),
                    [], [AggregateSpec("sum", col("o_total"), "s")])
            out.append(make)
        return out

    sim, server, orders2, _ = build()
    run_independently(
        Executor(ExecutionContext(sim=sim, server=server, scale=SCALE)),
        builders(orders2))
    indep = (sim.now, server.meter.energy_joules(0.0, sim.now))
    sim, server, orders3, _ = build()
    SharedScanSession(
        Executor(ExecutionContext(sim=sim, server=server,
                                  scale=SCALE))).run_batch(
        builders(orders3))
    shared = (sim.now, server.meter.energy_joules(0.0, sim.now))
    print(format_table(
        ["mode", "seconds", "joules"],
        [("independent", round(indep[0], 3), round(indep[1], 1)),
         ("shared pass", round(shared[0], 3), round(shared[1], 1))]))
    print(f"  energy saving: {indep[1] / shared[1]:.1f}x")


def main() -> None:
    sim, server, orders, customers = build()
    index_vs_scan(sim, server, orders)
    planner_picks(server, orders)
    index_join(sim, server, orders, customers)
    shared_scans(orders)


if __name__ == "__main__":
    main()
