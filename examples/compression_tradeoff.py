#!/usr/bin/env python3
"""The paper's Figure 2, as an interactive example.

Scans five of ORDERS' seven attributes off three flash SSDs on a node
with a 90 W CPU, once uncompressed and once compressed, and shows the
counter-intuitive result: the compressed scan finishes about twice as
fast but consumes considerably MORE energy, because the 90 W CPU
decompressing is much more expensive than the 5 W flash array it
relieves.  Then the design advisor explains which choice each
objective should make on this hardware.
"""

from repro.core.report import format_table
from repro.hardware.profiles import flash_scan_node
from repro.optimizer import DesignAdvisor, Objective
from repro.runner import ExperimentSpec, Runner
from repro.sim import Simulation
from repro.storage.manager import StorageManager
from repro.workloads.tpch_gen import generate_tpch
from repro.workloads.tpch_schema import ORDERS_SCAN_COLUMNS


def main() -> None:
    print("Reproducing Figure 2 (uncompressed vs compressed scan)...\n")
    run = Runner(workers=2, cache=True).run(
        ExperimentSpec("fig2", profile="flash_scan_node"))
    result = run.aggregate()
    print(format_table(
        ["config", "total_s", "cpu_s", "io_s", "joules", "ratio"],
        [(report and name, round(report.total_seconds, 2),
          round(report.cpu_seconds, 2), round(report.io_seconds, 2),
          round(report.energy_joules, 0),
          round(report.compression_ratio, 2))
         for name, report in [("uncompressed", result.uncompressed),
                              ("compressed", result.compressed)]],
        title="Figure 2 (paper: 10s/3.2s/338J vs 5.5s/5.1s/487J)"))
    print(f"\nspeedup from compression : {result.speedup:.2f}x")
    print(f"energy ratio             : {result.energy_ratio:.2f}x "
          f"({'MORE' if result.energy_ratio > 1 else 'less'} energy "
          "despite being faster)")
    print(f"paper's inversion holds  : {result.inversion_holds}")

    # ask the advisor what each objective would pick on this node
    sim = Simulation()
    server, array = flash_scan_node(sim)
    storage = StorageManager(sim)
    orders = generate_tpch(storage, array, scale_factor=0.002)["orders"]
    advisor = DesignAdvisor.for_server(server)
    print("\nDesign advisor on this node (90 W CPU / 5 W flash):")
    for objective in (Objective.TIME, Objective.ENERGY):
        codecs = advisor.choose_codecs(orders, objective=objective)
        picks = {c: codecs[c] for c in ORDERS_SCAN_COLUMNS}
        n_compressed = sum(1 for v in picks.values() if v != "none")
        print(f"  {objective.value:7s}: {n_compressed} of "
              f"{len(ORDERS_SCAN_COLUMNS)} scan columns compressed "
              f"-> {picks}")


if __name__ == "__main__":
    main()
