#!/usr/bin/env python3
"""Energy-aware query optimization (paper §4.1).

Plans a TPC-H-style join query under three objectives — TIME, ENERGY
and EDP — prints the chosen plans with their predicted costs, executes
each on the simulated hardware, and compares prediction to metered
reality.  Then demonstrates the §4.1 memory-grant trade-off: the TIME
objective sorts in memory, the busy-energy objective prefers spilling
to flash over keeping gigabytes of DRAM allocated.
"""

from repro.core.report import format_table
from repro.hardware.profiles import commodity
from repro.optimizer import CostModel, Objective, Planner, score
from repro.optimizer.planner import JoinEdge, QuerySpec, TableRef
from repro.relational.executor import ExecutionContext, Executor
from repro.relational.expr import col
from repro.relational.operators import AggregateSpec
from repro.relational.plan import explain
from repro.sim import Simulation
from repro.storage.manager import StorageManager
from repro.workloads.tpch_gen import generate_tpch


def build_query(db) -> QuerySpec:
    """Revenue by market segment for big recent-ish orders."""
    return QuerySpec(
        tables=[
            TableRef(db["customer"],
                     columns=["c_custkey", "c_mktsegment"]),
            TableRef(db["orders"],
                     predicate=col("o_totalprice") > 100_000.0,
                     columns=["o_custkey", "o_totalprice"]),
        ],
        joins=[JoinEdge("customer", "orders",
                        ["c_custkey"], ["o_custkey"])],
        group_by=["c_mktsegment"],
        aggregates=[AggregateSpec("sum", col("o_totalprice"), "revenue"),
                    AggregateSpec("count", None, "orders")],
    )


def main() -> None:
    sim = Simulation()
    server, array = commodity(sim)
    storage = StorageManager(sim)
    db = generate_tpch(storage, array, scale_factor=0.002)
    model = CostModel(server, scale=100.0)

    rows = []
    for objective in (Objective.TIME, Objective.ENERGY, Objective.EDP):
        planner = Planner(model, objective)
        planned = planner.plan(build_query(db))
        print(f"=== objective: {objective.value} "
              f"({planned.candidates_considered} candidates) ===")
        print(explain(planned.root))
        predicted = planned.cost
        ctx = ExecutionContext(sim=sim, server=server, scale=100.0)
        measured = Executor(ctx).run(planned.root)
        rows.append((objective.value,
                     round(predicted.seconds, 4),
                     round(measured.elapsed_seconds, 4),
                     round(predicted.energy_full_joules, 2),
                     round(measured.energy_joules, 2),
                     round(score(predicted, objective), 4)))
        print()

    print(format_table(
        ["objective", "pred_s", "meas_s", "pred_J", "meas_J", "score"],
        rows, title="predicted vs metered, per objective"))
    print("\nNote: on this balanced commodity box the objectives often "
          "agree on plan shape;\nrun benchmarks/test_a1_optimizer_"
          "objective.py to see them diverge on memory grants.")


if __name__ == "__main__":
    main()
