#!/usr/bin/env python3
"""Consolidation in time and space (paper §4.2).

Part 1 — batching: sparse query arrivals are run FIFO (disks spinning
throughout) and then batched with spin-down between batches; energy
drops at the cost of latency.

Part 2 — packing: six lukewarm partitions spread over six disks are
consolidated onto two; the migration's metered cost is compared to the
idle-power savings to find the break-even.
"""

from repro.consolidation import (
    execute_consolidation,
    poisson_arrivals,
    run_batched,
    run_fifo,
)
from repro.core.report import format_table
from repro.hardware.profiles import commodity
from repro.relational.executor import ExecutionContext, Executor
from repro.relational.operators import TableScan
from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType
from repro.sim import Simulation
from repro.storage.manager import StorageManager
from repro.storage.partitioner import DeviceSlot, Partition, Partitioner
from repro.units import MB


def build_env():
    sim = Simulation()
    server, array = commodity(sim)
    storage = StorageManager(sim)
    table = storage.create_table(
        TableSchema("events", [
            Column("k", DataType.INT64, nullable=False)]),
        layout="row", placement=array)
    table.load([(i,) for i in range(2000)])
    executor = Executor(ExecutionContext(sim=sim, server=server,
                                         scale=200.0))
    return sim, server, array, table, executor


def batching_demo() -> None:
    print("--- batching: FIFO vs batched-with-spin-down ---")
    rows = []
    for policy in ("fifo", "batched"):
        sim, server, array, table, executor = build_env()
        arrivals = poisson_arrivals([lambda: TableScan(table)], 10,
                                    rate_per_s=1 / 40.0)
        horizon = max(a.at_seconds for a in arrivals) + 200.0
        if policy == "fifo":
            report = run_fifo(sim, server, executor, arrivals,
                              tail_seconds=horizon - sim.now)
        else:
            report = run_batched(sim, server, executor, arrivals, array,
                                 window_seconds=90.0,
                                 tail_seconds=horizon - sim.now)
        rows.append((policy, round(report.energy_joules, 0),
                     round(report.mean_latency_seconds, 1),
                     report.spin_down_count))
    print(format_table(["policy", "energy_J", "mean_latency_s",
                        "spin_downs"], rows))


def packing_demo() -> None:
    print("\n--- packing: consolidate partitions, spin down disks ---")
    sim = Simulation()
    server, _array = commodity(sim, n_disks=6)
    disks = {d.name: d for d in server.storage if d.name.startswith("hdd")}
    slots = [DeviceSlot(name, d.spec.capacity_bytes,
                        d.spec.bandwidth_bytes_per_s,
                        d.spec.idle_watts, d.spec.active_watts)
             for name, d in disks.items()]
    parts = [Partition(f"p{i}", 300 * MB, read_bytes_per_s=15 * MB)
             for i in range(6)]
    plan = Partitioner(slots).plan_consolidation(
        parts, {f"p{i}": f"hdd{i}" for i in range(6)})
    print(f"plan: keep {plan.devices_kept}, "
          f"spin down {plan.devices_released}, "
          f"move {sum(m.size_bytes for m in plan.moves) / MB:.0f} MB")
    outcome = execute_consolidation(sim, plan, disks)
    print(f"metered migration : {outcome.migration_seconds:.1f} s, "
          f"{outcome.migration_energy_joules:.0f} J")
    print(f"idle savings      : {outcome.idle_savings_watts:.1f} W")
    print(f"break-even        : {outcome.breakeven_seconds():.0f} s of "
          "quiet time repays the migration")


def main() -> None:
    batching_demo()
    packing_demo()


if __name__ == "__main__":
    main()
