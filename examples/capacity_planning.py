#!/usr/bin/env python3
"""Capacity planning for energy efficiency (paper §3.1 + §5.3).

Re-runs the Figure 1 sweep (TPC-H-style throughput test on the DL785
profile with 36..204 disks), locates the diminishing-returns point, and
then applies the TCO model: at what electricity price does adding a
second efficient node beat over-provisioning disks on one node?

This is the slowest example: it simulates four full multi-stream
throughput tests.  The sweep runs through `repro.runner`, so the four
disk counts are simulated on a 4-process pool and memoized in
`.repro-cache/` — the second invocation returns in milliseconds.
"""

from repro.core.metrics import TcoModel
from repro.core.report import format_table
from repro.runner import EventPrinter, ExperimentSpec, Runner


def main() -> None:
    print("Sweeping the Figure 1 disk counts (first run takes a "
          "minute; repeats hit the cache)...\n")
    spec = ExperimentSpec("fig1", profile="dl785")
    run = Runner(workers=4, cache=True, on_event=EventPrinter()).run(spec)
    result = run.aggregate()
    print(format_table(
        ["disks", "time_s", "avg_W", "queries_per_MJ"],
        [(n, round(t, 0), round(p, 0), round(ee * 1e6, 2))
         for n, t, p, ee in result.rows()],
        title="Figure 1: throughput test vs number of disks"))
    gain, drop = result.tradeoff()
    print(f"\nmost efficient point : {result.most_efficient_disks} disks")
    print(f"fastest point        : {result.fastest_disks} disks")
    print(f"trade-off            : +{gain * 100:.0f}% efficiency for "
          f"-{drop * 100:.0f}% performance "
          "(paper reported +14% for -45%)")

    # §5.3: when do two efficient nodes beat one over-provisioned node?
    reports = dict(zip(result.disk_counts, result.reports))
    eff = reports[result.most_efficient_disks]
    fast = reports[result.fastest_disks]
    chassis, disk = 90_000.0, 350.0
    print("\nTCO: 1x fast node vs 2x efficient nodes")
    rows = []
    for price in (0.05, 0.10, 0.20, 0.40, 0.80):
        single = TcoModel(chassis + result.fastest_disks * disk,
                          electricity_dollars_per_kwh=price)
        double = TcoModel(2 * (chassis
                               + result.most_efficient_disks * disk),
                          electricity_dollars_per_kwh=price)
        cost_single = single.cost_per_unit_work(
            fast.average_power_watts, fast.performance)
        cost_double = double.cost_per_unit_work(
            2 * eff.average_power_watts, 2 * eff.performance)
        winner = ("scale-out" if cost_double < cost_single
                  else "single node")
        rows.append((price, round(cost_single, 4), round(cost_double, 4),
                     winner))
    print(format_table(["$/kWh", "single $/query", "scale-out $/query",
                        "winner"], rows))


if __name__ == "__main__":
    main()
