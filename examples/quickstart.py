#!/usr/bin/env python3
"""Quickstart: run an energy-metered query in ~30 lines.

Builds a small simulated server (4-core CPU, DRAM, two disks, an NVMe
drive), loads a table, runs a filtered scan, and prints what the query
cost in time and Joules, per device — the basic workflow everything
else in this library builds on.
"""

from repro.hardware.profiles import commodity
from repro.relational.executor import ExecutionContext, Executor
from repro.relational.expr import col
from repro.relational.operators import Filter, TableScan
from repro.relational.plan import explain
from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType
from repro.sim import Simulation
from repro.storage.manager import StorageManager
from repro.units import pretty_time


def main() -> None:
    # 1. a simulated machine with an energy meter on every device
    sim = Simulation()
    server, array = commodity(sim)

    # 2. a stored table (physically encoded rows on the disk array)
    storage = StorageManager(sim)
    sensors = storage.create_table(
        TableSchema("sensors", [
            Column("sensor_id", DataType.INT64, nullable=False),
            Column("reading", DataType.FLOAT64, nullable=False),
            Column("status", DataType.VARCHAR, nullable=False),
        ]),
        layout="row", placement=array)
    sensors.load([(i, (i * 37 % 1000) / 10.0,
                   "ok" if i % 50 else "fault") for i in range(20_000)])

    # 3. a query plan: scan + filter
    plan = Filter(TableScan(sensors), col("reading") > 90.0)
    print("plan:")
    print(explain(plan))

    # 4. execute it on the simulated hardware
    # (scale=100: charge costs as if the table were 100x larger)
    ctx = ExecutionContext(sim=sim, server=server, scale=100.0)
    result = Executor(ctx).run(plan)

    # 5. what did it cost?
    print(f"\nrows returned     : {result.row_count}")
    print(f"elapsed (simulated): {pretty_time(result.elapsed_seconds)}")
    print(f"energy             : {result.energy_joules:.2f} J "
          f"({result.average_power_watts:.1f} W average)")
    print(f"CPU busy           : {pretty_time(result.cpu_busy_seconds)}")
    print("\nper-device energy:")
    for device, joules in result.breakdown_joules.items():
        print(f"  {device:12s} {joules:10.2f} J")
    print(f"\nenergy efficiency  : "
          f"{result.energy_efficiency(result.row_count):.2f} rows/J")


if __name__ == "__main__":
    main()
