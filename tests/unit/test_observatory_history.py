"""Unit tests: BenchRecord, metric extraction, and the JSONL ledger."""

from __future__ import annotations

import json

import pytest

from repro.errors import ReproError
from repro.observatory import (
    BenchRecord,
    HistoryStore,
    extract_work_units,
    history_filename,
    point_label,
    point_metrics,
    suite_of_filename,
)


class _FakeThroughput:
    queries_completed = 18
    makespan_seconds = 120.0
    energy_joules = 60000.0


class _FakeScan:
    bytes_read = 2.4e9


class _NoWork:
    pass


class TestMetricExtraction:
    def test_queries_are_work_units(self):
        assert extract_work_units(_FakeThroughput()) == (18.0, "query")

    def test_bytes_fall_back(self):
        assert extract_work_units(_FakeScan()) == (2.4e9, "byte")

    def test_unknown_report_degrades_to_zero(self):
        assert extract_work_units(_NoWork()) == (0.0, "record")

    def test_bool_attributes_are_not_work_units(self):
        class Weird:
            records = True
        assert extract_work_units(Weird()) == (0.0, "record")

    def test_point_metrics_derivations(self):
        m = point_metrics(sim_seconds=10.0, joules=500.0, records=1000.0,
                          host_seconds=0.25)
        assert m["watts"] == pytest.approx(50.0)
        assert m["joules_per_record"] == pytest.approx(0.5)
        assert m["records_per_second"] == pytest.approx(100.0)
        assert m["records_per_second_per_watt"] == pytest.approx(2.0)
        assert m["host_seconds"] == 0.25

    def test_point_metrics_omits_undefined_ratios(self):
        m = point_metrics(sim_seconds=0.0, joules=0.0)
        assert "watts" not in m
        assert "joules_per_record" not in m
        assert "records_per_second_per_watt" not in m

    def test_point_label_uses_only_axes(self):
        knobs = {"disks": 36, "streams": 6, "seed": 1}
        assert point_label(knobs, ["disks"]) == "disks=36"
        assert point_label(knobs, []) == "defaults"
        assert point_label(knobs, ["streams", "disks"]) == \
            "disks=36 streams=6"


class TestRecordRoundTrip:
    def test_to_from_dict(self):
        record = BenchRecord(
            suite="core", benchmark="fig2", point="compressed=True",
            metrics={"joules": 487.0, "sim_seconds": 5.5},
            counters={"buffer.hits": 12.0},
            record_unit="byte", spec_hash="abc", git_sha="deadbee",
            host={"python": "3.11"}, recorded_at="2026-08-05T00:00:00",
            seq=3, timelines=[{"name": "cpu", "times": [0.0],
                               "watts": [90.0]}])
        clone = BenchRecord.from_dict(record.to_dict())
        assert clone == record

    def test_series_key(self):
        record = BenchRecord(suite="s", benchmark="b", point="p")
        assert record.series_key() == ("b", "p")


class TestHistoryFilenames:
    def test_round_trip(self):
        assert history_filename("core") == "BENCH_core.json"
        assert suite_of_filename("BENCH_core.json") == "core"

    def test_non_history_names_rejected(self):
        assert suite_of_filename("README.md") is None
        assert suite_of_filename("BENCH_.json") is None

    def test_bad_suite_name_raises(self):
        with pytest.raises(ReproError):
            history_filename("../escape")
        with pytest.raises(ReproError):
            history_filename("")


class TestHistoryStore:
    def _record(self, suite="core", benchmark="fig2", point="defaults",
                joules=1.0):
        return BenchRecord(suite=suite, benchmark=benchmark,
                           point=point, metrics={"joules": joules})

    def test_append_assigns_monotone_seq(self, tmp_path):
        store = HistoryStore(tmp_path)
        first = store.append(self._record(joules=1.0))
        second = store.append(self._record(joules=2.0))
        assert (first.seq, second.seq) == (0, 1)
        loaded = store.load("core")
        assert [r.metrics["joules"] for r in loaded] == [1.0, 2.0]
        assert [r.seq for r in loaded] == [0, 1]

    def test_append_is_append_only(self, tmp_path):
        store = HistoryStore(tmp_path)
        store.append(self._record(joules=1.0))
        before = store.path("core").read_text()
        store.append(self._record(joules=2.0))
        after = store.path("core").read_text()
        assert after.startswith(before)

    def test_malformed_lines_are_skipped(self, tmp_path):
        store = HistoryStore(tmp_path)
        store.append(self._record(joules=1.0))
        with open(store.path("core"), "a", encoding="utf-8") as fh:
            fh.write("{torn json\n")
        store.append(self._record(joules=2.0))
        assert [r.metrics["joules"] for r in store.load("core")] == \
            [1.0, 2.0]

    def test_suites_listing(self, tmp_path):
        store = HistoryStore(tmp_path)
        assert store.suites() == []
        store.append(self._record(suite="core"))
        store.append(self._record(suite="ci"))
        (tmp_path / "BENCH_not a suite!.json").write_text("{}\n")
        assert store.suites() == ["ci", "core"]

    def test_series_grouping_preserves_order(self, tmp_path):
        store = HistoryStore(tmp_path)
        store.append(self._record(point="a", joules=1.0))
        store.append(self._record(point="b", joules=9.0))
        store.append(self._record(point="a", joules=2.0))
        series = store.series("core")
        assert set(series) == {("fig2", "a"), ("fig2", "b")}
        assert [r.metrics["joules"] for r in series[("fig2", "a")]] == \
            [1.0, 2.0]

    def test_missing_suite_loads_empty(self, tmp_path):
        assert HistoryStore(tmp_path).load("ghost") == []

    def test_lines_are_canonical_json(self, tmp_path):
        store = HistoryStore(tmp_path)
        store.append(self._record())
        line = store.path("core").read_text().strip()
        parsed = json.loads(line)
        assert parsed["suite"] == "core"
        # canonical: no spaces after separators, sorted keys
        assert ": " not in line
        assert list(parsed) == sorted(parsed)
