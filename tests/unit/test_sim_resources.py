"""Unit tests for simulation resources."""

import pytest

from repro.errors import SimulationError
from repro.sim import Resource, Simulation


def test_acquire_release_single_unit():
    sim = Simulation()
    res = Resource(sim, capacity=1)
    log = []

    def user(name, hold):
        yield res.acquire()
        log.append(("got", name, sim.now))
        yield sim.timeout(hold)
        res.release()
        log.append(("rel", name, sim.now))

    sim.spawn(user("a", 2.0))
    sim.spawn(user("b", 1.0))
    sim.run()
    assert log == [
        ("got", "a", 0.0),
        ("rel", "a", 2.0),
        ("got", "b", 2.0),
        ("rel", "b", 3.0),
    ]


def test_capacity_allows_parallelism():
    sim = Simulation()
    res = Resource(sim, capacity=2)
    finished = []

    def user(name):
        yield res.acquire()
        yield sim.timeout(1.0)
        res.release()
        finished.append((name, sim.now))

    for name in "abcd":
        sim.spawn(user(name))
    sim.run()
    # Two run in [0,1], two in [1,2].
    assert [t for _, t in finished] == [1.0, 1.0, 2.0, 2.0]


def test_fifo_ordering_of_waiters():
    sim = Simulation()
    res = Resource(sim, capacity=1)
    order = []

    def user(name):
        yield res.acquire()
        order.append(name)
        yield sim.timeout(1.0)
        res.release()

    for name in "abc":
        sim.spawn(user(name))
    sim.run()
    assert order == ["a", "b", "c"]


def test_release_without_acquire_raises():
    sim = Simulation()
    res = Resource(sim, capacity=1)
    with pytest.raises(SimulationError):
        res.release()


def test_capacity_must_be_positive():
    sim = Simulation()
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


def test_utilization_full_busy():
    sim = Simulation()
    res = Resource(sim, capacity=1)

    def user():
        yield res.acquire()
        yield sim.timeout(10.0)
        res.release()

    sim.spawn(user())
    sim.run()
    assert res.utilization() == pytest.approx(1.0)


def test_utilization_half_busy():
    sim = Simulation()
    res = Resource(sim, capacity=1)

    def user():
        yield res.acquire()
        yield sim.timeout(5.0)
        res.release()
        yield sim.timeout(5.0)

    sim.spawn(user())
    sim.run()
    assert res.utilization() == pytest.approx(0.5)


def test_utilization_scales_with_capacity():
    sim = Simulation()
    res = Resource(sim, capacity=4)

    def user():
        yield res.acquire()
        yield sim.timeout(8.0)
        res.release()

    sim.spawn(user())  # 1 of 4 units busy for the whole run
    sim.run()
    assert res.utilization() == pytest.approx(0.25)


def test_busy_seconds_counts_unit_seconds():
    sim = Simulation()
    res = Resource(sim, capacity=2)

    def user(hold):
        yield res.acquire()
        yield sim.timeout(hold)
        res.release()

    sim.spawn(user(3.0))
    sim.spawn(user(5.0))
    sim.run()
    assert res.busy_seconds() == pytest.approx(8.0)


def test_reset_accounting():
    sim = Simulation()
    res = Resource(sim, capacity=1)

    def user():
        yield res.acquire()
        yield sim.timeout(4.0)
        res.release()
        res.reset_accounting()
        yield sim.timeout(4.0)

    sim.spawn(user())
    sim.run()
    assert res.utilization() == pytest.approx(0.0)


def test_queue_length_observable():
    sim = Simulation()
    res = Resource(sim, capacity=1)
    seen = []

    def holder():
        yield res.acquire()
        yield sim.timeout(5.0)
        res.release()

    def waiter():
        req = res.acquire()
        yield req
        res.release()

    def observer():
        yield sim.timeout(1.0)
        seen.append(res.queue_length)

    sim.spawn(holder())
    sim.spawn(waiter())
    sim.spawn(waiter())
    sim.spawn(observer())
    sim.run()
    assert seen == [2]


def test_cancel_waiting_request():
    sim = Simulation()
    res = Resource(sim, capacity=1)
    got = []

    def holder():
        yield res.acquire()
        yield sim.timeout(5.0)
        res.release()

    def fickle():
        request = res.acquire()
        yield sim.timeout(1.0)
        res.cancel(request)

    def patient():
        yield res.acquire()
        got.append(sim.now)
        res.release()

    sim.spawn(holder())
    sim.spawn(fickle())
    sim.spawn(patient())
    sim.run()
    # The cancelled request must not absorb the grant at t=5.
    assert got == [5.0]


def test_cancel_granted_request_raises():
    sim = Simulation()
    res = Resource(sim, capacity=1)

    def user():
        request = res.acquire()
        yield request
        with pytest.raises(SimulationError):
            res.cancel(request)
        res.release()

    sim.spawn(user())
    sim.run()
