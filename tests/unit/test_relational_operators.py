"""Unit tests for physical operators (evaluate phase: results + costs)."""

import pytest

from repro.errors import PlanError
from repro.hardware.raid import RaidArray
from repro.hardware.ssd import FlashSsd, SsdSpec
from repro.relational.expr import col
from repro.relational.operators import (
    AggregateSpec,
    BlockNestedLoopJoin,
    CostCollector,
    Exchange,
    Filter,
    HashAggregate,
    HashJoin,
    Limit,
    Project,
    Sort,
    SortMergeJoin,
    SortedAggregate,
    TableScan,
)
from repro.relational.plan import collect_scans, explain, operator_count, validate
from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType
from repro.sim import Simulation
from repro.storage.manager import StorageManager
from repro.units import MB


@pytest.fixture
def env():
    sim = Simulation()
    ssd = FlashSsd(sim, SsdSpec(name="s0", capacity_bytes=1000 * MB,
                                read_bandwidth_bytes_per_s=100 * MB,
                                write_bandwidth_bytes_per_s=100 * MB,
                                read_watts=2.0, write_watts=2.0,
                                idle_watts=0.0))
    array = RaidArray(sim, [ssd], name="a0")
    storage = StorageManager(sim)
    orders = storage.create_table(
        TableSchema("orders", [
            Column("o_id", DataType.INT64, nullable=False),
            Column("o_cust", DataType.INT64, nullable=False),
            Column("o_total", DataType.FLOAT64, nullable=False),
        ]), layout="row", placement=array)
    orders.load([(i, i % 5, float(i) * 10) for i in range(100)])
    customers = storage.create_table(
        TableSchema("customers", [
            Column("c_id", DataType.INT64, nullable=False),
            Column("c_name", DataType.VARCHAR, nullable=False),
        ]), layout="row", placement=array)
    customers.load([(i, f"cust{i}") for i in range(5)])
    return sim, storage, orders, customers


def run(op):
    collector = CostCollector()
    rows = op.execute(collector)
    return rows, collector


class TestScanFilterProject:
    def test_scan_all(self, env):
        _, _, orders, _ = env
        rows, collector = run(TableScan(orders))
        assert len(rows) == 100
        assert collector.total_io_bytes() > 0
        assert collector.total_cpu_cycles() > 0

    def test_scan_projection(self, env):
        _, _, orders, _ = env
        rows, _ = run(TableScan(orders, columns=["o_id"]))
        assert rows[:3] == [(0,), (1,), (2,)]

    def test_scan_predicate_pushdown(self, env):
        _, _, orders, _ = env
        rows, _ = run(TableScan(orders, predicate=col("o_cust") == 2))
        assert len(rows) == 20
        assert all(r[1] == 2 for r in rows)

    def test_scan_unknown_column_rejected(self, env):
        _, _, orders, _ = env
        with pytest.raises(PlanError):
            TableScan(orders, columns=["ghost"])

    def test_scan_predicate_needs_projected_columns(self, env):
        _, _, orders, _ = env
        with pytest.raises(PlanError):
            TableScan(orders, columns=["o_id"],
                      predicate=col("o_total") > 0)

    def test_filter(self, env):
        _, _, orders, _ = env
        rows, _ = run(Filter(TableScan(orders), col("o_total") > 500.0))
        assert len(rows) == 49

    def test_filter_charges_cpu_per_row(self, env):
        _, _, orders, _ = env
        scan_only = run(TableScan(orders))[1].total_cpu_cycles()
        filtered = run(Filter(TableScan(orders),
                              col("o_id") >= 0))[1].total_cpu_cycles()
        assert filtered > scan_only

    def test_project_columns_and_exprs(self, env):
        _, _, orders, _ = env
        op = Project(TableScan(orders),
                     ["o_id", ("double_total", col("o_total") * 2)])
        rows, _ = run(op)
        assert op.output_columns == ["o_id", "double_total"]
        assert rows[3] == (3, 60.0)

    def test_project_missing_column_rejected(self, env):
        _, _, orders, _ = env
        with pytest.raises(PlanError):
            Project(TableScan(orders, columns=["o_id"]), ["o_total"])


class TestJoins:
    def test_hash_join_results(self, env):
        _, _, orders, customers = env
        join = HashJoin(TableScan(customers), TableScan(orders),
                        ["c_id"], ["o_cust"])
        rows, collector = run(join)
        assert len(rows) == 100
        assert join.output_columns == ["c_id", "c_name", "o_id", "o_cust",
                                       "o_total"]
        # the build boundary splits the plan into >= 2 pipelines
        assert len(collector.pipelines) >= 2

    def test_hash_join_charges_memory_grant(self, env):
        _, _, orders, customers = env
        join = HashJoin(TableScan(customers), TableScan(orders),
                        ["c_id"], ["o_cust"])
        _, collector = run(join)
        assert any(p.dram_grant_bytes > 0 for p in collector.pipelines)

    def test_hash_join_key_mismatch_rejected(self, env):
        _, _, orders, customers = env
        with pytest.raises(PlanError):
            HashJoin(TableScan(customers), TableScan(orders),
                     ["c_id"], ["o_cust", "o_id"])

    def test_join_column_collision_rejected(self, env):
        _, _, orders, _ = env
        with pytest.raises(PlanError):
            HashJoin(TableScan(orders), TableScan(orders),
                     ["o_id"], ["o_id"])

    def test_nested_loop_join_matches_hash_join(self, env):
        _, _, orders, customers = env
        hash_rows, _ = run(HashJoin(TableScan(customers), TableScan(orders),
                                    ["c_id"], ["o_cust"]))
        nlj = BlockNestedLoopJoin(
            TableScan(customers), TableScan(orders),
            predicate=col("c_id") == col("o_cust"), block_rows=2)
        nlj_rows, _ = run(nlj)
        assert sorted(hash_rows) == sorted(nlj_rows)

    def test_nested_loop_charges_inner_rescans(self, env):
        _, _, orders, customers = env
        single = run(TableScan(orders))[1].total_io_bytes()
        nlj = BlockNestedLoopJoin(
            TableScan(customers), TableScan(orders),
            predicate=col("c_id") == col("o_cust"), block_rows=2)
        _, collector = run(nlj)
        # 5 customers / block_rows=2 -> 3 blocks -> 3 reads of orders
        orders_io = collector.total_io_bytes()
        assert orders_io > 2.5 * single

    def test_nested_loop_uses_little_memory(self, env):
        _, _, orders, customers = env
        nlj = BlockNestedLoopJoin(
            TableScan(customers), TableScan(orders),
            predicate=col("c_id") == col("o_cust"))
        _, collector = run(nlj)
        assert all(p.dram_grant_bytes == 0 for p in collector.pipelines)

    def test_nested_loop_inner_must_be_scan(self, env):
        _, _, orders, customers = env
        with pytest.raises(PlanError):
            BlockNestedLoopJoin(
                TableScan(customers),
                Filter(TableScan(orders), col("o_id") > 0),
                predicate=col("c_id") == col("o_cust"))

    def test_sort_merge_join_matches_hash_join(self, env):
        _, _, orders, customers = env
        hash_rows, _ = run(HashJoin(TableScan(customers), TableScan(orders),
                                    ["c_id"], ["o_cust"]))
        smj_rows, _ = run(SortMergeJoin(TableScan(customers),
                                        TableScan(orders),
                                        ["c_id"], ["o_cust"]))
        assert sorted(r for r in hash_rows) == sorted(smj_rows)


class TestSortAggregateLimit:
    def test_sort_ascending(self, env):
        _, _, orders, _ = env
        rows, _ = run(Sort(TableScan(orders), ["o_total"],
                           descending=[True]))
        totals = [r[2] for r in rows]
        assert totals == sorted(totals, reverse=True)

    def test_sort_multi_key_stable(self, env):
        _, _, orders, _ = env
        rows, _ = run(Sort(TableScan(orders), ["o_cust", "o_id"]))
        assert [r[1] for r in rows] == sorted(r[1] for r in rows)
        # within a customer, ids ascend
        cust0 = [r[0] for r in rows if r[1] == 0]
        assert cust0 == sorted(cust0)

    def test_sort_breaks_pipeline(self, env):
        _, _, orders, _ = env
        _, collector = run(Sort(TableScan(orders), ["o_id"]))
        assert len(collector.pipelines) >= 2

    def test_external_sort_spills(self, env):
        sim, _, orders, _ = env
        spill_array = orders.placement
        op = Sort(TableScan(orders), ["o_total"],
                  memory_grant_bytes=100.0, spill_placement=spill_array)
        rows, collector = run(op)
        assert op.spilled
        assert [r[2] for r in rows] == sorted(r[2] for r in rows)
        writes = sum(req.nbytes for p in collector.pipelines
                     for req in p.io if req.is_write)
        assert writes > 0

    def test_hash_aggregate(self, env):
        _, _, orders, _ = env
        op = HashAggregate(
            TableScan(orders), ["o_cust"],
            [AggregateSpec("count", None, "n"),
             AggregateSpec("sum", col("o_total"), "total"),
             AggregateSpec("max", col("o_id"), "top")])
        rows, _ = run(op)
        assert len(rows) == 5
        by_cust = {r[0]: r for r in rows}
        assert by_cust[0][1] == 20
        assert by_cust[4][3] == 99

    def test_global_aggregate_without_groups(self, env):
        _, _, orders, _ = env
        rows, _ = run(HashAggregate(
            TableScan(orders), [],
            [AggregateSpec("avg", col("o_total"), "mean")]))
        assert rows == [(pytest.approx(495.0),)]

    def test_aggregate_over_empty_input(self, env):
        _, _, orders, _ = env
        rows, _ = run(HashAggregate(
            Filter(TableScan(orders), col("o_id") < 0), [],
            [AggregateSpec("count", None, "n"),
             AggregateSpec("sum", col("o_total"), "s")]))
        assert rows == [(0, None)]

    def test_sorted_aggregate_matches_hash(self, env):
        _, _, orders, _ = env
        hash_rows, _ = run(HashAggregate(
            TableScan(orders), ["o_cust"],
            [AggregateSpec("sum", col("o_total"), "t")]))
        sorted_rows, collector = run(SortedAggregate(
            Sort(TableScan(orders), ["o_cust"]), ["o_cust"],
            [AggregateSpec("sum", col("o_total"), "t")]))
        assert sorted(hash_rows) == sorted(sorted_rows)

    def test_sorted_aggregate_rejects_unsorted(self, env):
        _, _, orders, _ = env
        op = SortedAggregate(TableScan(orders), ["o_cust"],
                             [AggregateSpec("count", None, "n")])
        with pytest.raises(PlanError):
            run(op)

    def test_limit_and_offset(self, env):
        _, _, orders, _ = env
        rows, _ = run(Limit(TableScan(orders), 5, offset=10))
        assert [r[0] for r in rows] == [10, 11, 12, 13, 14]

    def test_exchange_sets_parallelism(self, env):
        _, _, orders, _ = env
        _, collector = run(Exchange(TableScan(orders), degree=4))
        assert collector.pipelines[0].parallelism == 4


class TestPlanUtilities:
    def test_explain_tree(self, env):
        _, _, orders, customers = env
        plan = HashJoin(TableScan(customers),
                        Filter(TableScan(orders), col("o_id") > 3),
                        ["c_id"], ["o_cust"])
        text = explain(plan)
        assert "HashJoin" in text
        assert text.count("TableScan") == 2

    def test_validate_rejects_shared_nodes(self, env):
        _, _, orders, _ = env
        scan = TableScan(orders)
        with pytest.raises(PlanError):
            validate(HashJoin(scan, scan, ["o_id"], ["o_id"]))

    def test_operator_count(self, env):
        _, _, orders, _ = env
        plan = Limit(Filter(TableScan(orders), col("o_id") > 0), 3)
        assert operator_count(plan) == 3

    def test_collect_scans(self, env):
        _, _, orders, customers = env
        plan = HashJoin(TableScan(customers), TableScan(orders),
                        ["c_id"], ["o_cust"])
        assert len(collect_scans(plan)) == 2
