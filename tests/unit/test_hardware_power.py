"""Unit tests for power-state machines and power budgets."""

import math

import pytest

from repro.errors import PowerStateError
from repro.hardware.power import (
    PowerBudget,
    PowerState,
    PowerStateMachine,
    Transition,
    breakeven_idle_seconds,
)


def make_psm():
    return PowerStateMachine(
        states=[PowerState("active", 17.0), PowerState("idle", 12.0),
                PowerState("standby", 2.5)],
        transitions=[
            Transition("active", "idle"),
            Transition("idle", "active"),
            Transition("idle", "standby", 1.5, 6.0),
            Transition("standby", "idle", 6.0, 90.0),
        ],
        initial="idle",
    )


def test_initial_state_and_power():
    psm = make_psm()
    assert psm.current == "idle"
    assert psm.power_watts == 12.0


def test_transition_moves_state():
    psm = make_psm()
    t = psm.transition("active")
    assert psm.current == "active"
    assert t.latency_seconds == 0.0
    assert psm.power_watts == 17.0


def test_transition_carries_costs():
    psm = make_psm()
    t = psm.transition("standby")
    assert t.latency_seconds == 1.5
    assert t.energy_joules == 6.0


def test_self_transition_is_free():
    psm = make_psm()
    t = psm.transition("idle")
    assert t.latency_seconds == 0.0
    assert t.energy_joules == 0.0
    assert psm.current == "idle"


def test_illegal_transition_rejected():
    psm = make_psm()
    psm.transition("active")
    with pytest.raises(PowerStateError):
        psm.transition("standby")  # must pass through idle


def test_unknown_initial_state_rejected():
    with pytest.raises(PowerStateError):
        PowerStateMachine([PowerState("a", 1.0)], [], initial="b")


def test_duplicate_state_names_rejected():
    with pytest.raises(PowerStateError):
        PowerStateMachine([PowerState("a", 1.0), PowerState("a", 2.0)],
                          [], initial="a")


def test_negative_power_rejected():
    with pytest.raises(PowerStateError):
        PowerState("bad", -1.0)


def test_can_transition():
    psm = make_psm()
    assert psm.can_transition("active")
    assert not psm.can_transition("nonexistent")


def test_breakeven_idle_for_disk_like_device():
    enter = Transition("idle", "standby", 1.5, 6.0)
    exit_ = Transition("standby", "idle", 6.0, 90.0)
    t = breakeven_idle_seconds(12.0, 2.5, enter, exit_)
    # Check by direct energy comparison slightly above/below the breakeven.
    def sleep_cost(period):
        return 6.0 + 90.0 + 2.5 * (period - 1.5 - 6.0)
    def stay_cost(period):
        return 12.0 * period
    assert sleep_cost(t) == pytest.approx(stay_cost(t), rel=1e-9)
    assert sleep_cost(t + 1) < stay_cost(t + 1)
    assert sleep_cost(t - 1) > stay_cost(t - 1)


def test_breakeven_infinite_when_sleep_saves_nothing():
    enter = Transition("idle", "standby", 0.0, 0.0)
    exit_ = Transition("standby", "idle", 0.0, 0.0)
    assert math.isinf(breakeven_idle_seconds(5.0, 5.0, enter, exit_))


def test_power_budget_commit_and_release():
    budget = PowerBudget(cap_watts=100.0)
    budget.commit("a", 60.0)
    assert budget.headroom_watts == pytest.approx(40.0)
    budget.release("a")
    assert budget.headroom_watts == pytest.approx(100.0)


def test_power_budget_overcommit_rejected():
    budget = PowerBudget(cap_watts=100.0)
    budget.commit("a", 60.0)
    with pytest.raises(PowerStateError):
        budget.commit("b", 50.0)


def test_power_budget_duplicate_name_rejected():
    budget = PowerBudget(cap_watts=100.0)
    budget.commit("a", 10.0)
    with pytest.raises(PowerStateError):
        budget.commit("a", 10.0)


def test_power_budget_release_unknown_rejected():
    with pytest.raises(PowerStateError):
        PowerBudget(cap_watts=10.0).release("ghost")
