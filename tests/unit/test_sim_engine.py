"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulation


def test_clock_starts_at_zero():
    sim = Simulation()
    assert sim.now == 0.0


def test_clock_custom_start():
    sim = Simulation(start=5.0)
    assert sim.now == 5.0


def test_negative_start_rejected():
    with pytest.raises(SimulationError):
        Simulation(start=-1.0)


def test_timeout_advances_clock():
    sim = Simulation()
    done = []

    def proc():
        yield sim.timeout(3.5)
        done.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert done == [3.5]


def test_zero_delay_timeout():
    sim = Simulation()
    done = []

    def proc():
        yield sim.timeout(0.0)
        done.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert done == [0.0]


def test_negative_timeout_rejected():
    sim = Simulation()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_events_fire_in_time_order():
    sim = Simulation()
    order = []

    def proc(name, delay):
        yield sim.timeout(delay)
        order.append(name)

    sim.spawn(proc("c", 3.0))
    sim.spawn(proc("a", 1.0))
    sim.spawn(proc("b", 2.0))
    sim.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fire_in_spawn_order():
    sim = Simulation()
    order = []

    def proc(name):
        yield sim.timeout(1.0)
        order.append(name)

    for name in "abcde":
        sim.spawn(proc(name))
    sim.run()
    assert order == list("abcde")


def test_determinism_across_runs():
    def build():
        sim = Simulation()
        order = []

        def proc(name, delay):
            yield sim.timeout(delay)
            order.append((sim.now, name))

        for i, name in enumerate("xyz"):
            sim.spawn(proc(name, float(i % 2)))
        sim.run()
        return order

    assert build() == build()


def test_sequential_timeouts_accumulate():
    sim = Simulation()
    stamps = []

    def proc():
        for _ in range(4):
            yield sim.timeout(0.25)
            stamps.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert stamps == pytest.approx([0.25, 0.5, 0.75, 1.0])


def test_run_until_time_stops_early():
    sim = Simulation()
    done = []

    def proc():
        yield sim.timeout(10.0)
        done.append("late")

    sim.spawn(proc())
    sim.run(until=5.0)
    assert done == []
    assert sim.now == 5.0


def test_run_until_time_advances_clock_with_empty_queue():
    sim = Simulation()
    sim.run(until=7.0)
    assert sim.now == 7.0


def test_run_until_past_time_rejected():
    sim = Simulation(start=10.0)
    with pytest.raises(SimulationError):
        sim.run(until=5.0)


def test_process_return_value_via_run_until_event():
    sim = Simulation()

    def proc():
        yield sim.timeout(1.0)
        return 42

    result = sim.run(until=sim.spawn(proc()))
    return_value = result
    assert return_value == 42


def test_process_waits_on_process():
    sim = Simulation()
    log = []

    def child():
        yield sim.timeout(2.0)
        return "child-result"

    def parent():
        value = yield sim.spawn(child())
        log.append((sim.now, value))

    sim.spawn(parent())
    sim.run()
    assert log == [(2.0, "child-result")]


def test_unhandled_process_exception_raises_at_run():
    sim = Simulation()

    def bad():
        yield sim.timeout(1.0)
        raise ValueError("boom")

    sim.spawn(bad())
    with pytest.raises(ValueError, match="boom"):
        sim.run()


def test_exception_propagates_to_waiting_process():
    sim = Simulation()
    caught = []

    def bad():
        yield sim.timeout(1.0)
        raise ValueError("boom")

    def parent():
        try:
            yield sim.spawn(bad())
        except ValueError as exc:
            caught.append(str(exc))

    sim.spawn(parent())
    sim.run()
    assert caught == ["boom"]


def test_run_until_failed_process_raises():
    sim = Simulation()

    def bad():
        yield sim.timeout(1.0)
        raise RuntimeError("kaput")

    process = sim.spawn(bad())
    with pytest.raises(RuntimeError, match="kaput"):
        sim.run(until=process)


def test_yielding_non_event_fails_process():
    sim = Simulation()

    def bad():
        yield 123

    sim.spawn(bad())
    with pytest.raises(SimulationError, match="must yield Event"):
        sim.run()


def test_spawn_requires_generator():
    sim = Simulation()
    with pytest.raises(SimulationError):
        sim.spawn(lambda: None)  # type: ignore[arg-type]


def test_event_succeed_wakes_waiter():
    sim = Simulation()
    gate = sim.event()
    log = []

    def waiter():
        value = yield gate
        log.append((sim.now, value))

    def opener():
        yield sim.timeout(3.0)
        gate.succeed("open")

    sim.spawn(waiter())
    sim.spawn(opener())
    sim.run()
    assert log == [(3.0, "open")]


def test_event_cannot_trigger_twice():
    sim = Simulation()
    gate = sim.event()
    gate.succeed(1)
    with pytest.raises(SimulationError):
        gate.succeed(2)


def test_event_value_before_trigger_rejected():
    sim = Simulation()
    with pytest.raises(SimulationError):
        _ = sim.event().value


def test_all_of_collects_values_in_order():
    sim = Simulation()

    def proc(value, delay):
        yield sim.timeout(delay)
        return value

    def main():
        children = [sim.spawn(proc(v, d))
                    for v, d in [("a", 3.0), ("b", 1.0), ("c", 2.0)]]
        values = yield sim.all_of(children)
        return values

    assert sim.run(until=sim.spawn(main())) == ["a", "b", "c"]
    assert sim.now == 3.0


def test_all_of_empty_succeeds_immediately():
    sim = Simulation()

    def main():
        values = yield sim.all_of([])
        return values

    assert sim.run(until=sim.spawn(main())) == []


def test_any_of_returns_first_value():
    sim = Simulation()

    def proc(value, delay):
        yield sim.timeout(delay)
        return value

    def main():
        children = [sim.spawn(proc("slow", 5.0)), sim.spawn(proc("fast", 1.0))]
        winner = yield sim.any_of(children)
        return winner

    assert sim.run(until=sim.spawn(main())) == "fast"
    assert sim.now == 1.0


def test_any_of_requires_events():
    sim = Simulation()
    with pytest.raises(SimulationError):
        sim.any_of([])


def test_interrupt_throws_into_process():
    sim = Simulation()
    log = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
        except SimulationError as exc:
            log.append((sim.now, str(exc)))

    def killer(victim):
        yield sim.timeout(2.0)
        victim.interrupt("preempted")

    victim = sim.spawn(sleeper())
    sim.spawn(killer(victim))
    sim.run()
    assert log == [(2.0, "preempted")]


def test_step_with_empty_queue_raises():
    sim = Simulation()
    with pytest.raises(SimulationError):
        sim.step()
