"""Tier-1 doctest driver: the documented core modules' examples must
execute (CI also runs ``pytest --doctest-modules`` on them, but this
keeps the plain ``pytest`` invocation honest)."""

import doctest

import pytest

from repro.core import metrics, profiler
from repro.faults import engine, policies, schedule
from repro.service import pvc, qed
from repro.workloads.pipelines import catalog as etl_catalog
from repro.workloads.pipelines import schedule as etl_schedule
from repro.workloads.pipelines import spec as etl_spec


@pytest.mark.parametrize("module",
                         [metrics, profiler, schedule, policies, engine,
                          pvc, qed, etl_spec, etl_schedule, etl_catalog],
                         ids=lambda m: m.__name__)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, f"{module.__name__} has no doctests"
    assert result.failed == 0
