"""Unit tests for the fleet-serving layer: power models, node energy
accounting, workload streams, dispatch policies, and the autoscaler."""

import pytest

from repro.errors import ReproError
from repro.service import (Autoscaler, FleetNode, FleetSpec, LeastLoaded,
                           NodePowerModel, PowerAwarePacking, QueryClass,
                           RoundRobin, ServiceError, ServiceReport,
                           Tenant, build_stream, make_policy,
                           simulate_service)
from repro.service.report import NodeStats, TenantStats, quantile


def make_model(**overrides):
    base = dict(name="test", idle_watts=100.0, peak_watts=200.0,
                boot_seconds=10.0, boot_joules=2000.0,
                drain_seconds=2.0, drain_joules=300.0)
    base.update(overrides)
    return NodePowerModel(**base)


class TestNodePowerModel:
    def test_power_is_utilization_linear(self):
        model = make_model()
        assert model.power(0.0) == pytest.approx(100.0)
        assert model.power(0.5) == pytest.approx(150.0)
        assert model.power(1.0) == pytest.approx(200.0)

    def test_rejects_inverted_curve(self):
        with pytest.raises(ServiceError):
            make_model(idle_watts=300.0, peak_watts=200.0)

    def test_breakeven_repays_cycle_at_idle_draw(self):
        model = make_model()
        assert model.breakeven_seconds() == pytest.approx(2300.0 / 100.0)

    def test_from_server_matches_profile_spec_arithmetic(self):
        from repro.hardware.profiles import commodity
        from repro.sim import Simulation
        model = NodePowerModel.from_server("commodity")
        server, _ = commodity(Simulation())
        assert model.idle_watts == pytest.approx(server.idle_power_watts())
        assert model.peak_watts == pytest.approx(server.peak_power_watts())
        assert model.boot_joules == pytest.approx(
            model.peak_watts * model.boot_seconds)

    def test_from_server_unknown_profile(self):
        with pytest.raises(ServiceError, match="unknown hardware profile"):
            NodePowerModel.from_server("mainframe")

    def test_from_cluster_model_preserves_cycle_energy(self):
        from repro.consolidation.cluster import ServerPowerModel
        ensemble = ServerPowerModel()
        model = NodePowerModel.from_cluster_model(ensemble)
        assert model.idle_watts == ensemble.idle_watts
        assert model.cycle_joules == pytest.approx(ensemble.cycle_joules)


class TestFleetNodeEnergy:
    def test_idle_interval_closed_form(self):
        node = FleetNode("n", make_model(), on=True)
        stats = node.finalize(100.0)
        assert stats.energy_joules == pytest.approx(100.0 * 100.0)
        assert stats.on_seconds == pytest.approx(100.0)
        assert stats.busy_seconds == 0.0

    def test_busy_interval_adds_peak_minus_idle(self):
        node = FleetNode("n", make_model(), on=True)
        latency = node.serve(10.0, 5.0)
        assert latency == pytest.approx(5.0)
        stats = node.finalize(100.0)
        # idle for the whole span, plus the busy delta for 5 s
        assert stats.energy_joules == pytest.approx(
            100.0 * 100.0 + (200.0 - 100.0) * 5.0)
        assert stats.busy_seconds == pytest.approx(5.0)

    def test_fcfs_waits_accumulate(self):
        node = FleetNode("n", make_model(), on=True)
        assert node.serve(0.0, 4.0) == pytest.approx(4.0)
        # arrives at 1.0 behind 3.0 s of backlog
        assert node.backlog(1.0) == pytest.approx(3.0)
        assert node.serve(1.0, 2.0) == pytest.approx(3.0 + 2.0)

    def test_power_cycle_charges_lumps_once(self):
        model = make_model()
        node = FleetNode("n", model, on=True)
        node.power_off(50.0)
        node.power_on(100.0)
        stats = node.finalize(150.0)
        # [0,50] idle + drain lump + boot lump + [100,150] with the
        # 10 s boot window priced only by the lump
        expected = (100.0 * 50.0 + 300.0 + 2000.0
                    + 100.0 * (50.0 - 10.0))
        assert stats.energy_joules == pytest.approx(expected)
        assert stats.boots == 1
        assert stats.on_seconds == pytest.approx(100.0)

    def test_power_off_refuses_backlogged_pipe(self):
        node = FleetNode("n", make_model(), on=True)
        node.serve(0.0, 100.0)
        with pytest.raises(ServiceError, match="backlog"):
            node.power_off(50.0)

    def test_serve_refuses_powered_off_node(self):
        node = FleetNode("n", make_model(), on=False)
        with pytest.raises(ServiceError, match="powered-off"):
            node.serve(0.0, 1.0)

    def test_boot_delays_service(self):
        node = FleetNode("n", make_model(), on=False)
        node.power_on(100.0)
        # arrival during boot waits for boot completion
        assert node.serve(101.0, 1.0) == pytest.approx(9.0 + 1.0)


class TestWorkloadStream:
    def test_stream_is_time_ordered_and_complete(self):
        stream = build_stream(5_000, seed=3)
        assert len(stream) == 5_000
        times = stream.times
        assert (times[1:] >= times[:-1]).all()

    def test_same_seed_same_stream(self):
        a = build_stream(2_000, seed=11)
        b = build_stream(2_000, seed=11)
        assert (a.times == b.times).all()
        assert (a.class_index == b.class_index).all()

    def test_different_seed_different_stream(self):
        a = build_stream(2_000, seed=11)
        b = build_stream(2_000, seed=12)
        assert (a.times != b.times).any()

    def test_tenant_arrivals_independent_of_other_tenants(self):
        # removing a tenant must not perturb the survivors' draws
        t1 = Tenant("a", rate_per_s=2.0, sla_p95_seconds=1.0,
                    mix=(("point", 1.0),))
        t2 = Tenant("b", rate_per_s=1.0, sla_p95_seconds=1.0,
                    mix=(("point", 1.0),))
        classes = (QueryClass("point", 0.05),)
        both = build_stream(300, tenants=(t1, t2), classes=classes, seed=5)
        solo = build_stream(200, tenants=(t1,), classes=classes, seed=5)
        both_a = both.times[both.tenant_index == 0]
        assert (both_a[:100] == solo.times[:100]).all()

    def test_counts_proportional_to_rates(self):
        stream = build_stream(10_000, seed=1)
        rates = [t.rate_per_s for t in stream.tenants]
        for i, rate in enumerate(rates):
            share = (stream.tenant_index == i).sum() / len(stream)
            assert share == pytest.approx(rate / sum(rates), abs=1e-3)

    def test_rejects_unknown_class_in_mix(self):
        bad = Tenant("x", rate_per_s=1.0, sla_p95_seconds=1.0,
                     mix=(("nope", 1.0),))
        with pytest.raises(ServiceError, match="unknown query class"):
            build_stream(10, tenants=(bad,))

    def test_rejects_empty_stream(self):
        with pytest.raises(ServiceError):
            build_stream(0)


class TestDispatchPolicies:
    def nodes(self, backlogs):
        model = make_model()
        out = []
        for i, b in enumerate(backlogs):
            node = FleetNode(f"n{i}", model, on=True)
            if b:
                node.serve(0.0, b)
            out.append(node)
        return out

    def test_round_robin_rotates(self):
        nodes = self.nodes([0, 0, 0])
        policy = RoundRobin()
        picks = [policy.select(nodes, [0, 1, 2], 0.0, 1.0)
                 for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_least_loaded_takes_smallest_backlog(self):
        nodes = self.nodes([5.0, 1.0, 3.0])
        assert LeastLoaded().select(nodes, [0, 1, 2], 0.0, 1.0) == 1

    def test_packing_fills_first_underbound_node(self):
        nodes = self.nodes([0.1, 0.0, 0.0])
        policy = PowerAwarePacking(pack_backlog_seconds=0.2)
        assert policy.select(nodes, [0, 1, 2], 0.0, 1.0) == 0

    def test_packing_spills_to_least_loaded(self):
        nodes = self.nodes([5.0, 2.0, 3.0])
        policy = PowerAwarePacking(pack_backlog_seconds=0.2)
        assert policy.select(nodes, [0, 1, 2], 0.0, 1.0) == 1

    def test_packing_skips_powered_off_nodes(self):
        nodes = self.nodes([4.0, 0.0, 0.0])
        policy = PowerAwarePacking(pack_backlog_seconds=0.2)
        # node 1 is off: on_ids excludes it
        assert policy.select(nodes, [0, 2], 0.0, 1.0) == 2

    def test_admission_limit_rejects_deep_backlog(self):
        nodes = self.nodes([10.0])
        policy = RoundRobin(admission_limit_seconds=1.0)
        assert not policy.admits(nodes[0], 0.0)
        assert policy.admits(nodes[0], 9.5)

    def test_make_policy_unknown_name(self):
        with pytest.raises(ServiceError, match="unknown dispatch policy"):
            make_policy("random")

    def test_register_policy_extends_registry(self):
        from repro.service.dispatch import (DISPATCH_POLICIES,
                                            register_policy)

        class Sticky(RoundRobin):
            name = "sticky"

        register_policy(Sticky)
        try:
            assert isinstance(make_policy("sticky"), Sticky)
        finally:
            del DISPATCH_POLICIES["sticky"]


class TestAutoscaler:
    def fleet(self, n=4, model=None):
        model = model or make_model(boot_seconds=0.0, boot_joules=0.0,
                                    drain_seconds=0.0, drain_joules=0.0)
        nodes = [FleetNode(f"n{i}", model, on=True) for i in range(n)]
        return nodes, list(range(n))

    def test_scales_down_after_hold(self):
        nodes, on_ids = self.fleet()
        scaler = Autoscaler(nodes[0].model, epoch_seconds=10.0,
                            target_utilization=0.5, min_nodes=1,
                            cooldown_epochs=1)
        # demand ~0.5 node-seconds/s wants 1 node at 50% target
        t = 0.0
        for _ in range(20):
            t += 10.0
            scaler.observe(5.0)
            scaler.step(t, nodes, on_ids)
        assert len(on_ids) == 1
        assert sum(1 for n in nodes if n.on) == 1

    def test_scale_down_waits_for_breakeven(self):
        model = make_model(boot_seconds=0.0, boot_joules=50_000.0,
                           drain_seconds=0.0, drain_joules=50_000.0)
        nodes = [FleetNode(f"n{i}", model, on=True) for i in range(4)]
        on_ids = list(range(4))
        scaler = Autoscaler(model, epoch_seconds=10.0, min_nodes=1,
                            cooldown_epochs=1)
        # break-even = 100 kJ / 100 W = 1000 s: two low epochs are not
        # enough evidence to cycle a node
        scaler.step(10.0, nodes, on_ids)
        scaler.step(20.0, nodes, on_ids)
        assert len(on_ids) == 4

    def test_scales_up_immediately(self):
        nodes, on_ids = self.fleet()
        for i in (2, 3):
            nodes[i].power_off(0.0)
            on_ids.remove(i)
        scaler = Autoscaler(nodes[0].model, epoch_seconds=10.0,
                            target_utilization=0.5, min_nodes=1)
        scaler.observe(18.0)  # 1.8 node-s/s -> 4 nodes at 50%
        scaler.step(10.0, nodes, on_ids)
        assert len(on_ids) == 4

    def test_respects_min_nodes(self):
        nodes, on_ids = self.fleet()
        scaler = Autoscaler(nodes[0].model, epoch_seconds=10.0,
                            min_nodes=2, cooldown_epochs=0)
        for t in range(1, 30):
            scaler.step(10.0 * t, nodes, on_ids)
        assert len(on_ids) == 2


class TestReports:
    def make_report(self, **overrides):
        base = dict(policy="p", n_nodes=2, queries_offered=10,
                    queries_completed=8, queries_rejected=2,
                    makespan_seconds=100.0, energy_joules=400.0,
                    p50_latency_seconds=0.1, p95_latency_seconds=0.5,
                    p99_latency_seconds=0.9, mean_latency_seconds=0.2,
                    node_seconds_on=150.0,
                    tenants=[TenantStats("t", 8, 2, 0.2, 0.1, 0.5, 0.9,
                                         1.0)],
                    nodes=[NodeStats("n0", 8, 100.0, 20.0, 400.0, 1)])
        base.update(overrides)
        return ServiceReport(**base)

    def test_round_trip_is_exact(self):
        report = self.make_report()
        back = ServiceReport.from_dict(report.to_dict())
        assert back == report

    def test_derived_metrics(self):
        report = self.make_report()
        assert report.joules_per_query == pytest.approx(50.0)
        assert report.energy_efficiency == pytest.approx(8.0 / 400.0)
        assert report.average_power_watts == pytest.approx(4.0)
        assert report.average_active_nodes == pytest.approx(1.5)
        assert report.slas_met

    def test_empty_run_raises_like_core_metrics(self):
        report = self.make_report(queries_completed=0,
                                  makespan_seconds=0.0,
                                  energy_joules=0.0)
        with pytest.raises(ReproError):
            report.joules_per_query
        with pytest.raises(ReproError):
            report.energy_efficiency
        with pytest.raises(ReproError):
            report.average_power_watts

    def test_quantile_interpolates(self):
        assert quantile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)
        assert quantile([1.0], 0.95) == pytest.approx(1.0)
        with pytest.raises(ServiceError):
            quantile([], 0.5)

    def test_node_utilization(self):
        stats = NodeStats("n", 1, on_seconds=100.0, busy_seconds=25.0,
                          energy_joules=1.0, boots=0)
        assert stats.utilization == pytest.approx(0.25)
        assert NodeStats("m", 0, 0.0, 0.0, 0.0, 0).utilization == 0.0


class TestScheduleReportProtocol:
    def test_empty_run_raises(self):
        from repro.consolidation.scheduler import ScheduleReport
        empty = ScheduleReport(policy="fifo", completed=0,
                               makespan_seconds=0.0, energy_joules=0.0,
                               mean_latency_seconds=0.0,
                               max_latency_seconds=0.0)
        with pytest.raises(ReproError):
            empty.average_power_watts
        with pytest.raises(ReproError):
            empty.energy_efficiency

    def test_round_trip(self):
        from repro.consolidation.scheduler import ScheduleReport
        report = ScheduleReport(policy="batched", completed=3,
                                makespan_seconds=10.0, energy_joules=5.0,
                                mean_latency_seconds=1.0,
                                max_latency_seconds=2.0,
                                spin_down_count=1,
                                latencies=[0.5, 1.0, 1.5])
        assert ScheduleReport.from_dict(report.to_dict()) == report

    def test_poisson_arrivals_default_seed_is_runner_seed(self):
        from repro.consolidation.scheduler import poisson_arrivals
        from repro.runner.spec import DEFAULT_SEED
        mix = [lambda: None]
        default = poisson_arrivals(mix, 5, 1.0)
        explicit = poisson_arrivals(mix, 5, 1.0, seed=DEFAULT_SEED)
        assert [a.at_seconds for a in default] == \
            [a.at_seconds for a in explicit]


class TestSimulateServiceEdges:
    def test_single_node_serves_everything(self):
        stream = build_stream(500, seed=1)
        report = simulate_service(
            stream, fleet=FleetSpec.homogeneous(1, make_model()),
            policy="round_robin")
        assert report.queries_completed == 500
        assert report.queries_rejected == 0
        assert report.n_nodes == 1

    def test_admission_limit_rejections_show_per_tenant(self):
        classes = (QueryClass("point", 0.05),)
        tenants = (Tenant("a", rate_per_s=20.0, sla_p95_seconds=5.0,
                          mix=(("point", 1.0),)),
                   Tenant("b", rate_per_s=20.0, sla_p95_seconds=5.0,
                          mix=(("point", 1.0),)))
        stream = build_stream(2_000, tenants=tenants, classes=classes,
                              seed=1)
        report = simulate_service(
            stream, fleet=FleetSpec.homogeneous(1, make_model()),
            policy="round_robin", admission_limit_seconds=0.05)
        assert report.queries_rejected > 0
        assert sum(t.rejected for t in report.tenants) == \
            report.queries_rejected
        assert report.queries_completed + report.queries_rejected == \
            report.queries_offered

    def test_energy_is_sum_of_node_energies(self):
        stream = build_stream(1_000, seed=2)
        report = simulate_service(
            stream, fleet=FleetSpec.homogeneous(4, make_model()),
            policy="power_aware")
        assert report.energy_joules == pytest.approx(
            sum(n.energy_joules for n in report.nodes))
        assert report.queries_completed == pytest.approx(
            sum(n.completed for n in report.nodes))
