"""Unit tests: Recorder and the event-driven ObservatorySink."""

from __future__ import annotations

from repro.observatory import HistoryStore, ObservatorySink, Recorder
from repro.observatory.recorder import timelines_of
from repro.runner import ExperimentSpec, Runner
from repro.telemetry import TelemetryTrace
from repro.telemetry.trace import DeviceTimeline

#: a cheap real sweep: the A8 duty-cycle experiment, two points
SWEEP_KNOBS = {"utilization": [0.25, 0.75], "window_seconds": 10.0}


def _trace():
    return TelemetryTrace(
        started_at=0.0, ended_at=2.0,
        devices=[DeviceTimeline(
            name="cpu", times=[0.0, 1.0, 2.0],
            watts=[30.0, 90.0, 30.0], energy_joules=120.0,
            busy_seconds=1.0)],
        counters={"buffer.hits": 4.0})


class TestRecorder:
    def test_record_run_appends_one_record_per_point(self, tmp_path):
        spec = ExperimentSpec("proportionality", knobs=SWEEP_KNOBS)
        result = Runner(cache=False).run(spec)
        recorder = Recorder(tmp_path, suite="unit")
        appended = recorder.record_run(result)
        assert len(appended) == 2
        assert [r.point for r in appended] == [
            "utilization=0.25", "utilization=0.75"]
        store = HistoryStore(tmp_path)
        loaded = store.load("unit")
        assert [r.seq for r in loaded] == [0, 1]
        assert all(r.spec_hash == spec.spec_hash() for r in loaded)
        assert all(r.metrics["joules"] > 0 for r in loaded)

    def test_record_report_with_trace(self, tmp_path):
        class FakeReport:
            records = 100.0
            seconds = 2.0
            energy_joules = 120.0
        recorder = Recorder(tmp_path, suite="unit")
        record = recorder.record_report("bench", FakeReport(),
                                        trace=_trace())
        assert record.counters == {"buffer.hits": 4.0}
        assert record.metrics["joules_per_record"] == 1.2
        assert record.timelines[0]["name"] == "cpu"

    def test_timelines_are_downsampled(self):
        trace = TelemetryTrace(devices=[DeviceTimeline(
            name="cpu", times=[float(i) for i in range(1000)],
            watts=[1.0] * 1000, energy_joules=999.0)])
        (tl,) = timelines_of(trace, limit=64)
        assert len(tl["times"]) <= 64
        assert tl["times"][0] == 0.0 and tl["times"][-1] == 999.0
        assert tl["energy_joules"] == 999.0


class TestObservatorySink:
    def test_sink_records_a_traced_run(self, tmp_path):
        spec = ExperimentSpec("proportionality", knobs=SWEEP_KNOBS)
        seen = []
        sink = ObservatorySink(Recorder(tmp_path, suite="unit"),
                               spec=spec, forward=seen.append)
        Runner(cache=False, trace=True, on_event=sink).run(spec)
        assert len(sink.appended) == 2
        assert sink.appended[0].point == "utilization=0.25"
        # traced run: counters/timelines may be empty but the spec hash
        # and metrics must be populated from the event stream
        assert sink.appended[0].spec_hash == spec.spec_hash()
        assert sink.appended[0].metrics["sim_seconds"] > 0
        # forward chaining kept the downstream sink fed
        assert seen, "forwarded events expected"

    def test_sink_infers_axes_without_a_spec(self, tmp_path):
        spec = ExperimentSpec("proportionality", knobs=SWEEP_KNOBS)
        sink = ObservatorySink(Recorder(tmp_path, suite="unit"))
        Runner(cache=False, on_event=sink).run(spec)
        assert [r.point for r in sink.appended] == [
            "utilization=0.25", "utilization=0.75"]

    def test_sink_single_point_label_is_defaults(self, tmp_path):
        spec = ExperimentSpec("proportionality",
                              knobs={"utilization": 0.5,
                                     "window_seconds": 10.0})
        sink = ObservatorySink(Recorder(tmp_path, suite="unit"))
        Runner(cache=False, on_event=sink).run(spec)
        assert [r.point for r in sink.appended] == ["defaults"]

    def test_sink_matches_recorder_output(self, tmp_path):
        """Event-driven and call-style recording agree on content."""
        spec = ExperimentSpec("proportionality", knobs=SWEEP_KNOBS)
        sink = ObservatorySink(Recorder(tmp_path / "a", suite="s"),
                               spec=spec)
        result = Runner(cache=False, on_event=sink).run(spec)
        direct = Recorder(tmp_path / "b", suite="s").record_run(result)
        for via_sink, via_call in zip(sink.appended, direct):
            assert via_sink.point == via_call.point
            assert via_sink.metrics["joules"] == \
                via_call.metrics["joules"]
            assert via_sink.metrics["sim_seconds"] == \
                via_call.metrics["sim_seconds"]
