"""Unit tests for DRAM, PSU/burden, server, proportionality, profiles."""

import pytest

from repro.errors import HardwareError
from repro.hardware.memory import Dram, DramSpec
from repro.hardware.proportionality import (
    IdealProportionalDevice,
    dynamic_range,
    ideal_proportional_energy,
    proportionality_index,
)
from repro.hardware.psu import BurdenModel, PsuSpec, aggregate_efficiency
from repro.hardware import profiles
from repro.sim import Simulation
from repro.units import GB, GIB, MB


class TestDram:
    def make(self, sim, capacity=4 * GIB, rank=1 * GIB):
        return Dram(sim, DramSpec(
            capacity_bytes=capacity, background_watts_per_gib=1.0,
            active_extra_watts=4.0, bandwidth_bytes_per_s=1 * GB,
            rank_bytes=rank))

    def test_background_power_scales_with_powered_capacity(self):
        sim = Simulation()
        dram = self.make(sim)
        assert dram.power_watts == pytest.approx(4.0)
        dram.set_powered_bytes(2 * GIB)
        assert dram.power_watts == pytest.approx(2.0)

    def test_powering_is_rank_granular(self):
        sim = Simulation()
        dram = self.make(sim)
        dram.set_powered_bytes(1)  # rounds up to one full rank
        assert dram.powered_bytes == 1 * GIB

    def test_cannot_power_down_below_allocation(self):
        sim = Simulation()
        dram = self.make(sim)
        dram.allocate(3 * GIB)
        with pytest.raises(HardwareError):
            dram.set_powered_bytes(2 * GIB)

    def test_allocate_beyond_powered_rejected(self):
        sim = Simulation()
        dram = self.make(sim)
        dram.set_powered_bytes(1 * GIB)
        with pytest.raises(HardwareError):
            dram.allocate(2 * GIB)

    def test_free_more_than_allocated_rejected(self):
        sim = Simulation()
        dram = self.make(sim)
        dram.allocate(100)
        with pytest.raises(HardwareError):
            dram.free(200)

    def test_access_time_and_active_power(self):
        sim = Simulation()
        dram = self.make(sim)
        samples = []

        def observe():
            yield sim.timeout(0.5)
            samples.append(dram.power_watts)

        sim.spawn(dram.access(1 * GB))
        sim.spawn(observe())
        sim.run()
        assert sim.now == pytest.approx(1.0)
        assert samples == [pytest.approx(8.0)]  # 4 background + 4 active

    def test_residency_watts(self):
        sim = Simulation()
        dram = self.make(sim)
        assert dram.residency_watts(2 * GIB) == pytest.approx(2.0)


class TestPsu:
    def test_efficiency_interpolation(self):
        psu = PsuSpec(rated_watts=1000.0,
                      efficiency_curve=((0.0, 0.5), (1.0, 0.9)))
        assert psu.efficiency(0.0) == pytest.approx(0.5)
        assert psu.efficiency(500.0) == pytest.approx(0.7)
        assert psu.efficiency(1000.0) == pytest.approx(0.9)

    def test_efficiency_clamps_above_rating(self):
        psu = PsuSpec(rated_watts=1000.0,
                      efficiency_curve=((0.0, 0.5), (1.0, 0.9)))
        assert psu.efficiency(5000.0) == pytest.approx(0.9)

    def test_input_power(self):
        psu = PsuSpec(rated_watts=1000.0,
                      efficiency_curve=((0.0, 0.8), (1.0, 0.8)))
        assert psu.input_watts(400.0) == pytest.approx(500.0)

    def test_burden_cooling_overhead(self):
        burden = BurdenModel(cooling_overhead=1.0)
        assert burden.wall_power_watts(100.0) == pytest.approx(200.0)

    def test_burden_with_psu(self):
        psu = PsuSpec(rated_watts=1000.0,
                      efficiency_curve=((0.0, 0.8), (1.0, 0.8)))
        burden = BurdenModel(psu=psu, cooling_overhead=0.5)
        assert burden.wall_power_watts(400.0) == pytest.approx(750.0)

    def test_pue(self):
        burden = BurdenModel(cooling_overhead=0.5)
        assert burden.pue(100.0) == pytest.approx(1.5)

    def test_curve_validation(self):
        with pytest.raises(HardwareError):
            PsuSpec(efficiency_curve=((0.5, 0.8), (1.0, 0.9)))
        with pytest.raises(HardwareError):
            PsuSpec(efficiency_curve=((0.0, 0.8),))

    def test_aggregate_efficiency(self):
        psu = PsuSpec(rated_watts=1000.0,
                      efficiency_curve=((0.0, 0.6), (0.5, 0.9), (1.0, 0.9)))
        # Two PSUs at half the load each land at a better curve point
        # than one PSU near zero load.
        assert aggregate_efficiency([psu, psu], 1000.0) == pytest.approx(0.9)


class TestProportionality:
    def test_perfectly_proportional_scores_one(self):
        utils = [0.0, 0.5, 1.0]
        powers = [0.0, 50.0, 100.0]
        assert proportionality_index(utils, powers) == pytest.approx(1.0)

    def test_constant_power_scores_zero(self):
        utils = [0.0, 0.5, 1.0]
        powers = [100.0, 100.0, 100.0]
        assert proportionality_index(utils, powers) == pytest.approx(0.0)

    def test_typical_server_between_zero_and_one(self):
        utils = [0.0, 0.25, 0.5, 0.75, 1.0]
        powers = [60.0, 70.0, 80.0, 90.0, 100.0]
        index = proportionality_index(utils, powers)
        assert 0.0 < index < 1.0

    def test_requires_full_span(self):
        with pytest.raises(HardwareError):
            proportionality_index([0.1, 1.0], [10.0, 100.0])

    def test_dynamic_range(self):
        assert dynamic_range(60.0, 100.0) == pytest.approx(0.4)
        with pytest.raises(HardwareError):
            dynamic_range(110.0, 100.0)

    def test_ideal_device_power_follows_load(self):
        sim = Simulation()
        dev = IdealProportionalDevice(sim, "ideal", peak_watts=100.0)

        def scenario():
            yield from dev.occupy(2.0)
            yield sim.timeout(3.0)

        sim.run(until=sim.spawn(scenario()))
        assert dev.energy_joules(0.0, sim.now) == pytest.approx(200.0)

    def test_ideal_proportional_energy_from_real_device(self):
        sim = Simulation()
        dev = IdealProportionalDevice(sim, "ideal", peak_watts=50.0)

        def scenario():
            yield from dev.occupy(4.0)
            yield sim.timeout(6.0)

        sim.run(until=sim.spawn(scenario()))
        assert ideal_proportional_energy(dev) == pytest.approx(200.0)
        assert ideal_proportional_energy(dev, peak_watts=10.0) == \
            pytest.approx(40.0)


class TestProfiles:
    def test_dl785_disk_count(self):
        sim = Simulation()
        server, array = profiles.dl785(sim, n_disks=36)
        assert len(server.storage) == 36
        assert array.width == 36
        assert array.level.value == "raid5"

    def test_dl785_disks_dominate_power_at_full_config(self):
        sim = Simulation()
        server, _array = profiles.dl785(sim, n_disks=204)
        disk_idle = sum(d.spec.idle_watts for d in server.storage)
        assert disk_idle > 0.5 * server.idle_power_watts()

    def test_flash_scan_node_matches_paper_constants(self):
        sim = Simulation()
        server, array = profiles.flash_scan_node(sim)
        assert server.cpu.active_power_per_unit_watts == pytest.approx(90.0)
        active = sum(s.spec.read_watts for s in server.storage)
        assert active == pytest.approx(5.0)
        assert array.width == 3

    def test_flash_array_aggregate_bandwidth(self):
        sim = Simulation()
        _server, array = profiles.flash_scan_node(sim)
        bw = sum(s.spec.read_bandwidth_bytes_per_s for s in array.members)
        assert bw == pytest.approx(240 * MB)

    def test_commodity_builds(self):
        sim = Simulation()
        server, array = profiles.commodity(sim)
        assert server.powered_on
        assert array.width == 2

    def test_server_power_off(self):
        sim = Simulation()
        server, _array = profiles.commodity(sim)
        before = server.power_watts()
        assert before > 0
        server.power_off()
        assert server.power_watts() == pytest.approx(0.0)
        assert not server.powered_on
