"""Unit tests: baselines, tolerances, verdicts, RegressionReport."""

from __future__ import annotations

import pytest

from repro.observatory import (
    BenchRecord,
    HistoryStore,
    MetricPolicy,
    RegressionReport,
    baseline_of,
    compare_records,
    compare_store,
)
from repro.observatory.regression import (
    CHANGED,
    IMPROVEMENT,
    MISSING,
    NEW,
    OK,
    REGRESSION,
)


def _rec(joules=100.0, sim=10.0, rpsw=None, host=0.5, counters=None,
         metrics_extra=None, suite="core", benchmark="fig2",
         point="defaults"):
    metrics = {"joules": joules, "sim_seconds": sim,
               "host_seconds": host}
    if rpsw is not None:
        metrics["records_per_second_per_watt"] = rpsw
    if metrics_extra:
        metrics.update(metrics_extra)
    return BenchRecord(suite=suite, benchmark=benchmark, point=point,
                       metrics=metrics, counters=dict(counters or {}))


def _verdicts(findings):
    return {f.metric: f.verdict for f in findings}


class TestBaseline:
    def test_median_of_window(self):
        assert baseline_of([1.0, 2.0, 100.0, 2.0, 3.0, 2.0],
                           window=5) == 2.0

    def test_window_limits_lookback(self):
        # only the last 2 values participate
        assert baseline_of([1000.0, 4.0, 6.0], window=2) == 5.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            baseline_of([])


class TestCompareRecords:
    def test_single_record_is_new_and_never_gates(self):
        findings = compare_records([_rec()])
        assert findings
        assert all(f.verdict == NEW for f in findings)
        assert not any(f.fails_gate for f in findings)

    def test_identical_records_report_zero_regressions(self):
        findings = compare_records([_rec(), _rec()])
        non_ok = [f for f in findings if f.verdict != OK]
        assert non_ok == []

    def test_more_joules_is_a_gated_regression(self):
        findings = compare_records([_rec(joules=100.0),
                                    _rec(joules=110.0)])
        verdicts = _verdicts(findings)
        assert verdicts["joules"] == REGRESSION
        assert any(f.fails_gate for f in findings)

    def test_fewer_joules_is_an_improvement_not_a_gate(self):
        findings = compare_records([_rec(joules=100.0),
                                    _rec(joules=90.0)])
        verdicts = _verdicts(findings)
        assert verdicts["joules"] == IMPROVEMENT
        assert not any(f.fails_gate for f in findings)

    def test_lower_efficiency_is_a_regression(self):
        findings = compare_records([_rec(rpsw=2.0), _rec(rpsw=1.5)])
        assert _verdicts(findings)[
            "records_per_second_per_watt"] == REGRESSION

    def test_host_seconds_never_gates(self):
        findings = compare_records([_rec(host=0.5), _rec(host=5.0)])
        host = [f for f in findings if f.metric == "host_seconds"]
        assert host[0].verdict == OK          # infinite tolerance
        assert not host[0].fails_gate

    def test_counter_change_is_changed_and_gates(self):
        findings = compare_records([
            _rec(counters={"buffer.hits": 10}),
            _rec(counters={"buffer.hits": 11})])
        counter = [f for f in findings
                   if f.metric == "counter:buffer.hits"][0]
        assert counter.verdict == CHANGED
        assert counter.fails_gate

    def test_disappeared_metric_is_missing_and_gates(self):
        first = _rec(metrics_extra={"records": 10.0})
        second = _rec()
        findings = compare_records([first, second])
        missing = [f for f in findings if f.metric == "records"][0]
        assert missing.verdict == MISSING
        assert missing.fails_gate

    def test_exact_tolerance_flags_tiny_but_real_drift(self):
        findings = compare_records([_rec(joules=100.0),
                                    _rec(joules=100.001)])
        assert _verdicts(findings)["joules"] == REGRESSION

    def test_tolerance_allows_1e9_noise(self):
        findings = compare_records([_rec(joules=100.0),
                                    _rec(joules=100.0 + 1e-10)])
        assert _verdicts(findings)["joules"] == OK

    def test_custom_policy_widens_tolerance(self):
        policies = {"joules": MetricPolicy(rel_tol=0.2,
                                           direction="lower")}
        findings = compare_records(
            [_rec(joules=100.0), _rec(joules=110.0)],
            policies=policies)
        assert _verdicts(findings)["joules"] == OK

    def test_median_baseline_resists_one_bad_append(self):
        history = [_rec(joules=100.0), _rec(joules=100.0),
                   _rec(joules=500.0), _rec(joules=100.0),
                   _rec(joules=100.0), _rec(joules=100.0)]
        findings = compare_records(history, window=5)
        assert _verdicts(findings)["joules"] == OK

    def test_empty_history(self):
        assert compare_records([]) == []


class TestCompareStore:
    def test_cross_suite_and_report_shape(self, tmp_path):
        store = HistoryStore(tmp_path)
        store.append(_rec(suite="a", joules=10.0))
        store.append(_rec(suite="a", joules=10.0))
        store.append(_rec(suite="b", joules=10.0))
        store.append(_rec(suite="b", joules=12.0))
        report = compare_store(store)
        assert report.has_regressions
        suites = {f.suite for f in report.regressions()}
        assert suites == {"b"}
        # worst verdicts sort first
        assert report.findings[0].verdict == REGRESSION

    def test_suite_filter(self, tmp_path):
        store = HistoryStore(tmp_path)
        store.append(_rec(suite="a", joules=10.0))
        store.append(_rec(suite="a", joules=99.0))
        report = compare_store(store, suites=["nope"])
        assert report.findings == []

    def test_summary_and_serialization(self, tmp_path):
        store = HistoryStore(tmp_path)
        store.append(_rec(joules=10.0))
        store.append(_rec(joules=11.0))
        report = compare_store(store)
        assert report.summary().startswith("FAIL")
        clone = RegressionReport.from_dict(report.to_dict())
        assert _verdicts(clone.findings) == _verdicts(report.findings)
        assert clone.has_regressions

    def test_delta_properties(self):
        findings = compare_records([_rec(joules=100.0),
                                    _rec(joules=110.0)])
        joules = [f for f in findings if f.metric == "joules"][0]
        assert joules.delta == pytest.approx(10.0)
        assert joules.delta_pct == pytest.approx(10.0)
