"""Unit tests for the CPU model."""

import pytest

from repro.errors import HardwareError
from repro.hardware.cpu import Cpu, CpuSpec
from repro.sim import Simulation
from repro.units import GHZ


def make_cpu(sim, cores=2, freq=1 * GHZ, idle=10.0, peak=50.0):
    return Cpu(sim, CpuSpec(cores=cores, frequency_hz=freq,
                            idle_watts=idle, peak_watts=peak,
                            cstate_watts=min(1.0, idle)))


def test_execute_time_equals_cycles_over_frequency():
    sim = Simulation()
    cpu = make_cpu(sim)

    def work():
        yield from cpu.execute(2_000_000_000)  # 2e9 cycles at 1 GHz = 2 s

    sim.run(until=sim.spawn(work()))
    assert sim.now == pytest.approx(2.0)


def test_parallel_execution_divides_time():
    sim = Simulation()
    cpu = make_cpu(sim, cores=4)

    def work():
        yield from cpu.execute(4_000_000_000, parallelism=4)

    sim.run(until=sim.spawn(work()))
    assert sim.now == pytest.approx(1.0)


def test_idle_power_at_rest():
    sim = Simulation()
    cpu = make_cpu(sim)
    assert cpu.power_watts == pytest.approx(10.0)


def test_power_scales_with_busy_cores():
    sim = Simulation()
    cpu = make_cpu(sim, cores=2)
    observed = []

    def work():
        yield from cpu.execute(1_000_000_000)

    def observe():
        yield sim.timeout(0.5)
        observed.append(cpu.power_watts)

    sim.spawn(work())
    sim.spawn(observe())
    sim.run()
    # one of two cores busy: 10 + 40 * 0.5 = 30 W
    assert observed == [pytest.approx(30.0)]
    assert cpu.power_watts == pytest.approx(10.0)  # idle again


def test_energy_integration_matches_hand_calculation():
    sim = Simulation()
    cpu = make_cpu(sim, cores=1)

    def work():
        yield from cpu.execute(3_000_000_000)  # 3 s busy at 50 W
        yield sim.timeout(1.0)                 # 1 s idle at 10 W

    sim.run(until=sim.spawn(work()))
    assert cpu.energy_joules(0.0, sim.now) == pytest.approx(3 * 50 + 1 * 10)


def test_busy_seconds_counts_core_seconds():
    sim = Simulation()
    cpu = make_cpu(sim, cores=4)

    def work():
        yield from cpu.execute(2_000_000_000, parallelism=2)  # 1 s on 2 cores

    sim.run(until=sim.spawn(work()))
    assert cpu.busy_seconds() == pytest.approx(2.0)


def test_core_contention_serializes():
    sim = Simulation()
    cpu = make_cpu(sim, cores=1)

    def work():
        yield from cpu.execute(1_000_000_000)

    sim.spawn(work())
    sim.spawn(work())
    sim.run()
    assert sim.now == pytest.approx(2.0)


def test_dvfs_slows_and_cheapens():
    sim = Simulation()
    spec = CpuSpec(cores=1, frequency_hz=1 * GHZ, idle_watts=10.0,
                   peak_watts=50.0, cstate_watts=1.0,
                   dvfs_fractions=(1.0, 0.5))
    cpu = Cpu(sim, spec)
    cpu.set_dvfs(0.5)

    def work():
        yield from cpu.execute(1_000_000_000)

    sim.run(until=sim.spawn(work()))
    assert sim.now == pytest.approx(2.0)  # half frequency, double time
    # dynamic power scaled by 0.5^3: 10 + 40*0.125 = 15 W for 2 s
    assert cpu.energy_joules(0.0, 2.0) == pytest.approx(30.0)


def test_dvfs_rejects_unoffered_fraction():
    sim = Simulation()
    cpu = make_cpu(sim)
    with pytest.raises(HardwareError):
        cpu.set_dvfs(0.33)


def test_dvfs_rejected_while_busy():
    sim = Simulation()
    spec = CpuSpec(cores=1, frequency_hz=1 * GHZ, idle_watts=10.0,
                   peak_watts=50.0, cstate_watts=1.0,
                   dvfs_fractions=(1.0, 0.5))
    cpu = Cpu(sim, spec)

    def work():
        yield from cpu.execute(1_000_000_000)

    def meddle():
        yield sim.timeout(0.5)
        with pytest.raises(HardwareError):
            cpu.set_dvfs(0.5)

    sim.spawn(work())
    sim.spawn(meddle())
    sim.run()


def test_cstate_power_and_wake_latency():
    sim = Simulation()
    cpu = make_cpu(sim)

    def scenario():
        yield from cpu.sleep()
        assert cpu.power_watts == pytest.approx(1.0)
        start = sim.now
        yield from cpu.execute(1_000_000_000)
        # execution implicitly woke the CPU first
        assert sim.now - start == pytest.approx(
            cpu.spec.cstate_exit_seconds + 1.0)

    sim.run(until=sim.spawn(scenario()))
    assert not cpu.sleeping


def test_sleep_while_busy_rejected():
    sim = Simulation()
    cpu = make_cpu(sim)

    def work():
        yield from cpu.execute(1_000_000_000)

    def meddle():
        yield sim.timeout(0.5)
        with pytest.raises(HardwareError):
            list(cpu.sleep())

    sim.spawn(work())
    sim.spawn(meddle())
    sim.run()


def test_active_power_per_unit_full_package_for_single_core():
    sim = Simulation()
    cpu = make_cpu(sim, cores=1, idle=0.0, peak=90.0)
    assert cpu.active_power_per_unit_watts == pytest.approx(90.0)


def test_zero_cycles_is_noop():
    sim = Simulation()
    cpu = make_cpu(sim)

    def work():
        yield from cpu.execute(0)

    sim.run(until=sim.spawn(work()))
    assert sim.now == 0.0


def test_negative_cycles_rejected():
    sim = Simulation()
    cpu = make_cpu(sim)
    with pytest.raises(HardwareError):
        list(cpu.execute(-1))


def test_parallelism_bounds_enforced():
    sim = Simulation()
    cpu = make_cpu(sim, cores=2)
    with pytest.raises(HardwareError):
        list(cpu.execute(100, parallelism=3))


def test_spec_validation():
    with pytest.raises(HardwareError):
        CpuSpec(cores=0)
    with pytest.raises(HardwareError):
        CpuSpec(idle_watts=100.0, peak_watts=50.0)
    with pytest.raises(HardwareError):
        CpuSpec(dvfs_fractions=(1.5,))
    with pytest.raises(HardwareError):
        CpuSpec(cstate_watts=99.0)
