"""Unit tests for the PVC frequency governor and the QED batcher.

Policy-object arithmetic only — the governor's step selection, the
hold-queue release protocol, knob validation, and registration; the
engine-level behavior (energy, SLAs, telemetry exactness) lives in
``tests/integration/test_service_pvc_qed.py``.
"""

import warnings

import pytest

from repro.service import (DISPATCH_POLICIES, DispatchContext, FleetNode,
                           FleetSpec, NodePowerModel, PVCPolicy, QEDPolicy,
                           ServiceError, build_stream, make_policy,
                           simulate_service)
from repro.service.dispatch import Batch

MODEL = NodePowerModel()  # 200 W idle / 350 W peak, speed 1


def ctx_for(node, service_s, sla=None, now=0.0):
    return DispatchContext([node], [0], now, service_s, sla)


class TestPVCGovernor:
    def test_registered_and_named(self):
        assert "pvc" in DISPATCH_POLICIES
        policy = make_policy("pvc")
        assert policy.name == "pvc(power_aware)"
        assert policy.dvfs and not policy.batching
        assert policy.autoscaled  # inherits power_aware's

    def test_picks_deepest_step_that_fits_headroom(self):
        pvc = PVCPolicy(sla_headroom=0.6)
        node = FleetNode("n0", MODEL)
        # 0.3 s job, 2.4 s budget: even 0.55 (0.545 s) fits
        assert pvc.frequency(ctx_for(node, 0.30, sla=4.0), 0) == 0.55
        # 2.5 s job: 2.5/0.85 = 2.94 s > 2.4 s, so full speed
        assert pvc.frequency(ctx_for(node, 2.50, sla=4.0), 0) == 1.0

    def test_backlog_pushes_governor_back_to_full_speed(self):
        pvc = PVCPolicy(sla_headroom=0.6)
        node = FleetNode("n0", MODEL)
        node.serve(0.0, 2.2)  # backlog eats the 2.4 s budget
        assert pvc.frequency(ctx_for(node, 0.30, sla=4.0), 0) == 1.0

    def test_no_sla_means_full_speed(self):
        pvc = PVCPolicy()
        node = FleetNode("n0", MODEL)
        assert pvc.frequency(ctx_for(node, 0.30, sla=None), 0) == 1.0

    def test_slower_node_class_downclocks_less(self):
        pvc = PVCPolicy(sla_headroom=0.6)
        slow = FleetNode("w0", NodePowerModel(name="wimpy",
                                              speed_factor=0.45))
        # 0.9 s job executes 2.0 s on the wimpy class; 2.0/0.85 = 2.35
        # fits the 2.4 s budget but 2.0/0.7 = 2.86 does not
        assert pvc.frequency(ctx_for(slow, 0.90, sla=4.0), 0) == 0.85

    def test_routing_and_admission_delegate_to_inner(self):
        pvc = PVCPolicy(inner="least_loaded")
        assert pvc.name == "pvc(least_loaded)"
        assert not pvc.autoscaled
        a, b = FleetNode("a", MODEL), FleetNode("b", MODEL)
        a.serve(0.0, 5.0)
        ctx = DispatchContext([a, b], [0, 1], 0.0, 0.3, 2.0)
        assert pvc.route(ctx) == 1

    def test_inner_kwargs_pass_through(self):
        pvc = make_policy("pvc", pack_backlog_seconds=0.7)
        assert pvc.inner.pack_backlog_seconds == 0.7
        with pytest.raises(ServiceError, match="unknown knob"):
            make_policy("pvc", no_such_knob=1)

    def test_knob_validation(self):
        with pytest.raises(ServiceError, match="frequency step"):
            PVCPolicy(frequency_steps=())
        with pytest.raises(ServiceError, match=r"\(0, 1\]"):
            PVCPolicy(frequency_steps=(0.5, 1.5))
        with pytest.raises(ServiceError, match="headroom"):
            PVCPolicy(sla_headroom=0.0)
        with pytest.raises(ServiceError, match="wrap"):
            PVCPolicy(inner=PVCPolicy())

    def test_steps_sorted_ascending_and_deduped(self):
        pvc = PVCPolicy(frequency_steps=(1.0, 0.55, 0.85, 0.55))
        assert pvc.frequency_steps == (0.55, 0.85, 1.0)


class TestQEDHoldQueues:
    def test_registered_and_named(self):
        assert "qed" in DISPATCH_POLICIES
        policy = make_policy("qed")
        assert policy.batching and not policy.dvfs
        assert policy.name == "qed(power_aware)"

    def test_holds_then_releases_at_first_member_deadline(self):
        qed = QEDPolicy(hold_seconds=1.0, sla_headroom=0.5,
                        shared_fraction=0.7)
        assert qed.offer(0, 10.0, 0.3, tenant=1, sla_seconds=4.0) == []
        assert qed.next_deadline() == 11.0  # 10.0 + min(1.0, 2.0)
        assert qed.offer(1, 10.4, 0.3, tenant=1, sla_seconds=4.0) == []
        assert qed.next_deadline() == 11.0  # pinned by the first member
        [batch] = qed.due(11.0)
        assert batch.members == (0, 1)
        assert batch.release_at == 11.0
        assert batch.service_seconds == pytest.approx(0.39)
        assert qed.next_deadline() == float("inf")

    def test_sla_headroom_caps_the_hold_window(self):
        qed = QEDPolicy(hold_seconds=10.0, sla_headroom=0.5)
        qed.offer(0, 0.0, 0.05, tenant=0, sla_seconds=2.0)
        assert qed.next_deadline() == 1.0  # 2.0 * 0.5 < 10.0

    def test_incompatible_arrivals_hold_separately(self):
        qed = QEDPolicy(hold_seconds=1.0)
        qed.offer(0, 0.0, 0.3, tenant=0, sla_seconds=4.0)
        qed.offer(1, 0.1, 0.3, tenant=1, sla_seconds=4.0)   # other tenant
        qed.offer(2, 0.2, 0.05, tenant=0, sla_seconds=4.0)  # other class
        batches = qed.flush()
        assert [b.members for b in batches] == [(0,), (1,), (2,)]

    def test_full_queue_releases_immediately(self):
        qed = QEDPolicy(hold_seconds=5.0, max_batch=2,
                        shared_fraction=1.0)
        assert qed.offer(0, 0.0, 0.3, tenant=0, sla_seconds=40.0) == []
        [batch] = qed.offer(1, 0.5, 0.3, tenant=0, sla_seconds=40.0)
        assert batch.members == (0, 1)
        assert batch.release_at == 0.5  # the filling arrival's instant
        assert batch.service_seconds == 0.3  # followers ride free
        assert qed.next_deadline() == float("inf")

    def test_zero_hold_releases_alone_byte_exactly(self):
        qed = QEDPolicy(hold_seconds=0.0)
        [batch] = qed.offer(7, 5.0, 0.05, tenant=0, sla_seconds=2.0)
        assert batch == Batch((7,), 5.0, 0.05, 2.0)

    def test_flush_releases_ascending_by_deadline(self):
        qed = QEDPolicy(hold_seconds=1.0, sla_headroom=0.5)
        qed.offer(0, 0.0, 0.3, tenant=1, sla_seconds=4.0)   # deadline 1.0
        qed.offer(1, 0.8, 0.05, tenant=0, sla_seconds=2.0)  # deadline 1.8
        qed.offer(2, 0.2, 2.5, tenant=2, sla_seconds=15.0)  # deadline 1.2
        batches = qed.flush()
        assert [b.release_at for b in batches] == [1.0, 1.2, 1.8]
        assert qed.flush() == []

    def test_dvfs_composition_delegates_frequency(self):
        stacked = QEDPolicy(inner="pvc")
        assert stacked.name == "qed(pvc(power_aware))"
        assert stacked.batching and stacked.dvfs
        node = FleetNode("n0", MODEL)
        assert stacked.frequency(ctx_for(node, 0.30, sla=4.0), 0) == 0.55

    def test_knob_validation(self):
        with pytest.raises(ServiceError, match="hold window"):
            QEDPolicy(hold_seconds=-1.0)
        with pytest.raises(ServiceError, match="shared fraction"):
            QEDPolicy(shared_fraction=1.5)
        with pytest.raises(ServiceError, match="max batch"):
            QEDPolicy(max_batch=0)
        with pytest.raises(ServiceError, match="nest"):
            QEDPolicy(inner=QEDPolicy())

    def test_batch_validates_itself(self):
        with pytest.raises(ServiceError, match="empty"):
            Batch((), 0.0, 1.0)
        with pytest.raises(ServiceError, match="positive"):
            Batch((0,), 0.0, 0.0)


class TestExecutionHooksUnderFaults:
    """PVC/QED run on the chaos engine: every arrival still lands in
    exactly one ledger bucket, and a degenerate QED window reproduces
    the plain-policy chaos run byte for byte."""

    def _chaos(self, policy):
        from repro.faults.engine import simulate_faulty_service
        from repro.faults.schedule import build_fault_schedule
        stream = build_stream(600, seed=1)
        schedule = build_fault_schedule(
            4, horizon_seconds=stream.duration_seconds, seed=0,
            intensity=2.0)
        return simulate_faulty_service(
            stream, schedule, fleet=FleetSpec.homogeneous(4),
            policy=policy)

    def test_chaos_engine_runs_execution_policies(self):
        for policy in (PVCPolicy(), QEDPolicy(),
                       QEDPolicy(inner=PVCPolicy())):
            report = self._chaos(policy)
            assert report.queries_offered == (
                report.queries_completed + report.queries_rejected
                + report.queries_lost)

    def test_degenerate_qed_matches_plain_policy_under_faults(self):
        import json
        plain = self._chaos("power_aware")
        degenerate = self._chaos(QEDPolicy(hold_seconds=0.0))
        a, b = plain.to_dict(), degenerate.to_dict()
        a.pop("policy"), b.pop("policy")
        assert json.dumps(a, sort_keys=True) == \
            json.dumps(b, sort_keys=True)

    def test_single_step_pvc_matches_plain_policy_under_faults(self):
        import json
        plain = self._chaos("power_aware")
        unity = self._chaos(PVCPolicy(frequency_steps=(1.0,)))
        a, b = plain.to_dict(), unity.to_dict()
        a.pop("policy"), b.pop("policy")
        assert json.dumps(a, sort_keys=True) == \
            json.dumps(b, sort_keys=True)

    def test_base_policy_batching_hooks_are_inert(self):
        from repro.service.dispatch import DispatchPolicy
        base = DispatchPolicy()
        assert base.next_deadline() == float("inf")
        assert base.due(1e9) == []
        assert base.flush() == []
        with pytest.raises(ServiceError, match="offer"):
            base.offer(0, 0.0, 1.0, 0, None)


class TestDeprecationStacklevel:
    """The n_nodes=/model= shims must warn at the *caller's* frame —
    both on the direct path and through the faults delegation."""

    def test_direct_path_points_at_caller(self):
        stream = build_stream(300, seed=1)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always", DeprecationWarning)
            simulate_service(stream, n_nodes=2, policy="round_robin")
        [w] = [w for w in caught
               if issubclass(w.category, DeprecationWarning)]
        assert w.filename == __file__

    def test_faults_delegation_path_points_at_caller(self):
        from repro.faults.schedule import build_fault_schedule
        stream = build_stream(300, seed=1)
        schedule = build_fault_schedule(
            2, horizon_seconds=stream.duration_seconds, seed=0)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always", DeprecationWarning)
            simulate_service(stream, n_nodes=2, policy="round_robin",
                             faults=schedule)
        [w] = [w for w in caught
               if issubclass(w.category, DeprecationWarning)]
        assert w.filename == __file__
