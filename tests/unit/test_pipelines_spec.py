"""Unit tests: the pipeline DAG API validates, hashes, and round-trips.

The spec layer is pure declaration — everything here runs without a
fleet.  The hash-stability tests pin the contract the catalog and the
observatory depend on: ``pipeline_hash`` is a function of the
pipeline's *content*, never of dict key order or construction path.
"""

import json

import pytest

from repro.workloads.pipelines import (DatasetCatalog, DatasetVersion,
                                       EtlScheduler, PipelineError,
                                       PipelineSpec, Stage,
                                       default_pipeline)


def mini(**kwargs):
    defaults = dict(
        name="mini",
        stages=(
            Stage("pull", "extract", tasks=4, seconds_per_task=2.0),
            Stage("scrub", "clean", tasks=4, seconds_per_task=1.0,
                  inputs=("pull",)),
            Stage("publish", "load", tasks=1, seconds_per_task=1.0,
                  inputs=("scrub",), dataset="gold"),
        ),
        freshness_sla_seconds=600.0,
    )
    defaults.update(kwargs)
    return PipelineSpec(**defaults)


class TestStageValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(PipelineError, match="unknown kind"):
            Stage("x", "teleport", tasks=1, seconds_per_task=1.0)

    def test_nonpositive_tasks_rejected(self):
        with pytest.raises(PipelineError):
            Stage("x", "extract", tasks=0, seconds_per_task=1.0)

    def test_nonpositive_seconds_rejected(self):
        with pytest.raises(PipelineError):
            Stage("x", "extract", tasks=1, seconds_per_task=0.0)

    def test_duplicate_inputs_rejected(self):
        with pytest.raises(PipelineError, match="duplicate input"):
            Stage("x", "clean", tasks=1, seconds_per_task=1.0,
                  inputs=("a", "a"))

    def test_dataset_only_on_load(self):
        with pytest.raises(PipelineError, match="only load stages"):
            Stage("x", "extract", tasks=1, seconds_per_task=1.0,
                  dataset="gold")

    def test_load_defaults_dataset_to_stage_name(self):
        s = Stage("publish", "load", tasks=1, seconds_per_task=1.0)
        assert s.published_dataset == "publish"


class TestDagValidation:
    def test_self_cycle_rejected(self):
        with pytest.raises(PipelineError, match="cycle"):
            PipelineSpec("bad", (
                Stage("a", "extract", 1, 1.0, inputs=("a",)),), 10.0)

    def test_two_stage_cycle_rejected(self):
        with pytest.raises(PipelineError, match="cycle"):
            PipelineSpec("bad", (
                Stage("a", "clean", 1, 1.0, inputs=("b",)),
                Stage("b", "clean", 1, 1.0, inputs=("a",)),), 10.0)

    def test_dangling_input_rejected(self):
        with pytest.raises(PipelineError, match="undeclared input"):
            PipelineSpec("bad", (
                Stage("a", "clean", 1, 1.0, inputs=("ghost",)),), 10.0)

    def test_duplicate_stage_names_rejected(self):
        with pytest.raises(PipelineError, match="duplicate stage"):
            PipelineSpec("bad", (
                Stage("a", "extract", 1, 1.0),
                Stage("a", "extract", 1, 1.0),), 10.0)

    def test_empty_pipeline_rejected(self):
        with pytest.raises(PipelineError, match="at least one stage"):
            PipelineSpec("bad", (), 10.0)

    def test_nonpositive_freshness_rejected(self):
        with pytest.raises(PipelineError, match="freshness"):
            mini(freshness_sla_seconds=0.0)

    def test_topological_respects_dependencies(self):
        order = [s.name for s in default_pipeline().topological()]
        assert order.index("extract_orders") < order.index("clean_orders")
        assert order.index("clean_orders") < order.index("join_enrich")
        assert order.index("extract_customers") < order.index("join_enrich")
        assert order[-1] == "load_warehouse"

    def test_roots_and_sinks(self):
        p = default_pipeline()
        assert {s.name for s in p.roots()} == {"extract_orders",
                                               "extract_customers"}
        assert [s.name for s in p.sinks()] == ["load_warehouse"]


class TestHashStability:
    def test_hash_survives_dict_key_reordering(self):
        p = mini()
        payload = p.to_dict()
        # reverse key order at every level: the hash must not care
        reordered = json.loads(json.dumps(payload))
        reordered = {k: reordered[k] for k in sorted(reordered, reverse=True)}
        reordered["stages"] = [
            {k: s[k] for k in sorted(s, reverse=True)}
            for s in reordered["stages"]]
        q = PipelineSpec.from_dict(reordered)
        assert q.pipeline_hash == p.pipeline_hash

    def test_hash_roundtrips_through_json(self):
        p = default_pipeline()
        q = PipelineSpec.from_dict(json.loads(json.dumps(p.to_dict())))
        assert q == p
        assert q.pipeline_hash == p.pipeline_hash

    def test_hash_sees_content_changes(self):
        a = mini()
        b = mini(freshness_sla_seconds=601.0)
        c = mini(name="mini2")
        assert a.pipeline_hash != b.pipeline_hash
        assert a.pipeline_hash != c.pipeline_hash

    def test_hash_sees_stage_order(self):
        a = PipelineSpec("p", (
            Stage("a", "extract", 1, 1.0),
            Stage("b", "extract", 1, 1.0),), 10.0)
        b = PipelineSpec("p", (
            Stage("b", "extract", 1, 1.0),
            Stage("a", "extract", 1, 1.0),), 10.0)
        assert a.pipeline_hash != b.pipeline_hash


class TestSchedulerValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(PipelineError, match="unknown scheduling mode"):
            EtlScheduler(mode="procrastinate")

    def test_negative_knobs_rejected(self):
        with pytest.raises(PipelineError):
            EtlScheduler(ready_seconds=-1.0)
        with pytest.raises(PipelineError):
            EtlScheduler(offpeak_start_seconds=-1.0)
        with pytest.raises(PipelineError):
            EtlScheduler(slack_fraction=-0.1)
        with pytest.raises(PipelineError):
            EtlScheduler(queue_headroom_seconds=-1.0)
        with pytest.raises(PipelineError):
            EtlScheduler(consolidation_node_equivalents=0.0)

    def test_impossible_freshness_raises(self):
        from repro.service.spec import FleetSpec
        p = mini(freshness_sla_seconds=1.0)
        with pytest.raises(PipelineError, match="cannot meet"):
            EtlScheduler().plan(p, FleetSpec.homogeneous(4))


class TestCatalog:
    def entry(self, version="v1", at=10.0, fresh=True):
        return DatasetVersion(dataset="gold", version=version,
                              pipeline="mini", stage="publish",
                              produced_at_seconds=at, fresh=fresh,
                              tasks=1)

    def test_publish_and_latest(self):
        cat = DatasetCatalog()
        cat.publish(self.entry("v1", at=10.0))
        cat.publish(self.entry("v2", at=20.0))
        assert cat.latest("gold").version == "v2"
        assert [v.version for v in cat.versions("gold")] == ["v1", "v2"]

    def test_missing_dataset_raises(self):
        with pytest.raises(PipelineError, match="no dataset"):
            DatasetCatalog().latest("ghost")

    def test_roundtrip(self, tmp_path):
        cat = DatasetCatalog()
        cat.publish(self.entry())
        path = tmp_path / "catalog.json"
        cat.save(path)
        back = DatasetCatalog.load(path)
        assert back.to_dict() == cat.to_dict()
