"""Unit tests: flight-recorder context, SLO burn math, rollups,
exporters, and the CLI's loading/exit-code contracts.

Hand-built recordings pin the arithmetic exactly; the integration
suite (``tests/integration/test_flightrec.py``) covers real engine
runs and the energy-reconciliation acceptance bar.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.errors import ReproError
from repro.flightrec import FlightRecording, record
from repro.flightrec.context import current_recorder
from repro.flightrec.export import (write_events_csv, write_events_jsonl,
                                    write_queries_csv)
from repro.flightrec.rollup import (default_window_seconds, node_rollup,
                                    summarize, tenant_rollup,
                                    window_starts)
from repro.flightrec.slo import SLOMonitor

_MODEL = {
    "name": "t", "idle_watts": 50.0, "peak_watts": 150.0,
    "boot_seconds": 2.0, "boot_joules": 200.0,
    "drain_seconds": 1.0, "drain_joules": 30.0,
    "speed_factor": 1.0,
}


def _meta(n_nodes=1, tenants=None, end=40.0):
    if tenants is None:
        tenants = [{"name": "a", "rate_per_s": 1.0,
                    "sla_p95_seconds": 1.0}]
    return {
        "engine": "fleet", "policy": "test", "autoscaled": False,
        "nodes": [{"name": f"node-{i:02d}", "node_class": "node",
                   "initially_on": True, "model": dict(_MODEL)}
                  for i in range(n_nodes)],
        "tenants": tenants,
        "end": end,
        "report": {"energy_joules": None},
    }


def _recording(rows, meta=None, batches=None, events=None):
    """Build a recording from per-query row dicts (missing columns
    default to a solo completed execution)."""
    columns = {"arrival": [], "service": [], "tenant": [], "node": [],
               "start": [], "completion": [], "watts": [],
               "frequency": [], "state": [], "batch": [], "attempts": []}
    defaults = {"tenant": 0, "node": 0, "watts": None, "frequency": 1.0,
                "state": "done", "batch": None, "attempts": 1}
    for row in rows:
        for c in columns:
            if c in row:
                columns[c].append(row[c])
            elif c == "service":
                columns[c].append(row["completion"] - row["start"]
                                  if row.get("completion") is not None
                                  else 1.0)
            else:
                columns[c].append(defaults[c])
    empty_batches = {c: [] for c in
                     ("members", "first", "release_at",
                      "combined_seconds", "raw_seconds", "reason",
                      "node", "start", "completion", "watts",
                      "frequency")}
    return FlightRecording(
        meta=meta or _meta(),
        queries=columns,
        batches=batches or empty_batches,
        events=events or [])


class TestContext:
    def test_off_by_default(self):
        assert current_recorder() is None

    def test_record_installs_and_uninstalls(self):
        with record() as rec:
            assert current_recorder() is rec
        assert current_recorder() is None

    def test_recordings_do_not_nest(self):
        with record():
            with pytest.raises(ReproError, match="do not nest"):
                with record():
                    pass
        assert current_recorder() is None

    def test_uninstalled_on_exception(self):
        with pytest.raises(RuntimeError):
            with record():
                raise RuntimeError("boom")
        assert current_recorder() is None

    def test_finalize_without_run_raises(self):
        with record() as rec:
            pass
        assert not rec.has_run
        with pytest.raises(ReproError, match="no completed run"):
            rec.finalize()


class TestWindows:
    def test_window_starts_cover_the_run(self):
        assert window_starts(40.0, 10.0) == [0.0, 10.0, 20.0, 30.0]
        # an instant past the last boundary opens one more window
        assert len(window_starts(40.5, 10.0)) == 5

    def test_degenerate_run_gets_one_window(self):
        assert window_starts(0.0, 10.0) == [0.0]
        assert default_window_seconds(0.0) == 1.0

    def test_default_window_targets_sixty(self):
        assert default_window_seconds(600.0) == pytest.approx(10.0)


class TestSLOMonitor:
    def _burn_recording(self):
        rows = []
        # window [0, 10): four hits, no misses
        for k in range(4):
            rows.append({"arrival": 1.0 + k, "start": 1.0 + k,
                         "completion": 1.5 + k})
        # window [10, 20): four completions, two miss the 1.0s SLA
        for k in range(2):
            rows.append({"arrival": 11.0 + k, "start": 11.0 + k,
                         "completion": 11.5 + k})
        for k in range(2):
            rows.append({"arrival": 13.0 + k, "start": 13.0 + k,
                         "completion": 16.0 + k})
        # window [30, 40): a refused query burns at its arrival
        rows.append({"arrival": 35.0, "start": None, "completion": None,
                     "state": "rejected", "node": None})
        return _recording(rows)

    def test_burn_rate_arithmetic(self):
        monitor = SLOMonitor(self._burn_recording(),
                             window_seconds=10.0, error_budget=0.25)
        slo = monitor.tenants()[0]
        assert [w.burn for w in slo.windows] == [0.0, 2.0, 0.0, 4.0]
        assert slo.worst.burn == 4.0
        assert (slo.worst.start, slo.worst.end) == (30.0, 40.0)

    def test_breach_windows_are_maximal_runs(self):
        monitor = SLOMonitor(self._burn_recording(),
                             window_seconds=10.0, error_budget=0.25)
        slo = monitor.tenants()[0]
        assert slo.breach_windows == [(10.0, 20.0, 2.0),
                                      (30.0, 40.0, 4.0)]

    def test_refused_query_charges_arrival_window(self):
        monitor = SLOMonitor(self._burn_recording(),
                             window_seconds=10.0, error_budget=0.25)
        w = monitor.tenants()[0].windows[3]
        assert (w.completed, w.breached) == (1, 1)

    def test_tenant_without_sla_never_burns(self):
        rec = _recording(
            [{"arrival": 0.0, "start": 0.0, "completion": 50.0}],
            meta=_meta(tenants=[{"name": "free", "rate_per_s": 1.0,
                                 "sla_p95_seconds": None}]))
        monitor = SLOMonitor(rec, window_seconds=10.0)
        slo = monitor.tenants()[0]
        assert all(w.burn == 0.0 for w in slo.windows)
        assert not slo.breached and not monitor.any_breached

    def test_overall_breach_flag(self):
        rows = [{"arrival": float(k), "start": float(k),
                 "completion": k + 3.0} for k in range(20)]
        monitor = SLOMonitor(_recording(rows), window_seconds=10.0)
        slo = monitor.tenants()[0]
        assert slo.overall_p95 > 1.0
        assert slo.breached and monitor.any_breached

    def test_bad_parameters_raise(self):
        rec = _recording([])
        with pytest.raises(ReproError, match="window"):
            SLOMonitor(rec, window_seconds=0.0)
        with pytest.raises(ReproError, match="budget"):
            SLOMonitor(rec, error_budget=0.0)
        with pytest.raises(ReproError, match="budget"):
            SLOMonitor(rec, error_budget=2.0)

    def test_to_dict_round_trips_through_json(self):
        monitor = SLOMonitor(self._burn_recording(),
                             window_seconds=10.0, error_budget=0.25)
        data = json.loads(json.dumps(monitor.to_dict()))
        assert data["tenants"][0]["burn"] == [0.0, 2.0, 0.0, 4.0]
        assert data["tenants"][0]["breach_windows"][0]["start"] == 10.0


class TestRollups:
    def _one_node_recording(self):
        # one always-on node, one 10s execution at 150 W in [5, 15)
        return _recording([{"arrival": 5.0, "start": 5.0,
                            "completion": 15.0, "watts": 150.0}])

    def test_node_rollup_rebins_the_energy_audit(self):
        rec = self._one_node_recording()
        rollup = node_rollup(rec, window_seconds=10.0)
        total = sum(w * 10.0 for w in rollup["nodes"][0]["watts"])
        assert total == pytest.approx(rec.replayed_energy_joules(),
                                      rel=1e-12)

    def test_busy_fraction_splits_across_windows(self):
        rollup = node_rollup(self._one_node_recording(),
                             window_seconds=10.0)
        assert rollup["nodes"][0]["busy_fraction"] == \
            pytest.approx([0.5, 0.5, 0.0, 0.0])

    def test_fleet_watts_sums_nodes(self):
        rollup = node_rollup(self._one_node_recording(),
                             window_seconds=10.0)
        assert rollup["fleet_watts"] == \
            pytest.approx(rollup["nodes"][0]["watts"])

    def test_tenant_rollup_counts_and_energy(self):
        rec = self._one_node_recording()
        rollup = tenant_rollup(rec, window_seconds=10.0)
        tenant = rollup["tenants"][0]
        assert tenant["completed"] == [0, 1, 0, 0]
        # active energy only: (150 - 50) W x 10 s
        assert tenant["joules_per_query"][1] == pytest.approx(1000.0)
        assert tenant["p95"][1] == pytest.approx(10.0)

    def test_summarize_reports_zero_drift_on_consistent_books(self):
        rec = self._one_node_recording()
        rec.meta["report"]["energy_joules"] = \
            rec.replayed_energy_joules()
        summary = summarize(rec)
        assert summary["energy_relative_drift"] == pytest.approx(
            0.0, abs=1e-15)
        assert summary["states"] == {"done": 1}


class TestExporters:
    def _rec_with_events(self):
        from repro.flightrec.events import FleetEvent
        events = [FleetEvent(t=1.0, kind="scale", node=1,
                             data={"to": 3}),
                  FleetEvent(t=2.0, kind="drain", node=2),
                  FleetEvent(t=3.0, kind="scale", node=0,
                             data={"to": 2})]
        return _recording(
            [{"arrival": 0.0, "start": 0.0, "completion": 1.0}],
            events=events)

    def test_jsonl_one_line_per_event(self):
        buf = io.StringIO()
        n = write_events_jsonl(self._rec_with_events(), buf)
        lines = buf.getvalue().splitlines()
        assert n == len(lines) == 3
        assert json.loads(lines[0])["kind"] == "scale"

    def test_kind_filter(self):
        buf = io.StringIO()
        n = write_events_jsonl(self._rec_with_events(), buf, ["scale"])
        assert n == 2
        assert all(json.loads(line)["kind"] == "scale"
                   for line in buf.getvalue().splitlines())

    def test_events_csv_has_header_and_json_payload(self):
        buf = io.StringIO()
        n = write_events_csv(self._rec_with_events(), buf)
        lines = buf.getvalue().splitlines()
        assert n == 3 and len(lines) == 4
        assert lines[0] == "t,kind,node,tenant,query,data"
        assert '""to"": 3' in lines[1] or '"{""to"": 3}"' in lines[1]

    def test_queries_csv_row_per_arrival(self):
        buf = io.StringIO()
        n = write_queries_csv(self._rec_with_events(), buf)
        lines = buf.getvalue().splitlines()
        assert n == 1 and len(lines) == 2
        assert lines[0].startswith("query,arrival,service")


class TestCLI:
    def _write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload), encoding="utf-8")
        return str(path)

    def test_slo_exit_codes(self, tmp_path, capsys):
        from repro.flightrec.cli import main
        ok = _recording([{"arrival": 0.0, "start": 0.0,
                          "completion": 0.5}])
        bad = _recording([{"arrival": float(k), "start": float(k),
                           "completion": k + 3.0} for k in range(20)])
        assert main(["slo", self._write(tmp_path, "ok.json",
                                        ok.to_dict())]) == 0
        assert main(["slo", self._write(tmp_path, "bad.json",
                                        bad.to_dict())]) == 1
        out = capsys.readouterr().out
        assert "BREACHED" in out

    def test_unknown_event_kind_is_a_one_line_error(self, tmp_path,
                                                    capsys):
        from repro.flightrec.cli import main
        rec = _recording([{"arrival": 0.0, "start": 0.0,
                           "completion": 0.5}])
        path = self._write(tmp_path, "rec.json", rec.to_dict())
        assert main(["events", path, "--filter", "nonsense"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "nonsense" in err

    def test_missing_file_is_a_one_line_error(self, capsys):
        from repro.flightrec.cli import main
        assert main(["summarize", "/nonexistent/rec.json"]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_runner_result_without_recordings_errors(self, tmp_path,
                                                     capsys):
        from repro.flightrec.cli import main
        path = self._write(tmp_path, "run.json",
                           {"points": [{"index": 0}]})
        assert main(["summarize", path]) == 2
        assert "--record" in capsys.readouterr().err

    def test_point_selection(self, tmp_path):
        from repro.flightrec.cli import load_recording
        rec = _recording([{"arrival": 0.0, "start": 0.0,
                           "completion": 0.5}])
        path = self._write(tmp_path, "multi.json", {"points": [
            {"index": 0, "flightrec": rec.to_dict()},
            {"index": 1, "flightrec": rec.to_dict()},
        ]})
        assert load_recording(path, point=1).n_queries == 1
        with pytest.raises(ReproError, match="pick one with --point"):
            load_recording(path)

    def test_events_limit(self, tmp_path, capsys):
        from repro.flightrec.cli import main
        rec = _recording([{"arrival": float(k), "start": float(k),
                           "completion": k + 0.5} for k in range(5)])
        path = self._write(tmp_path, "rec.json", rec.to_dict())
        assert main(["events", path, "--queries", "--limit", "2"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 3  # header + 2 rows


class TestShardGuard:
    def test_run_guarded_maps_repro_errors(self, capsys):
        from repro.cli import run_guarded

        def boom() -> int:
            raise ReproError("knob out of range")

        assert run_guarded(boom) == 2
        assert capsys.readouterr().err == "error: knob out of range\n"

    def test_run_guarded_passes_through_return_code(self):
        from repro.cli import run_guarded
        assert run_guarded(lambda: 7) == 7
