"""Unit tests for expression trees."""

import pytest

from repro.errors import ExpressionError
from repro.relational.expr import (
    Between,
    BoolOp,
    InList,
    Like,
    Literal,
    col,
    make_layout,
)

LAYOUT = make_layout(["a", "b", "s"])
ROW = (10, 3.5, "shipped")


def test_column_ref():
    assert col("a").evaluate(ROW, LAYOUT) == 10


def test_unknown_column_raises():
    with pytest.raises(ExpressionError):
        col("ghost").evaluate(ROW, LAYOUT)


def test_literal():
    assert Literal(42).evaluate(ROW, LAYOUT) == 42


def test_comparisons():
    assert (col("a") == 10).evaluate(ROW, LAYOUT) is True
    assert (col("a") != 10).evaluate(ROW, LAYOUT) is False
    assert (col("a") < 11).evaluate(ROW, LAYOUT) is True
    assert (col("a") >= 10).evaluate(ROW, LAYOUT) is True
    assert (col("b") > 4).evaluate(ROW, LAYOUT) is False


def test_comparison_null_propagates():
    layout = make_layout(["x"])
    assert (col("x") == 1).evaluate((None,), layout) is None


def test_arithmetic():
    expr = (col("a") + 5) * col("b")
    assert expr.evaluate(ROW, LAYOUT) == pytest.approx(52.5)


def test_division_by_zero_raises():
    with pytest.raises(ExpressionError):
        (col("a") / Literal(0)).evaluate(ROW, LAYOUT)


def test_arithmetic_null_propagates():
    layout = make_layout(["x"])
    assert (col("x") + 1).evaluate((None,), layout) is None


def test_bool_and_or_not():
    t = col("a") == 10
    f = col("a") == 99
    assert (t & f).evaluate(ROW, LAYOUT) is False
    assert (t | f).evaluate(ROW, LAYOUT) is True
    assert (~t).evaluate(ROW, LAYOUT) is False


def test_three_valued_logic():
    layout = make_layout(["x"])
    null_cmp = col("x") == 1
    # NULL AND FALSE = FALSE; NULL OR TRUE = TRUE; NULL AND TRUE = NULL
    assert BoolOp("and", [null_cmp, Literal(False)]).evaluate(
        (None,), layout) is False
    assert BoolOp("or", [null_cmp, Literal(True)]).evaluate(
        (None,), layout) is True
    assert BoolOp("and", [null_cmp, Literal(True)]).evaluate(
        (None,), layout) is None
    assert (~null_cmp).evaluate((None,), layout) is None


def test_between():
    assert Between(col("a"), 5, 15).evaluate(ROW, LAYOUT) is True
    assert Between(col("a"), 11, 15).evaluate(ROW, LAYOUT) is False


def test_in_list():
    assert InList(col("s"), ["shipped", "pending"]).evaluate(
        ROW, LAYOUT) is True
    assert InList(col("a"), [1, 2]).evaluate(ROW, LAYOUT) is False
    with pytest.raises(ExpressionError):
        InList(col("a"), [])


def test_like_shapes():
    assert Like(col("s"), "ship%").evaluate(ROW, LAYOUT) is True
    assert Like(col("s"), "%pped").evaluate(ROW, LAYOUT) is True
    assert Like(col("s"), "%hip%").evaluate(ROW, LAYOUT) is True
    assert Like(col("s"), "shipped").evaluate(ROW, LAYOUT) is True
    assert Like(col("s"), "pend%").evaluate(ROW, LAYOUT) is False
    with pytest.raises(ExpressionError):
        Like(col("s"), "a%b")


def test_columns_collected():
    expr = (col("a") + col("b")) > Literal(1)
    assert expr.columns() == {"a", "b"}


def test_cycles_positive_and_compositional():
    simple = col("a") == 1
    compound = simple & (col("b") > 2) & (col("s") == Literal("x"))
    assert 0 < simple.cycles() < compound.cycles()


def test_expr_not_truthy():
    with pytest.raises(ExpressionError):
        bool(col("a") == 1)


def test_make_layout_rejects_duplicates():
    with pytest.raises(ExpressionError):
        make_layout(["a", "a"])
