"""Unit tests for statistics and selectivity estimation."""

import pytest

from repro.hardware.raid import RaidArray
from repro.hardware.ssd import FlashSsd, SsdSpec
from repro.relational.expr import Between, InList, Literal, col
from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType
from repro.optimizer.stats import (
    analyze_table,
    estimate_selectivity,
)
from repro.sim import Simulation
from repro.storage.manager import StorageManager
from repro.units import MB


@pytest.fixture
def table():
    sim = Simulation()
    ssd = FlashSsd(sim, SsdSpec(name="s", capacity_bytes=1000 * MB))
    array = RaidArray(sim, [ssd])
    storage = StorageManager(sim)
    t = storage.create_table(
        TableSchema("t", [
            Column("k", DataType.INT64, nullable=False),
            Column("grp", DataType.INT64, nullable=False),
            Column("name", DataType.VARCHAR),
        ]), layout="row", placement=array)
    rows = []
    for i in range(1000):
        rows.append((i, i % 10, f"n{i % 50}" if i % 100 else None))
    t.load(rows)
    return t


def test_row_count_and_bytes(table):
    stats = analyze_table(table)
    assert stats.row_count == 1000
    assert stats.scan_bytes > 0
    assert stats.plain_bytes > 0
    assert stats.average_row_bytes > 0


def test_ndv_exact_on_small_tables(table):
    stats = analyze_table(table)
    assert stats.columns["k"].ndv == 1000
    assert stats.columns["grp"].ndv == 10


def test_min_max(table):
    stats = analyze_table(table)
    assert stats.columns["k"].min_value == 0
    assert stats.columns["k"].max_value == 999


def test_null_fraction(table):
    stats = analyze_table(table)
    assert stats.columns["name"].null_fraction == pytest.approx(0.01)


def test_histogram_is_equi_depth(table):
    stats = analyze_table(table, histogram_buckets=10)
    hist = stats.columns["k"].histogram
    assert len(hist) == 10
    assert hist[-1] == 999
    # bucket bounds roughly every 100 values
    assert hist[0] == pytest.approx(99, abs=2)


def test_equality_selectivity(table):
    stats = analyze_table(table)
    sel = estimate_selectivity(col("grp") == 3, stats)
    assert sel == pytest.approx(0.1)


def test_range_selectivity(table):
    stats = analyze_table(table, histogram_buckets=16)
    sel = estimate_selectivity(col("k") < 250, stats)
    assert sel == pytest.approx(0.25, abs=0.08)
    sel = estimate_selectivity(col("k") >= 900, stats)
    assert sel == pytest.approx(0.1, abs=0.08)


def test_reversed_comparison(table):
    stats = analyze_table(table)
    sel = estimate_selectivity(Literal(250) > col("k"), stats)
    assert sel == pytest.approx(0.25, abs=0.08)


def test_between_selectivity(table):
    stats = analyze_table(table)
    sel = estimate_selectivity(Between(col("k"), 100, 299), stats)
    assert sel == pytest.approx(0.2, abs=0.1)


def test_in_list_selectivity(table):
    stats = analyze_table(table)
    sel = estimate_selectivity(InList(col("grp"), [1, 2, 3]), stats)
    assert sel == pytest.approx(0.3)


def test_and_multiplies(table):
    stats = analyze_table(table)
    sel = estimate_selectivity((col("grp") == 3) & (col("k") < 500), stats)
    assert sel == pytest.approx(0.05, abs=0.02)


def test_or_inclusion_exclusion(table):
    stats = analyze_table(table)
    sel = estimate_selectivity((col("grp") == 3) | (col("grp") == 4), stats)
    assert sel == pytest.approx(0.19, abs=0.02)


def test_not(table):
    stats = analyze_table(table)
    sel = estimate_selectivity(~(col("grp") == 3), stats)
    assert sel == pytest.approx(0.9, abs=0.02)


def test_none_predicate_is_one(table):
    stats = analyze_table(table)
    assert estimate_selectivity(None, stats) == 1.0


def test_unknown_column_uses_default(table):
    stats = analyze_table(table)
    sel = estimate_selectivity(col("ghost") < 5, stats)
    assert 0.0 < sel < 1.0


def test_selectivity_clamped(table):
    stats = analyze_table(table)
    pred = (col("k") < 2000) & (col("k") < 2000)
    assert estimate_selectivity(pred, stats) <= 1.0
