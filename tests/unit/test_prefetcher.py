"""Unit tests for the burst prefetcher ([PS04], §4.2)."""

import pytest

from repro.errors import StorageError
from repro.hardware.disk import DiskSpec, HardDisk
from repro.hardware.memory import Dram, DramSpec
from repro.sim import Simulation
from repro.storage.prefetcher import BurstPrefetcher, trickle_stream
from repro.units import GIB, MB


def make_disk(sim):
    return HardDisk(sim, DiskSpec(
        name="d0", capacity_bytes=100_000 * MB,
        bandwidth_bytes_per_s=100 * MB,
        average_seek_seconds=0.004, rpm=15000,
        per_request_overhead_seconds=0.0,
        active_watts=17.0, idle_watts=12.0, standby_watts=2.0,
        spinup_seconds=6.0, spinup_joules=90.0,
        spindown_seconds=1.5, spindown_joules=6.0))


def test_idle_period_arithmetic():
    sim = Simulation()
    prefetcher = BurstPrefetcher(sim, make_disk(sim),
                                 buffer_bytes=600 * MB,
                                 consume_rate_bytes_per_s=10 * MB)
    # drain 60 s - fill 6 s = 54 s of idle per burst
    assert prefetcher.idle_period_seconds() == pytest.approx(54.0)
    assert prefetcher.spin_down_pays_off()


def test_small_buffer_does_not_pay_off():
    sim = Simulation()
    prefetcher = BurstPrefetcher(sim, make_disk(sim),
                                 buffer_bytes=20 * MB,
                                 consume_rate_bytes_per_s=10 * MB)
    assert not prefetcher.spin_down_pays_off()


def test_recommended_buffer_clears_breakeven():
    sim = Simulation()
    prefetcher = BurstPrefetcher(sim, make_disk(sim),
                                 buffer_bytes=1 * MB,
                                 consume_rate_bytes_per_s=10 * MB)
    recommended = prefetcher.recommended_buffer_bytes()
    tuned = BurstPrefetcher(sim, make_disk(sim),
                            buffer_bytes=recommended,
                            consume_rate_bytes_per_s=10 * MB)
    assert tuned.spin_down_pays_off()


def test_recommendation_impossible_for_fast_consumer():
    sim = Simulation()
    prefetcher = BurstPrefetcher(sim, make_disk(sim),
                                 buffer_bytes=1 * MB,
                                 consume_rate_bytes_per_s=200 * MB)
    with pytest.raises(StorageError):
        prefetcher.recommended_buffer_bytes()


def test_stream_delivers_all_bytes_and_spins_down():
    sim = Simulation()
    disk = make_disk(sim)
    prefetcher = BurstPrefetcher(sim, disk, buffer_bytes=600 * MB,
                                 consume_rate_bytes_per_s=10 * MB)
    sim.run(until=sim.spawn(prefetcher.stream(1800 * MB)))
    assert prefetcher.stats.bytes_streamed == 1800 * MB
    assert prefetcher.stats.bursts == 3
    assert prefetcher.stats.spin_downs == 2  # not after the final burst
    assert disk.bytes_read == 1800 * MB


def test_burst_saves_energy_vs_trickle():
    def run_trickle():
        sim = Simulation()
        disk = make_disk(sim)
        sim.run(until=sim.spawn(trickle_stream(
            sim, disk, 1800 * MB, consume_rate_bytes_per_s=10 * MB)))
        return disk.energy_joules(), sim.now

    def run_burst():
        sim = Simulation()
        disk = make_disk(sim)
        prefetcher = BurstPrefetcher(sim, disk, buffer_bytes=600 * MB,
                                     consume_rate_bytes_per_s=10 * MB)
        sim.run(until=sim.spawn(prefetcher.stream(1800 * MB)))
        return disk.energy_joules(), sim.now

    trickle_energy, trickle_time = run_trickle()
    burst_energy, burst_time = run_burst()
    # similar wall time (the consumer rate dominates both)...
    assert burst_time == pytest.approx(trickle_time, rel=0.1)
    # ...but the bursty disk sleeps through much of it (the tail burst
    # drains with the disk awake, so savings cap out around 40 %)
    assert burst_energy < 0.7 * trickle_energy


def test_buffer_charged_to_dram():
    sim = Simulation()
    disk = make_disk(sim)
    dram = Dram(sim, DramSpec(capacity_bytes=2 * GIB,
                              rank_bytes=1 * GIB))
    prefetcher = BurstPrefetcher(sim, disk, buffer_bytes=600 * MB,
                                 consume_rate_bytes_per_s=10 * MB,
                                 dram=dram)
    power_before = dram.power_watts

    def observe():
        yield sim.timeout(1.0)
        assert dram.allocated_bytes == 600 * MB
        assert dram.power_watts > power_before

    sim.spawn(prefetcher.stream(1200 * MB))
    sim.spawn(observe())
    sim.run()
    assert dram.allocated_bytes == 0  # released at the end


def test_validation():
    sim = Simulation()
    disk = make_disk(sim)
    with pytest.raises(StorageError):
        BurstPrefetcher(sim, disk, buffer_bytes=0,
                        consume_rate_bytes_per_s=1.0)
    with pytest.raises(StorageError):
        BurstPrefetcher(sim, disk, buffer_bytes=1.0,
                        consume_rate_bytes_per_s=0.0)
