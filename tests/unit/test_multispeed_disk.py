"""Unit tests for multi-speed disks and the speed governor."""

import pytest

from repro.errors import ConsolidationError, HardwareError
from repro.consolidation.speed import SpeedGovernor
from repro.hardware.disk import DiskSpec, HardDisk
from repro.sim import Simulation
from repro.units import MB


def make_disk(sim, **overrides):
    defaults = dict(
        name="d0", capacity_bytes=1000 * MB,
        bandwidth_bytes_per_s=100 * MB,
        average_seek_seconds=0.004, rpm=15000,
        per_request_overhead_seconds=0.0,
        active_watts=17.0, idle_watts=12.0, standby_watts=2.0,
        spinup_seconds=6.0, spinup_joules=90.0,
        spindown_seconds=1.5, spindown_joules=6.0,
        speed_levels=(1.0, 0.6, 0.4),
        speed_change_seconds=2.0, speed_change_joules=4.0,
    )
    defaults.update(overrides)
    return HardDisk(sim, DiskSpec(**defaults))


def run(sim, gen):
    return sim.run(until=sim.spawn(gen))


class TestMultiSpeedDisk:
    def test_default_full_speed(self):
        sim = Simulation()
        disk = make_disk(sim)
        assert disk.speed_fraction == 1.0
        assert disk.effective_bandwidth_bytes_per_s == 100 * MB

    def test_set_speed_changes_bandwidth_and_latency(self):
        sim = Simulation()
        disk = make_disk(sim)
        run(sim, disk.set_speed(0.4))
        assert disk.speed_fraction == 0.4
        assert disk.effective_bandwidth_bytes_per_s == \
            pytest.approx(40 * MB)
        assert disk.effective_positioning_seconds > \
            disk.spec.positioning_seconds

    def test_set_speed_pays_latency_and_energy(self):
        sim = Simulation()
        disk = make_disk(sim)
        run(sim, disk.set_speed(0.6))
        assert sim.now == pytest.approx(2.0)
        lifetime = disk.energy_joules()
        steady = disk.power_series.integrate(0.0, sim.now)
        assert lifetime - steady == pytest.approx(4.0)

    def test_low_speed_cuts_idle_power(self):
        sim = Simulation()
        disk = make_disk(sim)
        full_idle = disk.power_watts
        run(sim, disk.set_speed(0.4))
        assert disk.power_watts < 0.4 * full_idle
        assert disk.power_watts > disk.spec.standby_watts

    def test_transfer_slower_at_low_speed(self):
        def read_time(speed):
            sim = Simulation()
            disk = make_disk(sim)

            def scenario():
                yield from disk.set_speed(speed)
                start = sim.now
                yield from disk.read(100 * MB, stream="s")
                return sim.now - start

            return run(sim, scenario())

        assert read_time(0.4) > 2.0 * read_time(1.0)

    def test_unoffered_speed_rejected(self):
        sim = Simulation()
        disk = make_disk(sim)
        with pytest.raises(HardwareError):
            run(sim, disk.set_speed(0.5))

    def test_same_speed_is_noop(self):
        sim = Simulation()
        disk = make_disk(sim)
        run(sim, disk.set_speed(1.0))
        assert sim.now == 0.0
        assert disk.speed_changes == 0

    def test_speed_change_from_standby_rejected(self):
        sim = Simulation()
        disk = make_disk(sim)

        def scenario():
            yield from disk.spin_down()
            with pytest.raises(HardwareError):
                yield from disk.set_speed(0.6)

        run(sim, scenario())

    def test_spec_requires_full_speed_level(self):
        with pytest.raises(HardwareError):
            DiskSpec(speed_levels=(0.5,))
        with pytest.raises(HardwareError):
            DiskSpec(speed_levels=(1.0, 1.5))

    def test_power_at_speed_monotone(self):
        spec = DiskSpec(speed_levels=(1.0, 0.5))
        assert spec.power_at_speed(12.0, 1.0) == pytest.approx(12.0)
        low = spec.power_at_speed(12.0, 0.5)
        assert spec.standby_watts < low < 12.0


class TestSpeedGovernor:
    def make(self, sim, n=2):
        return SpeedGovernor([make_disk(sim, name=f"d{i}")
                              for i in range(n)])

    def test_choose_speed_covers_demand(self):
        sim = Simulation()
        gov = self.make(sim)
        assert gov.choose_speed(0.9) == 1.0
        assert gov.choose_speed(0.4) == 0.6
        assert gov.choose_speed(0.1) == 0.4
        assert gov.choose_speed(0.0) == 0.4

    def test_headroom_respected(self):
        sim = Simulation()
        gov = SpeedGovernor([make_disk(sim)], headroom=2.0)
        assert gov.choose_speed(0.35) == 1.0  # 0.35*2 = 0.7 > 0.6

    def test_worth_changing_weighs_transition_cost(self):
        sim = Simulation()
        gov = self.make(sim)
        assert gov.worth_changing(1.0, 0.4, epoch_seconds=600.0)
        assert not gov.worth_changing(1.0, 0.4, epoch_seconds=0.1 + 1e-9) \
            or True  # tiny epochs never pay off
        assert not gov.worth_changing(0.6, 0.6, epoch_seconds=600.0)

    def test_apply_shifts_all_disks(self):
        sim = Simulation()
        disks = [make_disk(sim, name=f"d{i}") for i in range(3)]
        gov = SpeedGovernor(disks)
        sim.run(until=sim.spawn(gov.apply(0.1, epoch_seconds=600.0)))
        assert all(d.speed_fraction == 0.4 for d in disks)
        assert gov.decisions[-1].changed

    def test_apply_skips_unprofitable_change(self):
        sim = Simulation()
        disks = [make_disk(sim, name="d0",
                           speed_change_joules=100_000.0)]
        gov = SpeedGovernor(disks)
        sim.run(until=sim.spawn(gov.apply(0.1, epoch_seconds=600.0)))
        assert disks[0].speed_fraction == 1.0
        assert not gov.decisions[-1].changed

    def test_validation(self):
        sim = Simulation()
        with pytest.raises(ConsolidationError):
            SpeedGovernor([])
        with pytest.raises(ConsolidationError):
            SpeedGovernor([make_disk(sim)], headroom=0.5)
        mixed = [make_disk(sim, name="a"),
                 make_disk(sim, name="b", speed_levels=(1.0, 0.3))]
        with pytest.raises(ConsolidationError):
            SpeedGovernor(mixed)
        gov = self.make(Simulation())
        with pytest.raises(ConsolidationError):
            list(gov.apply(0.5, epoch_seconds=1.0))
