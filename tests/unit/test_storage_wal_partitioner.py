"""Unit tests for the WAL (group commit) and the partitioner."""

import pytest

from repro.errors import ConsolidationError, WalError
from repro.hardware.ssd import FlashSsd, SsdSpec
from repro.sim import Simulation
from repro.storage.partitioner import (
    DeviceSlot,
    Partition,
    Partitioner,
)
from repro.storage.wal import (
    FLUSH_OVERHEAD_BYTES,
    RECORD_OVERHEAD_BYTES,
    WriteAheadLog,
)
from repro.units import MB


def make_log_device(sim, bw=100 * MB):
    return FlashSsd(sim, SsdSpec(
        name="log", capacity_bytes=1000 * MB,
        read_bandwidth_bytes_per_s=bw, write_bandwidth_bytes_per_s=bw,
        per_request_latency_seconds=0.0,
        read_watts=2.0, write_watts=2.0, idle_watts=0.0))


class TestWal:
    def test_single_append_commits(self):
        sim = Simulation()
        device = make_log_device(sim)
        wal = WriteAheadLog(sim, device)

        def txn():
            yield wal.append(100)
            return sim.now

        committed_at = sim.run(until=sim.spawn(txn()))
        assert committed_at > 0
        assert wal.stats.flushes == 1
        assert wal.stats.bytes_flushed == \
            FLUSH_OVERHEAD_BYTES + 100 + RECORD_OVERHEAD_BYTES

    def test_batching_reduces_flushes(self):
        def run_with_batch(batch):
            sim = Simulation()
            device = make_log_device(sim)
            wal = WriteAheadLog(sim, device, batch_records=batch,
                                batch_timeout_seconds=0.01)

            def txn():
                yield wal.append(100)

            for _ in range(20):
                sim.spawn(txn())
            sim.run()
            return wal.stats

        eager = run_with_batch(1)
        batched = run_with_batch(10)
        assert batched.flushes < eager.flushes
        assert batched.bytes_flushed < eager.bytes_flushed

    def test_batching_increases_latency(self):
        sim = Simulation()
        device = make_log_device(sim)
        wal = WriteAheadLog(sim, device, batch_records=100,
                            batch_timeout_seconds=0.5)

        def txn():
            yield wal.append(10)

        sim.spawn(txn())
        sim.run()
        # lone record waits out the batch window
        assert wal.stats.mean_commit_latency >= 0.5

    def test_full_batch_flushes_before_timeout(self):
        sim = Simulation()
        device = make_log_device(sim)
        wal = WriteAheadLog(sim, device, batch_records=3,
                            batch_timeout_seconds=100.0)

        def txn():
            yield wal.append(10)

        for _ in range(3):
            sim.spawn(txn())
        sim.run()
        assert wal.stats.flushes == 1
        assert sim.now < 1.0

    def test_records_per_flush(self):
        sim = Simulation()
        device = make_log_device(sim)
        wal = WriteAheadLog(sim, device, batch_records=5,
                            batch_timeout_seconds=1.0)

        def txn():
            yield wal.append(10)

        for _ in range(10):
            sim.spawn(txn())
        sim.run()
        assert wal.stats.records_per_flush == pytest.approx(5.0)

    def test_closed_log_rejects_appends(self):
        sim = Simulation()
        wal = WriteAheadLog(sim, make_log_device(sim))
        wal.close()
        with pytest.raises(WalError):
            wal.append(10)

    def test_negative_size_rejected(self):
        sim = Simulation()
        wal = WriteAheadLog(sim, make_log_device(sim))
        with pytest.raises(WalError):
            wal.append(-1)

    def test_bad_config_rejected(self):
        sim = Simulation()
        with pytest.raises(WalError):
            WriteAheadLog(sim, make_log_device(sim), batch_records=0)


def make_devices(n=4, capacity=1000 * MB, bw=100 * MB):
    return [DeviceSlot(name=f"d{i}", capacity_bytes=capacity,
                       bandwidth_bytes_per_s=bw,
                       idle_watts=12.0, active_watts=17.0)
            for i in range(n)]


class TestPartitioner:
    def test_stripe_even_split(self):
        p = Partitioner(make_devices(4))
        shares = p.stripe(400 * MB, width=4)
        assert all(v == 100 * MB for v in shares.values())

    def test_stripe_remainder_distributed(self):
        p = Partitioner(make_devices(3))
        shares = p.stripe(10, width=3)
        assert sorted(shares.values()) == [3, 3, 4]

    def test_stripe_capacity_enforced(self):
        p = Partitioner(make_devices(2, capacity=10))
        with pytest.raises(ConsolidationError):
            p.stripe(100, width=1)

    def test_repartition_plan_costs(self):
        p = Partitioner(make_devices(4))
        plan = p.plan_repartition(400 * MB, old_width=4, new_width=2)
        assert plan.bytes_moved == 400 * MB
        # bottleneck is the 2-device write side: 400/200 = 2 s
        assert plan.estimated_seconds == pytest.approx(2.0)
        # 6 devices active at 17 W for 2 s
        assert plan.estimated_joules == pytest.approx(6 * 17.0 * 2.0)

    def test_repartition_same_width_is_free(self):
        p = Partitioner(make_devices(4))
        plan = p.plan_repartition(400 * MB, 3, 3)
        assert plan.bytes_moved == 0
        assert plan.estimated_joules == 0.0

    def test_consolidation_packs_onto_fewer_devices(self):
        p = Partitioner(make_devices(4, capacity=1000 * MB))
        parts = [Partition(f"p{i}", 200 * MB, read_bytes_per_s=1 * MB)
                 for i in range(4)]
        current = {f"p{i}": f"d{i}" for i in range(4)}
        plan = p.plan_consolidation(parts, current)
        assert len(plan.devices_kept) == 1
        assert len(plan.devices_released) == 3
        assert plan.idle_savings_watts == pytest.approx(36.0)

    def test_consolidation_respects_bandwidth_headroom(self):
        p = Partitioner(make_devices(4, bw=100 * MB))
        parts = [Partition(f"p{i}", 10 * MB, read_bytes_per_s=40 * MB)
                 for i in range(4)]
        current = {f"p{i}": f"d{i}" for i in range(4)}
        plan = p.plan_consolidation(parts, current, bandwidth_headroom=0.5)
        # 50 MB/s headroom per device -> only one 40 MB/s partition each
        assert len(plan.devices_kept) == 4

    def test_consolidation_breakeven(self):
        p = Partitioner(make_devices(2))
        parts = [Partition("hot", 100 * MB, read_bytes_per_s=1 * MB),
                 Partition("cold", 100 * MB, read_bytes_per_s=0.0)]
        current = {"hot": "d0", "cold": "d1"}
        plan = p.plan_consolidation(parts, current)
        assert len(plan.devices_released) == 1
        assert plan.migration_joules > 0
        assert 0 < plan.breakeven_seconds() < float("inf")

    def test_consolidation_no_move_when_already_packed(self):
        p = Partitioner(make_devices(2))
        parts = [Partition("a", 10 * MB), Partition("b", 10 * MB)]
        current = {"a": "d0", "b": "d0"}
        plan = p.plan_consolidation(parts, current)
        assert plan.moves == []
        assert plan.migration_joules == 0.0
        assert plan.breakeven_seconds() == 0.0 or \
            plan.idle_savings_watts > 0

    def test_partition_too_big_rejected(self):
        p = Partitioner(make_devices(2, capacity=10 * MB))
        parts = [Partition("huge", 100 * MB)]
        with pytest.raises(ConsolidationError):
            p.plan_consolidation(parts, {"huge": "d0"})

    def test_unknown_placement_rejected(self):
        p = Partitioner(make_devices(2))
        with pytest.raises(ConsolidationError):
            p.plan_consolidation([Partition("a", 1)], {"a": "ghost"})
