"""Unit tests: the self-contained HTML dashboard and its SVG pieces."""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.observatory import BenchRecord, HistoryStore, render_dashboard
from repro.observatory.dashboard import (
    frontier_svg,
    sparkline_svg,
    timeline_svg,
)
from repro.observatory.regression import compare_store


def _store_with_history(tmp_path, runs=3):
    store = HistoryStore(tmp_path)
    for i in range(runs):
        store.append(BenchRecord(
            suite="core", benchmark="fig2", point="compressed=True",
            metrics={"joules": 487.0 + i, "sim_seconds": 5.5,
                     "records_per_second": 4.4e8,
                     "records_per_second_per_watt": 5.0e6},
            counters={"buffer.hits": 1.0},
            git_sha="abc1234",
            recorded_at=f"2026-08-0{i+1}T00:00:00+00:00",
            timelines=[
                {"name": "cpu", "times": [0.0, 2.0, 5.5],
                 "watts": [30.0, 90.0, 30.0]},
                {"name": "ssd0", "times": [0.0, 5.5],
                 "watts": [1.6, 0.05]},
            ]))
    return store


class TestSvgPieces:
    def test_sparkline_is_wellformed_svg(self):
        svg = sparkline_svg([1.0, 2.0, 1.5])
        root = ET.fromstring(svg)
        assert root.tag == "svg"
        assert root.find("polyline") is not None

    def test_sparkline_single_value(self):
        assert "<svg" in sparkline_svg([3.0])
        assert sparkline_svg([]) == ""

    def test_sparkline_flat_series_stays_in_bounds(self):
        svg = sparkline_svg([5.0, 5.0, 5.0])
        assert "nan" not in svg and "inf" not in svg

    def test_timeline_one_polyline_per_device(self):
        svg = timeline_svg([
            {"name": "cpu", "times": [0.0, 1.0], "watts": [30.0, 90.0]},
            {"name": "ssd", "times": [0.0, 1.0], "watts": [1.0, 2.0]}])
        root = ET.fromstring(svg)
        assert len(root.findall("polyline")) == 2
        assert svg.count("cpu") >= 1 and svg.count("ssd") >= 1

    def test_timeline_empty(self):
        assert timeline_svg([]) == ""
        assert timeline_svg([{"name": "x", "times": [],
                              "watts": []}]) == ""

    def test_frontier_labels_every_point(self):
        svg = frontier_svg([("a", 100.0, 10.0), ("b", 200.0, 20.0)])
        root = ET.fromstring(svg)
        assert len(root.findall("circle")) == 2
        texts = [t.text for t in root.iter("text")]
        assert "a" in texts and "b" in texts

    def test_frontier_drops_degenerate_points(self):
        assert frontier_svg([("a", 0.0, 10.0)]) == ""


class TestDashboard:
    def test_self_contained_with_sparkline_and_timeline(self, tmp_path):
        store = _store_with_history(tmp_path)
        html = render_dashboard(store)
        assert html.startswith("<!DOCTYPE html>")
        # self-contained: no external fetches of any kind
        assert "http://" not in html and "https://" not in html
        assert "<script" not in html
        # one sparkline card for the recorded suite
        assert "Suite: core" in html
        assert "<polyline" in html
        # the traced record's device power timeline made it in
        assert "Device power" in html
        assert "cpu" in html and "ssd0" in html
        # frontier chart present (records_per_second + joules exist)
        assert "frontier" in html

    def test_regression_report_renders(self, tmp_path):
        store = _store_with_history(tmp_path)
        store.append(BenchRecord(
            suite="core", benchmark="fig2", point="compressed=True",
            metrics={"joules": 600.0, "sim_seconds": 5.5,
                     "records_per_second": 4.4e8,
                     "records_per_second_per_watt": 4.0e6},
            counters={"buffer.hits": 1.0}))
        report = compare_store(store)
        html = render_dashboard(store, report=report)
        assert "Regression verdicts" in html
        assert "verdict-regression" in html

    def test_empty_store_renders_hint(self, tmp_path):
        html = render_dashboard(HistoryStore(tmp_path))
        assert "No history recorded" in html

    def test_labels_are_escaped(self, tmp_path):
        store = HistoryStore(tmp_path)
        store.append(BenchRecord(
            suite="core", benchmark="<script>alert(1)</script>",
            point="p", metrics={"joules": 1.0, "sim_seconds": 1.0}))
        html = render_dashboard(store)
        assert "<script>alert" not in html
        assert "&lt;script&gt;" in html

    def test_dark_mode_palette_present(self, tmp_path):
        html = render_dashboard(_store_with_history(tmp_path))
        assert "prefers-color-scheme: dark" in html
        assert "--s1:" in html


class TestSuiteAutoDiscovery:
    """Every recorded BENCH_*.json suite renders a trend card without
    per-suite wiring, whatever metrics it happens to carry."""

    def test_every_recorded_suite_gets_a_section(self, tmp_path):
        store = _store_with_history(tmp_path)
        for suite in ("serving", "flightrec"):
            store.append(BenchRecord(
                suite=suite, benchmark="svc_smoke", point="defaults",
                metrics={"joules": 100.0, "sim_seconds": 2.0}))
        html = render_dashboard(store)
        for suite in ("core", "serving", "flightrec"):
            assert f"Suite: {suite}" in html

    def test_suite_without_preferred_metric_still_trends(self, tmp_path):
        store = HistoryStore(tmp_path)
        for i in range(3):
            store.append(BenchRecord(
                suite="latency", benchmark="svc_pvc_qed",
                point="config=pvc_qed",
                metrics={"p95_seconds": 1.5 + 0.1 * i},
                recorded_at=f"2026-08-0{i+1}T00:00:00+00:00"))
        html = render_dashboard(store)
        assert "Suite: latency" in html
        assert "<polyline" in html
        assert "p95_seconds" in html

    def test_metric_fallback_is_deterministic(self, tmp_path):
        store = HistoryStore(tmp_path)
        store.append(BenchRecord(
            suite="misc", benchmark="b", point="p",
            metrics={"zeta": 2.0, "alpha": 1.0}))
        html = render_dashboard(store)
        # alphabetical fallback: "alpha" wins over "zeta"
        assert "alpha: 1" in html


class TestPublicPalette:
    def test_palette_tuples_are_public_and_hex(self):
        from repro.observatory.dashboard import SERIES_DARK, SERIES_LIGHT
        assert len(SERIES_LIGHT) == len(SERIES_DARK)
        for color in SERIES_LIGHT + SERIES_DARK:
            assert color.startswith("#") and len(color) == 7

    def test_flightrec_console_shares_the_palette(self):
        import repro.flightrec.console as console
        from repro.observatory.dashboard import SERIES_LIGHT
        assert console.SERIES_LIGHT is SERIES_LIGHT
