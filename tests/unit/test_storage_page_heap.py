"""Unit tests for slotted pages and heap files."""

import pytest

from repro.errors import PageError, StorageError
from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType
from repro.storage.heap import HeapFile
from repro.storage.page import SlottedPage


class TestSlottedPage:
    def test_insert_and_read(self):
        page = SlottedPage(0)
        slot = page.insert(b"hello")
        assert page.read(slot) == b"hello"

    def test_slots_are_sequential(self):
        page = SlottedPage(0)
        assert [page.insert(b"x"), page.insert(b"y"), page.insert(b"z")] == \
            [0, 1, 2]

    def test_free_space_decreases(self):
        page = SlottedPage(0, page_size=128)
        before = page.free_space()
        page.insert(b"0123456789")
        assert page.free_space() == before - 10 - 4  # payload + slot entry

    def test_page_full_rejected(self):
        page = SlottedPage(0, page_size=64)
        page.insert(b"x" * page.free_space())
        with pytest.raises(PageError):
            page.insert(b"y")

    def test_empty_record_rejected(self):
        with pytest.raises(PageError):
            SlottedPage(0).insert(b"")

    def test_delete_tombstones(self):
        page = SlottedPage(0)
        slot = page.insert(b"doomed")
        page.delete(slot)
        with pytest.raises(PageError):
            page.read(slot)
        assert page.live_records == 0
        assert page.slot_count == 1  # slot numbers stay stable

    def test_double_delete_rejected(self):
        page = SlottedPage(0)
        slot = page.insert(b"x")
        page.delete(slot)
        with pytest.raises(PageError):
            page.delete(slot)

    def test_bad_slot_rejected(self):
        page = SlottedPage(0)
        with pytest.raises(PageError):
            page.read(5)

    def test_update_in_place_smaller(self):
        page = SlottedPage(0)
        slot = page.insert(b"longer-payload")
        page.update(slot, b"short")
        assert page.read(slot) == b"short"

    def test_update_larger_relocates(self):
        page = SlottedPage(0)
        slot = page.insert(b"ab")
        page.update(slot, b"a-much-longer-payload")
        assert page.read(slot) == b"a-much-longer-payload"

    def test_compact_reclaims_deleted_space(self):
        page = SlottedPage(0, page_size=256)
        slots = [page.insert(b"x" * 20) for _ in range(5)]
        for slot in slots[1:4]:
            page.delete(slot)
        before = page.free_space()
        reclaimed = page.compact()
        assert reclaimed == 60
        assert page.free_space() == before + 60
        assert page.read(slots[0]) == b"x" * 20
        assert page.read(slots[4]) == b"x" * 20

    def test_records_iterates_live_in_slot_order(self):
        page = SlottedPage(0)
        page.insert(b"a")
        s = page.insert(b"b")
        page.insert(b"c")
        page.delete(s)
        assert [(slot, payload) for slot, payload in page.records()] == \
            [(0, b"a"), (2, b"c")]

    def test_round_trip_serialization(self):
        page = SlottedPage(7, page_size=512)
        page.insert(b"alpha")
        doomed = page.insert(b"beta")
        page.insert(b"gamma")
        page.delete(doomed)
        clone = SlottedPage.from_bytes(page.to_bytes())
        assert clone.page_id == 7
        assert list(clone.records()) == list(page.records())
        assert clone.free_space() == page.free_space()

    def test_serialized_size_is_page_size(self):
        page = SlottedPage(0, page_size=1024)
        page.insert(b"data")
        assert len(page.to_bytes()) == 1024

    def test_insert_after_round_trip(self):
        page = SlottedPage(0, page_size=256)
        page.insert(b"first")
        clone = SlottedPage.from_bytes(page.to_bytes())
        slot = clone.insert(b"second")
        assert clone.read(slot) == b"second"

    def test_tiny_page_size_rejected(self):
        with pytest.raises(PageError):
            SlottedPage(0, page_size=4)

    def test_oversized_page_rejected(self):
        with pytest.raises(PageError):
            SlottedPage(0, page_size=100_000)


def people_schema():
    return TableSchema("people", [
        Column("id", DataType.INT64, nullable=False),
        Column("name", DataType.VARCHAR),
        Column("score", DataType.FLOAT64),
    ])


class TestHeapFile:
    def test_insert_and_fetch(self):
        heap = HeapFile(people_schema())
        rid = heap.insert((1, "ada", 9.5))
        assert heap.fetch(rid) == (1, "ada", 9.5)

    def test_scan_returns_rows_in_order(self):
        heap = HeapFile(people_schema())
        rows = [(i, f"p{i}", float(i)) for i in range(100)]
        heap.insert_many(rows)
        assert list(heap.scan()) == rows

    def test_nulls_round_trip(self):
        heap = HeapFile(people_schema())
        rid = heap.insert((1, None, None))
        assert heap.fetch(rid) == (1, None, None)

    def test_pages_allocated_as_needed(self):
        heap = HeapFile(people_schema(), page_size=256)
        heap.insert_many([(i, "name" * 5, 1.0) for i in range(50)])
        assert heap.page_count > 1
        assert heap.row_count == 50

    def test_size_bytes_counts_whole_pages(self):
        heap = HeapFile(people_schema(), page_size=1024)
        heap.insert((1, "a", 1.0))
        assert heap.size_bytes() == 1024

    def test_delete_reduces_row_count(self):
        heap = HeapFile(people_schema())
        rid = heap.insert((1, "x", 0.0))
        heap.insert((2, "y", 0.0))
        heap.delete(rid)
        assert heap.row_count == 1
        assert [r[0] for r in heap.scan()] == [2]

    def test_oversized_row_rejected(self):
        heap = HeapFile(people_schema(), page_size=128)
        with pytest.raises(StorageError):
            heap.insert((1, "z" * 200, 1.0))

    def test_bad_page_access_rejected(self):
        heap = HeapFile(people_schema())
        with pytest.raises(StorageError):
            heap.fetch((3, 0))

    def test_scan_page(self):
        heap = HeapFile(people_schema(), page_size=256)
        heap.insert_many([(i, "nm", 1.0) for i in range(40)])
        total = sum(len(list(heap.scan_page(p)))
                    for p in range(heap.page_count))
        assert total == 40

    def test_payload_bytes_less_than_physical(self):
        heap = HeapFile(people_schema(), page_size=4096)
        heap.insert_many([(i, "abc", 2.0) for i in range(10)])
        assert 0 < heap.payload_bytes() < heap.size_bytes()
