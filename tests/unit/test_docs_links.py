"""The documentation's cross-references must resolve.

Every relative markdown link in every tracked ``*.md`` file has to
point at a path that exists, and every ``#anchor`` has to match a
heading (GitHub slug rules) in the target document.  Docs rot silently
otherwise — this is the executable version of the docs pass.
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
DOCS = sorted(REPO.glob("*.md"))

LINK = re.compile(r"(?<!!)\[[^\]]*\]\(([^)\s]+)\)")
FENCE = re.compile(r"```.*?```", re.DOTALL)
INLINE_CODE = re.compile(r"`[^`\n]*`")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading line."""
    text = heading.strip()
    text = text.replace("`", "")
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # link text
    text = re.sub(r"[^\w\- ]", "", text.lower())
    return text.strip().replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    body = FENCE.sub("", path.read_text(encoding="utf-8"))
    return {github_slug(m) for m in HEADING.findall(body)}


def links_of(path: Path):
    body = FENCE.sub("", path.read_text(encoding="utf-8"))
    body = INLINE_CODE.sub("", body)
    for target in LINK.findall(body):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        yield target


def test_docs_exist():
    names = {p.name for p in DOCS}
    assert {"README.md", "ARCHITECTURE.md", "EXPERIMENTS.md",
            "OPERATIONS.md", "POLICIES.md", "PIPELINES.md",
            "ROADMAP.md"} <= names


@pytest.mark.parametrize("doc", DOCS, ids=lambda p: p.name)
def test_markdown_cross_references_resolve(doc):
    broken = []
    for target in links_of(doc):
        path_part, _, anchor = target.partition("#")
        dest = doc if not path_part \
            else (doc.parent / path_part).resolve()
        if path_part and not dest.exists():
            broken.append(f"{target}: no such path")
            continue
        if anchor and dest.suffix == ".md":
            if github_slug(anchor) not in anchors_of(dest):
                broken.append(f"{target}: no heading for anchor")
    assert not broken, f"{doc.name}: {broken}"
