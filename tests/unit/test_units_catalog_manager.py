"""Unit tests for units helpers, the catalog, and the storage manager."""

from datetime import date

import pytest

from repro.errors import CatalogError, SchemaError, StorageError
from repro.hardware.raid import RaidArray
from repro.hardware.ssd import FlashSsd, SsdSpec
from repro.relational.catalog import Catalog
from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType
from repro.sim import Simulation
from repro.storage.manager import StorageManager
from repro.units import (
    GIB,
    KWH,
    joules,
    pretty_bytes,
    pretty_time,
    watts,
)


class TestUnits:
    def test_joules_is_power_times_time(self):
        assert joules(90.0, 3.2) == pytest.approx(288.0)

    def test_watts_inverse(self):
        assert watts(288.0, 3.2) == pytest.approx(90.0)

    def test_joules_validation(self):
        with pytest.raises(ValueError):
            joules(-1.0, 1.0)
        with pytest.raises(ValueError):
            joules(1.0, -1.0)
        with pytest.raises(ValueError):
            watts(1.0, 0.0)

    def test_kwh_constant(self):
        assert KWH == pytest.approx(3.6e6)

    def test_pretty_bytes(self):
        assert pretty_bytes(512) == "512 B"
        assert pretty_bytes(2048) == "2.0 KiB"
        assert pretty_bytes(3 * GIB) == "3.0 GiB"

    def test_pretty_time(self):
        assert pretty_time(5e-5) == "50 us"
        assert pretty_time(0.25) == "250.0 ms"
        assert pretty_time(3.2) == "3.20 s"
        assert pretty_time(90.0) == "1.5 min"
        assert pretty_time(7200.0) == "2.00 h"
        assert pretty_time(-3.2) == "-3.20 s"


def people():
    return TableSchema("people", [
        Column("id", DataType.INT64, nullable=False),
        Column("name", DataType.VARCHAR),
    ])


class TestCatalog:
    def test_register_and_lookup(self):
        catalog = Catalog()
        catalog.register(people())
        assert "people" in catalog
        assert catalog.schema("people").column("id").dtype is \
            DataType.INT64

    def test_duplicate_rejected(self):
        catalog = Catalog()
        catalog.register(people())
        with pytest.raises(CatalogError):
            catalog.register(people())

    def test_unknown_lookup_rejected(self):
        with pytest.raises(CatalogError):
            Catalog().schema("ghost")

    def test_unregister(self):
        catalog = Catalog()
        catalog.register(people())
        catalog.unregister("people")
        assert "people" not in catalog
        with pytest.raises(CatalogError):
            catalog.unregister("people")

    def test_statistics_lifecycle(self):
        from repro.optimizer.stats import TableStatistics
        catalog = Catalog()
        catalog.register(people())
        assert catalog.statistics("people") is None
        stats = TableStatistics("people", 10, 100, 90)
        catalog.set_statistics("people", stats)
        assert catalog.statistics("people") is stats
        with pytest.raises(CatalogError):
            catalog.set_statistics("ghost", stats)

    def test_table_names_sorted(self):
        catalog = Catalog()
        catalog.register(TableSchema("zz", [Column("a", DataType.INT32)]))
        catalog.register(TableSchema("aa", [Column("a", DataType.INT32)]))
        assert catalog.table_names() == ["aa", "zz"]


class TestSchemaExtras:
    def test_project_preserves_order(self):
        schema = people()
        projected = schema.project(["name", "id"], new_name="p2")
        assert projected.name == "p2"
        assert projected.column_names() == ["name", "id"]

    def test_project_unknown_column_rejected(self):
        with pytest.raises(SchemaError):
            people().project(["ghost"])

    def test_not_null_enforced(self):
        with pytest.raises(SchemaError):
            people().validate_row((None, "x"))

    def test_arity_enforced(self):
        with pytest.raises(SchemaError):
            people().validate_row((1,))

    def test_type_enforced(self):
        with pytest.raises(SchemaError):
            people().validate_row(("not-an-int", "x"))

    def test_int32_range_enforced(self):
        schema = TableSchema("t", [Column("a", DataType.INT32)])
        with pytest.raises(SchemaError):
            schema.validate_row((2**40,))

    def test_date_round_trip_via_types(self):
        encoded = DataType.DATE.encode(date(1998, 9, 2))
        value, consumed = DataType.DATE.decode(encoded)
        assert value == date(1998, 9, 2)
        assert consumed == 4


class TestStorageManager:
    def make(self):
        sim = Simulation()
        ssd = FlashSsd(sim, SsdSpec(name="s"))
        array = RaidArray(sim, [ssd])
        return StorageManager(sim), array

    def test_create_and_contains(self):
        storage, array = self.make()
        storage.create_table(people(), layout="row", placement=array)
        assert "people" in storage
        assert storage.table("people").row_count == 0

    def test_duplicate_table_rejected(self):
        storage, array = self.make()
        storage.create_table(people(), layout="row", placement=array)
        with pytest.raises(StorageError):
            storage.create_table(people(), layout="row", placement=array)

    def test_drop_table(self):
        storage, array = self.make()
        storage.create_table(people(), layout="row", placement=array)
        storage.drop_table("people")
        assert "people" not in storage
        with pytest.raises(StorageError):
            storage.drop_table("people")

    def test_unknown_layout_rejected(self):
        storage, array = self.make()
        with pytest.raises(StorageError):
            storage.create_table(people(), layout="diagonal",
                                 placement=array)

    def test_row_layout_rejects_codecs(self):
        storage, array = self.make()
        with pytest.raises(StorageError):
            storage.create_table(people(), layout="row", placement=array,
                                 codecs={"id": "delta"})

    def test_tables_sorted(self):
        storage, array = self.make()
        storage.create_table(TableSchema("zz", [Column("a",
                                                       DataType.INT32)]),
                             layout="row", placement=array)
        storage.create_table(TableSchema("aa", [Column("a",
                                                       DataType.INT32)]),
                             layout="row", placement=array)
        assert [t.name for t in storage.tables()] == ["aa", "zz"]

    def test_row_store_projection_iterate(self):
        storage, array = self.make()
        table = storage.create_table(people(), layout="row",
                                     placement=array)
        table.load([(1, "a"), (2, "b")])
        assert list(table.iterate(["name"])) == [("a",), ("b",)]
