"""Unit tests for trace serialization and the exporters: JSON and CSV
must invert exactly; the flamegraph and table renderers must not lie
about totals."""

import pytest

from repro.errors import ReproError
from repro.telemetry import (
    DeviceTimeline,
    SpanNode,
    TelemetryTrace,
    counter_rows,
    device_rows,
    render_flamegraph,
    trace_from_csv,
    trace_from_json,
    trace_to_csv,
    trace_to_json,
)


def make_trace() -> TelemetryTrace:
    child = SpanNode(name="pipe0", started_at=0.0, ended_at=1.0,
                     device_joules={"cpu": 30.0, "disk": 10.0},
                     active_joules={"cpu": 20.0})
    root = SpanNode(name="query", started_at=0.0, ended_at=2.0,
                    device_joules={"cpu": 60.0, "disk": 20.0},
                    active_joules={"cpu": 40.0}, children=[child])
    cpu = DeviceTimeline(name="cpu", times=[0.0, 1.0], watts=[30.0, 60.0],
                         energy_joules=90.0, active_energy_joules=40.0,
                         busy_seconds=1.6, n_raw_samples=2)
    disk = DeviceTimeline(name="disk", times=[0.0], watts=[10.0],
                          energy_joules=30.0, active_energy_joules=0.0,
                          busy_seconds=0.0, n_raw_samples=1)
    return TelemetryTrace(started_at=0.0, ended_at=3.0,
                          devices=[cpu, disk], spans=[root],
                          counters={"buffer.hit": 3.0,
                                    "wal.bytes_flushed": 636.0})


class TestTraceModel:
    def test_totals(self):
        trace = make_trace()
        assert trace.total_joules == pytest.approx(120.0)
        assert trace.active_total_joules == pytest.approx(40.0)
        assert trace.device_totals() == {"cpu": 90.0, "disk": 30.0}
        assert trace.attributed_joules() == pytest.approx(80.0)
        assert trace.unattributed_joules() == pytest.approx(40.0)
        assert trace.device("cpu").busy_seconds == pytest.approx(1.6)
        with pytest.raises(ReproError):
            trace.device("gpu")

    def test_span_self_joules(self):
        root = make_trace().spans[0]
        assert root.total_joules == pytest.approx(80.0)
        assert root.self_joules() == pytest.approx(40.0)

    def test_dict_round_trip(self):
        trace = make_trace()
        again = TelemetryTrace.from_dict(trace.to_dict())
        assert again.to_dict() == trace.to_dict()

    def test_walk_order(self):
        trace = make_trace()
        assert [(d, s.name) for d, s in trace.all_spans()] == [
            (0, "query"), (1, "pipe0")]


class TestJson:
    def test_round_trip(self):
        trace = make_trace()
        again = trace_from_json(trace_to_json(trace))
        assert again.to_dict() == trace.to_dict()

    def test_deterministic(self):
        trace = make_trace()
        assert trace_to_json(trace) == trace_to_json(
            TelemetryTrace.from_dict(trace.to_dict()))


class TestCsv:
    def test_round_trip_is_exact(self):
        trace = make_trace()
        again = trace_from_csv(trace_to_csv(trace))
        assert again.to_dict() == trace.to_dict()

    def test_multi_point_header_is_rejected(self):
        text = trace_to_csv(make_trace(), point=3)
        assert text.splitlines()[0].startswith("point,")
        with pytest.raises(ReproError):
            trace_from_csv(text)

    def test_unknown_record_type_is_rejected(self):
        text = trace_to_csv(make_trace())
        text += "mystery,,,,,1,2,3\n"
        with pytest.raises(ReproError):
            trace_from_csv(text)


class TestRendering:
    def test_flamegraph_mentions_every_span_and_total(self):
        out = render_flamegraph(make_trace())
        assert "query" in out and "pipe0" in out
        assert "120 J" in out
        # 40 J of the capture lies outside the root span
        assert "(unattributed)" in out

    def test_flamegraph_active_mode(self):
        out = render_flamegraph(make_trace(), active=True)
        assert "busy-time" in out
        assert "40 J" in out

    def test_flamegraph_rejects_tiny_width(self):
        with pytest.raises(ReproError):
            render_flamegraph(make_trace(), width=5)

    def test_flamegraph_empty_trace(self):
        out = render_flamegraph(TelemetryTrace())
        assert "no energy recorded" in out

    def test_device_rows_shares_sum_to_one(self):
        rows = device_rows(make_trace())
        assert [r[0] for r in rows] == ["cpu", "disk"]
        shares = [float(r[4].rstrip("%")) for r in rows]
        assert sum(shares) == pytest.approx(100.0)

    def test_counter_rows_sorted(self):
        assert counter_rows(make_trace()) == [
            ("buffer.hit", 3.0), ("wal.bytes_flushed", 636.0)]
