"""Unit tests for RAID 5 degraded mode / rebuild and constant folding."""

import pytest

from repro.errors import HardwareError
from repro.hardware.disk import DiskSpec, HardDisk
from repro.hardware.raid import RaidArray, RaidLevel
from repro.relational.expr import (
    Arithmetic,
    Between,
    BoolOp,
    Case,
    Comparison,
    Literal,
    col,
    fold_constants,
    make_layout,
)
from repro.sim import Simulation
from repro.units import MB


def make_array(sim, n=4):
    disks = [HardDisk(sim, DiskSpec(
        name=f"d{i}", capacity_bytes=1000 * MB,
        bandwidth_bytes_per_s=100 * MB,
        average_seek_seconds=0.0, rpm=60_000_000,
        per_request_overhead_seconds=0.0,
        active_watts=17.0, idle_watts=12.0, standby_watts=2.0))
        for i in range(n)]
    return disks, RaidArray(sim, disks, level=RaidLevel.RAID5)


class TestDegradedRaid:
    def test_fail_member_marks_degraded(self):
        sim = Simulation()
        _disks, array = make_array(sim)
        assert not array.degraded
        array.fail_member(1)
        assert array.degraded

    def test_second_failure_rejected(self):
        sim = Simulation()
        _disks, array = make_array(sim)
        array.fail_member(1)
        with pytest.raises(HardwareError):
            array.fail_member(2)
        array.fail_member(1)  # re-failing the same member is fine

    def test_raid0_cannot_degrade(self):
        sim = Simulation()
        disks = [HardDisk(sim, DiskSpec(name=f"x{i}")) for i in range(2)]
        array = RaidArray(sim, disks, level=RaidLevel.RAID0)
        with pytest.raises(HardwareError):
            array.fail_member(0)

    def test_degraded_read_avoids_failed_member(self):
        sim = Simulation()
        disks, array = make_array(sim)
        array.fail_member(2)
        sim.run(until=sim.spawn(array.read(400 * MB)))
        assert disks[2].bytes_read == 0
        total = sum(d.bytes_read for d in disks)
        assert total == 400 * MB  # survivors absorbed the lost share

    def test_degraded_read_slower(self):
        def read_time(fail):
            sim = Simulation()
            _disks, array = make_array(sim)
            if fail:
                array.fail_member(0)
            sim.run(until=sim.spawn(array.read(400 * MB)))
            return sim.now

        healthy = read_time(False)
        degraded = read_time(True)
        # 4 disks -> 3 survivors: ~4/3 slower
        assert degraded == pytest.approx(healthy * 4 / 3, rel=0.05)

    def test_rebuild_restores_and_costs_energy(self):
        sim = Simulation()
        disks, array = make_array(sim)
        array.fail_member(3)
        before = sum(d.energy_joules() for d in disks)
        sim.run(until=sim.spawn(array.rebuild(3)))
        after = sum(d.energy_joules() for d in disks)
        assert not array.degraded
        assert after > before
        assert disks[3].bytes_written == 1000 * MB
        for survivor in disks[:3]:
            assert survivor.bytes_read == 1000 * MB

    def test_rebuild_of_healthy_member_rejected(self):
        sim = Simulation()
        _disks, array = make_array(sim)
        with pytest.raises(HardwareError):
            sim.run(until=sim.spawn(array.rebuild(0)))


LAYOUT = make_layout(["a", "b"])


class TestConstantFolding:
    def evaluate(self, expr, row=(5, 10)):
        return expr.evaluate(row, LAYOUT)

    def test_arithmetic_folds(self):
        expr = fold_constants(Literal(2) + Literal(3))
        assert isinstance(expr, Literal)
        assert expr.value == 5

    def test_partial_fold_inside_comparison(self):
        expr = fold_constants(col("a") < (Literal(2) * Literal(50)))
        assert isinstance(expr, Comparison)
        assert isinstance(expr.right, Literal)
        assert expr.right.value == 100
        assert self.evaluate(expr) is True

    def test_and_short_circuits_false(self):
        expr = fold_constants((col("a") > 0) & Literal(False))
        assert isinstance(expr, Literal)
        assert expr.value is False

    def test_or_short_circuits_true(self):
        expr = fold_constants((col("a") > 0) | Literal(True))
        assert isinstance(expr, Literal)
        assert expr.value is True

    def test_neutral_operands_dropped(self):
        expr = fold_constants((col("a") > 0) & Literal(True))
        assert isinstance(expr, Comparison)  # the AND disappeared

    def test_folding_preserves_semantics(self):
        original = ((col("a") + (Literal(1) + Literal(2)))
                    > (Literal(10) / Literal(5)))
        folded = fold_constants(original)
        for row in [(0, 0), (5, 1), (-10, 2)]:
            assert folded.evaluate(row, LAYOUT) == \
                original.evaluate(row, LAYOUT)

    def test_folded_expression_is_cheaper(self):
        original = col("a") < (Literal(2) * Literal(3) + Literal(4))
        folded = fold_constants(original)
        assert folded.cycles() < original.cycles()

    def test_between_and_case_fold_children(self):
        expr = fold_constants(Between(col("a"), Literal(1) + Literal(1),
                                      Literal(10) * Literal(2)))
        assert isinstance(expr, Between)
        assert isinstance(expr.low, Literal) and expr.low.value == 2
        case = fold_constants(Case(
            [(col("a") > Literal(2) + Literal(2), Literal(1))],
            default=Literal(3) * Literal(3)))
        assert isinstance(case, Case)
        assert case.default.value == 9

    def test_division_by_zero_left_to_runtime(self):
        expr = fold_constants(Arithmetic("/", Literal(1), Literal(0)))
        assert not isinstance(expr, Literal)

    def test_fully_constant_boolop(self):
        expr = fold_constants(BoolOp("and", [Literal(True),
                                             Literal(True)]))
        assert isinstance(expr, Literal)
        assert expr.value is True
