"""Unit tests for the telemetry span stack, the process-global
collector context, and the storage counter hooks."""

import pytest

from repro.errors import ReproError
from repro.sim import Simulation
from repro.storage.buffer import BufferPool
from repro.storage.wal import (
    FLUSH_OVERHEAD_BYTES,
    RECORD_OVERHEAD_BYTES,
    WriteAheadLog,
)
from repro.telemetry import SpanStack, TelemetryCollector, capture
from repro.telemetry.context import current_collector, install, uninstall


class TestSpanStack:
    def test_nesting_defaults_to_innermost_open(self):
        stack = SpanStack()
        a = stack.open("a", 0.0, {})
        b = stack.open("b", 1.0, {})
        assert b.parent is a
        assert a.children == [b]
        stack.close(b, 2.0, {})
        stack.close(a, 3.0, {})
        assert stack.roots == [a]
        assert a.duration == 3.0
        assert b.duration == 1.0
        assert b.path() == "a/b"

    def test_root_refuses_default_parent(self):
        stack = SpanStack()
        a = stack.open("a", 0.0, {})
        r = stack.open("r", 1.0, {}, root=True)
        assert r.parent is None
        assert stack.roots == [a, r]
        assert a.children == []

    def test_explicit_parent_beats_open_stack(self):
        stack = SpanStack()
        a = stack.open("a", 0.0, {})
        stack.open("b", 1.0, {})  # some other process's span
        c = stack.open("c", 2.0, {}, parent=a)
        assert c.parent is a
        assert c in a.children

    def test_non_lifo_close_is_tolerated(self):
        stack = SpanStack()
        a = stack.open("a", 0.0, {})
        b = stack.open("b", 1.0, {}, root=True)
        stack.close(a, 2.0, {})  # closes under b — fine
        stack.close(b, 3.0, {})
        assert a.closed and b.closed

    def test_close_errors(self):
        stack = SpanStack()
        a = stack.open("a", 5.0, {})
        with pytest.raises(ReproError):
            stack.close(a, 4.0, {})  # before it opened
        stack.close(a, 6.0, {})
        with pytest.raises(ReproError):
            stack.close(a, 7.0, {})  # twice
        with pytest.raises(ReproError):
            stack.open("b", 0.0, {}, parent=a)  # under a closed span

    def test_close_all_force_closes_everything(self):
        stack = SpanStack()
        stack.open("a", 0.0, {})
        stack.open("b", 1.0, {})
        stack.close_all(9.0, {"cpu": 4.0})
        assert all(span.closed for _, span in stack.roots[0].walk())
        assert stack.current is None

    def test_busy_delta(self):
        stack = SpanStack()
        a = stack.open("a", 0.0, {"cpu": 1.0})
        stack.close(a, 1.0, {"cpu": 3.5})
        assert a.busy_delta("cpu") == pytest.approx(2.5)
        assert a.busy_delta("missing") == 0.0


class TestContext:
    def test_off_by_default(self):
        assert current_collector() is None

    def test_capture_installs_and_uninstalls(self):
        with capture() as collector:
            assert current_collector() is collector
        assert current_collector() is None

    def test_captures_do_not_nest(self):
        with capture():
            with pytest.raises(ReproError):
                install(TelemetryCollector())
        assert current_collector() is None

    def test_uninstall_of_inactive_collector_is_noop(self):
        bystander = TelemetryCollector()
        with capture() as collector:
            uninstall(bystander)
            assert current_collector() is collector
        assert current_collector() is None

    def test_capture_uninstalls_on_error(self):
        with pytest.raises(ValueError):
            with capture():
                raise ValueError("boom")
        assert current_collector() is None


class TestStorageCounterHooks:
    def test_buffer_counters_only_while_captured(self):
        sim = Simulation()
        pool = BufferPool(sim, capacity_pages=1)
        pool.get("x")  # miss with telemetry off: no collector, no error
        with capture() as collector:
            pool.get("x")            # miss
            pool.put("x", b"page")
            pool.get("x")            # hit
            pool.put("y", b"page")   # evicts x
        assert collector.counters == {
            "buffer.miss": 1.0,
            "buffer.hit": 1.0,
            "buffer.eviction": 1.0,
        }

    def test_wal_counters(self):
        sim = Simulation()

        class NullDevice:
            def write(self, nbytes, stream=None):
                yield sim.timeout(0.001)

        with capture() as collector:
            wal = WriteAheadLog(sim, NullDevice())
            ack = wal.append(100)
            wal.close()

            def driver():
                yield ack

            sim.run(until=sim.spawn(driver()))
        assert collector.counters["wal.flush"] == 1.0
        assert collector.counters["wal.bytes_flushed"] == (
            100 + RECORD_OVERHEAD_BYTES + FLUSH_OVERHEAD_BYTES)
