"""Unit tests for the B+tree and table indexes."""

import random

import pytest

from repro.errors import StorageError
from repro.hardware.raid import RaidArray
from repro.hardware.ssd import FlashSsd, SsdSpec
from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType
from repro.sim import Simulation
from repro.storage.btree import BPlusTree
from repro.storage.manager import StorageManager
from repro.units import MB


class TestBPlusTree:
    def test_insert_and_search(self):
        tree = BPlusTree(order=4)
        for key in [5, 3, 8, 1, 9, 7]:
            tree.insert(key, f"rid{key}")
        assert tree.search(8) == ["rid8"]
        assert tree.search(42) == []

    def test_duplicate_keys_accumulate(self):
        tree = BPlusTree(order=4)
        tree.insert(7, "a")
        tree.insert(7, "b")
        assert sorted(tree.search(7)) == ["a", "b"]
        assert len(tree) == 2

    def test_splits_keep_all_keys_findable(self):
        tree = BPlusTree(order=4)
        keys = list(range(500))
        random.Random(3).shuffle(keys)
        for key in keys:
            tree.insert(key, key * 10)
        for key in range(500):
            assert tree.search(key) == [key * 10]
        tree.validate()

    def test_height_grows_logarithmically(self):
        tree = BPlusTree(order=8)
        for key in range(1000):
            tree.insert(key, key)
        assert 3 <= tree.height <= 6

    def test_range_scan_ordered(self):
        tree = BPlusTree(order=4)
        keys = [9, 2, 7, 4, 1, 8, 3]
        for key in keys:
            tree.insert(key, key)
        got = [k for k, _ in tree.range_scan(3, 8)]
        assert got == [3, 4, 7, 8]

    def test_range_scan_open_ends(self):
        tree = BPlusTree(order=4)
        for key in range(10):
            tree.insert(key, key)
        assert [k for k, _ in tree.range_scan(low=7)] == [7, 8, 9]
        assert [k for k, _ in tree.range_scan(high=2)] == [0, 1, 2]
        assert len(list(tree.range_scan())) == 10

    def test_range_scan_exclusive_bounds(self):
        tree = BPlusTree(order=4)
        for key in range(10):
            tree.insert(key, key)
        got = [k for k, _ in tree.range_scan(3, 6, include_low=False,
                                             include_high=False)]
        assert got == [4, 5]

    def test_count_and_leaves(self):
        tree = BPlusTree(order=4)
        for key in range(100):
            tree.insert(key, key)
        assert tree.count_range(10, 19) == 10
        assert tree.leaf_count() >= 100 // 5
        assert 1 <= tree.leaves_touched(10, 19) < tree.leaf_count()

    def test_string_keys(self):
        tree = BPlusTree(order=4)
        for word in ["pear", "apple", "fig", "date", "cherry"]:
            tree.insert(word, word.upper())
        assert [k for k, _ in tree.range_scan("b", "e")] == \
            ["cherry", "date"]

    def test_null_key_rejected(self):
        with pytest.raises(StorageError):
            BPlusTree().insert(None, "x")

    def test_tiny_order_rejected(self):
        with pytest.raises(StorageError):
            BPlusTree(order=2)


@pytest.fixture
def indexed_table():
    sim = Simulation()
    ssd = FlashSsd(sim, SsdSpec(name="s", capacity_bytes=1000 * MB))
    array = RaidArray(sim, [ssd])
    storage = StorageManager(sim)
    table = storage.create_table(
        TableSchema("t", [
            Column("k", DataType.INT64, nullable=False),
            Column("grp", DataType.INT64, nullable=False),
            Column("v", DataType.FLOAT64, nullable=False),
        ]), layout="row", placement=array)
    table.load([(i, i % 20, float(i)) for i in range(2000)])
    return table


class TestTableIndex:
    def test_create_and_lookup(self, indexed_table):
        index = indexed_table.create_index("k")
        assert indexed_table.index_on("k") is index
        assert index.entry_count == 2000
        assert index.search_rows(77) == [(77, 17, 77.0)]

    def test_duplicate_key_index(self, indexed_table):
        index = indexed_table.create_index("grp")
        rows = index.search_rows(5)
        assert len(rows) == 100
        assert all(r[1] == 5 for r in rows)

    def test_range_rows_in_key_order(self, indexed_table):
        index = indexed_table.create_index("k")
        rows = list(index.range_rows(100, 109))
        assert [r[0] for r in rows] == list(range(100, 110))

    def test_clustered_requires_sorted_heap(self, indexed_table):
        # heap loaded in k order -> clustered on k is fine
        indexed_table.create_index("k", clustered=True)
        # but grp repeats non-monotonically
        with pytest.raises(StorageError):
            indexed_table.create_index("grp", clustered=True)

    def test_duplicate_index_rejected(self, indexed_table):
        indexed_table.create_index("k")
        with pytest.raises(StorageError):
            indexed_table.create_index("k")

    def test_unknown_column_rejected(self, indexed_table):
        with pytest.raises(StorageError):
            indexed_table.create_index("ghost")

    def test_columnar_table_rejected(self, indexed_table):
        sim = Simulation()
        ssd = FlashSsd(sim, SsdSpec(name="s2", capacity_bytes=1000 * MB))
        array = RaidArray(sim, [ssd])
        storage = StorageManager(sim)
        table = storage.create_table(
            TableSchema("c", [Column("k", DataType.INT64,
                                     nullable=False)]),
            layout="column", placement=array)
        table.load([(1,)])
        with pytest.raises(StorageError):
            table.create_index("k")

    def test_fetch_plan_clustered_vs_unclustered(self, indexed_table):
        clustered = indexed_table.create_index("k", clustered=True)
        unclustered = indexed_table.create_index("grp")
        c_bytes, c_requests = clustered.heap_fetch_plan(100)
        u_bytes, u_requests = unclustered.heap_fetch_plan(100)
        assert c_requests == 0
        assert u_requests > 0
        assert c_bytes < u_bytes

    def test_fetch_plan_caps_at_page_count(self, indexed_table):
        index = indexed_table.create_index("grp")
        _bytes, requests = index.heap_fetch_plan(10**9)
        assert requests == indexed_table.heap.page_count

    def test_size_modeling(self, indexed_table):
        index = indexed_table.create_index("k")
        assert index.probe_io_bytes() == index.page_size
        assert index.size_bytes() == index.leaf_pages() * index.page_size
        full = index.range_leaf_bytes()
        partial = index.range_leaf_bytes(0, 10)
        assert partial <= full
