"""Unit tests for the disk and SSD models."""

import pytest

from repro.errors import HardwareError
from repro.hardware.disk import DiskSpec, HardDisk
from repro.hardware.ssd import FlashSsd, SsdSpec
from repro.sim import Simulation
from repro.units import MB


def make_disk(sim, **overrides):
    defaults = dict(
        name="d0", capacity_bytes=1000 * MB,
        bandwidth_bytes_per_s=100 * MB,
        average_seek_seconds=0.004, rpm=15000,
        per_request_overhead_seconds=0.0,
        active_watts=17.0, idle_watts=12.0, standby_watts=2.0,
        spinup_seconds=6.0, spinup_joules=90.0,
        spindown_seconds=1.5, spindown_joules=6.0,
    )
    defaults.update(overrides)
    return HardDisk(sim, DiskSpec(**defaults))


def run(sim, gen):
    return sim.run(until=sim.spawn(gen))


class TestHardDisk:
    def test_first_read_pays_positioning(self):
        sim = Simulation()
        disk = make_disk(sim)
        run(sim, disk.read(100 * MB, stream="s1"))
        expected = disk.spec.positioning_seconds + 1.0
        assert sim.now == pytest.approx(expected)

    def test_same_stream_skips_positioning(self):
        sim = Simulation()
        disk = make_disk(sim)

        def scenario():
            yield from disk.read(100 * MB, stream="s1")
            t_after_first = sim.now
            yield from disk.read(100 * MB, stream="s1")
            return sim.now - t_after_first

        second_duration = run(sim, scenario())
        assert second_duration == pytest.approx(1.0)

    def test_stream_switch_pays_positioning(self):
        sim = Simulation()
        disk = make_disk(sim)

        def scenario():
            yield from disk.read(100 * MB, stream="s1")
            t0 = sim.now
            yield from disk.read(100 * MB, stream="s2")
            return sim.now - t0

        duration = run(sim, scenario())
        assert duration == pytest.approx(disk.spec.positioning_seconds + 1.0)

    def test_anonymous_requests_always_position(self):
        sim = Simulation()
        disk = make_disk(sim)

        def scenario():
            yield from disk.read(100 * MB)
            yield from disk.read(100 * MB)

        run(sim, scenario())
        assert disk.positioning_count == 2

    def test_rotational_latency_from_rpm(self):
        spec = DiskSpec(rpm=15000)
        assert spec.rotational_latency_seconds == pytest.approx(0.002)

    def test_power_states_during_transfer(self):
        sim = Simulation()
        disk = make_disk(sim)
        samples = []

        def observe():
            yield sim.timeout(0.5)
            samples.append(disk.power_watts)

        sim.spawn(disk.read(100 * MB, stream="s"))
        sim.spawn(observe())
        sim.run()
        assert samples == [pytest.approx(17.0)]
        assert disk.power_watts == pytest.approx(12.0)

    def test_energy_integration(self):
        sim = Simulation()
        disk = make_disk(sim, average_seek_seconds=0.0, rpm=60_000_000)

        def scenario():
            yield from disk.read(100 * MB, stream="s")  # ~1 s active
            yield sim.timeout(1.0)                      # 1 s idle

        run(sim, scenario())
        # positioning ~ 0 here: energy = 17*1 + 12*1
        assert disk.energy_joules(0.0, sim.now) == pytest.approx(29.0, rel=1e-3)

    def test_spin_down_reduces_power_and_charges_transition(self):
        sim = Simulation()
        disk = make_disk(sim)
        run(sim, disk.spin_down())
        assert disk.state == HardDisk.STANDBY
        assert disk.power_watts == pytest.approx(2.0)
        assert sim.now == pytest.approx(1.5)
        # lifetime energy includes the spin-down spike
        lifetime = disk.energy_joules()
        assert lifetime == pytest.approx(12.0 * 1.5 + 6.0, rel=1e-6)

    def test_read_from_standby_spins_up_first(self):
        sim = Simulation()
        disk = make_disk(sim)

        def scenario():
            yield from disk.spin_down()
            t0 = sim.now
            yield from disk.read(100 * MB, stream="s")
            return sim.now - t0

        duration = run(sim, scenario())
        expected = 6.0 + disk.spec.positioning_seconds + 1.0
        assert duration == pytest.approx(expected)
        assert disk.state == HardDisk.IDLE

    def test_spindle_serializes_concurrent_requests(self):
        sim = Simulation()
        disk = make_disk(sim, average_seek_seconds=0.0, rpm=60_000_000)
        sim.spawn(disk.read(100 * MB, stream="a"))
        sim.spawn(disk.read(100 * MB, stream="b"))
        sim.run()
        assert sim.now == pytest.approx(2.0, rel=1e-3)

    def test_counters(self):
        sim = Simulation()
        disk = make_disk(sim)

        def scenario():
            yield from disk.read(10 * MB, stream="s")
            yield from disk.write(5 * MB, stream="s")

        run(sim, scenario())
        assert disk.bytes_read == 10 * MB
        assert disk.bytes_written == 5 * MB
        assert disk.requests_served == 2

    def test_spec_validation(self):
        with pytest.raises(HardwareError):
            DiskSpec(active_watts=5.0, idle_watts=12.0)
        with pytest.raises(HardwareError):
            DiskSpec(rpm=0)

    def test_negative_transfer_rejected(self):
        sim = Simulation()
        disk = make_disk(sim)
        with pytest.raises(HardwareError):
            run(sim, disk.read(-1))


class TestFlashSsd:
    def make(self, sim, **overrides):
        defaults = dict(
            name="s0", capacity_bytes=1000 * MB,
            read_bandwidth_bytes_per_s=100 * MB,
            write_bandwidth_bytes_per_s=50 * MB,
            per_request_latency_seconds=0.0,
            read_watts=2.0, write_watts=3.0, idle_watts=0.1,
        )
        defaults.update(overrides)
        return FlashSsd(sim, SsdSpec(**defaults))

    def test_read_time(self):
        sim = Simulation()
        ssd = self.make(sim)
        run(sim, ssd.read(100 * MB))
        assert sim.now == pytest.approx(1.0)

    def test_write_slower_than_read(self):
        sim = Simulation()
        ssd = self.make(sim)
        run(sim, ssd.write(100 * MB))
        assert sim.now == pytest.approx(2.0)

    def test_no_positioning_cost_between_streams(self):
        sim = Simulation()
        ssd = self.make(sim)

        def scenario():
            yield from ssd.read(50 * MB, stream="a")
            yield from ssd.read(50 * MB, stream="b")

        run(sim, scenario())
        assert sim.now == pytest.approx(1.0)

    def test_power_during_read_and_write(self):
        sim = Simulation()
        ssd = self.make(sim)
        samples = []

        def scenario():
            yield from ssd.read(100 * MB)
            yield from ssd.write(100 * MB)

        def observe():
            yield sim.timeout(0.5)
            samples.append(ssd.power_watts)   # reading
            yield sim.timeout(1.0)
            samples.append(ssd.power_watts)   # writing

        sim.spawn(scenario())
        sim.spawn(observe())
        sim.run()
        assert samples == [pytest.approx(2.0), pytest.approx(3.0)]
        assert ssd.power_watts == pytest.approx(0.1)

    def test_energy_integration(self):
        sim = Simulation()
        ssd = self.make(sim)

        def scenario():
            yield from ssd.read(100 * MB)   # 1 s at 2 W
            yield sim.timeout(1.0)          # 1 s at 0.1 W

        run(sim, scenario())
        assert ssd.energy_joules(0.0, sim.now) == pytest.approx(2.1)

    def test_per_request_latency_added(self):
        sim = Simulation()
        ssd = self.make(sim, per_request_latency_seconds=0.01)
        run(sim, ssd.read(100 * MB))
        assert sim.now == pytest.approx(1.01)

    def test_channel_serialization(self):
        sim = Simulation()
        ssd = self.make(sim)
        sim.spawn(ssd.read(100 * MB))
        sim.spawn(ssd.read(100 * MB))
        sim.run()
        assert sim.now == pytest.approx(2.0)

    def test_multi_channel_parallelism(self):
        sim = Simulation()
        ssd = self.make(sim, channels=2)
        sim.spawn(ssd.read(100 * MB))
        sim.spawn(ssd.read(100 * MB))
        sim.run()
        assert sim.now == pytest.approx(1.0)

    def test_spec_validation(self):
        with pytest.raises(HardwareError):
            SsdSpec(idle_watts=5.0, read_watts=2.0, write_watts=9.0)
        with pytest.raises(HardwareError):
            SsdSpec(channels=0)
