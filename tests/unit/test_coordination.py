"""Unit tests for the DVFS governor and power coordinator."""

import pytest

from repro.core.coordination import (
    DvfsGovernor,
    GovernorPolicy,
    PowerCoordinator,
)
from repro.errors import ReproError
from repro.hardware.cpu import Cpu, CpuSpec
from repro.sim import Simulation
from repro.units import GHZ


def make_cpu(sim):
    return Cpu(sim, CpuSpec(cores=2, frequency_hz=2 * GHZ,
                            idle_watts=10.0, peak_watts=60.0,
                            cstate_watts=2.0,
                            dvfs_fractions=(1.0, 0.8, 0.6)))


def test_governor_steps_down_when_idle():
    sim = Simulation()
    cpu = make_cpu(sim)
    governor = DvfsGovernor(cpu)
    sim.run(until=10.0)          # a silent epoch
    assert governor.react() == 0.8
    sim.run(until=20.0)
    assert governor.react() == 0.6
    sim.run(until=30.0)
    assert governor.react() == 0.6  # already at the floor


def test_governor_steps_up_under_load():
    sim = Simulation()
    cpu = make_cpu(sim)
    governor = DvfsGovernor(cpu)
    sim.run(until=10.0)
    governor.react()             # down to 0.8
    # burn both cores for most of the next epoch
    def work():
        yield from cpu.execute(2 * 0.8 * 2e9 * 9.0, parallelism=2)
    sim.run(until=sim.spawn(work()))
    sim.run(until=20.0)
    assert governor.react() == 1.0


def test_governor_skips_while_busy():
    sim = Simulation()
    cpu = make_cpu(sim)
    governor = DvfsGovernor(cpu)

    def long_work():
        yield from cpu.execute(2e9 * 100)

    def observe():
        yield sim.timeout(10.0)
        # CPU at 50% utilization (1 of 2 cores): between thresholds,
        # but even a low-util reading must not shift mid-burst
        fraction = governor.react()
        assert fraction == 1.0

    sim.spawn(long_work())
    sim.spawn(observe())
    sim.run()


def test_observe_epoch_measures_utilization():
    sim = Simulation()
    cpu = make_cpu(sim)
    governor = DvfsGovernor(cpu)

    def work():
        yield from cpu.execute(2e9 * 5)  # one core busy 5 s

    sim.run(until=sim.spawn(work()))
    sim.run(until=10.0)
    # 5 core-seconds over 10 s x 2 cores = 0.25
    assert governor.observe_epoch() == pytest.approx(0.25)


def test_governor_run_loop():
    sim = Simulation()
    cpu = make_cpu(sim)
    governor = DvfsGovernor(cpu, GovernorPolicy(epoch_seconds=5.0))
    sim.run(until=sim.spawn(governor.run(20.0)))
    assert cpu.dvfs_fraction == 0.6  # idled all the way down
    assert governor.transitions == 2


def test_pin_blocks_reactions_and_unpin_restores():
    sim = Simulation()
    cpu = make_cpu(sim)
    governor = DvfsGovernor(cpu)
    coordinator = PowerCoordinator(governor)
    coordinator.request_frequency("query-7", 1.0)
    sim.run(until=10.0)
    assert governor.react() == 1.0   # pinned: no downshift
    coordinator.release("query-7")
    sim.run(until=20.0)
    assert governor.react() == 0.8


def test_pin_conflicts_rejected():
    sim = Simulation()
    governor = DvfsGovernor(make_cpu(sim))
    governor.pin("a", 1.0)
    with pytest.raises(ReproError):
        governor.pin("b", 0.8)
    with pytest.raises(ReproError):
        governor.unpin("b")


def test_pin_unoffered_fraction_rejected():
    sim = Simulation()
    governor = DvfsGovernor(make_cpu(sim))
    with pytest.raises(ReproError):
        governor.pin("a", 0.5)


def test_effective_frequency_reflects_governor():
    sim = Simulation()
    cpu = make_cpu(sim)
    governor = DvfsGovernor(cpu)
    coordinator = PowerCoordinator(governor)
    sim.run(until=10.0)
    governor.react()
    assert coordinator.effective_frequency_fraction() == 0.8


def test_policy_validation():
    with pytest.raises(ReproError):
        GovernorPolicy(low_utilization=0.8, high_utilization=0.3)
    with pytest.raises(ReproError):
        GovernorPolicy(epoch_seconds=0.0)
