"""Unit tests for core metrics, profiler, and report formatting."""

import pytest

from repro.errors import ReproError
from repro.core.metrics import (
    TcoModel,
    energy_delay_product,
    energy_efficiency,
    perf_per_watt,
)
from repro.core.profiler import EnergyProfile, ProfilePoint, sweep_knob
from repro.core.report import format_table


class TestMetrics:
    def test_efficiency_definition(self):
        assert energy_efficiency(100.0, 50.0) == pytest.approx(2.0)

    def test_perf_per_watt_identity(self):
        """EE = Work/Energy = (Work/Time)/(Energy/Time) = Perf/Power,
        the paper's §2.1 identity."""
        work, seconds, joules = 120.0, 4.0, 60.0
        ee = energy_efficiency(work, joules)
        ppw = perf_per_watt(work / seconds, joules / seconds)
        assert ee == pytest.approx(ppw)

    def test_fixed_work_min_energy_max_efficiency(self):
        """For fixed work, maximizing EE == minimizing energy (§2.1)."""
        energies = [300.0, 250.0, 400.0]
        best_by_ee = max(energies, key=lambda e: energy_efficiency(10.0, e))
        assert best_by_ee == min(energies)

    def test_edp(self):
        assert energy_delay_product(338.0, 10.0) == pytest.approx(3380.0)

    def test_validation(self):
        with pytest.raises(ReproError):
            energy_efficiency(1.0, 0.0)
        with pytest.raises(ReproError):
            perf_per_watt(-1.0, 10.0)
        with pytest.raises(ReproError):
            energy_delay_product(-1.0, 1.0)


class TestTco:
    def make(self):
        return TcoModel(hardware_cost_dollars=10_000.0,
                        electricity_dollars_per_kwh=0.10,
                        cooling_overhead=0.5, lifetime_years=3.0)

    def test_energy_cost_arithmetic(self):
        tco = self.make()
        # 1000 W burdened to 1500 W for 3 years
        expected_kwh = 1.5 * 3 * 365.25 * 24
        assert tco.energy_cost(1000.0) == pytest.approx(expected_kwh * 0.10)

    def test_total_cost_includes_hardware(self):
        tco = self.make()
        assert tco.total_cost(0.0) == pytest.approx(10_000.0)

    def test_energy_fraction_grows_with_power(self):
        tco = self.make()
        assert tco.energy_cost_fraction(2000.0) > \
            tco.energy_cost_fraction(200.0)

    def test_scale_out_beats_waste_when_energy_dominates(self):
        """§5.3: at high energy prices, adding hardware at constant EE
        beats burning power for diminishing returns."""
        pricey = TcoModel(hardware_cost_dollars=5_000.0,
                          electricity_dollars_per_kwh=0.50)
        # option A: one node pushed hard: 2x work at 3x power
        a = pricey.cost_per_unit_work(average_watts=1500.0,
                                      work_per_second=2.0)
        # option B: two nodes at the efficient point: 2x work at 2x power
        b = TcoModel(hardware_cost_dollars=10_000.0,
                     electricity_dollars_per_kwh=0.50).cost_per_unit_work(
            average_watts=1000.0, work_per_second=2.0)
        assert b < a

    def test_cost_per_unit_work_validation(self):
        with pytest.raises(ReproError):
            self.make().cost_per_unit_work(100.0, 0.0)


class TestProfiler:
    def synthetic_profile(self):
        # classic diminishing returns: time ~ 1/n + floor, power ~ n
        def evaluate(n):
            seconds = 10.0 / n + 2.0
            watts = 100.0 + 15.0 * n
            return seconds, seconds * watts

        return sweep_knob("disks", [2, 4, 8, 16, 32], evaluate)

    def test_sweep_produces_points(self):
        profile = self.synthetic_profile()
        assert len(profile.points) == 5
        assert profile.points[0].knob_value == 2

    def test_best_performance_is_widest(self):
        profile = self.synthetic_profile()
        assert profile.best_performance().knob_value == 32

    def test_best_efficiency_interior(self):
        profile = self.synthetic_profile()
        best = profile.best_efficiency().knob_value
        assert 2 < best < 32  # the knee is interior: diminishing returns

    def test_tradeoff_signs(self):
        gain, drop = self.synthetic_profile().tradeoff()
        assert gain > 0
        assert 0 < drop < 1

    def test_point_derived_metrics(self):
        p = ProfilePoint("x", seconds=2.0, energy_joules=100.0,
                         work_done=4.0)
        assert p.performance == pytest.approx(2.0)
        assert p.average_power_watts == pytest.approx(50.0)
        assert p.efficiency == pytest.approx(0.04)

    def test_empty_profile_rejected(self):
        with pytest.raises(ReproError):
            EnergyProfile("x").best_efficiency()
        with pytest.raises(ReproError):
            sweep_knob("x", [], lambda v: (1.0, 1.0))

    def test_bad_evaluation_rejected(self):
        with pytest.raises(ReproError):
            sweep_knob("x", [1], lambda v: (0.0, 1.0))


class TestReport:
    def test_basic_table(self):
        text = format_table(["disks", "time"], [(36, 879.5), (66, 596.1)])
        lines = text.splitlines()
        assert "disks" in lines[0]
        assert "36" in lines[2]
        assert "879.50" in lines[2]

    def test_title(self):
        text = format_table(["a"], [(1,)], title="Figure 1")
        assert text.splitlines()[0] == "Figure 1"

    def test_mismatched_row_rejected(self):
        with pytest.raises(ReproError):
            format_table(["a", "b"], [(1,)])

    def test_large_and_small_floats(self):
        text = format_table(["v"], [(123456.0,), (0.00012,)])
        assert "1.23e+05" in text
        assert "0.00012" in text
