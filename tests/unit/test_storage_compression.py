"""Unit tests for compression codecs."""

from datetime import date

import pytest

from repro.errors import CompressionError
from repro.relational.types import DataType
from repro.storage.compression import (
    DeltaCodec,
    DictionaryCodec,
    LzLiteCodec,
    NoneCodec,
    RleCodec,
    best_codec_for,
    codec_by_name,
)

ALL_CODECS = [NoneCodec(), RleCodec(), DictionaryCodec(), DeltaCodec(),
              LzLiteCodec()]

INT_VALUES = [5, 5, 5, 7, 7, 1, 1, 1, 1, 0, -3, -3, 2**40, 2**40]
STR_VALUES = ["ship", "ship", "air", "ship", "rail", "rail", "air"]
DATE_VALUES = [date(1998, 1, 1), date(1998, 1, 1), date(1998, 1, 5),
               date(1998, 2, 1), date(1997, 12, 31)]


@pytest.mark.parametrize("codec", ALL_CODECS, ids=lambda c: c.name)
def test_int64_round_trip(codec):
    encoded = codec.encode(INT_VALUES, DataType.INT64)
    assert codec.decode(encoded, DataType.INT64) == INT_VALUES


@pytest.mark.parametrize("codec", [NoneCodec(), RleCodec(),
                                   DictionaryCodec(), LzLiteCodec()],
                         ids=lambda c: c.name)
def test_varchar_round_trip(codec):
    encoded = codec.encode(STR_VALUES, DataType.VARCHAR)
    assert codec.decode(encoded, DataType.VARCHAR) == STR_VALUES


@pytest.mark.parametrize("codec", ALL_CODECS, ids=lambda c: c.name)
def test_date_round_trip(codec):
    encoded = codec.encode(DATE_VALUES, DataType.DATE)
    assert codec.decode(encoded, DataType.DATE) == DATE_VALUES


@pytest.mark.parametrize("codec", ALL_CODECS, ids=lambda c: c.name)
def test_empty_input_round_trip(codec):
    encoded = codec.encode([], DataType.INT32)
    assert codec.decode(encoded, DataType.INT32) == []


def test_rle_compresses_runs():
    values = [42] * 1000
    rle = RleCodec().encode(values, DataType.INT64)
    plain = NoneCodec().encode(values, DataType.INT64)
    assert len(rle) < len(plain) / 50


def test_rle_expands_unique_values():
    values = list(range(100))
    rle = RleCodec().encode(values, DataType.INT64)
    plain = NoneCodec().encode(values, DataType.INT64)
    assert len(rle) > len(plain)  # honest codec: no free lunch


def test_dictionary_compresses_low_cardinality_strings():
    values = ["pending", "shipped", "delivered"] * 500
    encoded = DictionaryCodec().encode(values, DataType.VARCHAR)
    plain = NoneCodec().encode(values, DataType.VARCHAR)
    assert len(encoded) < len(plain) / 10


def test_dictionary_index_width_is_minimal():
    # 2 distinct values -> 1 bit per row
    values = ["a", "b"] * 4000
    encoded = DictionaryCodec().encode(values, DataType.VARCHAR)
    assert len(encoded) < 8000 / 8 + 100


def test_delta_compresses_sorted_ints():
    values = list(range(1_000_000, 1_001_000))
    encoded = DeltaCodec().encode(values, DataType.INT64)
    plain = NoneCodec().encode(values, DataType.INT64)
    assert len(encoded) < len(plain) / 5


def test_delta_rejects_strings():
    with pytest.raises(CompressionError):
        DeltaCodec().encode(["a"], DataType.VARCHAR)
    assert not DeltaCodec().supports(DataType.VARCHAR)


def test_delta_handles_negative_jumps():
    values = [100, 5, 90, -1000, 2**50, 0]
    codec = DeltaCodec()
    assert codec.decode(codec.encode(values, DataType.INT64),
                        DataType.INT64) == values


def test_lzlite_compresses_repetitive_bytes():
    codec = LzLiteCodec()
    raw = b"abcdefgh" * 1000
    compressed = codec.compress_bytes(raw)
    assert len(compressed) < len(raw) / 10
    assert codec.decompress_bytes(compressed) == raw


def test_lzlite_handles_incompressible_bytes():
    import random
    rng = random.Random(7)
    raw = bytes(rng.randrange(256) for _ in range(5000))
    codec = LzLiteCodec()
    assert codec.decompress_bytes(codec.compress_bytes(raw)) == raw


def test_lzlite_overlapping_match():
    # Classic LZ edge case: run of one byte forces overlapping copies.
    codec = LzLiteCodec()
    raw = b"a" * 300
    assert codec.decompress_bytes(codec.compress_bytes(raw)) == raw


def test_rle_rejects_nulls():
    with pytest.raises(CompressionError):
        RleCodec().encode([1, None, 2], DataType.INT64)


def test_dictionary_rejects_nulls():
    with pytest.raises(CompressionError):
        DictionaryCodec().encode([None], DataType.VARCHAR)


def test_codec_by_name():
    assert codec_by_name("rle").name == "rle"
    with pytest.raises(CompressionError):
        codec_by_name("zstd")


def test_best_codec_prefers_rle_for_runs():
    values = [3] * 5000
    assert best_codec_for(values, DataType.INT64).name == "rle"


def test_best_codec_prefers_delta_for_sorted():
    values = list(range(5000))
    assert best_codec_for(values, DataType.INT64).name == "delta"


def test_best_codec_for_empty_is_none():
    assert best_codec_for([], DataType.INT64).name == "none"


def test_decode_cycles_cost_models_ordered():
    # Heavier codecs must charge more CPU: the Figure 2 trade-off
    # depends on this ordering being sane.
    assert NoneCodec().decode_cycles_per_byte == 0.0
    assert (RleCodec().decode_cycles_per_byte
            < DictionaryCodec().decode_cycles_per_byte
            < LzLiteCodec().decode_cycles_per_byte)
