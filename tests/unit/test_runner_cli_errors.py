"""Runner CLI error paths and pipe hygiene.

Every failure mode must exit nonzero with a single ``error:`` line on
stderr — never a traceback — and every subcommand must exit cleanly
when its stdout pipe closes early (``... | head``).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.runner import cli

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _one_line_error(capsys):
    err = capsys.readouterr().err
    lines = [ln for ln in err.strip().splitlines() if ln]
    assert len(lines) == 1, f"expected one error line, got:\n{err}"
    assert lines[0].startswith("error: ")
    assert "Traceback" not in err
    return lines[0]


class TestErrorPaths:
    def test_unknown_experiment_is_one_line(self, capsys):
        assert cli.main(["run", "definitely-not-registered"]) == 2
        line = _one_line_error(capsys)
        assert "definitely-not-registered" in line

    def test_unknown_experiment_in_trace_too(self, capsys):
        assert cli.main(["trace", "definitely-not-registered"]) == 2
        _one_line_error(capsys)

    def test_bad_knob_value_is_one_line(self, capsys):
        assert cli.main(["run", "fig1", "--quiet", "--no-cache",
                         "--disks", "bogus"]) == 2
        line = _one_line_error(capsys)
        assert "fig1" in line and "bogus" in line

    def test_unknown_knob_name_is_one_line(self, capsys):
        assert cli.main(["run", "fig1", "--quiet", "--no-cache",
                         "--not-a-knob", "1"]) == 2
        line = _one_line_error(capsys)
        assert "not_a_knob" in line

    def test_knob_missing_value_is_one_line(self, capsys):
        assert cli.main(["run", "fig1", "--quiet", "--no-cache",
                         "--disks"]) == 2
        _one_line_error(capsys)

    def test_cache_clear_missing_dir_is_one_line(self, capsys,
                                                 tmp_path):
        missing = tmp_path / "never-created"
        assert cli.main(["cache", "clear",
                         "--cache", str(missing)]) == 2
        line = _one_line_error(capsys)
        assert str(missing) in line

    def test_cache_clear_existing_dir_still_works(self, capsys,
                                                  tmp_path):
        tmp_path.mkdir(exist_ok=True)
        assert cli.main(["cache", "clear", "--cache",
                         str(tmp_path)]) == 0
        assert "removed 0" in capsys.readouterr().out


class TestCacheStatsJson:
    def test_json_output_is_machine_readable(self, capsys, tmp_path):
        assert cli.main(["cache", "stats", "--json",
                         "--cache", str(tmp_path)]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats == {"root": str(tmp_path), "entries": 0,
                         "total_bytes": 0}

    def test_json_counts_entries(self, capsys, tmp_path):
        from repro.runner import ResultCache
        cache = ResultCache(tmp_path)
        cache.put("ab" + "0" * 62, {"payload": 1})
        assert cli.main(["cache", "stats", "--json",
                         "--cache", str(tmp_path)]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 1
        assert stats["total_bytes"] > 0

    def test_plain_output_unchanged(self, capsys, tmp_path):
        assert cli.main(["cache", "stats",
                         "--cache", str(tmp_path)]) == 0
        assert "cache root" in capsys.readouterr().out


class _ClosedPipe:
    """A stdout whose consumer has gone away: every write raises."""

    def __init__(self):
        self._null = open(os.devnull, "w", encoding="utf-8")

    def write(self, text):
        raise BrokenPipeError(32, "Broken pipe")

    def flush(self):
        raise BrokenPipeError(32, "Broken pipe")

    def fileno(self):
        return self._null.fileno()

    def close(self):
        self._null.close()


class TestBrokenPipe:
    @pytest.fixture()
    def closed_stdout(self, monkeypatch):
        fake = _ClosedPipe()
        monkeypatch.setattr(sys, "stdout", fake)
        yield fake
        fake.close()

    def test_list_survives_closed_pipe(self, closed_stdout):
        assert cli.main(["list"]) == 0

    def test_cache_stats_survives_closed_pipe(self, closed_stdout,
                                              tmp_path):
        assert cli.main(["cache", "stats",
                         "--cache", str(tmp_path)]) == 0

    def test_cache_stats_json_survives_closed_pipe(self, closed_stdout,
                                                   tmp_path):
        assert cli.main(["cache", "stats", "--json",
                         "--cache", str(tmp_path)]) == 0

    def test_run_survives_closed_pipe(self, closed_stdout, tmp_path):
        assert cli.main(["run", "proportionality", "--quiet",
                         "--cache", str(tmp_path / "c"),
                         "--utilization", "0.5",
                         "--window_seconds", "5.0"]) == 0

    @pytest.mark.parametrize("argv", [
        "list",
        "cache stats",
    ])
    def test_real_pipeline_to_head(self, argv):
        """End to end through a real OS pipe: `... | head -n 1`."""
        shell = (f"{sys.executable} -m repro.runner {argv} 2>/dev/null"
                 " | head -n 1")
        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC + (
            os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH") else "")
        proc = subprocess.run(["bash", "-o", "pipefail", "-c", shell],
                              capture_output=True, text=True, env=env,
                              timeout=120)
        assert proc.returncode == 0, proc.stderr
        assert "Traceback" not in proc.stderr
