"""Unit tests for the heterogeneous-fleet surface: ``NodeClass`` /
``FleetSpec`` composition and hashing, the node-class registry, the
``DispatchContext`` routing protocol and ``cost_aware`` policy, the
class-aware autoscaler, per-class report rollups, per-class fault
lanes, and the deprecated ``n_nodes=``/``model=`` shims."""

import warnings

import pytest

from repro.faults import build_fault_schedule, simulate_faulty_service
from repro.faults.schedule import FaultError
from repro.service import (Autoscaler, CostAware, DispatchContext,
                           DispatchPolicy, FleetNode, FleetSpec, NodeClass,
                           NodePowerModel, ServiceError, build_stream,
                           make_policy, node_class_model, policy_knob_names,
                           register_node_class, rollup_classes,
                           simulate_service)
from repro.service.report import NodeStats


def cheap_model(**overrides):
    base = dict(name="cheap", idle_watts=40.0, peak_watts=80.0,
                boot_seconds=5.0, boot_joules=400.0,
                drain_seconds=1.0, drain_joules=40.0, speed_factor=0.5)
    base.update(overrides)
    return NodePowerModel(**base)


def dear_model(**overrides):
    base = dict(name="dear", idle_watts=100.0, peak_watts=250.0,
                boot_seconds=20.0, boot_joules=5000.0,
                drain_seconds=5.0, drain_joules=500.0, speed_factor=1.0)
    base.update(overrides)
    return NodePowerModel(**base)


class TestNodeClass:
    def test_rejects_empty_name_and_negative_count(self):
        with pytest.raises(ServiceError, match="needs a name"):
            NodeClass(name="", count=1, model=cheap_model())
        with pytest.raises(ServiceError, match="negative"):
            NodeClass(name="x", count=-1, model=cheap_model())

    def test_capacity_scales_with_speed_factor(self):
        cls = NodeClass(name="x", count=4, model=cheap_model())
        assert cls.capacity == pytest.approx(4 * 0.5)

    def test_dict_round_trip(self):
        cls = NodeClass(name="x", count=3, model=dear_model())
        assert NodeClass.from_dict(cls.to_dict()) == cls


class TestFleetSpec:
    def test_needs_at_least_one_node(self):
        with pytest.raises(ServiceError, match="at least one node"):
            FleetSpec(classes=(NodeClass("x", 0, cheap_model()),))

    def test_members_use_global_index_order(self):
        fleet = FleetSpec(classes=(NodeClass("a", 2, dear_model()),
                                   NodeClass("b", 1, cheap_model())))
        names = [(name, cls) for name, cls, _model in fleet.members()]
        assert names == [("a000", "a"), ("a001", "a"), ("b002", "b")]

    def test_homogeneous_keeps_historical_node_names(self):
        fleet = FleetSpec.homogeneous(3)
        assert [n for n, _c, _m in fleet.members()] \
            == ["node000", "node001", "node002"]

    def test_of_resolves_registry_and_drops_zero_counts(self):
        fleet = FleetSpec.of(beefy=2, wimpy=0)
        assert [c.name for c in fleet.classes] == ["beefy"]
        assert fleet.n_nodes == 2

    def test_of_unknown_class_is_one_line_error(self):
        with pytest.raises(ServiceError, match="unknown node class"):
            FleetSpec.of(quantum=3)

    def test_of_empty_rejected(self):
        with pytest.raises(ServiceError, match="at least one class"):
            FleetSpec.of()

    def test_total_capacity_sums_classes(self):
        fleet = FleetSpec(classes=(NodeClass("a", 2, dear_model()),
                                   NodeClass("b", 4, cheap_model())))
        assert fleet.total_capacity == pytest.approx(2 * 1.0 + 4 * 0.5)

    def test_dict_round_trip_inverts_exactly(self):
        fleet = FleetSpec(classes=(NodeClass("a", 2, dear_model()),
                                   NodeClass("b", 4, cheap_model())))
        assert FleetSpec.from_dict(fleet.to_dict()) == fleet

    def test_fleet_hash_is_stable_and_composition_sensitive(self):
        a = FleetSpec(classes=(NodeClass("a", 2, dear_model()),))
        b = FleetSpec(classes=(NodeClass("a", 2, dear_model()),))
        c = FleetSpec(classes=(NodeClass("a", 3, dear_model()),))
        assert a.fleet_hash() == b.fleet_hash()
        assert a.fleet_hash() != c.fleet_hash()
        assert a.to_dict()["hash"] == a.fleet_hash()

    def test_from_dict_rejects_edited_hash(self):
        data = FleetSpec.homogeneous(2).to_dict()
        data["classes"][0]["count"] = 3
        with pytest.raises(ServiceError, match="hash mismatch"):
            FleetSpec.from_dict(data)


class TestNodeClassRegistry:
    def test_builtin_classes_are_calibrated(self):
        beefy = node_class_model("beefy")
        wimpy = node_class_model("wimpy")
        assert beefy.speed_factor == 1.0
        assert wimpy.speed_factor < 1.0
        assert wimpy.idle_watts < beefy.idle_watts

    def test_register_overrides_and_invalidates_cache(self):
        register_node_class("_test_tier", cheap_model)
        try:
            assert node_class_model("_test_tier").name == "cheap"
            register_node_class("_test_tier",
                                lambda: cheap_model(name="cheap2"))
            assert node_class_model("_test_tier").name == "cheap2"
        finally:
            from repro.service.spec import NODE_CLASS_REGISTRY
            NODE_CLASS_REGISTRY.pop("_test_tier", None)


class TestBootJoulesDefault:
    def test_default_tracks_peak_and_boot_overrides(self):
        model = NodePowerModel(idle_watts=50.0, peak_watts=120.0,
                               boot_seconds=8.0)
        assert model.boot_joules == pytest.approx(120.0 * 8.0)

    def test_explicit_boot_joules_wins(self):
        model = NodePowerModel(idle_watts=50.0, peak_watts=120.0,
                               boot_seconds=8.0, boot_joules=123.0)
        assert model.boot_joules == 123.0

    def test_dict_round_trip(self):
        model = NodePowerModel(idle_watts=50.0, peak_watts=120.0)
        assert NodePowerModel.from_dict(model.to_dict()) == model


class TestDispatchContext:
    def _ctx(self, sla=None):
        nodes = [FleetNode("a", dear_model(), on=True),
                 FleetNode("b", cheap_model(), on=True)]
        return DispatchContext(nodes, [0, 1], now=0.0,
                               service_seconds=1.0, sla_seconds=sla)

    def test_scaled_service_divides_by_speed_factor(self):
        ctx = self._ctx()
        assert ctx.scaled_service_seconds(0) == pytest.approx(1.0)
        assert ctx.scaled_service_seconds(1) == pytest.approx(2.0)

    def test_marginal_joules_is_watts_times_execution(self):
        ctx = self._ctx()
        assert ctx.marginal_joules(0) == pytest.approx((250 - 100) * 1.0)
        assert ctx.marginal_joules(1) == pytest.approx((80 - 40) * 2.0)

    def test_marginal_cost_rate_is_arrival_independent(self):
        ctx = self._ctx()
        assert ctx.marginal_cost_rate(0) == pytest.approx(150.0)
        assert ctx.marginal_cost_rate(1) == pytest.approx(80.0)

    def test_fits_sla_vacuous_without_sla(self):
        assert self._ctx(sla=None).fits_sla(1)

    def test_fits_sla_reads_latency_estimate(self):
        ctx = self._ctx(sla=1.5)
        assert ctx.fits_sla(0)          # 1.0 s execution fits 1.5 s
        assert not ctx.fits_sla(1)      # 2.0 s execution does not


class TestCostAware:
    def test_routes_to_cheapest_marginal_joules_within_sla(self):
        nodes = [FleetNode("a", dear_model(), on=True),
                 FleetNode("b", cheap_model(), on=True)]
        policy = CostAware()
        # generous SLA: the wimpy node's 80 J beat the beefy 150 J
        ctx = DispatchContext(nodes, [0, 1], 0.0, 1.0, sla_seconds=10.0)
        assert policy.route(ctx) == 1
        # tight SLA: only the fast node fits the budget
        ctx = DispatchContext(nodes, [0, 1], 0.0, 1.0, sla_seconds=1.5)
        assert policy.route(ctx) == 0

    def test_falls_back_to_fastest_when_nothing_fits(self):
        nodes = [FleetNode("a", dear_model(), on=True),
                 FleetNode("b", cheap_model(), on=True)]
        ctx = DispatchContext(nodes, [0, 1], 0.0, 1.0, sla_seconds=0.1)
        assert CostAware().route(ctx) == 0

    def test_registered_and_knob_checked(self):
        policy = make_policy("cost_aware", sla_slack_fraction=0.8)
        assert isinstance(policy, CostAware)
        assert "sla_slack_fraction" in policy_knob_names("cost_aware")


class TestPolicyProtocol:
    def test_unknown_knob_is_one_line_error(self):
        with pytest.raises(ServiceError, match="unknown knob"):
            make_policy("power_aware", warp_factor=9)

    def test_instance_with_knobs_rejected(self):
        with pytest.raises(ServiceError, match="already constructed"):
            make_policy(CostAware(), sla_slack_fraction=0.5)

    def test_select_only_third_party_policy_still_routes(self):
        class Legacy(DispatchPolicy):
            name = "legacy"

            def select(self, nodes, on_ids, now, service_s):
                return on_ids[-1]

        ctx = DispatchContext([FleetNode("a", cheap_model(), on=True),
                               FleetNode("b", cheap_model(), on=True)],
                              [0, 1], 0.0, 1.0)
        assert Legacy().route(ctx) == 1

    def test_neither_protocol_is_an_error(self):
        class Hollow(DispatchPolicy):
            name = "hollow"

        ctx = DispatchContext([FleetNode("a", cheap_model(), on=True)],
                              [0], 0.0, 1.0)
        with pytest.raises(ServiceError, match="neither route"):
            Hollow().route(ctx)


class TestClassAwareAutoscaler:
    def _fleet(self):
        # at target 0.55: cheap 62 W / 0.275 node-eq = 225 J per unit
        # of work vs dear 182.5 W / 0.55 = 332 — cheap wins the rank
        nodes = [FleetNode("d0", dear_model(), on=False, node_class="d"),
                 FleetNode("d1", dear_model(), on=False, node_class="d"),
                 FleetNode("c0", cheap_model(), on=False, node_class="c"),
                 FleetNode("c1", cheap_model(), on=False, node_class="c")]
        return nodes

    def test_scale_up_boots_cheapest_work_cost_first(self):
        nodes = self._fleet()
        dear, cheap = dear_model(), cheap_model()
        assert Autoscaler._work_cost(cheap, 0.55) \
            < Autoscaler._work_cost(dear, 0.55)
        scaler = Autoscaler(dear, min_nodes=1, epoch_seconds=10.0)
        scaler.observe(2.0)              # 0.2 service-seconds/s demand
        on_ids = []
        scaler.step(10.0, nodes, on_ids)
        assert on_ids, "demand must boot something"
        assert all(nodes[i].node_class == "c" for i in on_ids)

    def test_emergency_skips_classes_whose_breakeven_exceeds_downtime(self):
        nodes = self._fleet()
        cheap_be = cheap_model().breakeven_seconds()   # 440/40 = 11 s
        dear_be = dear_model().breakeven_seconds()     # 5500/100 = 55 s
        downtime = (cheap_be + dear_be) / 2.0
        scaler = Autoscaler(dear_model(), min_nodes=1)
        scaler.observe(1000.0)
        scaler.step(30.0, nodes, [0])    # prime the smoothed demand up
        for n in nodes:                  # park everything again
            if n.on:
                n.power_off(max(60.0, n.busy_until))
            n.busy_until = 0.0
        on_ids = []
        booted = scaler.emergency(100.0, nodes, on_ids, downtime)
        assert booted, "outage above cheap break-even must boot spares"
        assert all(nodes[i].node_class == "c" for i in booted)

    def test_homogeneous_counts_match_desired_nodes(self):
        model = dear_model()
        scaler = Autoscaler(model, min_nodes=2, epoch_seconds=10.0)
        nodes = [FleetNode(f"n{i}", model, on=(i < 2)) for i in range(6)]
        scaler.observe(30.0)             # 3 node-equivalents of demand
        on_ids = [0, 1]
        scaler.step(10.0, nodes, on_ids)
        assert len(on_ids) == scaler.desired_nodes(6)


class TestClassRollups:
    def test_rollup_merges_duplicate_class_names(self):
        stats = [NodeStats("a0", 5, 10.0, 2.0, 100.0, 1, 0, "a"),
                 NodeStats("b0", 1, 10.0, 1.0, 50.0, 0, 1, "b"),
                 NodeStats("a1", 3, 10.0, 1.0, 60.0, 1, 0, "a")]
        rows = rollup_classes(stats)
        assert [r.node_class for r in rows] == ["a", "b"]
        a = rows[0]
        assert (a.count, a.completed, a.boots) == (2, 8, 2)
        assert a.energy_joules == pytest.approx(160.0)
        assert a.joules_per_query == pytest.approx(160.0 / 8)
        assert rows[1].crashes == 1

    def test_simulate_service_reports_per_class_rows(self):
        stream = build_stream(400, seed=3)
        fleet = FleetSpec(classes=(NodeClass("d", 2, dear_model()),
                                   NodeClass("c", 2, cheap_model())))
        report = simulate_service(stream, fleet=fleet, policy="round_robin")
        assert [c.node_class for c in report.classes] == ["d", "c"]
        assert sum(c.completed for c in report.classes) \
            == report.queries_completed
        assert sum(c.energy_joules for c in report.classes) \
            == pytest.approx(report.energy_joules)
        assert report.node_class("d").count == 2
        with pytest.raises(ServiceError, match="no node class"):
            report.node_class("z")
        assert report.fleet["hash"] == fleet.fleet_hash()


class TestPerClassFaultLanes:
    def test_schedule_needs_exactly_one_sizing(self):
        with pytest.raises(FaultError, match="exactly one"):
            build_fault_schedule(horizon_seconds=10.0)
        with pytest.raises(FaultError, match="exactly one"):
            build_fault_schedule(4, horizon_seconds=10.0,
                                 fleet=FleetSpec.homogeneous(4))

    def test_resizing_one_class_never_moves_anothers_faults(self):
        small = FleetSpec(classes=(NodeClass("a", 2, dear_model()),
                                   NodeClass("b", 2, cheap_model())))
        grown = FleetSpec(classes=(NodeClass("a", 2, dear_model()),
                                   NodeClass("b", 5, cheap_model())))
        kw = dict(horizon_seconds=5000.0, seed=11,
                  crash_rate_per_node_hour=2.0,
                  throttle_rate_per_node_hour=2.0,
                  disk_rate_per_node_hour=1.0,
                  timeout_rate_per_node_hour=1.0)
        ev_small = build_fault_schedule(fleet=small, **kw).events
        ev_grown = build_fault_schedule(fleet=grown, **kw).events
        first_class = lambda evs: sorted(
            (e.kind, e.node, e.start, e.duration, e.severity)
            for e in evs if e.node < 2)
        assert first_class(ev_small) == first_class(ev_grown)

    def test_hetero_chaos_run_rolls_up_crashes_per_class(self):
        stream = build_stream(1500, seed=5)
        fleet = FleetSpec(classes=(NodeClass("d", 2, dear_model()),
                                   NodeClass("c", 2, cheap_model())))
        schedule = build_fault_schedule(
            fleet=fleet, horizon_seconds=stream.duration_seconds,
            seed=4, crash_rate_per_node_hour=40.0)
        report = simulate_faulty_service(stream, schedule, fleet=fleet,
                                         policy="round_robin")
        assert {c.node_class for c in report.classes} == {"d", "c"}
        assert sum(c.crashes for c in report.classes) \
            == sum(n.crashes for n in report.nodes)


class TestDeprecatedShims:
    def test_simulate_service_n_nodes_warns_and_matches_fleet(self):
        stream = build_stream(300, seed=1)
        with pytest.warns(DeprecationWarning, match="deprecated"):
            old = simulate_service(stream, n_nodes=4, policy="round_robin")
        new = simulate_service(stream, fleet=FleetSpec.homogeneous(4),
                               policy="round_robin")
        assert old.energy_joules == new.energy_joules
        assert old.p95_latency_seconds == new.p95_latency_seconds

    def test_simulate_faulty_service_shim_warns(self):
        stream = build_stream(200, seed=1)
        schedule = build_fault_schedule(
            2, horizon_seconds=stream.duration_seconds, seed=0)
        with pytest.warns(DeprecationWarning, match="deprecated"):
            simulate_faulty_service(stream, schedule, n_nodes=2,
                                    policy="round_robin")

    def test_fleet_and_shims_are_mutually_exclusive(self):
        stream = build_stream(100, seed=1)
        with pytest.raises(ServiceError, match="not both"):
            simulate_service(stream, fleet=FleetSpec.homogeneous(2),
                             n_nodes=2)

    def test_fleet_must_be_a_spec(self):
        stream = build_stream(100, seed=1)
        with pytest.raises(ServiceError, match="must be a FleetSpec"):
            simulate_service(stream, fleet=4)

    def test_default_call_does_not_warn(self):
        stream = build_stream(200, seed=1)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            simulate_service(stream, policy="round_robin")
