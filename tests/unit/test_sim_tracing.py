"""Unit tests for time-series tracing."""

import pytest

from repro.errors import SimulationError
from repro.sim import TimeSeries, TraceRecorder


def make_series():
    ts = TimeSeries("power")
    ts.record(0.0, 10.0)
    ts.record(2.0, 50.0)
    ts.record(5.0, 0.0)
    return ts


def test_value_at_exact_points():
    ts = make_series()
    assert ts.value_at(0.0) == 10.0
    assert ts.value_at(2.0) == 50.0
    assert ts.value_at(5.0) == 0.0


def test_value_at_between_points():
    ts = make_series()
    assert ts.value_at(1.0) == 10.0
    assert ts.value_at(3.5) == 50.0
    assert ts.value_at(100.0) == 0.0


def test_value_before_first_sample_raises():
    ts = make_series()
    with pytest.raises(SimulationError):
        ts.value_at(-0.1)


def test_integrate_full_span():
    ts = make_series()
    # 10 W for 2 s + 50 W for 3 s = 170 J up to t=5
    assert ts.integrate(0.0, 5.0) == pytest.approx(170.0)


def test_integrate_partial_span():
    ts = make_series()
    # [1, 3]: 10 W for 1 s + 50 W for 1 s = 60 J
    assert ts.integrate(1.0, 3.0) == pytest.approx(60.0)


def test_integrate_beyond_last_sample_extends_final_value():
    ts = make_series()
    assert ts.integrate(5.0, 10.0) == pytest.approx(0.0)
    ts2 = TimeSeries()
    ts2.record(0.0, 7.0)
    assert ts2.integrate(0.0, 4.0) == pytest.approx(28.0)


def test_integrate_empty_interval_is_zero():
    ts = make_series()
    assert ts.integrate(3.0, 3.0) == 0.0


def test_integrate_reversed_interval_raises():
    ts = make_series()
    with pytest.raises(SimulationError):
        ts.integrate(3.0, 1.0)


def test_integrate_before_series_start_raises():
    ts = TimeSeries()
    ts.record(5.0, 1.0)
    with pytest.raises(SimulationError):
        ts.integrate(0.0, 10.0)


def test_average():
    ts = make_series()
    assert ts.average(0.0, 5.0) == pytest.approx(34.0)


def test_record_backwards_time_raises():
    ts = TimeSeries()
    ts.record(5.0, 1.0)
    with pytest.raises(SimulationError):
        ts.record(4.0, 2.0)


def test_record_same_time_overwrites():
    ts = TimeSeries()
    ts.record(1.0, 5.0)
    ts.record(1.0, 9.0)
    assert len(ts) == 1
    assert ts.value_at(1.0) == 9.0


def test_resample_grid():
    ts = make_series()
    samples = ts.resample(0.0, 4.0, 1.0)
    assert samples == [(0.0, 10.0), (1.0, 10.0), (2.0, 50.0),
                       (3.0, 50.0), (4.0, 50.0)]


def test_resample_bad_step():
    ts = make_series()
    with pytest.raises(SimulationError):
        ts.resample(0.0, 1.0, 0.0)


def test_recorder_creates_series_lazily():
    rec = TraceRecorder()
    assert "cpu" not in rec
    rec.record("cpu", 0.0, 90.0)
    assert "cpu" in rec
    assert rec.series("cpu").value_at(0.0) == 90.0


def test_recorder_total_across_keys():
    rec = TraceRecorder()
    rec.record("cpu", 0.0, 90.0)
    rec.record("ssd", 0.0, 5.0)
    assert rec.total(["cpu", "ssd"], 0.0, 2.0) == pytest.approx(190.0)


def test_recorder_keys_sorted():
    rec = TraceRecorder()
    rec.record("z", 0.0, 1.0)
    rec.record("a", 0.0, 1.0)
    assert rec.keys() == ["a", "z"]


def test_iteration_yields_pairs():
    ts = make_series()
    assert list(ts) == [(0.0, 10.0), (2.0, 50.0), (5.0, 0.0)]
