"""Unit tests for tiered placement and energy-motivated redundancy."""

import pytest

from repro.errors import StorageError
from repro.storage.tiering import (
    StorageTier,
    TableProfile,
    TieringAdvisor,
)
from repro.units import GB, MB

SSD = StorageTier("ssd", capacity_bytes=100 * GB,
                  bandwidth_bytes_per_s=500 * MB,
                  active_watts=3.0, idle_watts=0.3,
                  standby_watts=0.1, can_sleep=True)
FAST_DISKS = StorageTier("fast-disks", capacity_bytes=1000 * GB,
                         bandwidth_bytes_per_s=300 * MB,
                         active_watts=40.0, idle_watts=30.0,
                         standby_watts=5.0, can_sleep=True)
ARCHIVE = StorageTier("archive", capacity_bytes=4000 * GB,
                      bandwidth_bytes_per_s=150 * MB,
                      active_watts=25.0, idle_watts=18.0,
                      standby_watts=2.0, can_sleep=True)


def advisor():
    return TieringAdvisor([SSD, FAST_DISKS, ARCHIVE])


class TestTierModel:
    def test_busy_fraction_clamped(self):
        assert SSD.busy_fraction(250 * MB) == pytest.approx(0.5)
        assert SSD.busy_fraction(10_000 * MB) == 1.0

    def test_power_interpolates(self):
        assert FAST_DISKS.power_watts(0.0) == pytest.approx(30.0)
        assert FAST_DISKS.power_watts(300 * MB) == pytest.approx(40.0)
        assert FAST_DISKS.power_watts(150 * MB) == pytest.approx(35.0)

    def test_unpowered_sleepable_tier_draws_standby(self):
        assert FAST_DISKS.power_watts(0.0, powered=False) == \
            pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(StorageError):
            StorageTier("bad", capacity_bytes=0,
                        bandwidth_bytes_per_s=1.0,
                        active_watts=1.0, idle_watts=0.5)
        with pytest.raises(StorageError):
            StorageTier("bad", capacity_bytes=1.0,
                        bandwidth_bytes_per_s=1.0,
                        active_watts=1.0, idle_watts=2.0)
        with pytest.raises(StorageError):
            TableProfile("t", size_bytes=0)


class TestPlacement:
    def test_hot_table_lands_on_ssd(self):
        plan = advisor().place([
            TableProfile("hot", 20 * GB, read_bytes_per_s=100 * MB),
            TableProfile("cold", 500 * GB, read_bytes_per_s=0.1 * MB),
        ])
        assert plan.assignments["hot"] == "ssd"

    def test_capacity_respected(self):
        plan = advisor().place([
            TableProfile("huge", 2000 * GB, read_bytes_per_s=50 * MB),
        ])
        assert plan.assignments["huge"] == "archive"  # only tier that fits

    def test_unplaceable_table_rejected(self):
        with pytest.raises(StorageError):
            advisor().place([TableProfile("too-big", 10_000 * GB)])

    def test_unused_sleepable_tiers_sleep(self):
        plan = advisor().place([
            TableProfile("tiny", 1 * GB, read_bytes_per_s=1 * MB)])
        assert plan.assignments["tiny"] == "ssd"
        assert "fast-disks" in plan.sleeping_tiers
        assert "archive" in plan.sleeping_tiers
        assert plan.tier_watts["fast-disks"] == pytest.approx(5.0)

    def test_total_watts_sums_tiers(self):
        plan = advisor().place([
            TableProfile("a", 10 * GB, read_bytes_per_s=10 * MB),
            TableProfile("b", 500 * GB, read_bytes_per_s=10 * MB),
        ])
        assert plan.total_watts == pytest.approx(
            sum(plan.tier_watts.values()))


class TestReplication:
    def test_replica_saving_for_read_only_table(self):
        adv = advisor()
        table = TableProfile("reads", 30 * GB,
                             read_bytes_per_s=60 * MB)
        saving = adv.replication_saving_watts(table, FAST_DISKS, SSD)
        # disk drops to standby (30 -> 5 is captured via idle delta) and
        # sheds its read busy power; ssd picks up a small load
        assert saving > 20.0

    def test_writes_block_the_sleep(self):
        adv = advisor()
        read_only = TableProfile("r", 30 * GB, read_bytes_per_s=60 * MB)
        read_write = TableProfile("rw", 30 * GB,
                                  read_bytes_per_s=60 * MB,
                                  write_bytes_per_s=5 * MB)
        assert adv.replication_saving_watts(read_only, FAST_DISKS, SSD) > \
            adv.replication_saving_watts(read_write, FAST_DISKS, SSD)

    def test_pinned_table_stays_on_its_tier(self):
        plan = advisor().place([
            TableProfile("ledger", 20 * GB, read_bytes_per_s=100 * MB,
                         pinned_tier="fast-disks")])
        assert plan.assignments["ledger"] == "fast-disks"

    def test_pinned_table_too_big_rejected(self):
        with pytest.raises(StorageError):
            advisor().place([
                TableProfile("ledger", 200 * GB, pinned_tier="ssd")])

    def test_plan_with_replicas_beats_plain_plan(self):
        """The paper's §5.1 trick: the system of record is pinned to the
        disk tier; a flash read replica lets those disks sleep."""
        tables = [
            TableProfile("warehouse", 80 * GB,
                         read_bytes_per_s=80 * MB,
                         pinned_tier="fast-disks"),
            TableProfile("archive_logs", 2000 * GB,
                         read_bytes_per_s=0.0,
                         pinned_tier="archive"),
        ]
        adv = advisor()
        plain = adv.place(tables)
        replicated = adv.plan_with_replicas(tables)
        assert replicated.replicas["warehouse"] == "ssd"
        assert replicated.total_watts < 0.7 * plain.total_watts

    def test_replica_frees_home_tier_to_sleep(self):
        tables = [TableProfile("hotset", 40 * GB,
                               read_bytes_per_s=90 * MB,
                               pinned_tier="fast-disks")]
        adv = TieringAdvisor([FAST_DISKS, SSD])
        plan = adv.plan_with_replicas(tables)
        assert plan.replicas["hotset"] == "ssd"
        assert "fast-disks" in plan.sleeping_tiers
        assert plan.tier_watts["fast-disks"] == pytest.approx(
            FAST_DISKS.standby_watts)
