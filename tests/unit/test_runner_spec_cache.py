"""Unit tests for repro.runner: spec hashing, the on-disk result
cache, report round-tripping, and the CLI's knob parsing."""

import json

import pytest

import repro
from repro.core.experiments import Figure1Result, Figure2Result
from repro.core.profiler import EnergyProfile, ProfilePoint
from repro.runner import (
    ExperimentDef,
    ExperimentSpec,
    ResultCache,
    Runner,
    SpecError,
    UnknownExperimentError,
    decode_report,
    encode_report,
    point_key,
    register_experiment,
)
from repro.runner.cli import main, parse_knob_args, parse_knob_value
from repro.workloads.duty_cycle import DutyCycleReport
from repro.workloads.scan_workload import ScanReport
from repro.workloads.throughput import ThroughputReport


def toy_point(x, factor=2.0, seed=2009):
    """A picklable toy experiment: no simulation, instant reports."""
    return ThroughputReport(streams=1, queries_completed=1,
                            makespan_seconds=float(x),
                            energy_joules=float(x) * factor + seed * 0.0)


register_experiment(ExperimentDef(
    name="unit_toy", title="toy experiment for unit tests",
    point_fn=toy_point, defaults={"x": [1, 2], "factor": 2.0}))


class TestSpecHashing:
    def test_same_spec_same_key(self):
        a = ExperimentSpec("fig2", knobs={"scale_factor": 0.001,
                                          "dvfs_fraction": 1.0})
        b = ExperimentSpec("fig2", knobs={"dvfs_fraction": 1.0,
                                          "scale_factor": 0.001})
        assert a.spec_hash() == b.spec_hash()

    def test_defaults_spelled_out_hash_the_same(self):
        assert (ExperimentSpec("fig2").spec_hash()
                == ExperimentSpec(
                    "fig2", knobs={"scale_factor": 0.002}).spec_hash())

    def test_knob_change_new_key(self):
        base = ExperimentSpec("fig2").spec_hash()
        assert ExperimentSpec(
            "fig2", knobs={"scale_factor": 0.001}).spec_hash() != base
        assert ExperimentSpec("fig2", seed=7).spec_hash() != base

    def test_tuple_and_list_sweeps_are_equivalent(self):
        assert (ExperimentSpec("unit_toy", knobs={"x": (1, 2)}).spec_hash()
                == ExperimentSpec("unit_toy",
                                  knobs={"x": [1, 2]}).spec_hash())

    def test_non_json_knob_rejected(self):
        with pytest.raises(SpecError):
            ExperimentSpec("unit_toy", knobs={"x": object()})
        with pytest.raises(SpecError):
            ExperimentSpec("unit_toy", knobs={"x": []})

    def test_round_trip(self):
        spec = ExperimentSpec("unit_toy", knobs={"x": [3, 4]}, seed=11)
        again = ExperimentSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.spec_hash() == spec.spec_hash()

    def test_unknown_experiment(self):
        with pytest.raises(UnknownExperimentError):
            ExperimentSpec("nope").points()


class TestPointGrid:
    def test_grid_expansion_order(self):
        spec = ExperimentSpec("unit_toy", knobs={"x": [1, 2],
                                                 "factor": [0.5, 1.5]})
        points = spec.points()
        # axes expand in sorted knob-name order: factor before x
        assert [(p["factor"], p["x"]) for p in points] == \
            [(0.5, 1), (0.5, 2), (1.5, 1), (1.5, 2)]

    def test_scalar_knobs_give_one_point(self):
        spec = ExperimentSpec("unit_toy", knobs={"x": 5})
        assert spec.points() == [{"x": 5, "factor": 2.0}]

    def test_point_seed_default_and_override(self):
        spec = ExperimentSpec("unit_toy", knobs={"x": 1}, seed=42)
        assert spec.point_seed(spec.points()[0]) == 42
        pinned = ExperimentSpec("unit_toy",
                                knobs={"x": 1, "seed": 7}, seed=42)
        assert pinned.point_seed(pinned.points()[0]) == 7


class TestResultCache:
    def test_point_key_version_sensitivity(self):
        knobs = {"x": 1}
        k1 = point_key("unit_toy", knobs, 2009, version="1.0.0")
        assert k1 == point_key("unit_toy", knobs, 2009, version="1.0.0")
        assert k1 != point_key("unit_toy", knobs, 2009, version="2.0.0")
        assert k1 != point_key("unit_toy", {"x": 2}, 2009,
                               version="1.0.0")
        assert k1 != point_key("unit_toy", knobs, 7, version="1.0.0")

    def test_put_get_clear_stats(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = point_key("unit_toy", {"x": 1}, 2009, version="v")
        assert cache.get(key) is None
        cache.put(key, {"hello": 1})
        assert key in cache
        assert cache.get(key) == {"hello": 1}
        stats = cache.stats()
        assert stats.entries == 1 and stats.total_bytes > 0
        assert cache.clear() == 1
        assert cache.get(key) is None
        assert cache.stats().entries == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = point_key("unit_toy", {"x": 1}, 2009, version="v")
        cache.put(key, {"ok": True})
        path = cache._path(key)
        path.write_text("{not json")
        assert cache.get(key) is None

    def test_runner_hits_then_version_bump_invalidates(
            self, tmp_path, monkeypatch):
        spec = ExperimentSpec("unit_toy")
        cache = tmp_path / "c"
        first = Runner(workers=1, cache=cache).run(spec)
        assert first.cache_hits == 0
        second = Runner(workers=1, cache=cache).run(spec)
        assert second.cache_hits == len(second.points) == 2
        assert second.to_json() == first.to_json()
        monkeypatch.setattr(repro, "__version__", "0.0.0-test")
        bumped = Runner(workers=1, cache=cache).run(spec)
        assert bumped.cache_hits == 0


class TestReportRoundTrip:
    CASES = [
        ThroughputReport(streams=2, queries_completed=4,
                         makespan_seconds=1.5, energy_joules=30.0,
                         breakdown_joules={"cpu": 20.0, "disk": 10.0},
                         query_seconds=[0.5, 1.0]),
        ScanReport(compressed=True, total_seconds=5.5, cpu_seconds=5.1,
                   io_seconds=4.0, energy_joules=487.0,
                   full_energy_joules=600.0, bytes_read=2.4e9,
                   compression_ratio=0.5),
        DutyCycleReport(kind="real", utilization=0.5,
                        window_seconds=100.0, average_watts=150.0,
                        work_seconds=50.0),
        EnergyProfile(knob_name="disks",
                      points=[ProfilePoint(36, 10.0, 100.0, 3.0)]),
    ]

    @pytest.mark.parametrize("report", CASES,
                             ids=lambda r: type(r).__name__)
    def test_encode_decode(self, report):
        payload = encode_report(report)
        json.dumps(payload)   # JSON-safe all the way down
        again = decode_report(payload)
        assert type(again) is type(report)
        assert again.to_dict() == report.to_dict()

    def test_figure_results_round_trip(self):
        tr = self.CASES[0]
        fig1 = Figure1Result(disk_counts=[36], reports=[tr])
        again = decode_report(encode_report(fig1))
        assert again.to_dict() == fig1.to_dict()
        assert again.profile.points[0].energy_joules == 30.0
        sr = self.CASES[1]
        fig2 = Figure2Result(uncompressed=sr, compressed=sr)
        assert decode_report(
            encode_report(fig2)).to_dict() == fig2.to_dict()


class TestRunnerToy:
    def test_grid_order_and_profile(self, tmp_path):
        spec = ExperimentSpec("unit_toy", knobs={"x": [3, 1, 2]})
        run = Runner(workers=1, cache=False).run(spec)
        assert [p.knobs["x"] for p in run.points] == [3, 1, 2]
        assert [p.report.makespan_seconds for p in run.points] == \
            [3.0, 1.0, 2.0]
        profile = run.aggregate()     # no aggregator -> EnergyProfile
        assert profile.knob_name == "x"
        assert [p.knob_value for p in profile.points] == [3, 1, 2]

    def test_events_are_streamed(self, tmp_path):
        from repro.runner import (PointFinished, PointStarted,
                                  RunFinished, RunStarted)
        events = []
        spec = ExperimentSpec("unit_toy")
        Runner(workers=1, cache=tmp_path / "c",
               on_event=events.append).run(spec)
        kinds = [type(e) for e in events]
        assert kinds[0] is RunStarted and kinds[-1] is RunFinished
        assert kinds.count(PointStarted) == 2
        assert kinds.count(PointFinished) == 2
        assert not any(e.cache_hit for e in events
                       if isinstance(e, PointFinished))
        events.clear()
        Runner(workers=1, cache=tmp_path / "c",
               on_event=events.append).run(spec)
        finished = [e for e in events if isinstance(e, PointFinished)]
        assert all(e.cache_hit for e in finished)

    def test_run_result_round_trip(self):
        from repro.runner import RunResult
        run = Runner(workers=1, cache=False).run(
            ExperimentSpec("unit_toy"))
        again = RunResult.from_dict(json.loads(run.to_json()))
        assert again.to_json() == run.to_json()

    def test_workers_validation(self):
        with pytest.raises(Exception):
            Runner(workers=0)

    def test_unknown_knob_fails_fast(self):
        from repro.runner import UnknownKnobError
        with pytest.raises(UnknownKnobError, match="scale_facter"):
            Runner(workers=1, cache=False).run(
                ExperimentSpec("fig2", knobs={"scale_facter": 0.001}))


class TestCli:
    def test_parse_knob_value(self):
        assert parse_knob_value("36") == 36
        assert parse_knob_value("0.5") == 0.5
        assert parse_knob_value("true") is True
        assert parse_knob_value("null") is None
        assert parse_knob_value("36,66") == [36, 66]
        assert parse_knob_value("delta") == "delta"

    def test_parse_knob_args(self):
        knobs = parse_knob_args(["--disks", "36,66",
                                 "--queries-per-stream", "3",
                                 "--codec=delta"])
        assert knobs == {"disks": [36, 66], "queries_per_stream": 3,
                         "codec": "delta"}
        with pytest.raises(Exception):
            parse_knob_args(["--disks"])
        with pytest.raises(Exception):
            parse_knob_args(["disks", "36"])

    def test_run_json_and_cache_commands(self, tmp_path, capsys):
        cache = str(tmp_path / "c")
        rc = main(["run", "unit_toy", "--x", "1,2", "--quiet",
                   "--json", "--cache", cache])
        assert rc == 0
        out = json.loads(capsys.readouterr().out)
        assert out["spec"]["experiment"] == "unit_toy"
        assert len(out["points"]) == 2
        assert main(["cache", "stats", "--cache", cache]) == 0
        assert "entries    : 2" in capsys.readouterr().out
        assert main(["cache", "clear", "--cache", cache]) == 0
        assert "removed 2" in capsys.readouterr().out

    def test_list_and_unknown_experiment(self, capsys):
        assert main(["list"]) == 0
        assert "fig1" in capsys.readouterr().out
        assert main(["run", "nope", "--quiet"]) == 2
        assert "unknown experiment" in capsys.readouterr().err
        assert main(["run", "fig2", "--scale-facter", "0.001",
                     "--quiet"]) == 2
        assert "unknown knob" in capsys.readouterr().err
