"""Unit tests for the CASE expression and the Q14 promo query."""

from datetime import date

import pytest

from repro.errors import ExpressionError
from repro.hardware.profiles import commodity
from repro.relational.executor import ExecutionContext, Executor
from repro.relational.expr import Case, Like, Literal, col, make_layout
from repro.sim import Simulation
from repro.storage.manager import StorageManager
from repro.workloads import generate_tpch, q14

LAYOUT = make_layout(["x", "s"])


class TestCaseExpression:
    def test_first_true_branch_wins(self):
        expr = Case([(col("x") < 0, "negative"),
                     (col("x") == 0, "zero"),
                     (col("x") > 0, "positive")], default="?")
        assert expr.evaluate((-3, ""), LAYOUT) == "negative"
        assert expr.evaluate((0, ""), LAYOUT) == "zero"
        assert expr.evaluate((5, ""), LAYOUT) == "positive"

    def test_default_when_nothing_matches(self):
        expr = Case([(col("x") > 100, 1.0)], default=0.0)
        assert expr.evaluate((5, ""), LAYOUT) == 0.0

    def test_null_condition_falls_through(self):
        expr = Case([(col("x") > 0, "yes")], default="no")
        assert expr.evaluate((None, ""), LAYOUT) == "no"

    def test_branch_values_can_be_expressions(self):
        expr = Case([(col("s") == Literal("double"), col("x") * 2)],
                    default=col("x"))
        assert expr.evaluate((21, "double"), LAYOUT) == 42
        assert expr.evaluate((21, "other"), LAYOUT) == 21

    def test_columns_and_cycles(self):
        expr = Case([(Like(col("s"), "PROMO%"), col("x"))], default=0.0)
        assert expr.columns() == {"s", "x"}
        assert expr.cycles() > 0

    def test_empty_case_rejected(self):
        with pytest.raises(ExpressionError):
            Case([])


class TestQ14:
    @pytest.fixture(scope="class")
    def env(self):
        sim = Simulation()
        server, array = commodity(sim)
        storage = StorageManager(sim)
        db = generate_tpch(storage, array, scale_factor=0.002)
        return sim, server, db

    def test_q14_matches_oracle(self, env):
        sim, server, db = env
        result = Executor(ExecutionContext(sim=sim, server=server)).run(
            q14(db))
        assert result.row_count == 1
        promo, total = result.rows[0]

        part_types = {p[0]: p[1]
                      for p in db["part"].iterate(["p_partkey", "p_type"])}
        expected_promo = 0.0
        expected_total = 0.0
        for pk, price, disc, ship in db["lineitem"].iterate(
                ["l_partkey", "l_extendedprice", "l_discount",
                 "l_shipdate"]):
            if not date(1995, 9, 1) <= ship < date(1995, 10, 1):
                continue
            revenue = price * (1 - disc)
            expected_total += revenue
            if part_types[pk].startswith("PROMO"):
                expected_promo += revenue
        assert total == pytest.approx(expected_total)
        assert promo == pytest.approx(expected_promo)
        assert 0 < promo < total

    def test_q14_promo_share_sane(self, env):
        sim, server, db = env
        result = Executor(ExecutionContext(sim=sim, server=server)).run(
            q14(db))
        promo, total = result.rows[0]
        share = promo / total
        # one of six part types is PROMO: share should be in that vicinity
        assert 0.05 < share < 0.40
