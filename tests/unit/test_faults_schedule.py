"""Unit tests for fault schedules and degradation policies."""

import pytest

from repro.faults import (FAULT_KINDS, FaultError, FaultEvent, FaultMix,
                          FaultSchedule, RetryPolicy, ShedPolicy,
                          build_fault_schedule, degraded_speed_factor)


class TestFaultEvent:
    def test_rejects_unknown_kind(self):
        with pytest.raises(FaultError, match="unknown fault kind"):
            FaultEvent(kind="meteor", node=0, start=1.0, duration=1.0)

    def test_rejects_negative_node_and_bad_times(self):
        with pytest.raises(FaultError, match="negative node"):
            FaultEvent(kind="crash", node=-1, start=1.0, duration=1.0)
        with pytest.raises(FaultError, match="duration"):
            FaultEvent(kind="crash", node=0, start=1.0, duration=0.0)
        with pytest.raises(FaultError, match="start"):
            FaultEvent(kind="crash", node=0, start=-1.0, duration=1.0)

    def test_degraded_kinds_need_severity_in_unit_interval(self):
        for kind in ("throttle", "disk"):
            with pytest.raises(FaultError, match="severity"):
                FaultEvent(kind=kind, node=0, start=0.0, duration=1.0,
                           severity=0.0)
            with pytest.raises(FaultError, match="severity"):
                FaultEvent(kind=kind, node=0, start=0.0, duration=1.0,
                           severity=1.5)
            FaultEvent(kind=kind, node=0, start=0.0, duration=1.0,
                       severity=0.7)  # valid

    def test_end_and_roundtrip(self):
        event = FaultEvent(kind="throttle", node=2, start=3.0,
                           duration=4.0, severity=0.5)
        assert event.end == 7.0
        assert FaultEvent.from_dict(event.to_dict()) == event


class TestFaultSchedule:
    def events(self):
        return (
            FaultEvent(kind="timeout", node=1, start=9.0, duration=1.0),
            FaultEvent(kind="crash", node=0, start=2.0, duration=5.0),
            FaultEvent(kind="crash", node=1, start=2.0, duration=5.0),
        )

    def test_events_are_time_ordered(self):
        schedule = FaultSchedule(n_nodes=2, horizon_seconds=20.0,
                                 events=self.events())
        starts = [e.start for e in schedule]
        assert starts == sorted(starts)
        assert schedule.events[0].node == 0  # node breaks the tie

    def test_rejects_out_of_range_node(self):
        with pytest.raises(FaultError, match="covers 1 nodes"):
            FaultSchedule(n_nodes=1, horizon_seconds=20.0,
                          events=self.events())

    def test_rejects_degenerate_shapes(self):
        with pytest.raises(FaultError, match="at least one node"):
            FaultSchedule(n_nodes=0, horizon_seconds=1.0)
        with pytest.raises(FaultError, match="horizon"):
            FaultSchedule(n_nodes=1, horizon_seconds=0.0)

    def test_by_kind_and_downtime(self):
        schedule = FaultSchedule(n_nodes=2, horizon_seconds=20.0,
                                 events=self.events())
        assert len(schedule.by_kind("crash")) == 2
        assert schedule.planned_downtime_node_seconds() == 10.0
        with pytest.raises(FaultError, match="unknown fault kind"):
            schedule.by_kind("meteor")

    def test_describe_mentions_each_kind(self):
        schedule = FaultSchedule(n_nodes=2, horizon_seconds=20.0,
                                 events=self.events())
        text = schedule.describe()
        assert "2 crash" in text and "1 timeout" in text
        assert "no faults" in \
            FaultSchedule(n_nodes=2, horizon_seconds=20.0).describe()

    def test_roundtrip_and_hash_stability(self):
        schedule = FaultSchedule(n_nodes=2, horizon_seconds=20.0,
                                 events=self.events(), seed=7)
        again = FaultSchedule.from_dict(schedule.to_dict())
        assert again == schedule
        assert again.schedule_hash() == schedule.schedule_hash()

    def test_hash_tracks_content(self):
        a = FaultSchedule(n_nodes=2, horizon_seconds=20.0,
                          events=self.events())
        b = FaultSchedule(n_nodes=2, horizon_seconds=20.0,
                          events=self.events()[:2])
        assert a.schedule_hash() != b.schedule_hash()


class TestDegradedSpeedFactor:
    def test_raid5_survivor_arithmetic(self):
        # width 8: survivors serve 7/8 of nominal, minus rebuild drag
        assert degraded_speed_factor(8, rebuild_overhead=0.0) == 7 / 8
        assert degraded_speed_factor(2, rebuild_overhead=0.0) == 0.5
        assert degraded_speed_factor(8) == pytest.approx((7 / 8) / 1.2)

    def test_validation(self):
        with pytest.raises(FaultError, match="width"):
            degraded_speed_factor(1)
        with pytest.raises(FaultError, match="overhead"):
            degraded_speed_factor(4, rebuild_overhead=-0.1)


class TestBuildFaultSchedule:
    def test_same_seed_same_schedule(self):
        a = build_fault_schedule(4, 7200.0, seed=11)
        b = build_fault_schedule(4, 7200.0, seed=11)
        assert a == b
        assert a.schedule_hash() == b.schedule_hash()
        assert build_fault_schedule(4, 7200.0, seed=12) != a

    def test_lanes_are_independent(self):
        # cranking the crash rate must not move any throttle event:
        # each (node, kind) lane draws from its own SeedSequence
        base = build_fault_schedule(4, 7200.0, seed=3)
        loud = build_fault_schedule(4, 7200.0, seed=3,
                                    crash_rate_per_node_hour=10.0)
        assert base.by_kind("throttle") == loud.by_kind("throttle")
        assert base.by_kind("disk") == loud.by_kind("disk")
        assert len(loud.by_kind("crash")) > len(base.by_kind("crash"))

    def test_intensity_scales_every_lane(self):
        quiet = build_fault_schedule(8, 7200.0, seed=0, intensity=0.25)
        loud = build_fault_schedule(8, 7200.0, seed=0, intensity=4.0)
        assert len(loud) > len(quiet)
        zero = build_fault_schedule(8, 7200.0, seed=0, intensity=0.0)
        assert len(zero) == 0

    def test_disk_severity_comes_from_raid_width(self):
        schedule = build_fault_schedule(
            4, 36000.0, seed=5, disk_rate_per_node_hour=2.0,
            raid_width=8)
        disks = schedule.by_kind("disk")
        assert disks, "expected at least one disk event at this rate"
        assert all(e.severity == degraded_speed_factor(8) for e in disks)

    def test_mix_and_kwargs_are_exclusive(self):
        with pytest.raises(FaultError, match="not both"):
            build_fault_schedule(2, 100.0, mix=FaultMix(), intensity=2.0)

    def test_mix_validation(self):
        with pytest.raises(FaultError, match="negative"):
            FaultMix(crash_rate_per_node_hour=-1.0)
        with pytest.raises(FaultError, match="positive"):
            FaultMix(crash_downtime_seconds=0.0)
        with pytest.raises(FaultError, match="DVFS"):
            FaultMix(throttle_dvfs_fraction=1.5)

    def test_kind_lane_order_is_frozen(self):
        # the lane index seeds the PCG64 stream; reordering FAULT_KINDS
        # would silently reshuffle every published schedule
        assert FAULT_KINDS == ("crash", "throttle", "disk", "timeout")


class TestRetryPolicy:
    def test_backoff_is_exponential(self):
        policy = RetryPolicy(base_backoff_seconds=0.1,
                             backoff_multiplier=3.0)
        assert policy.backoff_seconds(1) == pytest.approx(0.1)
        assert policy.backoff_seconds(3) == pytest.approx(0.9)
        with pytest.raises(FaultError, match="after a failure"):
            policy.backoff_seconds(0)

    def test_attempt_budget(self):
        policy = RetryPolicy(max_attempts=2)
        assert not policy.exhausted(1)
        assert policy.exhausted(2)
        assert policy.exhausted(5)

    def test_validation(self):
        with pytest.raises(FaultError, match="at least one"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(FaultError, match="negative"):
            RetryPolicy(base_backoff_seconds=-1.0)
        with pytest.raises(FaultError, match="multiplier"):
            RetryPolicy(backoff_multiplier=0.5)


class TestShedPolicy:
    def test_threshold_scales_with_sla(self):
        shed = ShedPolicy(slack_fraction=0.5)
        assert shed.threshold_seconds(2.0) == 1.0
        assert shed.threshold_seconds(15.0) == 7.5

    def test_tight_sla_sheds_first(self):
        shed = ShedPolicy(slack_fraction=0.5)
        assert shed.sheds(1.2, 0.05, sla_p95_seconds=2.0)
        assert not shed.sheds(1.2, 0.05, sla_p95_seconds=15.0)

    def test_validation(self):
        with pytest.raises(FaultError, match="positive"):
            ShedPolicy(slack_fraction=0.0)
