"""Unit tests for column files and the buffer pool."""

import pytest

from repro.errors import BufferPoolError, StorageError
from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType
from repro.storage.buffer import BufferPool, ReplacementPolicy
from repro.storage.column import ColumnFile


def orders_schema():
    return TableSchema("orders", [
        Column("okey", DataType.INT64, nullable=False),
        Column("status", DataType.VARCHAR, nullable=False),
        Column("total", DataType.FLOAT64, nullable=False),
    ])


def sample_rows(n=500):
    return [(i, ["P", "F", "O"][i % 3], float(i) * 1.5) for i in range(n)]


class TestColumnFile:
    def test_scan_returns_all_rows(self):
        cf = ColumnFile(orders_schema(), segment_rows=64)
        rows = sample_rows()
        cf.append_many(rows)
        assert list(cf.scan()) == rows

    def test_projection_scan(self):
        cf = ColumnFile(orders_schema(), segment_rows=64)
        cf.append_many(sample_rows(10))
        assert list(cf.scan(["okey"])) == [(i,) for i in range(10)]

    def test_column_order_in_projection(self):
        cf = ColumnFile(orders_schema())
        cf.append_many(sample_rows(3))
        got = list(cf.scan(["total", "okey"]))
        assert got[0] == (0.0, 0)

    def test_compression_reduces_bytes(self):
        cf = ColumnFile(orders_schema(), codecs={"status": "dictionary"},
                        segment_rows=128)
        cf.append_many(sample_rows())
        assert cf.column_compressed_bytes("status") < \
            cf.column_plain_bytes("status") / 3

    def test_compression_ratio_uncompressed_near_one(self):
        cf = ColumnFile(orders_schema(), segment_rows=128)
        cf.append_many(sample_rows())
        # plain encoding carries small segment headers
        assert cf.compression_ratio() == pytest.approx(1.0, abs=0.05)

    def test_codec_by_string_name(self):
        cf = ColumnFile(orders_schema(), codecs={"okey": "delta"})
        cf.append_many(sample_rows(100))
        assert cf.codec_for("okey").name == "delta"
        assert list(cf.scan(["okey"])) == [(i,) for i in range(100)]

    def test_unsupported_codec_type_rejected(self):
        with pytest.raises(StorageError):
            ColumnFile(orders_schema(), codecs={"status": "delta"})

    def test_unknown_column_rejected(self):
        cf = ColumnFile(orders_schema())
        cf.append_many(sample_rows(5))
        with pytest.raises(StorageError):
            list(cf.scan(["ghost"]))

    def test_partial_segment_sealed_on_scan(self):
        cf = ColumnFile(orders_schema(), segment_rows=1000)
        cf.append_many(sample_rows(5))  # below segment threshold
        assert len(list(cf.scan())) == 5

    def test_size_bytes_of_projection_smaller(self):
        cf = ColumnFile(orders_schema(), segment_rows=128)
        cf.append_many(sample_rows())
        assert cf.size_bytes(["okey"]) < cf.size_bytes()

    def test_row_count(self):
        cf = ColumnFile(orders_schema())
        cf.append_many(sample_rows(42))
        assert cf.row_count == 42


class TestBufferPool:
    def make_pool(self, capacity=3, policy=ReplacementPolicy.LRU, **kw):
        from repro.sim import Simulation
        sim = Simulation()
        return sim, BufferPool(sim, capacity, policy=policy, **kw)

    def test_miss_then_hit(self):
        _sim, pool = self.make_pool()
        assert pool.get("p1") is None
        pool.put("p1", "payload")
        assert pool.get("p1") == "payload"
        assert pool.hits == 1
        assert pool.misses == 1

    def test_lru_evicts_least_recent(self):
        _sim, pool = self.make_pool(capacity=2)
        pool.put("a", 1)
        pool.put("b", 2)
        pool.get("a")
        evicted = pool.put("c", 3)
        assert [e.key for e in evicted] == ["b"]

    def test_clock_gives_second_chance(self):
        _sim, pool = self.make_pool(capacity=2,
                                    policy=ReplacementPolicy.CLOCK)
        pool.put("a", 1)
        pool.put("b", 2)
        pool.get("a")  # sets a's ref bit (already set on insert)
        evicted = pool.put("c", 3)
        # clock clears ref bits on first sweep, evicts first unreferenced
        assert len(evicted) == 1

    def test_pinned_pages_not_evicted(self):
        _sim, pool = self.make_pool(capacity=2)
        pool.put("a", 1, pin=True)
        pool.put("b", 2)
        evicted = pool.put("c", 3)
        assert [e.key for e in evicted] == ["b"]

    def test_all_pinned_raises(self):
        _sim, pool = self.make_pool(capacity=1)
        pool.put("a", 1, pin=True)
        with pytest.raises(BufferPoolError):
            pool.put("b", 2)

    def test_unpin_allows_eviction(self):
        _sim, pool = self.make_pool(capacity=1)
        pool.put("a", 1, pin=True)
        pool.unpin("a")
        evicted = pool.put("b", 2)
        assert [e.key for e in evicted] == ["a"]

    def test_unpin_unpinned_rejected(self):
        _sim, pool = self.make_pool()
        pool.put("a", 1)
        with pytest.raises(BufferPoolError):
            pool.unpin("a")

    def test_dirty_flag_travels_with_eviction(self):
        _sim, pool = self.make_pool(capacity=1)
        pool.put("a", 1)
        pool.mark_dirty("a")
        evicted = pool.put("b", 2)
        assert evicted[0].dirty

    def test_duplicate_put_rejected(self):
        _sim, pool = self.make_pool()
        pool.put("a", 1)
        with pytest.raises(BufferPoolError):
            pool.put("a", 2)

    def test_energy_aware_prefers_evicting_cheap_pages(self):
        sim, pool = self.make_pool(capacity=2,
                                   policy=ReplacementPolicy.ENERGY_AWARE,
                                   page_residency_watts=0.001)
        pool.put("ssd-page", 1, fetch_energy_joules=0.01)
        pool.put("disk-page", 2, fetch_energy_joules=5.0)
        # Same recency; the cheap-to-refetch SSD page should go.
        evicted = pool.put("new", 3, fetch_energy_joules=1.0)
        assert [e.key for e in evicted] == ["ssd-page"]

    def test_energy_aware_uses_reaccess_interval(self):
        from repro.sim import Simulation
        sim = Simulation()
        pool = BufferPool(sim, 2, policy=ReplacementPolicy.ENERGY_AWARE,
                          page_residency_watts=0.001)

        def scenario():
            pool.put("hot", 1, fetch_energy_joules=1.0)
            pool.put("cold", 2, fetch_energy_joules=1.0)
            # hot page re-accessed frequently -> short EWMA interval
            for _ in range(5):
                yield sim.timeout(0.1)
                pool.get("hot")
            yield sim.timeout(10.0)
            pool.get("cold")  # long interval for cold
            evicted = pool.put("new", 3, fetch_energy_joules=1.0)
            assert [e.key for e in evicted] == ["cold"]

        sim.run(until=sim.spawn(scenario()))

    def test_flush_returns_everything_unpinned(self):
        _sim, pool = self.make_pool(capacity=3)
        pool.put("a", 1)
        pool.put("b", 2, pin=True)
        pool.put("c", 3)
        out = pool.flush()
        assert sorted(e.key for e in out) == ["a", "c"]
        assert "b" in pool

    def test_hit_rate(self):
        _sim, pool = self.make_pool()
        pool.get("x")
        pool.put("x", 1)
        pool.get("x")
        pool.get("x")
        assert pool.hit_rate == pytest.approx(2 / 3)

    def test_residency_power(self):
        _sim, pool = self.make_pool(capacity=3, page_residency_watts=0.5)
        pool.put("a", 1)
        pool.put("b", 2)
        assert pool.residency_power_watts() == pytest.approx(1.0)

    def test_capacity_validation(self):
        from repro.sim import Simulation
        with pytest.raises(BufferPoolError):
            BufferPool(Simulation(), 0)
