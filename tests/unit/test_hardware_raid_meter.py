"""Unit tests for RAID arrays and the energy meter."""

import pytest

from repro.errors import HardwareError
from repro.hardware.disk import DiskSpec, HardDisk
from repro.hardware.meter import EnergyMeter
from repro.hardware.psu import BurdenModel
from repro.hardware.raid import RaidArray, RaidLevel
from repro.hardware.server import BaseLoad
from repro.hardware.ssd import FlashSsd, SsdSpec
from repro.sim import Simulation
from repro.units import MB


def make_ssd(sim, i, bw=100 * MB):
    return FlashSsd(sim, SsdSpec(
        name=f"s{i}", capacity_bytes=1000 * MB,
        read_bandwidth_bytes_per_s=bw, write_bandwidth_bytes_per_s=bw,
        per_request_latency_seconds=0.0,
        read_watts=2.0, write_watts=2.0, idle_watts=0.0))


def make_disk(sim, i):
    return HardDisk(sim, DiskSpec(
        name=f"d{i}", capacity_bytes=1000 * MB,
        bandwidth_bytes_per_s=100 * MB,
        average_seek_seconds=0.0, rpm=60_000_000,
        per_request_overhead_seconds=0.0,
        active_watts=17.0, idle_watts=12.0, standby_watts=2.0))


class TestRaid:
    def test_raid0_read_parallelizes(self):
        sim = Simulation()
        array = RaidArray(sim, [make_ssd(sim, i) for i in range(4)],
                          level=RaidLevel.RAID0)
        sim.run(until=sim.spawn(array.read(400 * MB)))
        # 100 MB per member at 100 MB/s, in parallel
        assert sim.now == pytest.approx(1.0, rel=1e-3)

    def test_raid0_capacity_is_sum(self):
        sim = Simulation()
        array = RaidArray(sim, [make_ssd(sim, i) for i in range(4)],
                          level=RaidLevel.RAID0)
        assert array.capacity_bytes == 4000 * MB

    def test_raid5_capacity_loses_one_member(self):
        sim = Simulation()
        array = RaidArray(sim, [make_ssd(sim, i) for i in range(4)],
                          level=RaidLevel.RAID5)
        assert array.capacity_bytes == 3000 * MB

    def test_raid5_full_stripe_write_parity_overhead(self):
        sim = Simulation()
        members = [make_ssd(sim, i) for i in range(5)]
        array = RaidArray(sim, members, level=RaidLevel.RAID5)
        sim.run(until=sim.spawn(array.write(400 * MB, full_stripe=True)))
        total_written = sum(m.bytes_written for m in members)
        assert total_written == pytest.approx(400 * MB * 5 / 4, rel=1e-6)

    def test_raid5_small_write_amplifies_4x(self):
        sim = Simulation()
        members = [make_ssd(sim, i) for i in range(5)]
        array = RaidArray(sim, members, level=RaidLevel.RAID5)
        sim.run(until=sim.spawn(array.write(10 * MB, full_stripe=False)))
        total_written = sum(m.bytes_written for m in members)
        assert total_written == pytest.approx(40 * MB, rel=1e-6)

    def test_raid5_needs_three_members(self):
        sim = Simulation()
        with pytest.raises(HardwareError):
            RaidArray(sim, [make_ssd(sim, 0), make_ssd(sim, 1)],
                      level=RaidLevel.RAID5)

    def test_empty_array_rejected(self):
        sim = Simulation()
        with pytest.raises(HardwareError):
            RaidArray(sim, [])

    def test_zero_byte_read_is_noop(self):
        sim = Simulation()
        array = RaidArray(sim, [make_ssd(sim, 0)])
        sim.run(until=sim.spawn(array.read(0)))
        assert sim.now == 0.0

    def test_split_conserves_bytes(self):
        sim = Simulation()
        array = RaidArray(sim, [make_ssd(sim, i) for i in range(7)])
        for n in [1, 1000, 12345678, 400 * MB]:
            assert sum(array._split(n)) == n

    def test_spin_down_all_members(self):
        sim = Simulation()
        disks = [make_disk(sim, i) for i in range(3)]
        array = RaidArray(sim, disks, level=RaidLevel.RAID5)
        sim.run(until=sim.spawn(array.spin_down()))
        assert all(d.spun_down for d in disks)
        assert array.power_watts() == pytest.approx(6.0)

    def test_wider_array_is_faster_for_big_reads(self):
        def duration(width):
            sim = Simulation()
            array = RaidArray(sim, [make_ssd(sim, i) for i in range(width)])
            sim.run(until=sim.spawn(array.read(400 * MB)))
            return sim.now

        assert duration(8) < duration(4) < duration(2)


class TestEnergyMeter:
    def test_total_energy_sums_devices(self):
        sim = Simulation()
        meter = EnergyMeter(sim)
        meter.attach(BaseLoad(sim, 10.0, name="a"))
        meter.attach(BaseLoad(sim, 5.0, name="b"))
        sim.run(until=4.0)
        assert meter.energy_joules() == pytest.approx(60.0)

    def test_breakdown(self):
        sim = Simulation()
        meter = EnergyMeter(sim)
        meter.attach(BaseLoad(sim, 10.0, name="a"))
        meter.attach(BaseLoad(sim, 5.0, name="b"))
        sim.run(until=2.0)
        assert meter.breakdown_joules() == {
            "a": pytest.approx(20.0), "b": pytest.approx(10.0)}

    def test_interval_energy(self):
        sim = Simulation()
        meter = EnergyMeter(sim)
        meter.attach(BaseLoad(sim, 10.0, name="a"))
        sim.run(until=10.0)
        assert meter.energy_joules(4.0, 6.0) == pytest.approx(20.0)

    def test_duplicate_name_rejected(self):
        sim = Simulation()
        meter = EnergyMeter(sim)
        meter.attach(BaseLoad(sim, 1.0, name="a"))
        with pytest.raises(HardwareError):
            meter.attach(BaseLoad(sim, 1.0, name="a"))

    def test_marks(self):
        sim = Simulation()
        meter = EnergyMeter(sim)
        meter.attach(BaseLoad(sim, 10.0, name="a"))

        def scenario():
            yield sim.timeout(3.0)
            meter.mark("query-start")
            yield sim.timeout(2.0)

        sim.run(until=sim.spawn(scenario()))
        t0 = meter.mark_time("query-start")
        assert meter.energy_joules(t0) == pytest.approx(20.0)

    def test_unknown_mark_raises(self):
        sim = Simulation()
        with pytest.raises(HardwareError):
            EnergyMeter(sim).mark_time("ghost")

    def test_average_power(self):
        sim = Simulation()
        meter = EnergyMeter(sim)
        meter.attach(BaseLoad(sim, 7.0, name="a"))
        sim.run(until=5.0)
        assert meter.average_power_watts() == pytest.approx(7.0)

    def test_wall_energy_applies_burden(self):
        sim = Simulation()
        meter = EnergyMeter(sim, burden=BurdenModel(cooling_overhead=0.5))
        meter.attach(BaseLoad(sim, 10.0, name="a"))
        sim.run(until=2.0)
        assert meter.wall_energy_joules() == pytest.approx(30.0)

    def test_active_energy_accounting_matches_fig2_convention(self):
        sim = Simulation()
        meter = EnergyMeter(sim)
        ssd = make_ssd(sim, 0)
        meter.attach(ssd)

        def scenario():
            yield from ssd.read(100 * MB)  # busy 1 s at 2 W active
            yield sim.timeout(9.0)         # idle time must NOT be charged

        sim.run(until=sim.spawn(scenario()))
        assert meter.active_energy_joules() == pytest.approx(2.0)
