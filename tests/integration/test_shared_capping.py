"""Integration tests: shared scans (§5.2) and power capping (§2.2)."""

import pytest

from repro.errors import ConsolidationError, ExecutionError
from repro.consolidation.capping import PowerCappedScheduler
from repro.hardware.profiles import commodity
from repro.optimizer import CostModel
from repro.relational.executor import ExecutionContext, Executor
from repro.relational.expr import col
from repro.relational.operators import (
    AggregateSpec,
    Filter,
    HashAggregate,
    TableScan,
)
from repro.relational.shared import (
    SharedScanSession,
    run_independently,
)
from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType
from repro.sim import Simulation
from repro.storage.manager import StorageManager


def build_env(scale=300.0):
    sim = Simulation()
    server, array = commodity(sim)
    storage = StorageManager(sim)
    table = storage.create_table(
        TableSchema("facts", [
            Column("k", DataType.INT64, nullable=False),
            Column("grp", DataType.INT64, nullable=False),
            Column("v", DataType.FLOAT64, nullable=False),
        ]), layout="row", placement=array)
    table.load([(i, i % 7, float(i % 131)) for i in range(4000)])
    executor = Executor(ExecutionContext(sim=sim, server=server,
                                         scale=scale))
    return sim, server, table, executor


def query_builders(table, n=4):
    builders = []
    for i in range(n):
        def make(i=i):
            return HashAggregate(
                Filter(TableScan(table), col("grp") == i % 7),
                [], [AggregateSpec("sum", col("v"), "s"),
                     AggregateSpec("count", None, "n")])
        builders.append(make)
    return builders


class TestSharedScans:
    def test_results_identical_to_independent(self):
        sim, _, table, executor = build_env()
        shared = SharedScanSession(executor).run_batch(
            query_builders(table))
        sim2, _, table2, executor2 = build_env()
        independent = run_independently(executor2,
                                        query_builders(table2))
        assert [r.rows for r in shared] == [r.rows for r in independent]

    def test_shared_batch_reads_once(self):
        sim, _, table, executor = build_env()
        results = SharedScanSession(executor).run_batch(
            query_builders(table, n=5))
        passes = sum(1 for r in results
                     for p in r.pipelines if p.io_bytes > 0)
        assert passes == 1  # one leader, four followers

    def test_shared_batch_faster_and_cheaper(self):
        sim, server, table, executor = build_env()
        SharedScanSession(executor).run_batch(query_builders(table, 5))
        shared_time = sim.now
        shared_energy = server.meter.energy_joules(0.0, sim.now)
        sim2, server2, table2, executor2 = build_env()
        run_independently(executor2, query_builders(table2, 5))
        indep_time = sim2.now
        indep_energy = server2.meter.energy_joules(0.0, sim2.now)
        assert shared_time < 0.5 * indep_time
        assert shared_energy < 0.6 * indep_energy

    def test_different_tables_each_get_a_leader(self):
        sim, server, table, executor = build_env()
        storage = StorageManager(sim)
        other = storage.create_table(
            TableSchema("other", [
                Column("x", DataType.INT64, nullable=False)]),
            layout="row", placement=table.placement)
        other.load([(i,) for i in range(100)])
        session = SharedScanSession(executor)
        results = session.run_batch([
            lambda: TableScan(table, columns=["k"]),
            lambda: TableScan(other),
        ])
        passes = sum(1 for r in results
                     for p in r.pipelines if p.io_bytes > 0)
        assert passes == 2

    def test_empty_batch_rejected(self):
        _, _, _, executor = build_env()
        with pytest.raises(ExecutionError):
            SharedScanSession(executor).run_batch([])


class TestPowerCapping:
    def make_scheduler(self, cap, cpu_heavy=False):
        from repro.relational.operators import CostParameters
        params = CostParameters(
            cycles_per_scan_byte=800.0 if cpu_heavy else 3.2)
        sim = Simulation()
        server, array = commodity(sim)
        storage = StorageManager(sim)
        table = storage.create_table(
            TableSchema("facts", [
                Column("k", DataType.INT64, nullable=False),
                Column("grp", DataType.INT64, nullable=False),
                Column("v", DataType.FLOAT64, nullable=False),
            ]), layout="row", placement=array)
        table.load([(i, i % 7, float(i % 131)) for i in range(4000)])
        executor = Executor(ExecutionContext(
            sim=sim, server=server, scale=300.0, params=params))
        model = CostModel(server, scale=300.0, params=params)
        return (PowerCappedScheduler(executor, model, cap_watts=cap),
                table, server)

    def cpu_heavy_builders(self, table, n=4):
        from repro.relational.operators import Exchange
        builders = []
        for i in range(n):
            def make(i=i):
                return Exchange(
                    Filter(TableScan(table), col("grp") == i % 7), 2)
            builders.append(make)
        return builders

    def test_cap_below_idle_rejected(self):
        sim, server, table, executor = build_env()
        model = CostModel(server)
        with pytest.raises(ConsolidationError):
            PowerCappedScheduler(executor, model, cap_watts=1.0)

    def test_all_queries_complete(self):
        scheduler, table, _server = self.make_scheduler(cap=120.0)
        report = scheduler.run_batch(query_builders(table, 6))
        assert report.completed == 6
        assert report.makespan_seconds > 0

    def test_peak_power_respects_cap(self):
        scheduler, table, _server = self.make_scheduler(cap=80.0)
        report = scheduler.run_batch(query_builders(table, 6))
        # modeling slack: allow a small overshoot from unmodeled DRAM
        assert report.peak_power_watts <= 80.0 * 1.10

    def test_tighter_cap_queues_longer_and_draws_less(self):
        """With CPU-heavy parallel queries, a tighter cap serializes
        admission: longer queueing, lower peak draw.  (Makespan can go
        EITHER way — throttling also removes device contention.)"""
        loose_sched, loose_table, _ = self.make_scheduler(
            cap=180.0, cpu_heavy=True)
        loose = loose_sched.run_batch(
            self.cpu_heavy_builders(loose_table, 4))
        tight_sched, tight_table, _ = self.make_scheduler(
            cap=95.0, cpu_heavy=True)
        tight = tight_sched.run_batch(
            self.cpu_heavy_builders(tight_table, 4))
        assert tight.mean_queue_delay_seconds > \
            loose.mean_queue_delay_seconds
        assert tight.peak_power_watts < 0.9 * loose.peak_power_watts
        assert tight.completed == loose.completed == 4

    def test_incremental_watts_positive_and_bounded(self):
        scheduler, table, server = self.make_scheduler(cap=150.0)
        watts = scheduler.incremental_watts(TableScan(table))
        assert 0 < watts < server.peak_power_watts()
