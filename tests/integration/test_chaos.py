"""Integration tests for the chaos experiments and the fault engine.

Covers the acceptance surface of the fault-injection subsystem: the
registered ``chaos_*`` experiments run under the Runner with caching
and reproduce byte-identically; the frontier point meets its
availability / downtime bars; and hand-built single-fault scenarios
pin down the quantitative semantics of throttling, timeouts, and
crash-induced loss, including the telemetry mirror staying exact to
the closed form through a crash.
"""

import json

import numpy as np
import pytest

from repro.faults import (FaultEvent, FaultSchedule, RetryPolicy,
                          build_fault_schedule, chaos_point,
                          simulate_faulty_service)
from repro.faults.experiments import ChaosSweepResult
from repro.runner import ExperimentSpec, ResultCache, Runner
from repro.runner.registry import list_experiments
from repro.service import (ArrivalStream, FleetSpec, NodePowerModel,
                           QueryClass,
                           Tenant, build_stream, simulate_service)
from repro.service.autoscale import Autoscaler
from repro.service.report import ServiceError
from repro.telemetry import capture

MODEL = NodePowerModel(name="t", idle_watts=50.0, peak_watts=120.0,
                       boot_seconds=1.0, boot_joules=120.0,
                       drain_seconds=0.5, drain_joules=25.0)


def one_tenant_stream(times, service_seconds, sla=10.0):
    """A hand-built stream: explicit arrival instants and demands."""
    times = np.asarray(times, dtype=float)
    return ArrivalStream(
        tenants=(Tenant("only", rate_per_s=1.0, sla_p95_seconds=sla,
                        mix=(("q", 1.0),)),),
        classes=(QueryClass("q", 1.0),),
        times=times,
        service_seconds=np.asarray(service_seconds, dtype=float),
        tenant_index=np.zeros(len(times), dtype=np.int64),
        class_index=np.zeros(len(times), dtype=np.int64),
    )


class TestRegistration:
    def test_chaos_experiments_are_registered(self):
        names = {d.name for d in list_experiments()}
        assert {"chaos_smoke", "chaos_frontier"} <= names

    def test_chaos_smoke_runs_and_aggregates(self, tmp_path):
        runner = Runner(cache=ResultCache(tmp_path))
        run = runner.run(ExperimentSpec("chaos_smoke"))
        sweep = run.aggregate()
        assert isinstance(sweep, ChaosSweepResult)
        headline = sweep.headline()
        assert set(headline) >= {"intensity", "availability",
                                 "downtime_fraction", "joules_per_query"}
        assert headline["availability"] >= 0.99

    def test_runner_cache_replays_byte_identical_reports(self, tmp_path):
        spec = ExperimentSpec("chaos_smoke", knobs={"queries": 5_000})
        cold = Runner(cache=ResultCache(tmp_path)).run(spec)
        warm = Runner(cache=ResultCache(tmp_path)).run(spec)
        assert warm.points[0].cache_hit
        assert json.dumps(warm.aggregate().to_dict(), sort_keys=True) \
            == json.dumps(cold.aggregate().to_dict(), sort_keys=True)

    def test_fresh_recompute_is_byte_identical(self):
        dumps = [json.dumps(
            chaos_point(queries=20_000, nodes=8, seed=7).to_dict(),
            sort_keys=True) for _ in range(2)]
        assert dumps[0] == dumps[1]


class TestFrontierAcceptance:
    """The ISSUE acceptance bar, at the frontier's top intensity."""

    @pytest.fixture(scope="class")
    def frontier(self):
        return chaos_point(queries=500_000, nodes=16, intensity=2.0,
                           seed=0)

    def test_availability_and_downtime(self, frontier):
        assert frontier.availability >= 0.99
        assert frontier.faults.downtime_fraction >= 0.05

    def test_surviving_tenants_meet_slas(self, frontier):
        survivors = [t for t in frontier.tenants if t.survived]
        assert survivors, "frontier run lost every tenant?"
        assert all(t.sla_met for t in survivors)
        assert frontier.surviving_slas_met

    def test_reconciliation_at_scale(self, frontier):
        assert (frontier.queries_completed + frontier.queries_rejected
                + frontier.faults.queries_lost) == 500_000

    def test_mirror_exact_through_crashes_at_scale(self):
        with capture() as collector:
            report = chaos_point(queries=100_000, nodes=16,
                                 intensity=2.0, seed=0)
        trace = collector.finalize()
        metered = sum(d.energy_joules for d in trace.devices
                      if d.name.startswith("svc.node"))
        assert report.faults.crashes > 0
        assert metered == pytest.approx(report.energy_joules, rel=1e-9)

    def test_fault_counters_are_exported(self):
        with capture() as collector:
            report = chaos_point(queries=20_000, nodes=8, intensity=2.0,
                                 seed=0)
        trace = collector.finalize()
        counters = dict(trace.counters)
        assert counters["fault.crashes"] == report.faults.crashes
        assert counters["fault.queries_lost"] == \
            report.faults.queries_lost


class TestThrottleSemantics:
    def test_dvfs_fraction_scales_latency_and_power(self):
        # one 1 s query on a node throttled to f=0.5: latency doubles,
        # busy power drops to idle + (peak-idle) * f^3
        stream = one_tenant_stream([0.1], [1.0])
        schedule = FaultSchedule(n_nodes=1, horizon_seconds=20.0, events=(
            FaultEvent(kind="throttle", node=0, start=0.05,
                       duration=10.0, severity=0.5),))
        with capture() as collector:
            report = simulate_faulty_service(
                stream, schedule, fleet=FleetSpec.homogeneous(1, MODEL),
                policy="round_robin")
        assert report.p50_latency_seconds == pytest.approx(2.0)
        busy_watts = 50.0 + 70.0 * 0.5**3
        expected = 50.0 * report.makespan_seconds \
            + (busy_watts - 50.0) * 2.0
        assert report.energy_joules == pytest.approx(expected, rel=1e-12)
        trace = collector.finalize()
        metered = sum(d.energy_joules for d in trace.devices
                      if d.name.startswith("svc.node"))
        assert metered == pytest.approx(report.energy_joules, rel=1e-9)
        assert report.faults.throttle_windows == 1


class TestTimeoutSemantics:
    def test_retry_routes_around_a_timeout_window(self):
        stream = one_tenant_stream([1.0], [1.0])
        schedule = FaultSchedule(n_nodes=2, horizon_seconds=20.0, events=(
            FaultEvent(kind="timeout", node=0, start=0.5, duration=5.0),))
        retry = RetryPolicy(max_attempts=3, base_backoff_seconds=0.05,
                            timeout_detect_seconds=0.5)
        report = simulate_faulty_service(
            stream, schedule, fleet=FleetSpec.homogeneous(2, MODEL),
            policy="round_robin", retry=retry)
        assert report.queries_completed == 1
        assert report.faults.timeouts == 1
        assert report.faults.retries == 1
        # detect (0.5) + backoff (0.05) + service (1.0)
        assert report.p50_latency_seconds == pytest.approx(1.55)

    def test_exhausted_attempts_reject_not_hang(self):
        stream = one_tenant_stream([1.0], [1.0])
        schedule = FaultSchedule(n_nodes=1, horizon_seconds=60.0, events=(
            FaultEvent(kind="timeout", node=0, start=0.5,
                       duration=50.0),))
        retry = RetryPolicy(max_attempts=2, base_backoff_seconds=0.05,
                            timeout_detect_seconds=0.5)
        report = simulate_faulty_service(
            stream, schedule, fleet=FleetSpec.homogeneous(1, MODEL),
            policy="round_robin", retry=retry)
        assert report.queries_completed == 0
        assert report.queries_rejected == 1
        assert report.faults.timeouts == 2
        assert (report.queries_completed + report.queries_rejected
                + report.faults.queries_lost) == 1


class TestCrashSemantics:
    def test_crash_with_no_retry_budget_loses_the_backlog(self):
        # 3 x 10 s queries pile onto one node; it crashes at t=3 with
        # a single-attempt budget: everything in flight or queued is
        # crash-attributed, nothing completes, and the mirror still
        # integrates to the closed form through the outage
        stream = one_tenant_stream([0.1, 0.2, 0.3], [10.0, 10.0, 10.0])
        schedule = FaultSchedule(n_nodes=1, horizon_seconds=60.0, events=(
            FaultEvent(kind="crash", node=0, start=3.0, duration=5.0),))
        retry = RetryPolicy(max_attempts=1)
        with capture() as collector:
            report = simulate_faulty_service(
                stream, schedule, fleet=FleetSpec.homogeneous(1, MODEL),
                policy="round_robin", retry=retry)
        assert report.faults.crashes == 1
        assert report.faults.queries_lost == 3
        assert report.queries_completed == 0
        assert report.availability == 0.0
        tenant = report.tenants[0]
        assert tenant.crashed == 3 and not tenant.survived
        assert report.surviving_slas_met  # vacuously: no survivors
        trace = collector.finalize()
        metered = sum(d.energy_joules for d in trace.devices
                      if d.name.startswith("svc.node"))
        assert metered == pytest.approx(report.energy_joules, rel=1e-9)

    def test_retry_budget_recovers_the_backlog_after_repair(self):
        stream = one_tenant_stream([0.1, 0.2, 0.3], [10.0, 10.0, 10.0],
                                   sla=120.0)
        schedule = FaultSchedule(n_nodes=1, horizon_seconds=60.0, events=(
            FaultEvent(kind="crash", node=0, start=3.0, duration=5.0),))
        retry = RetryPolicy(max_attempts=4, base_backoff_seconds=0.05)
        report = simulate_faulty_service(
            stream, schedule, fleet=FleetSpec.homogeneous(1, MODEL),
            policy="round_robin", retry=retry)
        assert report.queries_completed == 3
        assert report.faults.queries_lost == 0
        assert report.faults.queries_recovered == 3
        assert report.faults.retries >= 3
        assert report.availability == 1.0

    def test_emergency_boot_prices_break_even(self):
        # a long outage (>> break-even) on an autoscaled fleet makes
        # the autoscaler boot a parked replacement; a blip shorter than
        # break-even must not
        assert MODEL.breakeven_seconds() < 300.0
        long_out = chaos_point(queries=30_000, nodes=8, intensity=2.0,
                               crash_downtime_seconds=300.0, seed=3)
        assert long_out.faults.crashes > 0
        assert long_out.faults.emergency_boots > 0


class TestServiceEntryPoint:
    def test_simulate_service_threads_faults_through(self):
        stream = build_stream(2_000, seed=0)
        schedule = build_fault_schedule(
            4, max(stream.duration_seconds, 1.0) * 1.2, seed=0,
            intensity=2.0)
        report = simulate_service(stream, fleet=FleetSpec.homogeneous(4),
                                  policy="power_aware", faults=schedule)
        assert report.faults is not None
        assert report.to_dict()["faults"] is not None

    def test_retry_without_faults_is_an_error(self):
        stream = build_stream(100, seed=0)
        with pytest.raises(ServiceError, match="faults"):
            simulate_service(stream, fleet=FleetSpec.homogeneous(2),
                             retry=RetryPolicy())

    def test_schedule_must_match_fleet_width(self):
        stream = one_tenant_stream([0.1], [1.0])
        schedule = FaultSchedule(n_nodes=4, horizon_seconds=10.0)
        from repro.faults import FaultError
        with pytest.raises(FaultError, match="covers 4 nodes"):
            simulate_faulty_service(
                stream, schedule, fleet=FleetSpec.homogeneous(2, MODEL))


class TestAutoscalerEmergency:
    def _fleet(self, n):
        from repro.service.node import FleetNode
        return [FleetNode(f"svc.node{i:03d}", MODEL, on=(i == 0), at=0.0)
                for i in range(n)]

    def test_short_blip_is_not_worth_a_boot(self):
        # min_nodes=3 leaves the fleet undersized, so the break-even
        # gate is the only thing holding the boot back
        nodes = self._fleet(4)
        scaler = Autoscaler(MODEL, epoch_seconds=30.0, min_nodes=3)
        booted = scaler.emergency(10.0, nodes, [0],
                                  downtime_seconds=1.0)
        assert booted == []
        assert scaler.emergency_boots == 0

    def test_long_outage_boots_parked_spares(self):
        nodes = self._fleet(4)
        scaler = Autoscaler(MODEL, epoch_seconds=30.0, min_nodes=3)
        on_ids = [0]
        booted = scaler.emergency(10.0, nodes, on_ids,
                                  downtime_seconds=600.0)
        assert len(booted) == 2  # up to desired (= min_nodes here)
        assert scaler.emergency_boots == 2
        assert all(nodes[i].on for i in booted)
        assert on_ids == sorted([0] + booted)
