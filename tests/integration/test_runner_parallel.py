"""Integration tests for the parallel runner: a pooled Figure 1 sweep
must be bit-identical to the serial one, repeats must be 100% cache
hits, and the deprecated entry points must keep producing the same
figures through their shims."""

import pytest

from repro.core.experiments import run_figure1, run_figure2
from repro.runner import ExperimentSpec, Runner
from repro.workloads.scan_workload import run_scan

#: the tiny Figure 1 settings the experiments-API tests already use
TINY_FIG1 = {
    "disks": [6, 24],
    "streams": 2,
    "queries_per_stream": 1,
    "physical_scale_factor": 0.0005,
    "logical_scale_factor": 1.0,
    "spindle_groups": 6,
}


class TestParallelDeterminism:
    def test_parallel_fig1_bit_identical_then_fully_cached(
            self, tmp_path):
        spec = ExperimentSpec("fig1", knobs=TINY_FIG1)
        serial = Runner(workers=1, cache=False).run(spec)
        parallel = Runner(workers=4, cache=tmp_path / "cache").run(spec)
        # byte-identical serialized output, pool or no pool
        assert parallel.to_json() == serial.to_json()
        assert parallel.cache_hits == 0
        # second invocation of the same spec: 100% cache hits...
        again = Runner(workers=4, cache=tmp_path / "cache").run(spec)
        assert again.cache_hits == len(again.points) == 2
        assert all(p.cache_hit for p in again.points)
        # ...and still the same bytes
        assert again.to_json() == serial.to_json()

    def test_parallel_scan_grid_matches_direct_calls(self, tmp_path):
        spec = ExperimentSpec("scan", knobs={
            "compressed": [False, True],
            "scale_factor": 0.001,
        })
        run = Runner(workers=2, cache=tmp_path / "cache").run(spec)
        for point in run.points:
            direct = run_scan(compressed=point.knobs["compressed"],
                              scale_factor=0.001)
            assert point.report.to_dict() == direct.to_dict()


class TestDeprecatedShims:
    def test_run_figure1_warns_and_matches_runner(self):
        with pytest.deprecated_call():
            old = run_figure1(disk_counts=(6, 24), streams=2,
                              queries_per_stream=1,
                              physical_scale_factor=0.0005,
                              logical_scale_factor=1.0,
                              spindle_groups=6)
        new = Runner(workers=1, cache=False).run(
            ExperimentSpec("fig1", knobs=TINY_FIG1)).aggregate()
        assert old.to_dict() == new.to_dict()
        assert old.most_efficient_disks == new.most_efficient_disks

    def test_run_figure2_warns_and_matches_runner(self):
        with pytest.deprecated_call():
            old = run_figure2(scale_factor=0.001)
        new = Runner(workers=1, cache=False).run(
            ExperimentSpec("fig2",
                           knobs={"scale_factor": 0.001})).aggregate()
        assert old.to_dict() == new.to_dict()
        assert new.inversion_holds

    def test_workload_aliases_warn(self):
        from repro.workloads.scan_workload import run_scan_experiment
        with pytest.deprecated_call():
            report = run_scan_experiment(compressed=False,
                                         scale_factor=0.001)
        assert report.to_dict() == run_scan(compressed=False,
                                            scale_factor=0.001).to_dict()


class TestAggregation:
    def test_fig1_aggregate_is_figure1result(self, tmp_path):
        run = Runner(workers=2, cache=tmp_path / "cache").run(
            ExperimentSpec("fig1", knobs=TINY_FIG1))
        result = run.aggregate()
        assert result.fastest_disks == 24
        assert [r.to_dict() for r in result.reports] == \
            [r.to_dict() for r in run.reports]

    def test_proportionality_profile_fallback(self, tmp_path):
        run = Runner(workers=2, cache=tmp_path / "cache").run(
            ExperimentSpec("proportionality", knobs={
                "utilization": [0.5, 1.0],
                "window_seconds": 10.0,
            }))
        profile = run.aggregate()
        assert profile.knob_name == "utilization"
        watts = [p.average_power_watts for p in profile.points]
        assert watts[1] > watts[0] > 0
