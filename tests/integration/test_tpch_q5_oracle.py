"""Q5's five-way join, validated against a hand-written Python oracle."""

from collections import defaultdict
from datetime import date

import pytest

from repro.hardware.profiles import commodity
from repro.optimizer import CostModel, Objective, Planner
from repro.relational.executor import ExecutionContext, Executor
from repro.sim import Simulation
from repro.storage.manager import StorageManager
from repro.workloads import generate_tpch
from repro.workloads.tpch_queries import q5_spec


@pytest.fixture(scope="module")
def env():
    sim = Simulation()
    server, array = commodity(sim)
    storage = StorageManager(sim)
    db = generate_tpch(storage, array, scale_factor=0.005)
    return sim, server, db


def oracle_q5(db, year_start, year_end, region_name):
    region = {r[0]: r[1] for r in db["region"].iterate()}
    nations = {n[0]: (n[1], n[2]) for n in db["nation"].iterate()}
    suppliers = {s[0]: s[2] for s in db["supplier"].iterate()}
    order_dates = {
        o[0]: o[1] for o in db["orders"].iterate(
            ["o_orderkey", "o_orderdate"])}
    target_nations = {key for key, (_name, rkey) in nations.items()
                      if region[rkey] == region_name}
    revenue = defaultdict(float)
    for okey, skey, price, discount in db["lineitem"].iterate(
            ["l_orderkey", "l_suppkey", "l_extendedprice",
             "l_discount"]):
        order_date = order_dates.get(okey)
        if order_date is None or not year_start <= order_date < year_end:
            continue
        nation_key = suppliers[skey]
        if nation_key in target_nations:
            revenue[nations[nation_key][0]] += price * (1 - discount)
    return dict(revenue)


@pytest.mark.parametrize("objective",
                         [Objective.TIME, Objective.ENERGY, Objective.EDP])
def test_q5_matches_oracle_under_every_objective(env, objective):
    sim, server, db = env
    planner = Planner(CostModel(server), objective)
    planned = planner.plan(q5_spec(db))
    result = Executor(ExecutionContext(sim=sim, server=server)).run(
        planned.root)
    expected = oracle_q5(db, date(1994, 1, 1), date(1995, 1, 1), "ASIA")
    got = {name: revenue for name, revenue in result.rows}
    assert set(got) == set(expected)
    for name, revenue in expected.items():
        assert got[name] == pytest.approx(revenue)


def test_q5_planner_explores_many_candidates(env):
    _sim, server, db = env
    planner = Planner(CostModel(server), Objective.TIME)
    planned = planner.plan(q5_spec(db))
    # five relations, three+ join algorithms per step: a real search
    assert planned.candidates_considered > 50
    assert planned.cost.out_rows >= 0
