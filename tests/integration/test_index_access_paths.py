"""Integration tests: index operators, costing, and planner access paths."""

import pytest

from repro.hardware.profiles import commodity
from repro.optimizer import CostModel, Objective, Planner, QuerySpec
from repro.optimizer.planner import (
    JoinEdge,
    TableRef,
    conjoin,
    sargable_bounds,
    split_conjuncts,
)
from repro.relational.executor import ExecutionContext, Executor
from repro.relational.expr import Between, Literal, col
from repro.relational.operators import (
    CostCollector,
    Filter,
    HashJoin,
    IndexNestedLoopJoin,
    IndexScan,
    TableScan,
)
from repro.relational.plan import explain
from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType
from repro.errors import PlanError
from repro.sim import Simulation
from repro.storage.manager import StorageManager


@pytest.fixture
def env():
    sim = Simulation()
    server, array = commodity(sim)
    storage = StorageManager(sim)
    orders = storage.create_table(
        TableSchema("orders", [
            Column("o_id", DataType.INT64, nullable=False),
            Column("o_cust", DataType.INT64, nullable=False),
            Column("o_total", DataType.FLOAT64, nullable=False),
        ]), layout="row", placement=array)
    orders.load([(i, i % 100, float(i % 977)) for i in range(5000)])
    orders.create_index("o_id", clustered=True)
    orders.create_index("o_cust")
    customers = storage.create_table(
        TableSchema("customers", [
            Column("c_id", DataType.INT64, nullable=False),
            Column("c_seg", DataType.INT64, nullable=False),
        ]), layout="row", placement=array)
    customers.load([(i, i % 5) for i in range(100)])
    return sim, server, orders, customers


def run(op):
    collector = CostCollector()
    return op.execute(collector), collector


class TestIndexScanOperator:
    def test_range_results_match_filter(self, env):
        _, _, orders, _ = env
        via_index, _ = run(IndexScan(orders, "o_id", low=100, high=199))
        via_scan, _ = run(Filter(TableScan(orders),
                                 Between(col("o_id"), 100, 199)))
        assert sorted(via_index) == sorted(via_scan)

    def test_exact_match(self, env):
        _, _, orders, _ = env
        rows, _ = run(IndexScan(orders, "o_cust", low=7, high=7))
        assert len(rows) == 50
        assert all(r[1] == 7 for r in rows)

    def test_projection(self, env):
        _, _, orders, _ = env
        op = IndexScan(orders, "o_id", low=10, high=12,
                       columns=["o_total", "o_id"])
        rows, _ = run(op)
        assert rows == [(10.0, 10), (11.0, 11), (12.0, 12)]

    def test_selective_index_scan_reads_less_than_table_scan(self, env):
        _, _, orders, _ = env
        _, ix_collector = run(IndexScan(orders, "o_id", low=0, high=49))
        _, scan_collector = run(TableScan(orders))
        assert ix_collector.total_io_bytes() < \
            0.5 * scan_collector.total_io_bytes()

    def test_unclustered_fetches_are_random(self, env):
        _, _, orders, _ = env
        _, collector = run(IndexScan(orders, "o_cust", low=3, high=3))
        random_requests = sum(req.n_random_requests
                              for p in collector.pipelines for req in p.io)
        assert random_requests > 0

    def test_clustered_fetches_are_sequential(self, env):
        _, _, orders, _ = env
        _, collector = run(IndexScan(orders, "o_id", low=0, high=99))
        random_requests = sum(req.n_random_requests
                              for p in collector.pipelines for req in p.io)
        assert random_requests == 0

    def test_requires_bound(self, env):
        _, _, orders, _ = env
        with pytest.raises(PlanError):
            IndexScan(orders, "o_id")

    def test_requires_index(self, env):
        _, _, orders, _ = env
        with pytest.raises(PlanError):
            IndexScan(orders, "o_total", low=1.0, high=2.0)

    def test_executes_on_simulated_hardware(self, env):
        sim, server, orders, _ = env
        result = Executor(ExecutionContext(sim=sim, server=server)).run(
            IndexScan(orders, "o_id", low=500, high=999))
        assert result.row_count == 500
        assert result.elapsed_seconds > 0
        assert result.energy_joules > 0


class TestIndexNestedLoopJoin:
    def test_matches_hash_join(self, env):
        _, _, orders, customers = env
        inlj_rows, _ = run(IndexNestedLoopJoin(
            TableScan(customers), orders, "o_cust", "c_id"))
        hash_rows, _ = run(HashJoin(
            TableScan(customers), TableScan(orders),
            ["c_id"], ["o_cust"]))
        # reorder hash output columns to match INLJ's layout
        assert len(inlj_rows) == len(hash_rows) == 5000
        assert sorted(inlj_rows) == sorted(hash_rows)

    def test_uses_no_memory_grant(self, env):
        _, _, orders, customers = env
        _, collector = run(IndexNestedLoopJoin(
            TableScan(customers), orders, "o_cust", "c_id"))
        assert all(p.dram_grant_bytes == 0 for p in collector.pipelines)

    def test_charges_random_probes(self, env):
        _, _, orders, customers = env
        _, collector = run(IndexNestedLoopJoin(
            TableScan(customers), orders, "o_cust", "c_id"))
        random_requests = sum(req.n_random_requests
                              for p in collector.pipelines for req in p.io)
        assert random_requests >= 100  # one probe per outer row

    def test_requires_index_on_inner(self, env):
        _, _, orders, customers = env
        with pytest.raises(PlanError):
            IndexNestedLoopJoin(TableScan(customers), orders,
                                "o_total", "c_id")


class TestCostModelIndexHandlers:
    def test_index_scan_cardinality(self, env):
        _, server, orders, _ = env
        model = CostModel(server)
        cost = model.cost(IndexScan(orders, "o_id", low=0, high=499))
        assert cost.out_rows == pytest.approx(500, rel=0.25)

    def test_index_scan_cheaper_when_selective(self, env):
        """At realistic data volumes (scale 500) a 1 %-selective
        clustered index scan beats the full scan; at toy volume the
        positioning costs make the full scan win — both are correct."""
        _, server, orders, _ = env
        model = CostModel(server, scale=500.0)
        narrow = model.cost(IndexScan(orders, "o_id", low=0, high=49))
        full = model.cost(TableScan(orders))
        assert narrow.seconds < full.seconds
        tiny_model = CostModel(server)  # toy scale: table fits a whisker
        assert tiny_model.cost(
            IndexScan(orders, "o_id", low=0, high=49)).seconds > \
            tiny_model.cost(TableScan(orders)).seconds * 0.5

    def test_inlj_cost_positive(self, env):
        _, server, orders, customers = env
        model = CostModel(server)
        cost = model.cost(IndexNestedLoopJoin(
            TableScan(customers), orders, "o_cust", "c_id"))
        assert cost.out_rows == pytest.approx(5000, rel=0.25)
        assert cost.io_seconds > 0


class TestPlannerAccessPaths:
    def test_sargable_decomposition(self):
        pred = (col("a") > 5) & (col("b") == Literal("x"))
        conjuncts = split_conjuncts(pred)
        assert len(conjuncts) == 2
        assert sargable_bounds(conjuncts[0], "a") == (5, None)
        assert sargable_bounds(conjuncts[1], "b") == ("x", "x")
        assert sargable_bounds(conjuncts[0], "b") is None
        assert conjoin(conjuncts) is not None
        assert conjoin([]) is None

    def test_between_is_sargable(self):
        bounds = sargable_bounds(Between(col("a"), 3, 9), "a")
        assert bounds == (3, 9)

    def test_reversed_literal_comparison(self):
        bounds = sargable_bounds(Literal(10) > col("a"), "a")
        assert bounds == (None, 10)

    def test_planner_picks_index_for_selective_predicate(self, env):
        _, server, orders, _ = env
        planner = Planner(CostModel(server, scale=500.0), Objective.TIME)
        planned = planner.plan(QuerySpec(
            tables=[TableRef(orders,
                             predicate=Between(col("o_id"), 0, 49))]))
        assert "IndexScan" in explain(planned.root)

    def test_planner_keeps_table_scan_for_wide_predicate(self, env):
        _, server, orders, _ = env
        planner = Planner(CostModel(server), Objective.TIME)
        planned = planner.plan(QuerySpec(
            tables=[TableRef(orders,
                             predicate=col("o_id") >= 0)]))
        assert "TableScan" in explain(planned.root)

    def test_planner_results_correct_with_index_plans(self, env):
        sim, server, orders, customers = env
        planner = Planner(CostModel(server), Objective.TIME)
        planned = planner.plan(QuerySpec(
            tables=[TableRef(orders,
                             predicate=Between(col("o_id"), 100, 149)),
                    TableRef(customers)],
            joins=[JoinEdge("customers", "orders",
                            ["c_id"], ["o_cust"])]))
        result = Executor(ExecutionContext(sim=sim, server=server)).run(
            planned.root)
        assert result.row_count == 50

    def test_planner_considers_inlj(self, env):
        """With an index on the join key and a selective outer, the
        planner should at least consider (and under TIME often pick)
        the index nested-loop join."""
        sim, server, orders, customers = env
        planner = Planner(CostModel(server), Objective.TIME)
        spec = QuerySpec(
            tables=[TableRef(customers, predicate=col("c_seg") == 2),
                    TableRef(orders)],
            joins=[JoinEdge("customers", "orders",
                            ["c_id"], ["o_cust"])])
        planned = planner.plan(spec)
        result = Executor(ExecutionContext(sim=sim, server=server)).run(
            planned.root)
        assert result.row_count == 1000
        assert planned.candidates_considered >= 7
