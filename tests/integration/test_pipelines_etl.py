"""Integration tests: pipelines on the fleet, end to end.

Covers the three contracts the ISSUE pins: per-stage telemetry Joules
reconcile to the closed-form report at 1e-9, the svc_etl experiment
measures a real Joules delta between scheduling modes with every
freshness SLA met, and the batch-tenant surface (admission exemption,
engine fallback, catalog publication) behaves as documented.
"""

import math

import pytest

from repro.runner import ExperimentSpec, Runner
from repro.service.workload import build_diurnal_stream
from repro.telemetry import capture
from repro.workloads.pipelines import (DatasetCatalog, EtlScheduler,
                                       default_pipeline, etl_point,
                                       run_pipeline)
from repro.workloads.pipelines.run import PIPELINE_SPAN_PREFIX


class TestSpanAttribution:
    def reconcile(self, interactive=None):
        with capture() as cap:
            report = run_pipeline(default_pipeline(),
                                  interactive=interactive)
        trace = cap.finalize()
        roots = [s for s in trace.spans
                 if s.name.startswith(PIPELINE_SPAN_PREFIX)]
        assert len(roots) == len(default_pipeline().stages)
        span_sum = sum(s.total_joules for s in roots)
        assert span_sum == pytest.approx(report.energy_joules,
                                         rel=1e-9)
        return roots, report

    def test_stage_joules_sum_to_report_standalone(self):
        self.reconcile()

    def test_stage_joules_sum_to_report_with_interactive(self):
        stream = build_diurnal_stream(300.0, 150.0, seed=3)
        self.reconcile(interactive=stream)

    def test_tiles_partition_the_run(self):
        roots, report = self.reconcile()
        windows = sorted((s.started_at, s.ended_at) for s in roots)
        assert windows[0][0] == 0.0
        assert windows[-1][1] == pytest.approx(
            report.service.makespan_seconds)
        for (_, end), (start, _) in zip(windows, windows[1:]):
            assert start == pytest.approx(end)


class TestSvcEtlExperiment:
    @pytest.fixture(scope="class")
    def sweep(self):
        run = Runner(workers=4).run(ExperimentSpec("svc_etl"))
        return run.aggregate()

    def test_headline_measures_a_joules_delta(self, sweep):
        h = sweep.headline()
        assert h["eager_marginal_joules"] > 0
        assert h["delayed_marginal_joules"] != h["eager_marginal_joules"]
        assert (h["consolidated_marginal_joules"]
                != h["eager_marginal_joules"])
        # the ROADMAP answer: spending the freshness window is worth
        # real Joules — both alternatives beat eager in aggregate
        assert h["delayed_savings_fraction"] > 0
        assert h["consolidated_savings_fraction"] > 0

    def test_all_freshness_and_slas_met(self, sweep):
        h = sweep.headline()
        assert h["all_freshness_met"] is True
        assert h["interactive_slas_met"] is True
        assert h["precedence_violations"] == 0

    def test_marginal_arithmetic_uses_the_none_baseline(self, sweep):
        for load in sweep.load_levels():
            base = sweep.report("none", load).energy_joules
            for mode in ("eager", "delayed", "consolidated"):
                r = sweep.report(mode, load)
                assert sweep.marginal_joules(mode, load) == pytest.approx(
                    r.energy_joules - base)

    def test_rows_cover_the_grid(self, sweep):
        rows = sweep.rows()
        assert len(rows) == 8  # 4 modes x 2 loads
        assert {row[0] for row in rows} == {"none", "eager", "delayed",
                                            "consolidated"}


class TestBatchTenantSurface:
    def test_event_engine_serves_batch_without_admission_limit(self):
        report = run_pipeline(default_pipeline())
        assert report.service.engine == "event"

    def test_admission_limit_forces_loop_and_exempts_batch(self):
        # a limit this tight rejects bursty arrivals wholesale; batch
        # tenants are exempt, so every task must still complete
        report = run_pipeline(default_pipeline(),
                              pack_backlog_seconds=0.2,
                              admission_limit_seconds=1e-6)
        assert report.service.engine == "loop"
        assert all(s.completed == s.tasks for s in report.stages)
        assert report.freshness_met

    def test_load_stage_publishes_to_catalog(self):
        cat = DatasetCatalog()
        report = run_pipeline(default_pipeline(), catalog=cat)
        v = cat.latest("sales_daily")
        assert v.fresh
        assert v.version == report.pipeline_hash[:12]
        assert v.stage == "load_warehouse"
        assert report.catalog and report.catalog[0]["dataset"] == \
            "sales_daily"

    def test_modes_order_completion_times(self):
        eager = etl_point(mode="eager", load=1.0)
        delayed = etl_point(mode="delayed", load=1.0)
        consolidated = etl_point(mode="consolidated", load=1.0)
        assert (eager.completion_seconds < delayed.completion_seconds
                <= consolidated.completion_seconds)
        for r in (eager, delayed, consolidated):
            assert r.freshness_met
            assert r.precedence_violations == 0

    def test_consolidated_respects_pacing(self):
        scheduler = EtlScheduler(mode="consolidated",
                                 consolidation_node_equivalents=1.5)
        p = default_pipeline()
        plan = scheduler.plan(
            p, __import__("repro.service.spec",
                          fromlist=["FleetSpec"]).FleetSpec.homogeneous(16))
        for stage in p.stages:
            times = scheduler.task_times(plan.planned(stage.name), stage)
            if stage.tasks < 2:
                continue
            gaps = times[1:] - times[:-1]
            demand = stage.seconds_per_task / gaps
            assert (demand <= 1.5 + 1e-9).all()


class TestFreshnessPressure:
    def test_tight_freshness_pulls_delayed_start_earlier(self):
        # a deadline too tight for the off-peak window clamps the
        # delayed start back toward the ready instant
        loose = etl_point(mode="delayed", load=0.0)
        tight = etl_point(mode="delayed", load=0.0,
                          freshness_sla_seconds=1000.0)
        assert tight.plan["start_seconds"] < loose.plan["start_seconds"]
        assert tight.plan["start_seconds"] >= 450.0
        assert tight.freshness_met

    def test_infeasible_freshness_raises(self):
        from repro.workloads.pipelines import PipelineError
        with pytest.raises(PipelineError, match="cannot meet"):
            etl_point(mode="eager", load=0.0,
                      freshness_sla_seconds=500.0)

    def test_stage_stats_expose_deadline_slack(self):
        r = etl_point(mode="delayed", load=1.0)
        assert math.isfinite(r.freshness_slack_seconds)
        assert r.freshness_slack_seconds > 0
        for s in r.stages:
            assert s.met_deadline
