"""Integration: the fleet flight recorder end to end.

The acceptance surface of the observability subsystem: recording is a
pure observer (closed-form reports identical with it on or off, for
the healthy engine and the chaos engine alike), the recorded event
stream replays the run's energy to within 1e-9 of the closed-form
books under every mechanism mix (PVC, QED, faults), recordings ride
the Runner's process pool and result cache, and the timeline console
renders the operator's questions — which nodes downclocked, which
queries QED held, where the SLO budget burned — from one recorded
``svc_pvc_qed``-shaped point.
"""

from __future__ import annotations

import json

import pytest

from repro.faults import build_fault_schedule, simulate_faulty_service
from repro.flightrec import record
from repro.flightrec.slo import SLOMonitor
from repro.runner import ExperimentSpec, ResultCache, Runner
from repro.service import (FleetSpec, PVCPolicy, QEDPolicy, build_stream,
                           simulate_service)

QUERIES = 8_000


@pytest.fixture(scope="module")
def stream():
    return build_stream(QUERIES, seed=7)


@pytest.fixture(scope="module")
def schedule():
    return build_fault_schedule(8, 900.0, seed=0, intensity=2.0)


def _healthy(stream, policy):
    return simulate_service(stream, fleet=FleetSpec.homogeneous(8),
                            policy=policy)


def _chaos(stream, schedule, policy, fleet=None):
    return simulate_faulty_service(
        stream, schedule, fleet=fleet or FleetSpec.homogeneous(8),
        policy=policy)


def _record(fn):
    with record() as rec:
        report = fn()
    return report, rec.finalize()


class TestPureObserver:
    """Recording on vs. off: the closed-form report is byte-identical."""

    @pytest.mark.parametrize("policy_fn", [
        lambda: "power_aware",
        lambda: QEDPolicy(inner=PVCPolicy()),
    ], ids=["plain", "pvc_qed"])
    def test_healthy_reports_identical(self, stream, policy_fn):
        plain = _healthy(stream, policy_fn())
        recorded, _ = _record(lambda: _healthy(stream, policy_fn()))
        assert json.dumps(plain.to_dict(), sort_keys=True) \
            == json.dumps(recorded.to_dict(), sort_keys=True)

    @pytest.mark.parametrize("policy_fn", [
        lambda: "power_aware",
        lambda: QEDPolicy(inner=PVCPolicy()),
    ], ids=["plain", "pvc_qed"])
    def test_chaos_reports_identical(self, stream, schedule, policy_fn):
        plain = _chaos(stream, schedule, policy_fn())
        recorded, _ = _record(
            lambda: _chaos(stream, schedule, policy_fn()))
        assert json.dumps(plain.to_dict(), sort_keys=True) \
            == json.dumps(recorded.to_dict(), sort_keys=True)


class TestEnergyReconciliation:
    """The replayed event stream reprices the whole run to 1e-9."""

    @pytest.mark.parametrize("policy_fn", [
        lambda: "power_aware",
        lambda: PVCPolicy(),
        lambda: QEDPolicy(),
        lambda: QEDPolicy(inner=PVCPolicy()),
    ], ids=["plain", "pvc", "qed", "pvc_qed"])
    def test_healthy_replay_matches_books(self, stream, policy_fn):
        report, recording = _record(
            lambda: _healthy(stream, policy_fn()))
        assert recording.replayed_energy_joules() \
            == pytest.approx(report.energy_joules, rel=1e-9)

    @pytest.mark.parametrize("policy_fn", [
        lambda: "power_aware",
        lambda: QEDPolicy(inner=PVCPolicy()),
    ], ids=["plain", "pvc_qed"])
    def test_chaos_replay_matches_books(self, stream, schedule,
                                        policy_fn):
        report, recording = _record(
            lambda: _chaos(stream, schedule, policy_fn()))
        assert recording.replayed_energy_joules() \
            == pytest.approx(report.energy_joules, rel=1e-9)

    def test_query_ledger_conserved(self, stream, schedule):
        report, recording = _record(lambda: _chaos(
            stream, schedule, QEDPolicy(inner=PVCPolicy())))
        states = {}
        for s in recording.queries["state"]:
            states[s] = states.get(s, 0) + 1
        assert states.get("done", 0) == report.queries_completed
        assert states.get("lost", 0) == report.queries_lost
        assert states.get("rejected", 0) == report.queries_rejected
        assert sum(states.values()) == QUERIES


class TestMixedClassConservation:
    """PVC + QED + faults on a heterogeneous fleet: the per-class
    rollup still conserves the fleet ledger exactly."""

    @pytest.fixture(scope="class")
    def recorded(self, stream):
        schedule = build_fault_schedule(12, 900.0, seed=0,
                                        intensity=2.0)
        return _record(lambda: _chaos(
            stream, schedule, QEDPolicy(inner=PVCPolicy()),
            fleet=FleetSpec.of(beefy=4, wimpy=8)))

    @pytest.fixture(scope="class")
    def report(self, recorded):
        return recorded[0]

    def test_all_three_mechanisms_fired(self, recorded):
        report, recording = recorded
        # QED shared at least one execution
        assert any(m > 1 for m in recording.batches["members"])
        # PVC downclocked at least one execution
        assert any(f is not None and f < 1.0
                   for f in recording.queries["frequency"])
        # the fault schedule actually struck the fleet
        assert any(n.crashes for n in report.nodes) \
            or any(n.boots for n in report.nodes)

    def test_class_energy_sums_to_fleet_books(self, report):
        assert sum(c.energy_joules for c in report.classes) \
            == pytest.approx(report.energy_joules, rel=1e-9)

    def test_class_counts_sum_to_fleet(self, report):
        assert sum(c.count for c in report.classes) == 12
        assert {c.node_class for c in report.classes} \
            == {"beefy", "wimpy"}

    def test_class_completions_sum_to_node_ledger(self, report):
        per_node = sum(n.completed for n in report.nodes)
        assert sum(c.completed for c in report.classes) == per_node

    def test_class_rows_match_node_rollup(self, report):
        for cls in report.classes:
            mine = [n for n in report.nodes
                    if n.node_class == cls.node_class]
            assert cls.busy_seconds == pytest.approx(
                sum(n.busy_seconds for n in mine), rel=1e-12)
            assert cls.on_seconds == pytest.approx(
                sum(n.on_seconds for n in mine), rel=1e-12)
            assert cls.boots == sum(n.boots for n in mine)
            assert cls.crashes == sum(n.crashes for n in mine)


class TestRunnerIntegration:
    def test_recordings_ride_pool_and_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = ExperimentSpec("svc_smoke",
                              knobs={"policy": "power_aware"})
        cold = Runner(cache=cache, record=True, workers=2).run(spec)
        assert cold.points[0].recording is not None
        assert cold.cache_hits == 0
        warm = Runner(cache=cache, record=True).run(spec)
        assert warm.cache_hits == 1
        assert warm.to_json() == cold.to_json()

    def test_recorded_and_plain_cache_separately(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = ExperimentSpec("svc_smoke",
                              knobs={"policy": "power_aware"})
        recorded = Runner(cache=cache, record=True).run(spec)
        plain = Runner(cache=cache).run(spec)
        assert plain.cache_hits == 0  # distinct cache identity
        assert plain.points[0].recording is None
        assert json.dumps(plain.points[0].report.to_dict(),
                          sort_keys=True) \
            == json.dumps(recorded.points[0].report.to_dict(),
                          sort_keys=True)

    def test_run_result_round_trip_keeps_recording(self, tmp_path):
        from repro.runner.runner import RunResult
        spec = ExperimentSpec("svc_smoke",
                              knobs={"policy": "power_aware"})
        result = Runner(cache=False, record=True).run(spec)
        restored = RunResult.from_dict(json.loads(result.to_json()))
        assert restored.points[0].recording.n_queries \
            == result.points[0].recording.n_queries
        assert restored.to_json() == result.to_json()


class TestConsole:
    @pytest.fixture(scope="class")
    def recording(self, stream):
        _, recording = _record(lambda: _healthy(
            stream, QEDPolicy(inner=PVCPolicy())))
        return recording

    def test_timeline_answers_the_operator_questions(self, recording):
        from repro.flightrec.console import render_timeline
        html = render_timeline(recording)
        assert html.lower().startswith("<!doctype html>")
        # self-contained: no scripts, no external fetches
        assert "<script" not in html
        assert "http://" not in html and "https://" not in html
        # one swimlane per node
        for i in range(recording.n_nodes):
            assert recording.node_name(i) in html
        # QED hold lanes and the batch-savings table
        assert "held" in html.lower() or "hold" in html.lower()
        assert "batch" in html.lower()
        # per-tenant burn strips
        for spec in recording.meta["tenants"]:
            assert spec["name"] in html
        # DVFS windows made it in (PVC downclocked at least once)
        assert any(f < 1.0 and f is not None
                   for f in recording.queries["frequency"])
        assert "downclock" in html.lower()

    def test_timeline_of_chaos_run_shows_faults(self, stream, schedule):
        from repro.flightrec.console import render_timeline
        _, recording = _record(
            lambda: _chaos(stream, schedule, "power_aware"))
        html = render_timeline(recording)
        assert "crash" in html.lower()

    def test_slo_monitor_covers_every_tenant(self, recording):
        monitor = SLOMonitor(recording)
        names = {slo.tenant for slo in monitor.tenants()}
        assert names == {spec["name"]
                         for spec in recording.meta["tenants"]}
        # every completion lands in exactly one window
        for ti, slo in enumerate(monitor.tenants()):
            mine = sum(1 for t in recording.queries["tenant"]
                       if t == ti)
            assert sum(w.completed for w in slo.windows) == mine
