"""Integration: the PVC/QED mechanisms on the full serving engine.

The acceptance criteria of the 0909.1767 reproduction: at least one
mechanism configuration strictly dominates ``power_aware`` on
Joules/query while meeting every tenant SLA, and the telemetry
mirror's metered energy equals the closed-form books to 1e-9 for
downclocked and batched executions alike.
"""

import pytest

from repro.service import (FleetSpec, PVCPolicy, QEDPolicy, build_stream,
                           simulate_service)
from repro.service.experiments import (PVC_QED_CONFIGS, PVCQEDSweepResult,
                                       pvc_qed_point)
from repro.telemetry import capture

QUERIES = 20_000


@pytest.fixture(scope="module")
def stream():
    return build_stream(QUERIES, seed=3)


@pytest.fixture(scope="module")
def reports(stream):
    fleet = FleetSpec.homogeneous(16)
    policies = {
        "power_aware": "power_aware",
        "pvc": PVCPolicy(),
        "qed": QEDPolicy(),
        "pvc_qed": QEDPolicy(inner=PVCPolicy()),
    }
    return {name: simulate_service(stream, fleet=fleet, policy=policy)
            for name, policy in policies.items()}


class TestMechanismFrontier:
    def test_each_mechanism_dominates_baseline_joules_per_query(
            self, reports):
        base = reports["power_aware"]
        for name in ("pvc", "qed", "pvc_qed"):
            assert reports[name].joules_per_query \
                < base.joules_per_query, name

    def test_composition_beats_each_mechanism_alone(self, reports):
        stacked = reports["pvc_qed"].joules_per_query
        assert stacked < reports["pvc"].joules_per_query
        assert stacked < reports["qed"].joules_per_query

    def test_every_tenant_sla_met(self, reports):
        for name, report in reports.items():
            assert report.slas_met, (
                name, [(t.tenant, t.p95_latency_seconds,
                        t.sla_p95_seconds) for t in report.tenants])

    def test_no_queries_lost(self, reports):
        for report in reports.values():
            assert report.queries_completed == QUERIES
            assert report.queries_rejected == 0


class TestTelemetryMirrorExactness:
    @pytest.mark.parametrize("policy_fn", [
        lambda: PVCPolicy(),
        lambda: QEDPolicy(),
        lambda: QEDPolicy(inner=PVCPolicy()),
    ], ids=["pvc", "qed", "pvc_qed"])
    def test_metered_equals_closed_form(self, stream, policy_fn):
        with capture() as collector:
            report = simulate_service(stream,
                                      fleet=FleetSpec.homogeneous(16),
                                      policy=policy_fn())
        trace = collector.finalize()
        metered = sum(d.energy_joules for d in trace.devices)
        assert metered == pytest.approx(report.energy_joules,
                                        rel=1e-9)
        counters = dict(trace.counters)
        assert counters["svc.queries_completed"] == QUERIES


class TestRunnerIntegration:
    def test_point_function_covers_every_config(self):
        for config in PVC_QED_CONFIGS:
            report = pvc_qed_point(config=config, queries=2_000)
            assert report.queries_completed == 2_000

    def test_sweep_aggregation_and_headline(self):
        from repro.runner.runner import Runner
        from repro.runner.spec import ExperimentSpec
        res = Runner().run(ExperimentSpec(
            "svc_pvc_qed", knobs={"queries": QUERIES}))
        sweep = res.aggregate()
        assert isinstance(sweep, PVCQEDSweepResult)
        assert len(sweep.reports) == 8  # 4 configs x 2 headrooms
        headline = sweep.headline()
        assert headline["dominates_power_aware"] is True
        assert headline["best_config"] != "power_aware"
        assert headline["savings_fraction"] > 0.0
        # the frontier's cheapest point is a mechanism config, its
        # fastest point the baseline
        frontier = sweep.pareto_rows()
        assert frontier[0][0] != "power_aware"
        assert frontier[-1][0] == "power_aware"
        # round-trips through the report registry
        restored = PVCQEDSweepResult.from_dict(sweep.to_dict())
        assert restored.to_dict() == sweep.to_dict()

    def test_result_type_registered(self):
        from repro.runner.reports import REPORT_TYPES
        assert "PVCQEDSweepResult" in REPORT_TYPES
