"""End-to-end: record → compare → gate → report through the CLI.

Covers the PR's acceptance loop: two identical fig2 runs produce zero
regressions, a +10% CPU active-power perturbation flags exactly the
energy-derived metrics, ``gate`` exits nonzero, and the ledger round
trips through ``report`` into a self-contained HTML dashboard.
"""

from __future__ import annotations

import json

import pytest

import repro.hardware.profiles as profiles
from repro.observatory import HistoryStore, cli

#: metrics fed by device power draw; everything else is pure timing
ENERGY_METRICS = {"joules", "watts", "joules_per_record",
                  "records_per_second_per_watt"}

FIG2_ARGS = ["--quiet", "--no-cache", "--scale_factor", "0.001"]


def _record(history, suite="it"):
    code = cli.main(["record", "fig2", "--history", str(history),
                     "--suite", suite, *FIG2_ARGS])
    assert code == 0


def _compare_json(capsys, history, suite="it"):
    capsys.readouterr()     # drain the record tables
    assert cli.main(["compare", "--history", str(history),
                     "--suite", suite, "--json"]) == 0
    return json.loads(capsys.readouterr().out)


class TestIdenticalRuns:
    def test_two_identical_runs_have_zero_regressions(self, tmp_path,
                                                      capsys):
        _record(tmp_path)
        _record(tmp_path)
        report = _compare_json(capsys, tmp_path)
        assert report["counts"].get("regression", 0) == 0
        assert report["counts"].get("changed", 0) == 0
        assert report["counts"].get("missing", 0) == 0
        # both sweep points produced findings, all ok
        assert report["counts"]["ok"] > 0
        assert not report["has_regressions"]

    def test_gate_passes_on_identical_runs(self, tmp_path, capsys):
        _record(tmp_path)
        _record(tmp_path)
        assert cli.main(["gate", "--history", str(tmp_path),
                         "--suite", "it"]) == 0
        assert "gate: ok" in capsys.readouterr().err

    def test_first_run_is_new_not_a_failure(self, tmp_path, capsys):
        _record(tmp_path)
        report = _compare_json(capsys, tmp_path)
        assert set(report["counts"]) == {"new"}
        assert cli.main(["gate", "--history", str(tmp_path),
                         "--suite", "it"]) == 0


class TestEnergyPerturbation:
    @pytest.fixture()
    def perturbed_history(self, tmp_path, monkeypatch):
        """Two honest runs, then one with CPU active power +10%."""
        _record(tmp_path)
        _record(tmp_path)
        with monkeypatch.context() as patch:
            patch.setattr(profiles, "FIG2_CPU_ACTIVE_WATTS",
                          profiles.FIG2_CPU_ACTIVE_WATTS * 1.10)
            _record(tmp_path)
        return tmp_path

    def test_flags_exactly_the_energy_metrics(self, perturbed_history,
                                              capsys):
        report = _compare_json(capsys, perturbed_history)
        flagged = {f["metric"] for f in report["findings"]
                   if f["verdict"] == "regression"}
        assert flagged == ENERGY_METRICS
        # timing and work counts are untouched by a power change
        ok = {f["metric"] for f in report["findings"]
              if f["verdict"] == "ok"}
        assert {"sim_seconds", "records",
                "records_per_second"} <= ok
        # ... and every sweep point of every energy metric regressed
        regressed_points = {(f["point"], f["metric"])
                            for f in report["findings"]
                            if f["verdict"] == "regression"}
        points = {f["point"] for f in report["findings"]}
        assert regressed_points == {(p, m) for p in points
                                    for m in ENERGY_METRICS}

    def test_gate_exits_nonzero(self, perturbed_history, capsys):
        assert cli.main(["gate", "--history", str(perturbed_history),
                         "--suite", "it"]) == 1
        captured = capsys.readouterr()
        assert "gate: FAIL" in captured.err
        assert "regression" in captured.out

    def test_median_baseline_survives_the_bad_append(
            self, perturbed_history, capsys):
        """One more honest run: the outlier is in history but the
        median baseline keeps the verdicts clean again."""
        _record(perturbed_history)
        report = _compare_json(capsys, perturbed_history)
        assert report["counts"].get("regression", 0) == 0


class TestReportRoundTrip:
    def test_ledger_renders_to_self_contained_html(self, tmp_path,
                                                   capsys):
        _record(tmp_path)
        _record(tmp_path)
        out = tmp_path / "dash.html"
        assert cli.main(["report", "--history", str(tmp_path),
                         "--out", str(out)]) == 0
        html = out.read_text(encoding="utf-8")
        assert html.startswith("<!DOCTYPE html>")
        assert "Suite: it" in html
        assert "<polyline" in html          # sparkline trend
        assert "Device power" in html       # telemetry timeline
        assert "http://" not in html and "<script" not in html

    def test_ledger_file_is_appendable_jsonl(self, tmp_path):
        _record(tmp_path)
        _record(tmp_path)
        store = HistoryStore(tmp_path)
        records = store.load("it")
        assert len(records) == 4            # 2 runs x 2 sweep points
        assert [r.seq for r in records] == [0, 1, 2, 3]
        assert all(r.spec_hash for r in records)
        lines = store.path("it").read_text().strip().splitlines()
        assert all(json.loads(ln) for ln in lines)
