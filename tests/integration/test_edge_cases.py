"""Edge cases through the full stack: empty tables, single rows,
zero-limit queries, empty aggregations — places engines classically
crash (division by zero in chunking, empty pipelines, etc.)."""

import pytest

from repro.hardware.profiles import commodity
from repro.optimizer import CostModel, Objective, Planner, QuerySpec
from repro.optimizer.planner import JoinEdge, TableRef
from repro.relational.executor import ExecutionContext, Executor
from repro.relational.expr import col
from repro.relational.operators import (
    AggregateSpec,
    Filter,
    HashAggregate,
    HashJoin,
    Limit,
    Sort,
    SortMergeJoin,
    TableScan,
)
from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType
from repro.sim import Simulation
from repro.storage.manager import StorageManager


@pytest.fixture
def env():
    sim = Simulation()
    server, array = commodity(sim)
    storage = StorageManager(sim)

    def table(name, rows):
        t = storage.create_table(
            TableSchema(name, [
                Column(f"{name}_k", DataType.INT64, nullable=False),
                Column(f"{name}_v", DataType.FLOAT64, nullable=False),
            ]), layout="row", placement=array)
        t.load(rows)
        return t

    empty = table("empty", [])
    single = table("single", [(7, 7.5)])
    normal = table("normal", [(i, float(i)) for i in range(100)])
    executor = Executor(ExecutionContext(sim=sim, server=server))
    return sim, server, executor, empty, single, normal


def test_scan_of_empty_table(env):
    _, _, executor, empty, *_ = env
    result = executor.run(TableScan(empty))
    assert result.rows == []
    assert result.energy_joules >= 0


def test_filter_nothing_matches(env):
    _, _, executor, _, _, normal = env
    result = executor.run(Filter(TableScan(normal),
                                 col("normal_k") > 10_000))
    assert result.rows == []


def test_join_with_empty_side(env):
    _, _, executor, empty, _, normal = env
    result = executor.run(HashJoin(TableScan(empty), TableScan(normal),
                                   ["empty_k"], ["normal_k"]))
    assert result.rows == []
    result = executor.run(HashJoin(TableScan(normal), TableScan(empty),
                                   ["normal_k"], ["empty_k"]))
    assert result.rows == []


def test_sort_merge_join_with_empty_side(env):
    _, _, executor, empty, _, normal = env
    result = executor.run(SortMergeJoin(
        TableScan(empty), TableScan(normal), ["empty_k"], ["normal_k"]))
    assert result.rows == []


def test_sort_empty_and_single(env):
    _, _, executor, empty, single, _ = env
    assert executor.run(Sort(TableScan(empty), ["empty_k"])).rows == []
    assert executor.run(Sort(TableScan(single),
                             ["single_k"])).rows == [(7, 7.5)]


def test_limit_zero(env):
    _, _, executor, _, _, normal = env
    result = executor.run(Limit(TableScan(normal), 0))
    assert result.rows == []


def test_limit_beyond_input(env):
    _, _, executor, _, single, _ = env
    result = executor.run(Limit(TableScan(single), 99))
    assert result.row_count == 1


def test_aggregate_over_empty_table(env):
    _, _, executor, empty, *_ = env
    result = executor.run(HashAggregate(
        TableScan(empty), [],
        [AggregateSpec("count", None, "n"),
         AggregateSpec("min", col("empty_v"), "lo")]))
    assert result.rows == [(0, None)]


def test_grouped_aggregate_over_empty_table(env):
    _, _, executor, empty, *_ = env
    result = executor.run(HashAggregate(
        TableScan(empty), ["empty_k"],
        [AggregateSpec("count", None, "n")]))
    assert result.rows == []


def test_planner_on_empty_table(env):
    _, server, executor, empty, _, normal = env
    planner = Planner(CostModel(server), Objective.ENERGY)
    planned = planner.plan(QuerySpec(
        tables=[TableRef(empty), TableRef(normal)],
        joins=[JoinEdge("empty", "normal",
                        ["empty_k"], ["normal_k"])]))
    result = executor.run(planned.root)
    assert result.rows == []


def test_cost_model_on_empty_table(env):
    _, server, _, empty, *_ = env
    cost = CostModel(server).cost(TableScan(empty))
    assert cost.out_rows == 0
    assert cost.seconds >= 0
    assert cost.energy_full_joules >= 0


def test_single_row_join(env):
    _, _, executor, _, single, normal = env
    result = executor.run(HashJoin(TableScan(single), TableScan(normal),
                                   ["single_k"], ["normal_k"]))
    assert result.rows == [(7, 7.5, 7, 7.0)]


def test_index_on_empty_table(env):
    sim, server, executor, empty, *_ = env
    index = empty.create_index("empty_k")
    assert index.entry_count == 0
    assert index.search_rows(1) == []
    assert list(index.range_rows(0, 10)) == []
