"""Integration tests: cost model accuracy, planner choices, advisor."""

import pytest

from repro.hardware.profiles import commodity, flash_scan_node
from repro.relational.expr import col
from repro.relational.executor import ExecutionContext, Executor
from repro.relational.operators import (
    AggregateSpec,
    CostCollector,
    Filter,
    HashAggregate,
    HashJoin,
    SortMergeJoin,
    TableScan,
)
from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType
from repro.optimizer import (
    CostModel,
    DesignAdvisor,
    Objective,
    Planner,
    QuerySpec,
    SystemKnobs,
    WeightedObjective,
    score,
)
from repro.optimizer.planner import JoinEdge, TableRef
from repro.sim import Simulation
from repro.storage.manager import StorageManager
from repro.units import MIB


def build_env(n_orders=3000, n_customers=50):
    sim = Simulation()
    server, array = commodity(sim)
    storage = StorageManager(sim)
    orders = storage.create_table(
        TableSchema("orders", [
            Column("o_id", DataType.INT64, nullable=False),
            Column("o_cust", DataType.INT64, nullable=False),
            Column("o_total", DataType.FLOAT64, nullable=False),
        ]), layout="row", placement=array)
    orders.load([(i, i % n_customers, float(i % 213))
                 for i in range(n_orders)])
    customers = storage.create_table(
        TableSchema("customers", [
            Column("c_id", DataType.INT64, nullable=False),
            Column("c_region", DataType.INT64, nullable=False),
        ]), layout="row", placement=array)
    customers.load([(i, i % 5) for i in range(n_customers)])
    return sim, server, storage, orders, customers


class TestCostModelAccuracy:
    """The model must track what the collector actually charges."""

    def check(self, plan_builder, rel=0.25):
        sim, server, _, orders, customers = build_env()
        model = CostModel(server)
        predicted = model.cost(plan_builder())
        collector = CostCollector()
        plan_builder().execute(collector)
        actual_cpu = collector.total_cpu_cycles()
        actual_io = collector.total_io_bytes()
        predicted_cpu = sum(p.cpu_cycles for p in predicted.pipelines)
        predicted_io = sum(p.io_bytes for p in predicted.pipelines)
        assert predicted_io == pytest.approx(actual_io, rel=rel)
        assert predicted_cpu == pytest.approx(actual_cpu, rel=rel)
        return predicted

    def test_scan_cost_exact(self):
        sim, server, _, orders, _ = build_env()
        model = CostModel(server)
        predicted = model.cost(TableScan(orders))
        collector = CostCollector()
        TableScan(orders).execute(collector)
        assert sum(p.io_bytes for p in predicted.pipelines) == \
            pytest.approx(collector.total_io_bytes(), rel=1e-9)
        assert sum(p.cpu_cycles for p in predicted.pipelines) == \
            pytest.approx(collector.total_cpu_cycles(), rel=1e-9)

    def test_filter_cost(self):
        sim, server, _, orders, _ = build_env()

        def build():
            return Filter(TableScan(orders), col("o_total") > 100.0)

        model = CostModel(server)
        predicted = model.cost(build())
        assert predicted.out_rows == pytest.approx(
            len(build().execute(CostCollector())), rel=0.25)

    def test_hash_join_cost(self):
        sim, server, _, orders, customers = build_env()

        def build():
            return HashJoin(TableScan(customers), TableScan(orders),
                            ["c_id"], ["o_cust"])

        model = CostModel(server)
        predicted = model.cost(build())
        collector = CostCollector()
        rows = build().execute(collector)
        assert predicted.out_rows == pytest.approx(len(rows), rel=0.2)
        assert sum(p.cpu_cycles for p in predicted.pipelines) == \
            pytest.approx(collector.total_cpu_cycles(), rel=0.25)

    def test_aggregate_cost(self):
        sim, server, _, orders, _ = build_env()

        def build():
            return HashAggregate(
                TableScan(orders), ["o_cust"],
                [AggregateSpec("sum", col("o_total"), "t")])

        model = CostModel(server)
        predicted = model.cost(build())
        assert predicted.out_rows == pytest.approx(50, rel=0.1)

    def test_predicted_time_tracks_simulated_time(self):
        sim, server, _, orders, _ = build_env()
        model = CostModel(server, chunk_bytes=1 * MIB)
        predicted = model.cost(TableScan(orders))
        ctx = ExecutionContext(sim=sim, server=server, chunk_bytes=1 * MIB)
        result = Executor(ctx).run(TableScan(orders))
        assert predicted.seconds == pytest.approx(
            result.elapsed_seconds, rel=0.35)

    def test_predicted_energy_positive_and_ordered(self):
        sim, server, _, orders, _ = build_env()
        model = CostModel(server)
        cost = model.cost(TableScan(orders))
        assert 0 < cost.energy_attributed_joules
        assert cost.energy_attributed_joules != cost.energy_full_joules


class TestPlanner:
    def make_spec(self, orders, customers, predicate=None):
        return QuerySpec(
            tables=[TableRef(orders, predicate=predicate),
                    TableRef(customers)],
            joins=[JoinEdge("customers", "orders", ["c_id"], ["o_cust"])],
            group_by=["c_region"],
            aggregates=[AggregateSpec("sum", col("o_total"), "revenue")],
        )

    def test_planner_produces_correct_results(self):
        sim, server, _, orders, customers = build_env()
        planner = Planner(CostModel(server), Objective.TIME)
        planned = planner.plan(self.make_spec(orders, customers))
        result = Executor(ExecutionContext(sim=sim, server=server)).run(
            planned.root)
        assert result.row_count == 5
        total = sum(r[1] for r in result.rows)
        expected = sum(float(i % 213) for i in range(3000))
        assert total == pytest.approx(expected)

    def test_planner_explores_candidates(self):
        sim, server, _, orders, customers = build_env()
        planner = Planner(CostModel(server), Objective.TIME)
        planned = planner.plan(self.make_spec(orders, customers))
        assert planned.candidates_considered >= 5

    def test_single_table_query(self):
        sim, server, _, orders, _ = build_env()
        planner = Planner(CostModel(server), Objective.TIME)
        planned = planner.plan(QuerySpec(
            tables=[TableRef(orders, predicate=col("o_total") > 100.0)],
            aggregates=[AggregateSpec("count", None, "n")]))
        result = Executor(ExecutionContext(sim=sim, server=server)).run(
            planned.root)
        assert result.rows[0][0] == sum(
            1 for i in range(3000) if (i % 213) > 100)

    def test_disconnected_join_graph_rejected(self):
        from repro.errors import OptimizerError
        sim, server, _, orders, customers = build_env()
        planner = Planner(CostModel(server), Objective.TIME)
        with pytest.raises(OptimizerError):
            planner.plan(QuerySpec(tables=[TableRef(orders),
                                           TableRef(customers)]))

    def test_objective_changes_scores(self):
        sim, server, _, orders, customers = build_env()
        model = CostModel(server)
        plan = HashJoin(TableScan(customers), TableScan(orders),
                        ["c_id"], ["o_cust"])
        cost = model.cost(plan)
        assert score(cost, Objective.TIME) != score(cost, Objective.ENERGY)
        assert score(cost, Objective.EDP) == pytest.approx(
            cost.seconds * cost.energy_full_joules)

    def test_weighted_objective_interpolates(self):
        sim, server, _, orders, _ = build_env()
        cost = CostModel(server).cost(TableScan(orders))
        w_time = WeightedObjective(1.0).score(cost)
        w_energy = WeightedObjective(0.0).score(cost)
        w_mid = WeightedObjective(0.5).score(cost)
        assert min(w_time, w_energy) <= w_mid <= max(w_time, w_energy)

    def test_three_way_join_plans(self):
        sim, server, storage, orders, customers = build_env()
        regions = storage.create_table(
            TableSchema("regions", [
                Column("r_id", DataType.INT64, nullable=False),
                Column("r_name", DataType.VARCHAR, nullable=False),
            ]), layout="row", placement=orders.placement)
        regions.load([(i, f"region{i}") for i in range(5)])
        spec = QuerySpec(
            tables=[TableRef(orders), TableRef(customers),
                    TableRef(regions)],
            joins=[JoinEdge("customers", "orders", ["c_id"], ["o_cust"]),
                   JoinEdge("regions", "customers", ["r_id"], ["c_region"])],
            group_by=["r_name"],
            aggregates=[AggregateSpec("count", None, "n")])
        planner = Planner(CostModel(server), Objective.TIME)
        planned = planner.plan(spec)
        result = Executor(ExecutionContext(sim=sim, server=server)).run(
            planned.root)
        assert result.row_count == 5
        assert sum(r[1] for r in result.rows) == 3000


class TestKnobs:
    def test_dvfs_knob_applies(self):
        sim, server, *_ = build_env()
        knobs = SystemKnobs(dvfs_fraction=0.7)
        knobs.apply(server)
        assert server.cpu.dvfs_fraction == 0.7

    def test_unoffered_dvfs_rejected(self):
        from repro.errors import OptimizerError
        sim, server, *_ = build_env()
        with pytest.raises(OptimizerError):
            SystemKnobs(dvfs_fraction=0.33).apply(server)

    def test_with_sweeps(self):
        base = SystemKnobs()
        variant = base.with_(parallelism=4)
        assert variant.parallelism == 4
        assert base.parallelism == 1

    def test_execution_context_carries_knobs(self):
        sim, server, *_ = build_env()
        knobs = SystemKnobs(chunk_bytes=2 * MIB, prefetch_depth=3)
        ctx = knobs.execution_context(sim, server)
        assert ctx.chunk_bytes == 2 * MIB
        assert ctx.prefetch_depth == 3


class TestAdvisor:
    def test_for_server_prices(self):
        sim = Simulation()
        server, _ = flash_scan_node(sim)
        advisor = DesignAdvisor.for_server(server)
        assert advisor.cpu_joules_per_cycle > 0
        assert advisor.io_joules_per_byte > 0

    def test_codec_choice_depends_on_power_ratio(self):
        """With a power-hungry CPU, the energy objective should avoid
        CPU-heavy codecs that a pure size objective would pick."""
        values = [f"val{i % 7}" for i in range(3000)]
        hungry_cpu = DesignAdvisor(cpu_joules_per_cycle=1e-6,
                                   io_joules_per_byte=1e-9)
        cheap_cpu = DesignAdvisor(cpu_joules_per_cycle=1e-12,
                                  io_joules_per_byte=1e-6)
        pick_hungry = hungry_cpu.choose_codec(
            "c", values, DataType.VARCHAR).codec
        pick_cheap = cheap_cpu.choose_codec(
            "c", values, DataType.VARCHAR).codec
        assert pick_hungry == "none"
        assert pick_cheap != "none"

    def test_choose_codecs_for_table(self):
        sim, server, _, orders, _ = build_env()
        advisor = DesignAdvisor(cpu_joules_per_cycle=1e-12,
                                io_joules_per_byte=1e-6)
        codecs = advisor.choose_codecs(orders)
        assert set(codecs) == {"o_id", "o_cust", "o_total"}
        assert codecs["o_id"] == "delta"  # sorted ints

    def test_choose_width_picks_best_efficiency(self):
        def evaluate(width):
            seconds = 10.0 / width + 2.0       # diminishing returns
            power = 100.0 + width * 15.0       # constant power per disk
            return seconds, seconds * power

        width, points = DesignAdvisor(0, 0).choose_width(
            evaluate, [2, 4, 8, 16])
        efficiencies = {p.width: p.efficiency for p in points}
        assert efficiencies[width] == max(efficiencies.values())

    def test_choose_width_respects_performance_floor(self):
        def evaluate(width):
            seconds = 10.0 / width + 2.0
            power = 100.0 + width * 15.0
            return seconds, seconds * power

        unconstrained, _ = DesignAdvisor(0, 0).choose_width(
            evaluate, [2, 4, 8, 16])
        constrained, _ = DesignAdvisor(0, 0).choose_width(
            evaluate, [2, 4, 8, 16], min_performance=1.0 / 2.9)
        assert constrained >= unconstrained
        assert 10.0 / constrained + 2.0 <= 2.9 + 1e-9
