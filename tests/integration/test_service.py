"""Integration tests for fleet serving: the acceptance energy/SLA
ordering through the real Runner, cache and JSON transport of the new
report types, the telemetry mirror's exactness against the metered
devices, and the v2 facade (eager reports, lazy deprecated shims)."""

import warnings

import pytest

from repro.runner import ExperimentSpec, Runner, RunResult
from repro.runner.registry import list_experiments
from repro.runner.reports import REPORT_TYPES, decode_report, encode_report
from repro.service import (FleetSpec, NodePowerModel,
                           ServiceSweepResult, build_stream,
                           simulate_service)

#: small-but-real sweep: 3 policies x 20k queries on a 16-node fleet
SMOKE_KNOBS = {"queries": 20_000}


@pytest.fixture(scope="module")
def smoke_sweep():
    """One svc_smoke run through the real Runner, shared below."""
    run = Runner(workers=1, cache=False).run(ExperimentSpec("svc_smoke"))
    return run, run.aggregate()


class TestAcceptanceOrdering:
    def test_packing_beats_round_robin_at_equal_or_better_p95(
            self, smoke_sweep):
        _, sweep = smoke_sweep
        headline = sweep.headline()
        assert headline["savings_fraction"] >= 0.15
        assert headline["power_aware_p95_seconds"] <= \
            headline["round_robin_p95_seconds"]

    def test_all_slas_hold_for_every_policy(self, smoke_sweep):
        _, sweep = smoke_sweep
        for report in sweep.reports:
            assert report.slas_met, (
                f"{report.policy} missed an SLA: {report.rows()}")
            assert report.queries_completed == 20_000

    def test_packing_runs_fewer_node_seconds(self, smoke_sweep):
        _, sweep = smoke_sweep
        packing = sweep.report("power_aware")
        rr = sweep.report("round_robin")
        assert packing.average_active_nodes < rr.average_active_nodes
        assert rr.average_active_nodes == pytest.approx(16.0, rel=1e-6)

    def test_aggregate_is_a_sweep_result(self, smoke_sweep):
        run, sweep = smoke_sweep
        assert isinstance(sweep, ServiceSweepResult)
        assert sweep.policies() == ["round_robin", "least_loaded",
                                    "power_aware"]
        assert ServiceSweepResult.from_dict(sweep.to_dict()) == sweep
        # JSON transport of the whole run inverts exactly
        assert RunResult.from_dict(run.to_dict()).to_json() == \
            run.to_json()


class TestRunnerTransport:
    def test_svc_points_cache_and_replay_bit_identical(self, tmp_path):
        spec = ExperimentSpec("svc_smoke", knobs={"queries": 4_000})
        first = Runner(workers=2, cache=tmp_path / "cache").run(spec)
        assert first.cache_hits == 0
        again = Runner(workers=2, cache=tmp_path / "cache").run(spec)
        assert again.cache_hits == len(again.points) == 3
        assert again.to_json() == first.to_json()

    def test_batching_experiment_runs_through_runner(self, tmp_path):
        from repro.consolidation.scheduler import ScheduleReport
        spec = ExperimentSpec("batching", knobs={
            "queries": 4, "rate_per_s": 1.0 / 20.0,
            "window_seconds": 60.0, "table_rows": 400, "scale": 100.0,
            "tail_seconds": 60.0})
        run = Runner(workers=1, cache=tmp_path / "cache").run(spec)
        by_policy = {p.knobs["policy"]: p.report for p in run.points}
        assert set(by_policy) == {"fifo", "batched"}
        for report in by_policy.values():
            assert isinstance(report, ScheduleReport)
            assert report.completed == 4
        assert by_policy["batched"].spin_down_count >= 1
        # batching trades latency for spin-down opportunities
        assert by_policy["batched"].mean_latency_seconds > \
            by_policy["fifo"].mean_latency_seconds
        assert RunResult.from_dict(run.to_dict()).to_json() == \
            run.to_json()

    def test_new_report_types_are_registered_and_round_trip(self):
        for name in ("ScheduleReport", "ServiceReport",
                     "ServiceSweepResult"):
            assert name in REPORT_TYPES
        stream = build_stream(2_000, seed=7)
        report = simulate_service(stream, fleet=FleetSpec.homogeneous(4),
                                  policy="least_loaded")
        payload = encode_report(report)
        assert payload["type"] == "ServiceReport"
        assert decode_report(payload) == report

    def test_svc_experiments_are_registered(self):
        names = {d.name for d in list_experiments()}
        assert {"svc_policies", "svc_smoke", "svc_fleet",
                "batching"} <= names


class TestTelemetryMirror:
    def test_mirror_devices_integrate_to_the_fleet_energy(self):
        from repro.telemetry import capture
        with capture() as collector:
            stream = build_stream(20_000, seed=3)
            report = simulate_service(stream,
                                      fleet=FleetSpec.homogeneous(16),
                                      policy="power_aware")
        trace = collector.finalize()
        fleet_devices = [d for d in trace.devices
                         if d.name.startswith("svc.node")]
        assert len(fleet_devices) == 16
        mirrored = sum(d.energy_joules for d in fleet_devices)
        assert mirrored == pytest.approx(report.energy_joules,
                                         rel=1e-9)

    def test_mirror_spans_cover_powered_on_intervals(self):
        from repro.telemetry import capture
        with capture() as collector:
            stream = build_stream(20_000, seed=3)
            report = simulate_service(stream,
                                      fleet=FleetSpec.homogeneous(16),
                                      policy="power_aware")
        trace = collector.finalize()
        on_spans = [s for s in trace.spans
                    if s.name.startswith("svc.node")]
        assert len(on_spans) >= 16
        spanned = sum(s.duration for s in on_spans)
        assert spanned == pytest.approx(report.node_seconds_on,
                                        rel=1e-9)
        assert trace.counters["svc.queries_completed"] == \
            report.queries_completed
        assert trace.counters["svc.queries_rejected"] == \
            report.queries_rejected


class TestFacade:
    def test_reports_export_eagerly_from_repro(self):
        import repro
        from repro.consolidation.scheduler import ScheduleReport
        from repro.service.report import ServiceReport, ServiceSweepResult
        assert repro.ScheduleReport is ScheduleReport
        assert repro.ServiceReport is ServiceReport
        assert repro.ServiceSweepResult is ServiceSweepResult

    def test_deprecated_shims_resolve_lazily_without_warning(self):
        import repro
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            fig1 = repro.run_figure1  # resolving must not warn
        from repro.core.experiments import run_figure1
        assert fig1 is run_figure1
        assert "run_figure1" in dir(repro)

    def test_workloads_shims_resolve_lazily_without_warning(self):
        import repro.workloads as workloads
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            shim = workloads.run_scan_experiment
        from repro.workloads.scan_workload import run_scan_experiment
        assert shim is run_scan_experiment

    def test_unknown_attribute_still_raises(self):
        import repro
        with pytest.raises(AttributeError):
            repro.run_figure7

    def test_no_internal_module_imports_deprecated_entry_points(self):
        """The v2 acceptance clause: shims resolve only on attribute
        access, so importing the facade must not materialize them."""
        import os
        import pathlib
        import subprocess
        import sys

        import repro
        src = pathlib.Path(repro.__file__).resolve().parents[1]
        env = dict(os.environ, PYTHONPATH=str(src))
        code = ("import sys, repro, repro.workloads, repro.runner, "
                "repro.service; "
                "assert 'run_figure1' not in vars(repro); "
                "assert 'run_scan_experiment' not in "
                "vars(repro.workloads); "
                "print('clean')")
        proc = subprocess.run(
            [sys.executable, "-W", "error::DeprecationWarning",
             "-c", code],
            capture_output=True, text=True, env=env)
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "clean"
