"""Integration tests for TPC-H generation, queries, and drivers."""

from datetime import date

import pytest

from repro.errors import WorkloadError
from repro.hardware.profiles import commodity, dl785
from repro.relational.executor import ExecutionContext, Executor
from repro.optimizer import CostModel, Objective, Planner
from repro.sim import Simulation
from repro.storage.manager import StorageManager
from repro.storage.wal import WriteAheadLog
from repro.workloads import (
    generate_tpch,
    q1,
    q3_spec,
    q6,
    q10_spec,
    run_oltp_stream,
    run_scan_experiment,
    run_throughput_test,
    throughput_mix,
    tpch_schemas,
)
from repro.workloads.tpch_gen import _row_counts


@pytest.fixture(scope="module")
def env():
    sim = Simulation()
    server, array = commodity(sim)
    storage = StorageManager(sim)
    db = generate_tpch(storage, array, scale_factor=0.001)
    return sim, server, db


class TestGenerator:
    def test_all_tables_present(self, env):
        _, _, db = env
        assert set(db.tables) == set(tpch_schemas())

    def test_row_counts_follow_ratios(self, env):
        _, _, db = env
        counts = _row_counts(0.001)
        assert db["orders"].row_count == counts["orders"] == 1500
        assert db["lineitem"].row_count == counts["lineitem"] == 6000
        assert db["region"].row_count == 5
        assert db["nation"].row_count == 25

    def test_generation_deterministic(self):
        def checksum(seed):
            sim = Simulation()
            _server, array = commodity(sim)
            storage = StorageManager(sim)
            db = generate_tpch(storage, array, scale_factor=0.0005,
                               seed=seed)
            return sum(hash(r) for r in db["orders"].iterate())

        assert checksum(1) == checksum(1)
        assert checksum(1) != checksum(2)

    def test_foreign_keys_resolve(self, env):
        _, _, db = env
        cust_keys = {r[0] for r in db["customer"].iterate(["c_custkey"])}
        assert all(r[0] in cust_keys
                   for r in db["orders"].iterate(["o_custkey"]))
        nation_keys = {r[0] for r in db["nation"].iterate(["n_nationkey"])}
        assert all(r[0] in nation_keys
                   for r in db["customer"].iterate(["c_nationkey"]))

    def test_orders_has_seven_attributes(self, env):
        _, _, db = env
        assert len(db["orders"].schema) == 7

    def test_dates_within_range(self, env):
        _, _, db = env
        dates = [r[0] for r in db["lineitem"].iterate(["l_shipdate"])]
        assert min(dates) >= date(1992, 1, 1)
        assert max(dates) <= date(1998, 12, 1)

    def test_bad_scale_factor_rejected(self):
        sim = Simulation()
        _server, array = commodity(sim)
        with pytest.raises(WorkloadError):
            generate_tpch(StorageManager(sim), array, scale_factor=0)


class TestQueries:
    def test_q1_produces_flag_groups(self, env):
        sim, server, db = env
        result = Executor(ExecutionContext(sim=sim, server=server)).run(
            q1(db))
        assert 1 <= result.row_count <= 6  # at most 3 flags x 2 statuses
        assert result.columns[0] == "l_returnflag"
        # sums are positive and count matches filtered rows
        assert all(r[2] > 0 for r in result.rows)

    def test_q6_single_revenue_number(self, env):
        sim, server, db = env
        result = Executor(ExecutionContext(sim=sim, server=server)).run(
            q6(db))
        assert result.row_count == 1
        expected = sum(
            p * d for (s, d, q, p) in db["lineitem"].iterate(
                ["l_shipdate", "l_discount", "l_quantity",
                 "l_extendedprice"])
            if date(1994, 1, 1) <= s < date(1995, 1, 1)
            and 0.049 <= d <= 0.071 and q < 24)
        assert result.rows[0][0] == pytest.approx(expected)

    def test_q3_plans_and_runs(self, env):
        sim, server, db = env
        planner = Planner(CostModel(server), Objective.TIME)
        planned = planner.plan(q3_spec(db))
        result = Executor(ExecutionContext(sim=sim, server=server)).run(
            planned.root)
        assert result.row_count <= 10

    def test_q10_plans_and_runs(self, env):
        sim, server, db = env
        planner = Planner(CostModel(server), Objective.ENERGY)
        planned = planner.plan(q10_spec(db))
        result = Executor(ExecutionContext(sim=sim, server=server)).run(
            planned.root)
        assert result.row_count <= 20

    def test_throughput_mix_builders_are_fresh(self, env):
        _, _, db = env
        mix = throughput_mix(db)
        assert mix[0]() is not mix[0]()  # new tree per call


class TestThroughputDriver:
    def test_report_fields_consistent(self):
        sim = Simulation()
        server, array = dl785(sim, n_disks=12, spindle_groups=12)
        storage = StorageManager(sim)
        db = generate_tpch(storage, array, scale_factor=0.0005)
        report = run_throughput_test(sim, server, throughput_mix(db),
                                     streams=2, queries_per_stream=2,
                                     scale=100.0)
        assert report.queries_completed == 4
        assert len(report.query_seconds) == 4
        assert report.makespan_seconds > 0
        assert report.energy_joules == pytest.approx(
            report.average_power_watts * report.makespan_seconds, rel=1e-6)
        assert report.energy_efficiency > 0

    def test_more_disks_run_faster(self):
        def makespan(n):
            sim = Simulation()
            server, array = dl785(sim, n_disks=n, spindle_groups=6)
            storage = StorageManager(sim)
            db = generate_tpch(storage, array, scale_factor=0.0005)
            report = run_throughput_test(sim, server, throughput_mix(db),
                                         streams=2, queries_per_stream=2,
                                         scale=2000.0)
            return report.makespan_seconds

        assert makespan(24) < makespan(6)

    def test_empty_mix_rejected(self):
        sim = Simulation()
        server, _array = dl785(sim, n_disks=6)
        with pytest.raises(WorkloadError):
            run_throughput_test(sim, server, [], streams=1)


class TestScanExperiment:
    def test_uncompressed_matches_paper_numbers(self):
        report = run_scan_experiment(compressed=False, scale_factor=0.001)
        assert report.total_seconds == pytest.approx(10.0, rel=0.05)
        assert report.cpu_seconds == pytest.approx(3.2, rel=0.05)
        assert report.energy_joules == pytest.approx(338.0, rel=0.05)
        assert report.compression_ratio == pytest.approx(1.0, abs=0.02)

    def test_compressed_is_faster_but_hungrier(self):
        plain = run_scan_experiment(compressed=False, scale_factor=0.001)
        packed = run_scan_experiment(compressed=True, scale_factor=0.001)
        assert packed.total_seconds < 0.7 * plain.total_seconds
        assert packed.energy_joules > 1.15 * plain.energy_joules
        assert packed.cpu_seconds > plain.cpu_seconds
        assert packed.compression_ratio < 0.7

    def test_energy_efficiency_metric(self):
        report = run_scan_experiment(compressed=False, scale_factor=0.001)
        assert report.energy_efficiency == pytest.approx(
            1.0 / report.energy_joules)


class TestOltpStream:
    def run_stream(self, batch_records, batch_timeout):
        sim = Simulation()
        server, _array = commodity(sim)
        log_device = server.storage[-1]  # the NVMe drive
        wal = WriteAheadLog(sim, log_device, batch_records=batch_records,
                            batch_timeout_seconds=batch_timeout)
        return run_oltp_stream(sim, server.cpu, wal, n_transactions=300,
                               arrival_rate_per_s=2000.0)

    def test_all_transactions_commit(self):
        report = self.run_stream(1, 0.0)
        assert report.transactions == 300
        assert report.throughput_tps > 0

    def test_batching_cuts_flushes_and_raises_latency(self):
        eager = self.run_stream(1, 0.0)
        batched = self.run_stream(16, 0.05)
        assert batched.log_flushes < eager.log_flushes / 4
        assert batched.mean_commit_latency_seconds > \
            eager.mean_commit_latency_seconds
        assert batched.log_bytes_flushed < eager.log_bytes_flushed

    def test_p99_at_least_mean(self):
        report = self.run_stream(8, 0.01)
        assert report.p99_commit_latency_seconds >= \
            report.mean_commit_latency_seconds
