"""Integration tests for the core experiment APIs (fast settings) and
the replay machinery for random I/O and shared passes."""

import pytest

from repro.core.experiments import run_figure1, run_figure2
from repro.core.profiler import sweep_knob
from repro.hardware.profiles import commodity
from repro.relational.executor import ExecutionContext, Executor
from repro.relational.operators import CostCollector, TableScan
from repro.relational.operators.base import IoRequest
from repro.relational.plan import preview_pipelines
from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType
from repro.sim import Simulation
from repro.storage.manager import StorageManager
from repro.workloads.joulesort import run_joulesort
from repro.units import KIB, MB


class TestFigureApis:
    def test_run_figure2_structure(self):
        result = run_figure2(scale_factor=0.001)
        assert result.inversion_holds
        assert result.speedup > 1.5
        rows = result.rows()
        assert rows[0][0] == "uncompressed"
        assert rows[1][0] == "compressed"

    def test_run_figure1_tiny_settings(self):
        result = run_figure1(disk_counts=(6, 24), streams=2,
                             queries_per_stream=1,
                             physical_scale_factor=0.0005,
                             logical_scale_factor=1.0,
                             spindle_groups=6)
        assert result.fastest_disks == 24
        assert len(result.rows()) == 2
        times = [r.makespan_seconds for r in result.reports]
        assert times[1] < times[0]

    def test_profile_rows_exposed(self):
        result = run_figure1(disk_counts=(6, 24), streams=2,
                             queries_per_stream=1,
                             physical_scale_factor=0.0005,
                             logical_scale_factor=1.0,
                             spindle_groups=6)
        gain, drop = result.tradeoff()
        assert isinstance(gain, float)
        assert 0.0 <= drop < 1.0


class TestReplayMachinery:
    def build(self):
        sim = Simulation()
        server, array = commodity(sim)
        storage = StorageManager(sim)
        table = storage.create_table(
            TableSchema("t", [Column("k", DataType.INT64,
                                     nullable=False)]),
            layout="row", placement=array)
        table.load([(i,) for i in range(500)])
        return sim, server, array, table

    def test_random_io_replay_charges_positionings(self):
        """A pipeline with n_random_requests must take far longer than
        the same bytes streamed sequentially on spinning disks."""
        sequential = self._time_for_requests(0)
        random200 = self._time_for_requests(200)
        assert random200 > 5 * sequential

    def _replay(self, executor, collector, rows):
        from repro.relational.executor import QueryResult
        sim = executor.ctx.sim
        started = sim.now
        for pipeline in collector.pipelines:
            yield from executor._replay_pipeline(pipeline)
        meter = executor.ctx.server.meter
        return QueryResult(
            rows=rows, columns=["k"], started_at=started,
            finished_at=sim.now,
            energy_joules=meter.energy_joules(started, sim.now),
            active_energy_joules=0.0, breakdown_joules={},
            pipelines=collector.pipelines, cpu_busy_seconds=0.0,
            io_busy_seconds=0.0)

    def _time_for_requests(self, requests):
        sim, server, array, table = self.build()
        executor = Executor(ExecutionContext(sim=sim, server=server))
        collector = CostCollector()
        rows = TableScan(table).execute(collector)
        pipeline = collector.pipelines[0]
        nbytes = pipeline.io[0].nbytes
        pipeline.io = [IoRequest(array, nbytes, stream="seq",
                                 n_random_requests=requests)]
        result = sim.run(until=sim.spawn(
            self._replay(executor, collector, rows)))
        return result.elapsed_seconds

    def test_preview_pipelines(self):
        sim, server, array, table = self.build()
        preview = preview_pipelines(lambda: TableScan(table), scale=10.0)
        assert len(preview) == 1
        assert preview[0]["io_bytes"] > 0
        assert preview[0]["cpu_cycles"] > 0
        assert preview[0]["parallelism"] == 1


class TestJouleSortApi:
    def test_report_metrics(self):
        sim = Simulation()
        server, array = commodity(sim)
        report = run_joulesort(sim, server, array,
                               logical_records=100_000,
                               physical_records=5_000)
        assert report.records == 100_000
        assert report.records_per_joule > 0
        assert report.records_per_second > 0
        assert not report.spilled

    def test_small_grant_spills(self):
        sim = Simulation()
        server, array = commodity(sim)
        report = run_joulesort(sim, server, array,
                               logical_records=100_000,
                               physical_records=5_000,
                               memory_grant_bytes=64 * KIB)
        assert report.spilled

    def test_validation(self):
        from repro.errors import WorkloadError
        sim = Simulation()
        server, array = commodity(sim)
        with pytest.raises(WorkloadError):
            run_joulesort(sim, server, array, logical_records=10,
                          physical_records=100)


class TestProfilerIntegration:
    def test_sweep_against_real_scans(self):
        """Sweep the scale knob against real executions: performance
        falls and energy rises monotonically with data volume."""
        def evaluate(scale):
            sim = Simulation()
            server, array = commodity(sim)
            storage = StorageManager(sim)
            table = storage.create_table(
                TableSchema("t", [Column("k", DataType.INT64,
                                         nullable=False)]),
                layout="row", placement=array)
            table.load([(i,) for i in range(500)])
            ctx = ExecutionContext(sim=sim, server=server, scale=scale)
            result = Executor(ctx).run(TableScan(table))
            return result.elapsed_seconds, result.energy_joules

        profile = sweep_knob("scale", [10.0, 100.0, 1000.0], evaluate)
        times = [p.seconds for p in profile.points]
        assert times == sorted(times)
