"""Integration tests: full queries through the executor on simulated
hardware, validating both results and time/energy accounting."""

import pytest

from repro.hardware.profiles import commodity, flash_scan_node
from repro.relational.expr import col
from repro.relational.operators import (
    AggregateSpec,
    CostParameters,
    Filter,
    HashAggregate,
    HashJoin,
    TableScan,
)
from repro.relational.executor import ExecutionContext, Executor
from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType
from repro.sim import Simulation
from repro.storage.manager import StorageManager
from repro.units import MIB


def build_env(layout="row", codecs=None, n_rows=2000):
    sim = Simulation()
    server, array = commodity(sim)
    storage = StorageManager(sim)
    table = storage.create_table(
        TableSchema("items", [
            Column("id", DataType.INT64, nullable=False),
            Column("grp", DataType.INT64, nullable=False),
            Column("price", DataType.FLOAT64, nullable=False),
            Column("tag", DataType.VARCHAR, nullable=False),
        ]), layout=layout, placement=array, codecs=codecs)
    table.load([(i, i % 10, float(i % 97) + 0.5, f"tag{i % 4}")
                for i in range(n_rows)])
    ctx = ExecutionContext(sim=sim, server=server, chunk_bytes=1 * MIB)
    return sim, server, table, ctx


def test_simple_scan_produces_rows_and_advances_time():
    sim, server, table, ctx = build_env()
    result = Executor(ctx).run(TableScan(table))
    assert result.row_count == 2000
    assert result.elapsed_seconds > 0
    assert result.energy_joules > 0


def test_result_columns_match_plan():
    _, _, table, ctx = build_env()
    result = Executor(ctx).run(TableScan(table, columns=["id", "price"]))
    assert result.columns == ["id", "price"]
    assert result.rows[0] == (0, 0.5)


def test_energy_equals_breakdown_sum():
    _, _, table, ctx = build_env()
    result = Executor(ctx).run(TableScan(table))
    assert result.energy_joules == pytest.approx(
        sum(result.breakdown_joules.values()), rel=1e-9)


def test_energy_equals_average_power_times_time():
    _, _, table, ctx = build_env()
    result = Executor(ctx).run(TableScan(table))
    assert result.energy_joules == pytest.approx(
        result.average_power_watts * result.elapsed_seconds, rel=1e-9)


def test_scale_inflates_time_roughly_linearly():
    def elapsed(scale):
        sim = Simulation()
        server, array = flash_scan_node(sim)  # no positioning constant
        storage = StorageManager(sim)
        table = storage.create_table(
            TableSchema("t", [Column("id", DataType.INT64, nullable=False)]),
            layout="row", placement=array)
        table.load([(i,) for i in range(2000)])
        ctx = ExecutionContext(sim=sim, server=server, scale=scale,
                               chunk_bytes=1 * MIB)
        return Executor(ctx).run(TableScan(table)).elapsed_seconds

    t10 = elapsed(10.0)
    t100 = elapsed(100.0)
    assert t100 == pytest.approx(10 * t10, rel=0.25)


def test_scale_does_not_change_results():
    sim, server, table, _ = build_env()
    ctx = ExecutionContext(sim=sim, server=server, scale=50.0)
    result = Executor(ctx).run(
        Filter(TableScan(table), col("grp") == 3))
    assert result.row_count == 200


def test_column_projection_reads_fewer_bytes_than_row_store():
    def io_bytes(layout):
        _, _, table, ctx = build_env(layout=layout)
        result = Executor(ctx).run(TableScan(table, columns=["id"]))
        return sum(p.io_bytes for p in result.pipelines)

    assert io_bytes("column") < io_bytes("row") / 2


def test_compressed_scan_trades_io_for_cpu():
    def run_one(codecs):
        _, _, table, ctx = build_env(layout="column", codecs=codecs)
        result = Executor(ctx).run(TableScan(table))
        io = sum(p.io_bytes for p in result.pipelines)
        cpu = sum(p.cpu_cycles for p in result.pipelines)
        return io, cpu

    plain_io, plain_cpu = run_one(None)
    comp_io, comp_cpu = run_one({"grp": "rle", "tag": "dictionary",
                                 "id": "delta"})
    assert comp_io < plain_io
    assert comp_cpu > plain_cpu


def test_pipeline_overlap_bounds_elapsed_time():
    """With many chunks, elapsed ~ max(io, cpu) + epsilon, not io + cpu."""
    def run_one(cycles_per_byte):
        sim, server, table, _ = build_env()
        ctx = ExecutionContext(
            sim=sim, server=server, scale=50.0, chunk_bytes=16 * 1024,
            params=CostParameters(cycles_per_scan_byte=cycles_per_byte))
        return Executor(ctx).run(TableScan(table))

    io_only = run_one(0.0)          # pure I/O: elapsed is the disk time
    both = run_one(58.0)            # CPU comparable to I/O
    io_time = io_only.elapsed_seconds
    cpu_time = both.cpu_busy_seconds
    serial = io_time + cpu_time
    overlapped = both.elapsed_seconds
    assert overlapped < 0.8 * serial
    assert overlapped >= max(io_time, cpu_time) * 0.95


def test_join_query_end_to_end():
    sim, server, items, ctx = build_env()
    storage = StorageManager(sim)
    groups = storage.create_table(
        TableSchema("groups", [
            Column("g_id", DataType.INT64, nullable=False),
            Column("g_name", DataType.VARCHAR, nullable=False),
        ]), layout="row", placement=items.placement)
    groups.load([(i, f"group-{i}") for i in range(10)])
    plan = HashAggregate(
        HashJoin(TableScan(groups), TableScan(items), ["g_id"], ["grp"]),
        ["g_name"],
        [AggregateSpec("count", None, "n"),
         AggregateSpec("sum", col("price"), "revenue")])
    result = Executor(ctx).run(plan)
    assert result.row_count == 10
    assert sum(r[1] for r in result.rows) == 2000


def test_concurrent_queries_share_devices():
    """Two identical queries run concurrently must each take longer than
    a lone query (device contention), but less than strict serial."""
    def lone():
        _, _, table, ctx = build_env()
        return Executor(ctx).run(TableScan(table)).elapsed_seconds

    def concurrent():
        sim, server, table, ctx = build_env()
        executor = Executor(ctx)
        p1 = sim.spawn(executor.run_process(TableScan(table)))
        p2 = sim.spawn(executor.run_process(TableScan(table)))
        sim.run(until=sim.all_of([p1, p2]))
        return sim.now

    t_lone = lone()
    t_conc = concurrent()
    assert t_conc > 1.2 * t_lone
    assert t_conc < 2.5 * t_lone


def test_dram_grant_allocated_and_freed():
    sim, server, items, ctx = build_env()
    storage = StorageManager(sim)
    groups = storage.create_table(
        TableSchema("groups", [
            Column("g_id", DataType.INT64, nullable=False),
        ]), layout="row", placement=items.placement)
    groups.load([(i,) for i in range(10)])
    plan = HashJoin(TableScan(groups), TableScan(items), ["g_id"], ["grp"])
    result = Executor(ctx).run(plan)
    assert result.row_count == 2000
    assert server.dram.allocated_bytes == 0  # freed after the query


def test_active_energy_excludes_idle_draw():
    """active_energy charges only busy time; component energy includes
    idle draw of everything, so it is strictly larger."""
    _, _, table, ctx = build_env()
    result = Executor(ctx).run(TableScan(table))
    assert 0 < result.active_energy_joules < result.energy_joules


def test_parallelism_shortens_cpu_bound_query():
    def run_with_params(cycles_per_byte, degree):
        from repro.relational.operators import Exchange
        sim, server, table, _ = build_env()
        ctx = ExecutionContext(
            sim=sim, server=server,
            params=CostParameters(cycles_per_scan_byte=cycles_per_byte))
        plan = Exchange(TableScan(table), degree=degree)
        return Executor(ctx).run(plan).elapsed_seconds

    slow = run_with_params(4000.0, 1)
    fast = run_with_params(4000.0, 4)
    assert fast < 0.5 * slow
