"""Integration tests for telemetry: energy conservation against the
meter, trace transport through the runner (pool, cache, events, JSON),
and the ``trace`` CLI."""

import json

import pytest

from repro.runner import (
    PointTraced,
    Runner,
    RunResult,
    default_spec,
    point_key,
)
from repro.runner.cli import main as cli_main
from repro.telemetry import TelemetrySink, capture, trace_from_csv
from repro.workloads.scan_workload import run_scan

#: fast scan knobs for runner-transport tests
TINY_SCAN = {"scale_factor": [0.0005, 0.001], "compressed": False}


@pytest.fixture(scope="module")
def scan_trace():
    """One traced scan, shared by the conservation assertions."""
    with capture() as collector:
        report = run_scan(scale_factor=0.001)
    return report, collector.finalize()


class TestEnergyConservation:
    def test_active_totals_match_report_exactly(self, scan_trace):
        report, trace = scan_trace
        assert sum(trace.active_totals().values()) == pytest.approx(
            report.energy_joules, abs=1e-9)

    def test_root_span_covers_the_whole_capture(self, scan_trace):
        _, trace = scan_trace
        assert trace.total_joules > 0
        assert trace.attributed_joules() == pytest.approx(
            trace.total_joules, rel=1e-9)

    def test_pipeline_spans_partition_the_query(self, scan_trace):
        _, trace = scan_trace
        (query,) = trace.spans
        assert query.name == "query:tablescan"
        assert sum(c.total_joules for c in query.children) == pytest.approx(
            query.total_joules, rel=1e-9)

    def test_span_energy_matches_device_timelines(self, scan_trace):
        _, trace = scan_trace
        for dev in trace.devices:
            spanned = sum(s.device_joules.get(dev.name, 0.0)
                          for s in trace.spans)
            assert spanned == pytest.approx(dev.energy_joules, abs=1e-9)

    def test_timeline_integrates_to_its_energy(self, scan_trace):
        _, trace = scan_trace
        dev = trace.device("cpu")
        if dev.n_raw_samples != len(dev.times):
            pytest.skip("series was downsampled; integral is approximate")
        integral = sum(w * (t1 - t0) for t0, t1, w in
                       zip(dev.times, dev.times[1:], dev.watts))
        integral += dev.watts[-1] * (trace.ended_at - dev.times[-1])
        assert integral == pytest.approx(dev.energy_joules, rel=1e-9)


class TestRunnerTransport:
    def test_traced_run_attaches_telemetry_and_emits_events(self):
        from repro.runner import ExperimentSpec
        events = []
        run = Runner(cache=False, trace=True,
                     on_event=events.append).run(
            ExperimentSpec("scan", knobs=TINY_SCAN))
        assert all(p.telemetry is not None for p in run.points)
        traced = [e for e in events if isinstance(e, PointTraced)]
        assert [e.index for e in traced] == [0, 1]
        for p, e in zip(run.points, traced):
            assert e.trace.to_dict() == p.telemetry.to_dict()

    def test_untraced_run_has_no_telemetry(self):
        from repro.runner import ExperimentSpec
        run = Runner(cache=False).run(
            ExperimentSpec("scan", knobs=TINY_SCAN))
        assert all(p.telemetry is None for p in run.points)
        assert all("telemetry" not in p.to_dict() for p in run.points)

    def test_trace_key_is_distinct_but_untraced_key_is_stable(self):
        knobs = {"scale_factor": 0.001}
        assert point_key("scan", knobs, 1) == point_key(
            "scan", knobs, 1, trace=False)
        assert point_key("scan", knobs, 1) != point_key(
            "scan", knobs, 1, trace=True)

    def test_cache_hit_preserves_traces(self, tmp_path):
        from repro.runner import ExperimentSpec
        spec = ExperimentSpec("scan", knobs=TINY_SCAN)
        cache = tmp_path / "cache"
        fresh = Runner(cache=cache, trace=True).run(spec)
        sink = TelemetrySink()
        again = Runner(cache=cache, trace=True, on_event=sink).run(spec)
        assert again.cache_hits == len(again.points) == 2
        assert all(p.telemetry is not None for p in again.points)
        assert again.to_dict() == fresh.to_dict()
        # the sink sees cache-hit traces too
        assert sorted(sink.traces) == [0, 1]
        # an untraced run of the same spec misses the traced entries
        bare = Runner(cache=cache).run(spec)
        assert bare.cache_hits == 0
        assert [p.joules for p in bare.points] == \
            [p.joules for p in fresh.points]

    def test_pool_run_is_byte_identical_to_serial(self):
        from repro.runner import ExperimentSpec
        spec = ExperimentSpec("scan", knobs=TINY_SCAN)
        serial = Runner(cache=False, trace=True).run(spec)
        pooled = Runner(workers=2, cache=False, trace=True).run(spec)
        assert pooled.to_json() == serial.to_json()

    def test_run_result_round_trips_with_telemetry(self):
        from repro.runner import ExperimentSpec
        run = Runner(cache=False, trace=True).run(
            ExperimentSpec("scan", knobs=TINY_SCAN))
        again = RunResult.from_dict(json.loads(run.to_json()))
        assert again.to_json() == run.to_json()
        assert again.points[0].telemetry is not None

    def test_fig2_trace_matches_energy_profile_within_1e9(self):
        sink = TelemetrySink()
        run = Runner(cache=False, trace=True,
                     on_event=sink).run(default_spec("fig2"))
        profile = run.profile()
        for point, ppoint in zip(run.points, profile.points):
            active = sum(point.telemetry.active_totals().values())
            assert abs(active - ppoint.energy_joules) < 1e-9

    def test_sink_rollups(self):
        from repro.runner import ExperimentSpec
        sink = TelemetrySink()
        Runner(cache=False, trace=True, on_event=sink).run(
            ExperimentSpec("scan", knobs=TINY_SCAN))
        totals = sink.device_totals()
        assert totals and all(v >= 0 for v in totals.values())
        assert len(sink.summary_rows()) == 2


class TestTraceCli:
    ARGS = ["trace", "scan", "--no-cache", "--quiet",
            "--scale-factor", "0.0005,0.001"]

    def test_renders_flamegraph_and_tables(self, capsys):
        assert cli_main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "energy flamegraph" in out
        assert "query:tablescan" in out
        assert "metered_J" in out

    def test_csv_export_round_trips(self, capsys):
        assert cli_main([*self.ARGS, "--csv"]) == 0
        out = capsys.readouterr().out
        lines = out.splitlines()
        assert lines[0] == "point,record,id,parent,name,device,a,b,c"
        # split the concatenation back into per-point traces
        for index in ("0", "1"):
            body = "\n".join(
                ",".join(line.split(",")[1:]) for line in lines[1:]
                if line.startswith(f"{index},"))
            trace = trace_from_csv(
                "record,id,parent,name,device,a,b,c\n" + body + "\n")
            assert trace.total_joules > 0

    def test_json_export_carries_telemetry(self, capsys):
        assert cli_main([*self.ARGS, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert all("telemetry" in p for p in data["points"])
