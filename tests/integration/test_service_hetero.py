"""Integration tests for the heterogeneous-fleet frontier experiment:
the arXiv 1208.1933 wimpy-vs-beefy crossover must actually appear
across the ``svc_hetero`` load axis, the SLA axis must price wimpy
nodes out of latency-tight regimes, and the sweep result must ride the
runner transport like every other report type."""

import pytest

from repro.runner import ExperimentSpec
from repro.runner.registry import get_experiment
from repro.runner.reports import REPORT_TYPES, decode_report, \
    encode_report
from repro.service import ServiceError
from repro.service.experiments import (COMPOSITIONS, HeteroSweepResult,
                                       composition_fleet, hetero_point)

QUERIES = 20_000
SEED = 2009


@pytest.fixture(scope="module")
def corner_reports():
    """The four load-extreme reports the crossover is read off."""
    return {
        (comp, load): hetero_point(comp, load=load, queries=QUERIES,
                                   seed=SEED)
        for comp in ("beefy", "wimpy") for load in (0.05, 1.2)}


class TestCompositions:
    def test_catalog_names_equal_capacity(self):
        fleets = {name: composition_fleet(name) for name in COMPOSITIONS}
        assert set(fleets) == {"beefy", "wimpy", "mixed"}
        capacities = [f.total_capacity for f in fleets.values()]
        # equal-capacity by design: the frontier compares composition,
        # not fleet size
        assert max(capacities) - min(capacities) < 0.1
        assert [c.name for c in fleets["mixed"].classes] \
            == ["beefy", "wimpy"]

    def test_unknown_composition_is_one_line_error(self):
        with pytest.raises(ServiceError, match="unknown composition"):
            composition_fleet("hyperscale")


class TestCrossover:
    def test_wimpy_wins_joules_at_trickle_load(self, corner_reports):
        assert corner_reports[("wimpy", 0.05)].joules_per_query \
            < corner_reports[("beefy", 0.05)].joules_per_query

    def test_beefy_wins_joules_at_high_load(self, corner_reports):
        assert corner_reports[("beefy", 1.2)].joules_per_query \
            < corner_reports[("wimpy", 1.2)].joules_per_query

    def test_headline_reports_the_sign_flip(self, corner_reports):
        sweep = HeteroSweepResult(
            compositions=[c for c, _l in corner_reports],
            loads=[l for _c, l in corner_reports],
            sla_scales=[1.0] * len(corner_reports),
            reports=list(corner_reports.values()))
        head = sweep.headline()
        assert head["low_load_winner"] == "wimpy"
        assert head["high_load_winner"] == "beefy"
        assert head["crossover"] is True

    def test_tight_sla_prices_wimpy_out(self):
        beefy = hetero_point("beefy", load=0.6, sla_scale=0.35,
                             queries=QUERIES, seed=SEED)
        wimpy = hetero_point("wimpy", load=0.6, sla_scale=0.35,
                             queries=QUERIES, seed=SEED)
        assert beefy.slas_met
        assert not wimpy.slas_met
        # the SLA-respecting verdict: beefy wins even though its raw
        # Joules/query may lose, because a missed SLA cannot win
        sweep = HeteroSweepResult(
            compositions=["beefy", "wimpy"], loads=[0.6, 0.6],
            sla_scales=[0.35, 0.35], reports=[beefy, wimpy])
        ((_l, _s, _bj, _wj, winner),) = sweep.crossover_rows()
        assert winner == "beefy"

    def test_per_class_rollups_cover_the_mixed_fleet(self):
        report = hetero_point("mixed", load=0.6, queries=QUERIES,
                              seed=SEED)
        assert {c.node_class for c in report.classes} \
            == {"beefy", "wimpy"}
        assert sum(c.completed for c in report.classes) \
            == report.queries_completed


class TestRunnerTransport:
    def test_svc_hetero_is_registered_with_sweep_axes(self):
        exp = get_experiment("svc_hetero")
        assert sorted(exp.defaults["composition"]) \
            == ["beefy", "mixed", "wimpy"]
        assert len(exp.defaults["load"]) >= 3
        assert len(exp.defaults["sla_scale"]) >= 2
        # sweep axes expand into one point per grid cell
        spec = ExperimentSpec("svc_hetero")
        assert len(spec.points()) == (
            len(exp.defaults["composition"]) * len(exp.defaults["load"])
            * len(exp.defaults["sla_scale"]))

    def test_hetero_sweep_result_round_trips(self, corner_reports):
        sweep = HeteroSweepResult(
            compositions=[c for c, _l in corner_reports],
            loads=[l for _c, l in corner_reports],
            sla_scales=[1.0] * len(corner_reports),
            reports=list(corner_reports.values()))
        assert "HeteroSweepResult" in REPORT_TYPES
        back = decode_report(encode_report(sweep))
        assert isinstance(back, HeteroSweepResult)
        assert back.to_dict() == sweep.to_dict()

    def test_parallel_arrays_must_agree(self):
        with pytest.raises(ServiceError, match="arrays disagree"):
            HeteroSweepResult(compositions=["beefy"], loads=[],
                              sla_scales=[1.0], reports=[])

    def test_report_at_unknown_point_lists_what_ran(self, corner_reports):
        sweep = HeteroSweepResult(
            compositions=[c for c, _l in corner_reports],
            loads=[l for _c, l in corner_reports],
            sla_scales=[1.0] * len(corner_reports),
            reports=list(corner_reports.values()))
        with pytest.raises(ServiceError, match="no point"):
            sweep.report_at("mixed", 9.9, 1.0)
