"""Golden equivalence suite for the two serving engines.

The vectorized array-of-events core (``repro.service.engine``) is
contractually *byte-identical* to the reference per-query loop: for
every configuration it claims to support, ``ServiceReport.to_dict()``
must compare equal dict-for-dict, float-for-float — not approximately,
exactly.  This suite sweeps policy x fleet x admission x autoscaling x
seed and asserts that identity, pins the engine-selection API
(``engine="auto"|"event"|"loop"``), and checks the auto-fallback
configurations (batching, telemetry, flight recording, faults) land on
the reference loop.  A hypothesis property test extends the identity
to adversarial random streams the named experiments would never build.
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import build_fault_schedule, simulate_faulty_service
from repro.flightrec import record
from repro.service import (DEFAULT_CLASSES, DEFAULT_TENANTS, Autoscaler,
                           FleetSpec, NodePowerModel, PVCPolicy,
                           QEDPolicy, ServiceError, build_stream,
                           make_policy, simulate_service)
from repro.service.engine import event_core_unsupported
from repro.service.workload import ArrivalStream
from repro.telemetry import capture

MODEL = NodePowerModel.from_server("commodity")

#: every policy the event core claims a kernel for
VECTOR_POLICIES = ("round_robin", "least_loaded", "power_aware",
                   "cost_aware", "pvc")


def _policy(name: str):
    """A fresh policy instance (routers are stateful: never share one
    between the two engines of a comparison)."""
    if name == "pvc":
        return PVCPolicy(sla_headroom=0.6)
    return make_policy(name)


def _fleet(kind: str) -> FleetSpec:
    if kind == "homogeneous":
        return FleetSpec.homogeneous(8, MODEL)
    return FleetSpec.of(beefy=3, wimpy=5)


def _run(stream, policy_name, fleet_kind, engine, *,
         admission=None, autoscale=False):
    policy = _policy(policy_name)
    if admission is not None:
        policy.admission_limit_seconds = admission
    fleet = _fleet(fleet_kind)
    autoscaler = Autoscaler(
        fleet.classes[0].model, epoch_seconds=20.0,
        target_utilization=0.55, min_nodes=2) if autoscale else None
    report = simulate_service(stream, fleet=fleet, policy=policy,
                              autoscaler=autoscaler, engine=engine)
    return report, policy, autoscaler


@pytest.fixture(scope="module")
def stream():
    return build_stream(6_000, seed=0)


class TestByteIdentity:
    """engine="event" and engine="loop" produce equal report dicts."""

    @pytest.mark.parametrize("policy_name", VECTOR_POLICIES)
    @pytest.mark.parametrize("fleet_kind", ["homogeneous", "hetero"])
    def test_policy_fleet_grid(self, stream, policy_name, fleet_kind):
        loop, _, _ = _run(stream, policy_name, fleet_kind, "loop")
        event, _, _ = _run(stream, policy_name, fleet_kind, "event")
        assert loop.engine == "loop"
        assert event.engine == "event"
        assert loop.to_dict() == event.to_dict()

    @pytest.mark.parametrize("seed", [1, 7])
    def test_seeds(self, seed):
        s = build_stream(4_000, seed=seed)
        loop, _, _ = _run(s, "power_aware", "homogeneous", "loop")
        event, _, _ = _run(s, "power_aware", "homogeneous", "event")
        assert loop.to_dict() == event.to_dict()

    @pytest.mark.parametrize("policy_name",
                             ["power_aware", "cost_aware", "pvc"])
    def test_admission_rejections(self, policy_name):
        # x10 arrival rates overload the 8-node fleet, so the
        # admission limit actually bites and rejections flow through
        # both marshalling paths
        from dataclasses import replace
        dense = build_stream(
            4_000,
            tenants=tuple(replace(t, rate_per_s=t.rate_per_s * 10)
                          for t in DEFAULT_TENANTS),
            seed=2)
        loop, _, _ = _run(dense, policy_name, "homogeneous", "loop",
                          admission=2.0)
        event, _, _ = _run(dense, policy_name, "homogeneous", "event",
                           admission=2.0)
        assert loop.queries_rejected > 0
        assert loop.to_dict() == event.to_dict()

    def test_autoscaled_run_and_decisions(self, stream):
        loop, _, auto_l = _run(stream, "power_aware", "homogeneous",
                               "loop", autoscale=True)
        event, _, auto_e = _run(stream, "power_aware", "homogeneous",
                                "event", autoscale=True)
        assert loop.to_dict() == event.to_dict()
        # the real Autoscaler runs inside the event core too: its
        # observable state must match the loop's, decision for decision
        assert auto_l.decisions == auto_e.decisions
        assert auto_l._smoothed_rate == auto_e._smoothed_rate
        assert auto_l._epoch_demand_seconds == auto_e._epoch_demand_seconds

    def test_round_robin_cursor_preserved(self, stream):
        _, pol_l, _ = _run(stream, "round_robin", "homogeneous", "loop")
        _, pol_e, _ = _run(stream, "round_robin", "homogeneous", "event")
        assert pol_l._next == pol_e._next == len(stream)

    def test_auto_equals_event_when_supported(self, stream):
        auto, _, _ = _run(stream, "least_loaded", "homogeneous", "auto")
        event, _, _ = _run(stream, "least_loaded", "homogeneous", "event")
        assert auto.engine == "event"
        assert auto.to_dict() == event.to_dict()


class TestEngineSelection:
    """The engine= API: validation, explicit errors, auto-fallback."""

    def test_unknown_engine_rejected(self, stream):
        with pytest.raises(ServiceError, match="unknown engine"):
            simulate_service(stream, fleet=_fleet("homogeneous"),
                             engine="warp")

    def test_event_refuses_batching_policy(self, stream):
        policy = QEDPolicy(hold_seconds=0.2)
        with pytest.raises(ServiceError, match="batches arrivals"):
            simulate_service(stream, fleet=_fleet("homogeneous"),
                             policy=policy, engine="event")

    def test_auto_falls_back_for_batching_policy(self, stream):
        policy = QEDPolicy(hold_seconds=0.2)
        report = simulate_service(stream, fleet=_fleet("homogeneous"),
                                  policy=policy, engine="auto")
        assert report.engine == "loop"

    def test_auto_falls_back_under_telemetry(self, stream):
        with capture():
            report = simulate_service(stream,
                                      fleet=_fleet("homogeneous"),
                                      engine="auto")
        assert report.engine == "loop"

    def test_auto_falls_back_under_flight_recording(self, stream):
        with record():
            report = simulate_service(stream,
                                      fleet=_fleet("homogeneous"),
                                      engine="auto")
        assert report.engine == "loop"

    def test_loop_and_fallback_loop_identical(self, stream):
        """A forced loop run equals the auto-fallback loop run — the
        hooks only observe, they never perturb the physics."""
        loop, _, _ = _run(stream, "power_aware", "homogeneous", "loop")
        with record():
            fallback = simulate_service(stream,
                                        fleet=_fleet("homogeneous"),
                                        policy=_policy("power_aware"),
                                        engine="auto")
        assert loop.to_dict() == fallback.to_dict()

    def test_faults_always_reference_loop(self, stream):
        schedule = build_fault_schedule(
            horizon_seconds=stream.duration_seconds, seed=3,
            fleet=_fleet("homogeneous"))
        report = simulate_faulty_service(
            stream, schedule, fleet=_fleet("homogeneous"),
            engine="auto")
        assert report.engine == "loop"
        with pytest.raises(ServiceError, match="fault schedules"):
            simulate_faulty_service(stream, schedule,
                                    fleet=_fleet("homogeneous"),
                                    engine="event")
        with pytest.raises(ServiceError, match="unknown engine"):
            simulate_faulty_service(stream, schedule,
                                    fleet=_fleet("homogeneous"),
                                    engine="warp")

    def test_unsupported_reasons(self):
        assert event_core_unsupported(None, faults=True)
        policy = _policy("power_aware")
        assert event_core_unsupported(policy) is None
        assert "batch" in event_core_unsupported(QEDPolicy())
        assert "no vectorized kernel" in event_core_unsupported(
            _UnknownRouter())


class _UnknownRouter:
    """A stand-in router outside the vectorized set."""

    name = "mystery"
    batching = False
    autoscaled = False


class TestReportMetadata:
    def test_engine_excluded_from_dict(self, stream):
        report, _, _ = _run(stream, "round_robin", "homogeneous",
                            "event")
        assert report.engine == "event"
        assert "engine" not in report.to_dict()

    def test_columns_cached(self, stream):
        assert stream.columns() is stream.columns()
        cols = stream.columns()
        assert cols.lists() is cols.lists()
        np.testing.assert_array_equal(
            cols.sla_seconds,
            np.array([t.sla_p95_seconds
                      for t in stream.tenants])[stream.tenant_index])

    def test_deprecated_shims_announce_removal(self, stream):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            simulate_service(stream, n_nodes=4, model=MODEL)
        assert any("removed in 2.0" in str(w.message) for w in caught)


@st.composite
def _streams(draw):
    """Adversarial streams: bursty gaps (many zeros), wild service
    times, arbitrary tenant mixes — shapes build_stream never emits."""
    n = draw(st.integers(min_value=1, max_value=200))
    gaps = draw(st.lists(
        st.one_of(st.just(0.0),
                  st.floats(min_value=0.0, max_value=3.0,
                            allow_nan=False, allow_infinity=False)),
        min_size=n, max_size=n))
    services = draw(st.lists(
        st.floats(min_value=1e-3, max_value=5.0,
                  allow_nan=False, allow_infinity=False),
        min_size=n, max_size=n))
    tenant_idx = draw(st.lists(
        st.integers(min_value=0, max_value=len(DEFAULT_TENANTS) - 1),
        min_size=n, max_size=n))
    # the report refuses tenants that complete nothing: keep only the
    # tenants the draw actually uses, remapping indices
    used = sorted(set(tenant_idx))
    remap = {t: i for i, t in enumerate(used)}
    return ArrivalStream(
        tenants=tuple(DEFAULT_TENANTS[t] for t in used),
        classes=DEFAULT_CLASSES,
        times=np.cumsum(np.asarray(gaps, dtype=np.float64)),
        service_seconds=np.asarray(services, dtype=np.float64),
        tenant_index=np.asarray([remap[t] for t in tenant_idx],
                                dtype=np.int64),
        class_index=np.zeros(n, dtype=np.int64))


class TestPropertyIdentity:
    @settings(max_examples=30, deadline=None)
    @given(stream=_streams(),
           policy_name=st.sampled_from(VECTOR_POLICIES),
           nodes=st.integers(min_value=1, max_value=5))
    def test_random_streams_byte_identical(self, stream, policy_name,
                                           nodes):
        fleet = FleetSpec.homogeneous(nodes, MODEL)
        loop = simulate_service(stream, fleet=fleet,
                                policy=_policy(policy_name),
                                engine="loop")
        event = simulate_service(stream, fleet=fleet,
                                 policy=_policy(policy_name),
                                 engine="event")
        assert loop.to_dict() == event.to_dict()
