"""Integration tests for consolidation: batching, migration, cluster."""

import pytest

from repro.errors import ConsolidationError
from repro.consolidation import (
    ClusterPolicy,
    diurnal_trace,
    execute_consolidation,
    poisson_arrivals,
    run_batched,
    run_fifo,
    simulate_cluster,
)
from repro.consolidation.cluster import ServerPowerModel
from repro.hardware.profiles import commodity
from repro.relational.executor import ExecutionContext, Executor
from repro.relational.operators import TableScan
from repro.sim import Simulation
from repro.storage.manager import StorageManager
from repro.storage.partitioner import DeviceSlot, Partition, Partitioner
from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType
from repro.units import MB


def build_env(scale=200.0):
    sim = Simulation()
    server, array = commodity(sim)
    storage = StorageManager(sim)
    table = storage.create_table(
        TableSchema("t", [Column("k", DataType.INT64, nullable=False)]),
        layout="row", placement=array)
    table.load([(i,) for i in range(2000)])
    executor = Executor(ExecutionContext(sim=sim, server=server,
                                         scale=scale))
    return sim, server, array, table, executor


class TestBatchingScheduler:
    def make_arrivals(self, table, n=8, rate=0.02):
        # sparse arrivals: ~50 s apart, well past the disks' break-even
        return poisson_arrivals([lambda: TableScan(table)], n, rate)

    def test_fifo_completes_all(self):
        sim, server, _array, table, executor = build_env()
        report = run_fifo(sim, server, executor,
                          self.make_arrivals(table))
        assert report.completed == 8
        assert report.policy == "fifo"
        assert report.mean_latency_seconds > 0

    def test_batching_saves_energy_at_latency_cost(self):
        def run(policy):
            sim, server, array, table, executor = build_env()
            arrivals = self.make_arrivals(table)
            horizon = max(a.at_seconds for a in arrivals) + 120.0
            if policy == "fifo":
                rep = run_fifo(sim, server, executor, arrivals,
                               tail_seconds=horizon - sim.now)
            else:
                rep = run_batched(sim, server, executor, arrivals, array,
                                  window_seconds=100.0,
                                  tail_seconds=horizon - sim.now)
            return rep

        fifo = run("fifo")
        batched = run("batched")
        assert batched.energy_joules < fifo.energy_joules
        assert batched.mean_latency_seconds > fifo.mean_latency_seconds
        assert batched.spin_down_count >= 1

    def test_batched_without_spindown_saves_nothing(self):
        sim, server, array, table, executor = build_env()
        arrivals = self.make_arrivals(table)
        rep_plain = run_batched(sim, server, executor, arrivals, array,
                                window_seconds=100.0,
                                spin_down_between=False)
        assert rep_plain.spin_down_count == 0

    def test_bad_window_rejected(self):
        sim, server, array, table, executor = build_env()
        with pytest.raises(ConsolidationError):
            run_batched(sim, server, executor,
                        self.make_arrivals(table), array,
                        window_seconds=0.0)

    def test_poisson_arrivals_sorted_and_cycling(self):
        arrivals = poisson_arrivals([lambda: 1, lambda: 2], 10, 1.0)
        times = [a.at_seconds for a in arrivals]
        assert times == sorted(times)
        assert arrivals[0].builder() == 1
        assert arrivals[1].builder() == 2


class TestMigration:
    def test_execute_consolidation_meters_costs(self):
        sim = Simulation()
        server, _array = commodity(sim, n_disks=4)
        disks = {d.name: d for d in server.storage
                 if d.name.startswith("hdd")}
        slots = [DeviceSlot(name, d.spec.capacity_bytes,
                            d.spec.bandwidth_bytes_per_s,
                            d.spec.idle_watts, d.spec.active_watts)
                 for name, d in disks.items()]
        partitioner = Partitioner(slots)
        parts = [Partition(f"p{i}", 200 * MB, read_bytes_per_s=1 * MB)
                 for i in range(4)]
        current = {f"p{i}": f"hdd{i}" for i in range(4)}
        plan = partitioner.plan_consolidation(parts, current)
        outcome = execute_consolidation(sim, plan, disks)
        assert outcome.moved_bytes == sum(m.size_bytes for m in plan.moves)
        assert outcome.migration_energy_joules > 0
        assert len(outcome.released_devices) == len(plan.devices_released)
        assert 0 < outcome.breakeven_seconds() < float("inf")
        # released disks really are in standby now
        for name in outcome.released_devices:
            assert disks[name].spun_down

    def test_metered_breakeven_tracks_planned(self):
        sim = Simulation()
        server, _array = commodity(sim, n_disks=2)
        disks = {d.name: d for d in server.storage
                 if d.name.startswith("hdd")}
        slots = [DeviceSlot(name, d.spec.capacity_bytes,
                            d.spec.bandwidth_bytes_per_s,
                            d.spec.idle_watts, d.spec.active_watts)
                 for name, d in disks.items()]
        partitioner = Partitioner(slots)
        parts = [Partition("a", 100 * MB), Partition("b", 100 * MB)]
        plan = partitioner.plan_consolidation(
            parts, {"a": "hdd0", "b": "hdd1"})
        outcome = execute_consolidation(sim, plan, disks)
        # the plan is a lower bound (pipelined copy, no spin-down time);
        # metered reality is store-and-forward plus the spin-down
        assert plan.migration_seconds <= outcome.migration_seconds \
            <= 5 * plan.migration_seconds

    def test_unknown_device_rejected(self):
        sim = Simulation()
        from repro.storage.partitioner import ConsolidationPlan, Move
        plan = ConsolidationPlan(assignments={},
                                 moves=[Move("p", "ghost", "also-ghost", 1)])
        with pytest.raises(ConsolidationError):
            execute_consolidation(sim, plan, {})


class TestCluster:
    def test_consolidation_beats_all_on(self):
        trace = diurnal_trace()
        all_on = simulate_cluster(trace, 16, ClusterPolicy.ALL_ON)
        packed = simulate_cluster(trace, 16, ClusterPolicy.CONSOLIDATE)
        assert packed.total_energy_joules < 0.8 * all_on.total_energy_joules
        assert packed.server_hours < all_on.server_hours

    def test_consolidated_cluster_more_proportional(self):
        trace = diurnal_trace()
        all_on = simulate_cluster(trace, 16, ClusterPolicy.ALL_ON)
        packed = simulate_cluster(trace, 16, ClusterPolicy.CONSOLIDATE)
        assert packed.proportionality() > all_on.proportionality()

    def test_lazy_policy_between_extremes(self):
        trace = diurnal_trace()
        all_on = simulate_cluster(trace, 16, ClusterPolicy.ALL_ON)
        packed = simulate_cluster(trace, 16, ClusterPolicy.CONSOLIDATE)
        lazy = simulate_cluster(trace, 16, ClusterPolicy.CONSOLIDATE_LAZY)
        assert packed.total_energy_joules <= lazy.total_energy_joules \
            <= all_on.total_energy_joules

    def test_cycle_energy_charged(self):
        trace = [0.2, 0.9, 0.2, 0.9]
        packed = simulate_cluster(trace, 10, ClusterPolicy.CONSOLIDATE)
        assert packed.cycle_energy_joules > 0

    def test_all_on_has_flat_power_curve(self):
        trace = diurnal_trace()
        report = simulate_cluster(trace, 8, ClusterPolicy.ALL_ON)
        powers = [p for _, p in report.power_curve]
        spread = (max(powers) - min(powers)) / max(powers)
        # only the utilization-linear term varies; idle dominates
        assert spread < 0.5

    def test_trace_validation(self):
        with pytest.raises(ConsolidationError):
            simulate_cluster([1.5], 4, ClusterPolicy.ALL_ON)
        with pytest.raises(ConsolidationError):
            simulate_cluster([0.5], 0, ClusterPolicy.ALL_ON)
        with pytest.raises(ConsolidationError):
            diurnal_trace(peak_fraction=0.1, trough_fraction=0.5)

    def test_power_model_bounds(self):
        model = ServerPowerModel(idle_watts=100, peak_watts=200)
        assert model.power(0.0) == 100
        assert model.power(1.0) == 200
        with pytest.raises(ConsolidationError):
            model.power(1.2)
