"""Property-based tests: B+tree vs sorted-dict oracle, WAL invariants."""

from collections import defaultdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.ssd import FlashSsd, SsdSpec
from repro.sim import Simulation
from repro.storage.btree import BPlusTree
from repro.storage.wal import WriteAheadLog
from repro.units import MB

keys = st.integers(min_value=-1000, max_value=1000)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(keys, st.integers()), max_size=300),
       st.integers(min_value=3, max_value=32))
def test_btree_matches_dict_oracle(entries, order):
    tree = BPlusTree(order=order)
    oracle: dict[int, list[int]] = defaultdict(list)
    for key, rid in entries:
        tree.insert(key, rid)
        oracle[key].append(rid)
    tree.validate()
    assert len(tree) == len(entries)
    for key, rids in oracle.items():
        assert tree.search(key) == rids
    # full range scan yields every entry in key order
    scanned = [k for k, _ in tree.range_scan()]
    assert scanned == sorted(scanned)
    assert len(scanned) == len(entries)


@settings(max_examples=60, deadline=None)
@given(st.lists(keys, min_size=1, max_size=300),
       keys, keys,
       st.integers(min_value=3, max_value=16))
def test_btree_range_matches_comprehension(inserted, lo, hi, order):
    low, high = min(lo, hi), max(lo, hi)
    tree = BPlusTree(order=order)
    for key in inserted:
        tree.insert(key, key)
    got = [k for k, _ in tree.range_scan(low, high)]
    expected = sorted(k for k in inserted if low <= k <= high)
    assert got == expected


@settings(max_examples=60, deadline=None)
@given(st.lists(keys, min_size=2, max_size=200))
def test_btree_leaves_touched_bounded(inserted):
    tree = BPlusTree(order=4)
    for key in inserted:
        tree.insert(key, key)
    lo, hi = min(inserted), max(inserted)
    assert 1 <= tree.leaves_touched(lo, hi) <= tree.leaf_count()


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=4000),
                min_size=1, max_size=60),
       st.integers(min_value=1, max_value=16),
       st.floats(min_value=0.0, max_value=0.05, allow_nan=False))
def test_wal_commits_everything_exactly_once(payload_sizes, batch,
                                             timeout):
    """Every append commits exactly once; flushed bytes account for
    every record plus per-flush overhead; latencies are non-negative."""
    from repro.storage.wal import (
        FLUSH_OVERHEAD_BYTES,
        RECORD_OVERHEAD_BYTES,
    )
    sim = Simulation()
    device = FlashSsd(sim, SsdSpec(
        name="log", capacity_bytes=1000 * MB,
        read_bandwidth_bytes_per_s=100 * MB,
        write_bandwidth_bytes_per_s=100 * MB,
        per_request_latency_seconds=0.0,
        read_watts=2.0, write_watts=2.0, idle_watts=0.0))
    wal = WriteAheadLog(sim, device, batch_records=batch,
                        batch_timeout_seconds=timeout)
    committed = []

    def txn(size):
        yield wal.append(size)
        committed.append(size)

    for size in payload_sizes:
        sim.spawn(txn(size))
    sim.run()
    assert sorted(committed) == sorted(payload_sizes)
    assert wal.stats.records_appended == len(payload_sizes)
    expected_bytes = (sum(payload_sizes)
                      + len(payload_sizes) * RECORD_OVERHEAD_BYTES
                      + wal.stats.flushes * FLUSH_OVERHEAD_BYTES)
    assert wal.stats.bytes_flushed == expected_bytes
    assert all(latency >= 0 for latency in wal.stats.commit_latencies)
    assert len(wal.stats.commit_latencies) == len(payload_sizes)
