"""Property tests: the svc_etl experiment adds nothing to the physics.

``etl_point`` is orchestration sugar over ``run_pipeline`` — with zero
interactive traffic, the eager-mode experiment point must be
byte-identical to the same stages run standalone through
``run_pipeline`` with the same fleet, scheduler, policy, and
autoscaler.  Anything less means the experiment wrapper smuggles
physics of its own.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.autoscale import Autoscaler
from repro.service.dispatch import make_policy
from repro.service.node import NodePowerModel
from repro.service.spec import FleetSpec
from repro.workloads.pipelines import (EtlScheduler, default_pipeline,
                                       etl_point, run_pipeline)

#: one calibrated model for every example — from_server spins up a
#: throwaway simulation, too slow to rebuild per draw
MODEL = NodePowerModel.from_server("commodity")


def dumps(report):
    return json.dumps(report.to_dict(), sort_keys=True)


@settings(max_examples=8, deadline=None)
@given(nodes=st.integers(min_value=4, max_value=24),
       etl_scale=st.floats(min_value=0.5, max_value=2.0,
                           allow_nan=False, allow_infinity=False),
       mode=st.sampled_from(["eager", "delayed", "consolidated"]))
def test_zero_interactive_point_matches_standalone(nodes, etl_scale, mode):
    point = etl_point(mode=mode, load=0.0, etl_scale=etl_scale,
                      nodes=nodes)

    fleet = FleetSpec.homogeneous(nodes, MODEL)
    scheduler = EtlScheduler(mode=mode, ready_seconds=450.0,
                             offpeak_start_seconds=900.0)
    policy = make_policy("power_aware", pack_backlog_seconds=0.2,
                         admission_limit_seconds=None)
    autoscaler = Autoscaler(MODEL, epoch_seconds=30.0,
                            target_utilization=0.55, min_nodes=2)
    standalone = run_pipeline(default_pipeline(etl_scale),
                              fleet=fleet, scheduler=scheduler,
                              policy=policy, autoscaler=autoscaler)

    assert dumps(point) == dumps(standalone)


@settings(max_examples=6, deadline=None)
@given(mode=st.sampled_from(["none", "eager", "delayed", "consolidated"]),
       load=st.sampled_from([0.5, 1.0, 1.6]),
       seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_etl_point_is_deterministic(mode, load, seed):
    a = etl_point(mode=mode, load=load, seed=seed)
    b = etl_point(mode=mode, load=load, seed=seed)
    assert dumps(a) == dumps(b)


@settings(max_examples=6, deadline=None)
@given(mode=st.sampled_from(["none", "eager", "consolidated"]),
       seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_etl_report_roundtrips(mode, seed):
    from repro.workloads.pipelines import EtlReport
    report = etl_point(mode=mode, load=1.0, seed=seed)
    back = EtlReport.from_dict(json.loads(dumps(report)))
    assert dumps(back) == dumps(report)
    assert back.energy_joules == report.energy_joules
