"""Property-based tests: operators agree with Python oracles."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.raid import RaidArray
from repro.hardware.ssd import FlashSsd, SsdSpec
from repro.relational.expr import col
from repro.relational.operators import (
    AggregateSpec,
    BlockNestedLoopJoin,
    CostCollector,
    Filter,
    HashAggregate,
    HashJoin,
    Sort,
    SortMergeJoin,
    TableScan,
)
from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType
from repro.sim import Simulation
from repro.storage.buffer import BufferPool, ReplacementPolicy
from repro.storage.manager import StorageManager
from repro.storage.partitioner import DeviceSlot, Partitioner
from repro.units import MB

rows_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=30),
              st.integers(min_value=-100, max_value=100)),
    min_size=0, max_size=80)


def make_table(rows, name="t"):
    sim = Simulation()
    ssd = FlashSsd(sim, SsdSpec(name="s", capacity_bytes=1000 * MB))
    array = RaidArray(sim, [ssd])
    storage = StorageManager(sim)
    table = storage.create_table(
        TableSchema(name, [
            Column("k", DataType.INT64, nullable=False),
            Column("v", DataType.INT64, nullable=False),
        ]), layout="row", placement=array)
    table.load(rows)
    return table


def run(op):
    return op.execute(CostCollector())


@settings(max_examples=40, deadline=None)
@given(rows_strategy, st.integers(min_value=-100, max_value=100))
def test_filter_matches_comprehension(rows, threshold):
    table = make_table(rows)
    got = run(Filter(TableScan(table), col("v") > threshold))
    assert got == [r for r in rows if r[1] > threshold]


@settings(max_examples=40, deadline=None)
@given(rows_strategy)
def test_sort_matches_sorted(rows):
    table = make_table(rows)
    got = run(Sort(TableScan(table), ["v", "k"]))
    assert got == sorted(rows, key=lambda r: (r[1], r[0]))


@settings(max_examples=40, deadline=None)
@given(rows_strategy)
def test_sort_descending(rows):
    table = make_table(rows)
    got = run(Sort(TableScan(table), ["v"], descending=[True]))
    assert [r[1] for r in got] == sorted((r[1] for r in rows),
                                         reverse=True)


@settings(max_examples=30, deadline=None)
@given(rows_strategy)
def test_aggregate_matches_oracle(rows):
    table = make_table(rows)
    got = run(HashAggregate(
        TableScan(table), ["k"],
        [AggregateSpec("count", None, "n"),
         AggregateSpec("sum", col("v"), "total"),
         AggregateSpec("min", col("v"), "lo"),
         AggregateSpec("max", col("v"), "hi")]))
    oracle: dict[int, list[int]] = {}
    for k, v in rows:
        oracle.setdefault(k, []).append(v)
    assert len(got) == len(oracle)
    for k, n, total, lo, hi in got:
        values = oracle[k]
        assert n == len(values)
        assert total == sum(values)
        assert lo == min(values)
        assert hi == max(values)


@settings(max_examples=25, deadline=None)
@given(rows_strategy, rows_strategy)
def test_join_algorithms_agree(left_rows, right_rows):
    """Hash join, sort-merge join and nested-loop join must produce the
    same multiset of results for the same equi-join."""
    left = make_table(left_rows, "l")
    right = make_table(
        [(k, v) for k, v in right_rows], "r")
    # rename right columns to avoid collisions
    right.schema.columns[0] = Column("rk", DataType.INT64, nullable=False)
    right.schema.columns[1] = Column("rv", DataType.INT64, nullable=False)
    right.schema._index = {"rk": 0, "rv": 1}

    hash_rows = run(HashJoin(TableScan(left), TableScan(right),
                             ["k"], ["rk"]))
    smj_rows = run(SortMergeJoin(TableScan(left), TableScan(right),
                                 ["k"], ["rk"]))
    nlj_rows = run(BlockNestedLoopJoin(TableScan(left), TableScan(right),
                                       predicate=col("k") == col("rk"),
                                       block_rows=7))
    oracle = sorted((lk, lv, rk, rv)
                    for lk, lv in left_rows
                    for rk, rv in right_rows if lk == rk)
    assert sorted(hash_rows) == oracle
    assert sorted(smj_rows) == oracle
    assert sorted(nlj_rows) == oracle


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=50), min_size=1,
                max_size=200),
       st.integers(min_value=1, max_value=10),
       st.sampled_from(list(ReplacementPolicy)))
def test_buffer_pool_invariants(accesses, capacity, policy):
    """The pool never exceeds capacity, always returns what was put,
    and hit+miss counts match the access count."""
    sim = Simulation()
    pool = BufferPool(sim, capacity, policy=policy)
    for key in accesses:
        page = pool.get(key)
        if page is None:
            pool.put(key, f"page-{key}")
        else:
            assert page == f"page-{key}"
        assert len(pool) <= capacity
    assert pool.hits + pool.misses == len(accesses)


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=10**12),
       st.integers(min_value=1, max_value=16))
def test_stripe_conserves_bytes(total, width):
    devices = [DeviceSlot(f"d{i}", 10**13, 100 * MB, 10.0, 15.0)
               for i in range(16)]
    shares = Partitioner(devices).stripe(total, width)
    assert sum(shares.values()) == total
    assert len(shares) == width
    assert max(shares.values()) - min(shares.values()) <= 1
