"""Metamorphic properties of the engine.

Query *results* must be invariant to physical choices (layout, codecs,
replay scale, access path); only costs may change.  Cost *estimates*
must track actual charges.  These invariants are what make the energy
experiments trustworthy: physical knobs change Joules, never answers.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.profiles import commodity
from repro.optimizer import CostModel
from repro.relational.executor import ExecutionContext, Executor
from repro.relational.expr import col
from repro.relational.operators import (
    AggregateSpec,
    CostCollector,
    Filter,
    HashAggregate,
    HashJoin,
    Sort,
    TableScan,
)
from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType
from repro.sim import Simulation
from repro.storage.manager import StorageManager

rows_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=50),
              st.integers(min_value=-50, max_value=50)),
    min_size=1, max_size=120)


def make_table(rows, layout, codecs=None, name="t"):
    sim = Simulation()
    server, array = commodity(sim)
    storage = StorageManager(sim)
    table = storage.create_table(
        TableSchema(name, [
            Column("k", DataType.INT64, nullable=False),
            Column("v", DataType.INT64, nullable=False),
        ]), layout=layout, placement=array, codecs=codecs)
    table.load(rows)
    return sim, server, table


def run_query(sim, server, plan, scale=1.0):
    ctx = ExecutionContext(sim=sim, server=server, scale=scale)
    return Executor(ctx).run(plan)


@settings(max_examples=25, deadline=None)
@given(rows_strategy, st.integers(min_value=-50, max_value=50))
def test_layout_invariance(rows, threshold):
    """Row store, plain column store, and compressed column store must
    return identical rows for the same query."""
    results = []
    for layout, codecs in [("row", None), ("column", None),
                           ("column", {"k": "delta", "v": "lzlite"})]:
        sim, server, table = make_table(rows, layout, codecs)
        result = run_query(sim, server,
                           Filter(TableScan(table),
                                  col("v") > threshold))
        results.append(sorted(result.rows))
    assert results[0] == results[1] == results[2]


@settings(max_examples=20, deadline=None)
@given(rows_strategy, st.floats(min_value=1.0, max_value=1e4,
                                allow_nan=False))
def test_scale_invariance_of_results(rows, scale):
    """Replay inflation changes time and energy, never answers."""
    sim, server, table = make_table(rows, "row")
    base = run_query(sim, server, Sort(TableScan(table), ["v", "k"]))
    sim2, server2, table2 = make_table(rows, "row")
    scaled = run_query(sim2, server2,
                       Sort(TableScan(table2), ["v", "k"]), scale=scale)
    assert base.rows == scaled.rows
    if scale > 2.0:
        assert scaled.energy_joules > base.energy_joules


@settings(max_examples=20, deadline=None)
@given(rows_strategy)
def test_scale_linearity_of_charges(rows):
    """Collector charges are exactly linear in the scale factor."""
    sim, server, table = make_table(rows, "row")

    def charges(scale):
        collector = CostCollector(scale=scale)
        TableScan(table).execute(collector)
        return collector.total_io_bytes(), collector.total_cpu_cycles()

    io1, cpu1 = charges(1.0)
    io7, cpu7 = charges(7.0)
    assert io7 == pytest.approx(7 * io1)
    assert cpu7 == pytest.approx(7 * cpu1)


@settings(max_examples=15, deadline=None)
@given(rows_strategy, rows_strategy)
def test_cost_model_tracks_collector_on_joins(left_rows, right_rows):
    """Predicted CPU/IO stay within a constant factor of actual charges
    for randomly-sized join+aggregate plans."""
    sim, server, left = make_table(left_rows, "row", name="l")
    storage = StorageManager(sim)
    right = storage.create_table(
        TableSchema("r", [
            Column("rk", DataType.INT64, nullable=False),
            Column("rv", DataType.INT64, nullable=False),
        ]), layout="row", placement=left.placement)
    right.load(right_rows)

    def build():
        return HashAggregate(
            HashJoin(TableScan(left), TableScan(right), ["k"], ["rk"]),
            [], [AggregateSpec("count", None, "n")])

    predicted = CostModel(server).cost(build())
    collector = CostCollector()
    build().execute(collector)
    actual_io = collector.total_io_bytes()
    predicted_io = sum(p.io_bytes for p in predicted.pipelines)
    assert predicted_io == pytest.approx(actual_io, rel=1e-6)
    actual_cpu = collector.total_cpu_cycles()
    predicted_cpu = sum(p.cpu_cycles for p in predicted.pipelines)
    # CPU depends on estimated cardinalities: demand factor-of-4 accuracy
    assert predicted_cpu < 4 * actual_cpu + 1e4
    assert actual_cpu < 4 * predicted_cpu + 1e4


@settings(max_examples=15, deadline=None)
@given(rows_strategy)
def test_index_and_scan_agree(rows):
    """An index range scan returns exactly the rows a filtered full
    scan returns (modulo order)."""
    from repro.relational.expr import Between
    from repro.relational.operators import IndexScan
    sim, server, table = make_table(sorted(rows), "row")
    table.create_index("k")
    low, high = 10, 40
    via_scan = run_query(sim, server,
                         Filter(TableScan(table),
                                Between(col("k"), low, high)))
    via_index = run_query(sim, server,
                          IndexScan(table, "k", low=low, high=high))
    assert sorted(via_scan.rows) == sorted(via_index.rows)
