"""Property-based tests: simulation determinism and energy invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.proportionality import proportionality_index
from repro.hardware.server import BaseLoad
from repro.hardware.meter import EnergyMeter
from repro.sim import Simulation, TimeSeries

delays = st.lists(st.floats(min_value=0.0, max_value=100.0,
                            allow_nan=False), min_size=1, max_size=20)


@settings(max_examples=50)
@given(delays)
def test_simulation_deterministic(delay_list):
    def run():
        sim = Simulation()
        order = []

        def proc(name, delay):
            yield sim.timeout(delay)
            order.append((sim.now, name))

        for i, delay in enumerate(delay_list):
            sim.spawn(proc(i, delay))
        sim.run()
        return order

    assert run() == run()


@settings(max_examples=50)
@given(delays)
def test_clock_monotone(delay_list):
    sim = Simulation()
    stamps = []

    def proc(delay):
        yield sim.timeout(delay)
        stamps.append(sim.now)

    for delay in delay_list:
        sim.spawn(proc(delay))
    sim.run()
    assert stamps == sorted(stamps)


samples = st.lists(
    st.tuples(st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
              st.floats(min_value=0.0, max_value=500.0, allow_nan=False)),
    min_size=1, max_size=30,
).map(lambda pts: sorted(pts, key=lambda p: p[0]))


@settings(max_examples=80)
@given(samples, st.floats(min_value=0.0, max_value=1000.0,
                          allow_nan=False))
def test_integral_additivity(points, split):
    ts = TimeSeries()
    for t, v in points:
        ts.record(t, v)
    t0 = points[0][0]
    t1 = max(points[-1][0], t0) + 10.0
    mid = min(max(split, t0), t1)
    whole = ts.integrate(t0, t1)
    parts = ts.integrate(t0, mid) + ts.integrate(mid, t1)
    assert whole == pytest.approx(parts, rel=1e-9, abs=1e-9)


@settings(max_examples=80)
@given(samples)
def test_integral_non_negative_and_bounded(points):
    ts = TimeSeries()
    for t, v in points:
        ts.record(t, v)
    t0 = points[0][0]
    t1 = t0 + 50.0
    value = ts.integrate(t0, t1)
    peak = max(v for _, v in points)
    assert 0.0 <= value <= peak * (t1 - t0) + 1e-6


@settings(max_examples=50)
@given(st.lists(st.floats(min_value=0.1, max_value=500.0,
                          allow_nan=False), min_size=1, max_size=5),
       st.floats(min_value=0.1, max_value=100.0, allow_nan=False))
def test_meter_energy_equals_power_times_time(watts_list, duration):
    """Constant loads: meter integral == sum(P) * T exactly."""
    sim = Simulation()
    meter = EnergyMeter(sim)
    for i, watts in enumerate(watts_list):
        meter.attach(BaseLoad(sim, watts, name=f"load{i}"))
    sim.run(until=duration)
    assert meter.energy_joules() == pytest.approx(
        sum(watts_list) * duration, rel=1e-9)


@settings(max_examples=50)
@given(st.lists(st.floats(min_value=0.0, max_value=1.0,
                          allow_nan=False),
                min_size=3, max_size=12))
def test_proportionality_index_bounds(raw):
    """For any monotone power curve spanning [0,1] with positive peak,
    the EP index of the *ideal* curve is 1 and a constant curve is 0."""
    n = len(raw)
    utils = [i / (n - 1) for i in range(n)]
    ideal = [u * 100.0 for u in utils]
    constant = [100.0] * n
    assert proportionality_index(utils, ideal) == pytest.approx(1.0)
    assert proportionality_index(utils, constant) == pytest.approx(0.0)
    # mixes land in between
    mixed = [0.5 * i + 0.5 * c for i, c in zip(ideal, constant)]
    assert 0.0 < proportionality_index(utils, mixed) < 1.0
