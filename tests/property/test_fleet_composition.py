"""Property tests: fleet composition is declaration, not semantics.

A homogeneous fleet split into several chunks of the same node class
must serve byte-identically to the unsplit declaration — the
heterogeneous dispatch/autoscaling machinery has to degenerate to the
classic single-class path whenever every node is the same, bit for
bit.  The only thing allowed to differ is the ``fleet`` block of the
report (the declaration itself).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import (FleetSpec, NodeClass, NodePowerModel,
                           build_stream, simulate_service)

POLICIES = ("round_robin", "least_loaded", "power_aware", "cost_aware")

seeds = st.integers(min_value=0, max_value=2**31 - 1)


def _model():
    return NodePowerModel(name="prop", idle_watts=60.0, peak_watts=140.0,
                          boot_seconds=5.0, drain_seconds=2.0,
                          drain_joules=150.0)


def _strip_fleet(payload):
    return {k: v for k, v in payload.items() if k != "fleet"}


@settings(max_examples=15, deadline=None)
@given(queries=st.integers(min_value=300, max_value=800),
       n_nodes=st.integers(min_value=2, max_value=6),
       split=st.integers(min_value=1, max_value=5),
       policy=st.sampled_from(POLICIES),
       seed=seeds)
def test_split_class_fleet_is_byte_identical_to_homogeneous(
        queries, n_nodes, split, policy, seed):
    split = min(split, n_nodes - 1)
    stream = build_stream(queries, seed=seed)
    model = _model()
    whole = FleetSpec.homogeneous(n_nodes, model)
    chunked = FleetSpec(classes=(
        NodeClass(name="node", count=split, model=model),
        NodeClass(name="node", count=n_nodes - split, model=model)))
    a = simulate_service(stream, fleet=whole, policy=policy)
    b = simulate_service(stream, fleet=chunked, policy=policy)
    assert _strip_fleet(a.to_dict()) == _strip_fleet(b.to_dict())


@settings(max_examples=10, deadline=None)
@given(queries=st.integers(min_value=300, max_value=600),
       counts=st.lists(st.integers(min_value=1, max_value=3),
                       min_size=2, max_size=3),
       seed=seeds)
def test_class_rollups_conserve_the_fleet_ledger(queries, counts, seed):
    stream = build_stream(queries, seed=seed)
    models = [
        NodePowerModel(name=f"m{i}", idle_watts=40.0 + 20.0 * i,
                       peak_watts=120.0 + 30.0 * i,
                       speed_factor=1.0 - 0.2 * i)
        for i in range(len(counts))]
    fleet = FleetSpec(classes=tuple(
        NodeClass(name=f"m{i}", count=c, model=models[i])
        for i, c in enumerate(counts)))
    report = simulate_service(stream, fleet=fleet, policy="round_robin")
    assert sum(c.count for c in report.classes) == fleet.n_nodes
    assert sum(c.completed for c in report.classes) \
        == report.queries_completed
    assert abs(sum(c.energy_joules for c in report.classes)
               - report.energy_joules) <= 1e-6 * report.energy_joules
