"""Property-based tests: codecs, pages, and row encoding."""

from datetime import date, timedelta

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType
from repro.storage.compression import (
    DeltaCodec,
    DictionaryCodec,
    LzLiteCodec,
    NoneCodec,
    RleCodec,
)
from repro.storage.page import SlottedPage

int64s = st.integers(min_value=-2**62, max_value=2**62)
small_strings = st.text(min_size=0, max_size=20)
dates = st.dates(min_value=date(1970, 1, 1), max_value=date(2100, 1, 1))


@settings(max_examples=60)
@given(st.lists(int64s, max_size=200))
def test_int_codecs_round_trip(values):
    for codec in (NoneCodec(), RleCodec(), DictionaryCodec(),
                  DeltaCodec(), LzLiteCodec()):
        encoded = codec.encode(values, DataType.INT64)
        assert codec.decode(encoded, DataType.INT64) == values


@settings(max_examples=60)
@given(st.lists(small_strings, max_size=150))
def test_string_codecs_round_trip(values):
    for codec in (NoneCodec(), RleCodec(), DictionaryCodec(),
                  LzLiteCodec()):
        encoded = codec.encode(values, DataType.VARCHAR)
        assert codec.decode(encoded, DataType.VARCHAR) == values


@settings(max_examples=60)
@given(st.lists(dates, max_size=150))
def test_date_delta_round_trip(values):
    codec = DeltaCodec()
    assert codec.decode(codec.encode(values, DataType.DATE),
                        DataType.DATE) == values


@settings(max_examples=60)
@given(st.binary(max_size=5000))
def test_lz_bytes_round_trip(raw):
    codec = LzLiteCodec()
    assert codec.decompress_bytes(codec.compress_bytes(raw)) == raw


@settings(max_examples=40)
@given(st.lists(st.binary(min_size=1, max_size=120), max_size=40),
       st.data())
def test_page_operations_preserve_records(payloads, data):
    """Random inserts and deletes: live records always read back intact,
    and compaction never loses a live record."""
    page = SlottedPage(0, page_size=8192)
    live: dict[int, bytes] = {}
    for payload in payloads:
        if not page.has_room_for(len(payload)):
            continue
        slot = page.insert(payload)
        live[slot] = payload
        if live and data.draw(st.booleans()):
            victim = data.draw(st.sampled_from(sorted(live)))
            page.delete(victim)
            del live[victim]
    if data.draw(st.booleans()):
        page.compact()
    assert dict(page.records()) == live
    for slot, payload in live.items():
        assert page.read(slot) == payload


@settings(max_examples=40)
@given(st.lists(st.binary(min_size=1, max_size=100), max_size=30))
def test_page_serialization_round_trip(payloads):
    page = SlottedPage(3, page_size=4096)
    for payload in payloads:
        if page.has_room_for(len(payload)):
            page.insert(payload)
    clone = SlottedPage.from_bytes(page.to_bytes())
    assert list(clone.records()) == list(page.records())
    assert clone.free_space() == page.free_space()


row_values = st.tuples(
    st.one_of(st.none(), int64s),
    st.one_of(st.none(), small_strings),
    st.one_of(st.none(), st.floats(allow_nan=False, allow_infinity=False)),
    st.one_of(st.none(), st.booleans()),
    st.one_of(st.none(), dates),
)


@settings(max_examples=100)
@given(row_values)
def test_row_encoding_round_trip(row):
    schema = TableSchema("t", [
        Column("a", DataType.INT64),
        Column("b", DataType.VARCHAR),
        Column("c", DataType.FLOAT64),
        Column("d", DataType.BOOL),
        Column("e", DataType.DATE),
    ])
    decoded = schema.decode_row(schema.encode_row(row))
    assert decoded == row


@settings(max_examples=100)
@given(row_values)
def test_row_size_matches_encoding(row):
    schema = TableSchema("t", [
        Column("a", DataType.INT64),
        Column("b", DataType.VARCHAR),
        Column("c", DataType.FLOAT64),
        Column("d", DataType.BOOL),
        Column("e", DataType.DATE),
    ])
    assert schema.row_size_bytes(row) == len(schema.encode_row(row))
