"""Property tests: fault injection never forges or loses anything.

Whatever the fault schedule does to the fleet — crashes mid-query,
thermal throttling, degraded RAID groups, dispatch timeouts — two
invariants must hold exactly:

* **query conservation** — every offered query is accounted for as
  completed, rejected (shed / timed out), or crash-attributed lost;
* **energy conservation** — replaying the run's power transitions into
  real metered devices integrates to the closed-form fleet energy to
  relative 1e-9, through every crash and recovery.

Plus determinism: the same (stream, schedule, policies) produce a
byte-identical ServiceReport.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import build_fault_schedule, simulate_faulty_service
from repro.faults.policies import RetryPolicy, ShedPolicy
from repro.service import FleetSpec, NodePowerModel, build_stream
from repro.service.micro import MICRO_CLASSES, MICRO_TENANT
from repro.telemetry import capture

POLICIES = ("round_robin", "least_loaded", "power_aware")

seeds = st.integers(min_value=0, max_value=2**31 - 1)
query_counts = st.integers(min_value=1, max_value=300)
node_counts = st.integers(min_value=1, max_value=8)
intensities = st.floats(min_value=0.0, max_value=8.0,
                        allow_nan=False, allow_infinity=False)


def _model():
    return NodePowerModel(name="t", idle_watts=50.0, peak_watts=120.0,
                          boot_seconds=1.0, boot_joules=120.0,
                          drain_seconds=0.5, drain_joules=25.0)


def _case(queries, n_nodes, seed, intensity):
    # a single tenant so tiny streams cannot starve a tenant
    stream = build_stream(queries, tenants=(MICRO_TENANT,),
                          classes=MICRO_CLASSES, seed=seed)
    horizon = max(stream.duration_seconds, 1.0) * 1.5
    schedule = build_fault_schedule(
        n_nodes, horizon, seed=seed, intensity=intensity,
        crash_downtime_seconds=2.0)
    retry = RetryPolicy(max_attempts=3, base_backoff_seconds=0.01,
                        timeout_detect_seconds=0.05)
    shed = ShedPolicy(slack_fraction=0.5)
    return stream, schedule, retry, shed


@settings(max_examples=20, deadline=None)
@given(queries=query_counts, n_nodes=node_counts, seed=seeds,
       intensity=intensities)
def test_every_query_is_accounted_for(queries, n_nodes, seed, intensity):
    stream, schedule, retry, shed = _case(queries, n_nodes, seed,
                                          intensity)
    for policy in POLICIES:
        report = simulate_faulty_service(
            stream, schedule, fleet=FleetSpec.homogeneous(n_nodes, _model()),
            policy=policy, retry=retry, shed=shed)
        assert report.faults is not None
        # exact integer reconciliation: nothing forged, nothing dropped
        assert (report.queries_completed + report.queries_rejected
                + report.faults.queries_lost) == queries
        per_tenant = sum(t.completed for t in report.tenants)
        assert per_tenant == report.queries_completed
        assert report.faults.queries_lost <= report.faults.crashes * queries
        assert 0.0 <= report.availability <= 1.0


@settings(max_examples=20, deadline=None)
@given(queries=query_counts, n_nodes=node_counts, seed=seeds,
       intensity=intensities)
def test_metered_energy_matches_closed_form(queries, n_nodes, seed,
                                            intensity):
    stream, schedule, retry, shed = _case(queries, n_nodes, seed,
                                          intensity)
    for policy in POLICIES:
        with capture() as collector:
            report = simulate_faulty_service(
                stream, schedule,
                fleet=FleetSpec.homogeneous(n_nodes, _model()),
                policy=policy, retry=retry, shed=shed)
        trace = collector.finalize()
        metered = sum(d.energy_joules for d in trace.devices
                      if d.name.startswith("svc.node"))
        assert metered == pytest.approx(report.energy_joules,
                                        rel=1e-9, abs=1e-9)


@settings(max_examples=15, deadline=None)
@given(queries=query_counts, n_nodes=node_counts, seed=seeds,
       intensity=intensities)
def test_faulty_service_is_deterministic(queries, n_nodes, seed,
                                         intensity):
    stream, schedule, retry, shed = _case(queries, n_nodes, seed,
                                          intensity)
    dumps = []
    for _ in range(2):
        report = simulate_faulty_service(
            stream, schedule, fleet=FleetSpec.homogeneous(n_nodes, _model()),
            policy="power_aware", retry=retry, shed=shed)
        dumps.append(json.dumps(report.to_dict(), sort_keys=True))
    assert dumps[0] == dumps[1]


@settings(max_examples=15, deadline=None)
@given(queries=query_counts, n_nodes=node_counts, seed=seeds)
def test_empty_schedule_degrades_to_fault_free_bookkeeping(
        queries, n_nodes, seed):
    """With no faults, the engine must report a clean, lossless run."""
    stream = build_stream(queries, tenants=(MICRO_TENANT,),
                          classes=MICRO_CLASSES, seed=seed)
    schedule = build_fault_schedule(
        n_nodes, max(stream.duration_seconds, 1.0), seed=seed,
        intensity=0.0)
    assert len(schedule) == 0
    report = simulate_faulty_service(
        stream, schedule, fleet=FleetSpec.homogeneous(n_nodes, _model()),
        policy="power_aware")
    assert report.queries_completed == queries
    assert report.faults.queries_lost == 0
    assert report.faults.crashes == 0
    assert report.availability == 1.0
