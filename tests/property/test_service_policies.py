"""Property tests: dispatch is a placement decision, not a semantic one.

Every dispatch policy routed over the same arrival stream must (a)
complete every admitted arrival and (b) return byte-identical result
sets — verified on the micro fleet, where each query really executes
against a replica through :class:`repro.relational.executor.Executor`.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import build_stream, run_micro_fleet
from repro.service.micro import MICRO_CLASSES, MICRO_TENANT

POLICIES = ("round_robin", "least_loaded", "power_aware")

seeds = st.integers(min_value=0, max_value=2**31 - 1)
query_counts = st.integers(min_value=1, max_value=12)
node_counts = st.integers(min_value=1, max_value=4)


def micro_stream(queries, seed):
    return build_stream(queries, tenants=(MICRO_TENANT,),
                        classes=MICRO_CLASSES, seed=seed)


@settings(max_examples=20, deadline=None)
@given(queries=query_counts, n_nodes=node_counts, seed=seeds)
def test_policies_return_byte_identical_results(queries, n_nodes, seed):
    stream = micro_stream(queries, seed)
    results = [run_micro_fleet(policy, n_nodes=n_nodes, stream=stream)
               for policy in POLICIES]
    baseline = results[0].result_bytes
    assert all(b is not None for b in baseline)
    for other in results[1:]:
        assert other.result_bytes == baseline


@settings(max_examples=20, deadline=None)
@given(queries=query_counts, n_nodes=node_counts, seed=seeds)
def test_all_admitted_arrivals_complete(queries, n_nodes, seed):
    stream = micro_stream(queries, seed)
    for policy in POLICIES:
        result = run_micro_fleet(policy, n_nodes=n_nodes, stream=stream)
        for k, node in enumerate(result.assigned_node):
            if node >= 0:
                assert result.result_bytes[k] is not None
                assert not math.isnan(result.latencies[k])
                assert result.latencies[k] >= 0.0
        assert result.completed == sum(1 for i in result.assigned_node
                                       if i >= 0)


@settings(max_examples=10, deadline=None)
@given(queries=st.integers(min_value=2, max_value=10), seed=seeds)
def test_admission_rejections_are_marked_not_dropped(queries, seed):
    stream = micro_stream(queries, seed)
    # a tiny limit on a single node forces rejections once backlogged
    result = run_micro_fleet("round_robin", n_nodes=1, stream=stream,
                             admission_limit_seconds=1e-9)
    for k, node in enumerate(result.assigned_node):
        if node < 0:
            assert result.result_bytes[k] is None
            assert math.isnan(result.latencies[k])
    assert result.completed + result.assigned_node.count(-1) == queries


@settings(max_examples=10, deadline=None)
@given(queries=query_counts, n_nodes=node_counts, seed=seeds)
def test_micro_fleet_is_deterministic(queries, n_nodes, seed):
    a = run_micro_fleet("power_aware", n_nodes=n_nodes, queries=queries,
                        seed=seed)
    b = run_micro_fleet("power_aware", n_nodes=n_nodes, queries=queries,
                        seed=seed)
    assert a.result_bytes == b.result_bytes
    assert a.assigned_node == b.assigned_node
    assert a.energy_joules == b.energy_joules


def _report_dict_sans_policy(report):
    d = report.to_dict()
    d.pop("policy")
    return d


@settings(max_examples=20, deadline=None)
@given(queries=st.integers(min_value=1, max_value=300),
       n_nodes=st.integers(min_value=1, max_value=8), seed=seeds)
def test_pvc_at_full_frequency_is_byte_identical_to_baseline(
        queries, n_nodes, seed):
    """A governor whose only step is 1.0 never downclocks, so its
    report must be byte-for-byte the wrapped policy's (modulo the
    policy name) — the degenerate-configuration law."""
    from repro.service import FleetSpec, PVCPolicy, simulate_service

    stream = micro_stream(queries, seed)
    fleet = FleetSpec.homogeneous(n_nodes)
    base = simulate_service(stream, fleet=fleet, policy="power_aware")
    pvc = simulate_service(stream, fleet=fleet,
                           policy=PVCPolicy(frequency_steps=(1.0,)))
    assert _report_dict_sans_policy(pvc) == _report_dict_sans_policy(base)


@settings(max_examples=20, deadline=None)
@given(queries=st.integers(min_value=1, max_value=300),
       n_nodes=st.integers(min_value=1, max_value=8), seed=seeds)
def test_qed_with_zero_hold_is_byte_identical_to_baseline(
        queries, n_nodes, seed):
    """A zero hold window releases every arrival alone at its own
    arrival instant, reproducing the un-batched engine event for
    event."""
    from repro.service import FleetSpec, QEDPolicy, simulate_service

    stream = micro_stream(queries, seed)
    fleet = FleetSpec.homogeneous(n_nodes)
    base = simulate_service(stream, fleet=fleet, policy="power_aware")
    qed = simulate_service(stream, fleet=fleet,
                           policy=QEDPolicy(hold_seconds=0.0))
    assert _report_dict_sans_policy(qed) == _report_dict_sans_policy(base)


@settings(max_examples=20, deadline=None)
@given(queries=st.integers(min_value=1, max_value=300),
       n_nodes=st.integers(min_value=1, max_value=8), seed=seeds)
def test_analytic_fleet_conserves_queries_and_energy(queries, n_nodes,
                                                     seed):
    """Closed-form fleet invariants on arbitrary streams."""
    from repro.service import (FleetSpec, NodePowerModel,
                               simulate_service)

    # a single tenant so tiny streams cannot starve a tenant (which
    # simulate_service rightly treats as an error)
    stream = build_stream(queries, tenants=(MICRO_TENANT,),
                          classes=MICRO_CLASSES, seed=seed)
    model = NodePowerModel(name="t", idle_watts=50.0, peak_watts=120.0,
                           boot_seconds=1.0, boot_joules=120.0,
                           drain_seconds=0.5, drain_joules=25.0)
    for policy in POLICIES:
        report = simulate_service(
            stream, fleet=FleetSpec.homogeneous(n_nodes, model),
            policy=policy)
        assert report.queries_completed + report.queries_rejected \
            == queries
        assert report.queries_rejected == 0  # no admission limit set
        assert report.energy_joules >= 0.0
        # fleet energy is bounded by every node at peak for the whole
        # makespan plus all transition lumps that were charged
        boots = sum(n.boots for n in report.nodes)
        ceiling = (model.peak_watts * report.node_seconds_on
                   + boots * model.cycle_joules
                   + n_nodes * model.drain_joules + 1e-9)
        assert report.energy_joules <= ceiling
        floor = model.idle_watts * report.node_seconds_on - 1e-9
        assert report.energy_joules >= floor
        assert report.p50_latency_seconds <= report.p95_latency_seconds \
            <= report.p99_latency_seconds
