"""A3 (§4.2): batching queries to lengthen disk idle periods.

"Workload management policies that encourage identifiable periods of
low and high activity — perhaps batching requests at the cost of
increased latency."  Sparse arrivals are run FIFO (disks spin the whole
time) and batched with spin-down between batches; energy falls, latency
rises.
"""

from conftest import emit, run_once

from repro.consolidation import poisson_arrivals, run_batched, run_fifo
from repro.hardware.profiles import commodity
from repro.relational.executor import ExecutionContext, Executor
from repro.relational.operators import TableScan
from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType
from repro.sim import Simulation
from repro.storage.manager import StorageManager

WINDOWS = [60.0, 120.0, 240.0]


def build():
    sim = Simulation()
    server, array = commodity(sim)
    storage = StorageManager(sim)
    table = storage.create_table(
        TableSchema("t", [Column("k", DataType.INT64, nullable=False)]),
        layout="row", placement=array)
    table.load([(i,) for i in range(2000)])
    executor = Executor(ExecutionContext(sim=sim, server=server,
                                         scale=200.0))
    arrivals = poisson_arrivals([lambda: TableScan(table)], 12,
                                rate_per_s=1 / 45.0)
    horizon = max(a.at_seconds for a in arrivals) + 300.0
    return sim, server, array, executor, arrivals, horizon


def sweep():
    results = []
    sim, server, _array, executor, arrivals, horizon = build()
    fifo = run_fifo(sim, server, executor, arrivals,
                    tail_seconds=horizon - sim.now)
    results.append(("fifo", fifo))
    for window in WINDOWS:
        sim, server, array, executor, arrivals, horizon = build()
        report = run_batched(sim, server, executor, arrivals, array,
                             window_seconds=window,
                             tail_seconds=horizon - sim.now)
        results.append((f"batch-{window:.0f}s", report))
    return results


def test_batching_trades_latency_for_energy(benchmark):
    results = run_once(benchmark, sweep)
    emit(benchmark,
         "A3: FIFO vs batched execution with spin-down (§4.2)",
         ["policy", "energy_J", "mean_latency_s", "max_latency_s",
          "spin_downs"],
         [(name, round(r.energy_joules, 0),
           round(r.mean_latency_seconds, 2),
           round(r.max_latency_seconds, 2), r.spin_down_count)
          for name, r in results])
    fifo = results[0][1]
    batched = {name: r for name, r in results[1:]}
    # every batching window beats FIFO on energy over the same horizon
    for report in batched.values():
        assert report.energy_joules < fifo.energy_joules
        assert report.mean_latency_seconds > fifo.mean_latency_seconds
        assert report.spin_down_count >= 1
    # wider windows batch more: fewer spin-down cycles
    spin_downs = [batched[f"batch-{w:.0f}s"].spin_down_count
                  for w in WINDOWS]
    assert spin_downs == sorted(spin_downs, reverse=True)
    # and latency grows with the window
    latencies = [batched[f"batch-{w:.0f}s"].mean_latency_seconds
                 for w in WINDOWS]
    assert latencies == sorted(latencies)
