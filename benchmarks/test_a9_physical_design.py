"""A9 (§5.1): physical design for energy.

"Techniques that reduce disk bandwidth requirements, such as
column-oriented storage and compression, will need to be re-evaluated
for their ability to reduce overall energy use."  The design advisor
prices codecs on two different boxes:

* the Figure 2 flash node (90 W CPU vs 5 W storage): compression is a
  TIME win but an ENERGY loss — the advisor must skip it under energy;
* a wimpy-CPU disk box (low-power CPU, hungry spindles): compression
  saves both time and energy — the advisor must keep it.
"""

from conftest import emit, run_once

from repro.hardware.cpu import Cpu, CpuSpec
from repro.hardware.disk import DiskSpec, HardDisk
from repro.hardware.memory import Dram, DramSpec
from repro.hardware.profiles import flash_scan_node
from repro.hardware.server import Server
from repro.optimizer import DesignAdvisor, Objective
from repro.sim import Simulation
from repro.storage.manager import StorageManager
from repro.units import GB, GHZ, GIB, MB
from repro.workloads.tpch_gen import generate_tpch
from repro.workloads.tpch_schema import ORDERS_SCAN_COLUMNS


def wimpy_disk_node(sim):
    """Low-power CPU in front of power-hungry spindles."""
    cpu = Cpu(sim, CpuSpec(cores=2, frequency_hz=1.6 * GHZ,
                           idle_watts=3.0, peak_watts=12.0,
                           cstate_watts=0.5))
    dram = Dram(sim, DramSpec(capacity_bytes=4 * GIB))
    disks = [HardDisk(sim, DiskSpec(
        name=f"d{i}", capacity_bytes=500 * GB,
        bandwidth_bytes_per_s=70 * MB, rpm=7200,
        average_seek_seconds=0.008, active_watts=13.0, idle_watts=9.0,
        standby_watts=1.0)) for i in range(2)]
    return Server(sim, "wimpy", cpu, dram, disks, base_watts=5.0)


def orders_table():
    sim = Simulation()
    _server, array = flash_scan_node(sim)
    storage = StorageManager(sim)
    db = generate_tpch(storage, array, scale_factor=0.002)
    return db["orders"]


def advise():
    orders = orders_table()
    sim = Simulation()
    flash_server, _ = flash_scan_node(sim)
    flash = DesignAdvisor.for_server(flash_server)
    wimpy = DesignAdvisor.for_server(wimpy_disk_node(Simulation()))
    out = {}
    for name, advisor in (("flash+90W-cpu", flash),
                          ("disks+wimpy-cpu", wimpy)):
        out[name] = {
            "time": advisor.choose_codecs(orders, objective=Objective.TIME),
            "energy": advisor.choose_codecs(orders,
                                            objective=Objective.ENERGY),
        }
    return out


def compressed_count(codecs):
    return sum(1 for c in ORDERS_SCAN_COLUMNS if codecs[c] != "none")


def test_energy_design_depends_on_power_balance(benchmark):
    advice = run_once(benchmark, advise)
    rows = []
    for node, per_objective in advice.items():
        for objective, codecs in per_objective.items():
            rows.append((node, objective,
                         compressed_count(codecs),
                         ", ".join(f"{c.split('_')[1]}:{codecs[c]}"
                                   for c in ORDERS_SCAN_COLUMNS)))
    emit(benchmark,
         "A9: codec advice per node and objective (§5.1)",
         ["node", "objective", "compressed_cols", "codecs"], rows)
    flash = advice["flash+90W-cpu"]
    wimpy = advice["disks+wimpy-cpu"]
    # On the Figure 2 node, TIME wants compression, ENERGY avoids it:
    assert compressed_count(flash["time"]) >= 3
    assert compressed_count(flash["energy"]) < \
        compressed_count(flash["time"])
    # On the wimpy-CPU disk box, compression pays under BOTH objectives:
    assert compressed_count(wimpy["energy"]) >= 3
    assert compressed_count(wimpy["energy"]) >= \
        compressed_count(flash["energy"])
