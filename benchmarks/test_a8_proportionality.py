"""A8 (§2.4, [BH07]): energy proportionality of a real vs. ideal server.

We duty-cycle a server through utilization levels 0..1, meter its power
curve, and compute the proportionality index.  The real server's energy
efficiency collapses at low utilization — Barroso & Hölzle's "mostly
10-50 % utilized" regime — while an ideal proportional machine keeps EE
constant at every load level.

Both machines are swept through the ``proportionality`` experiment via
the cached parallel runner; the ideal sweep is seeded with the real
machine's measured peak watts.
"""

import pytest
from conftest import emit, run_once, run_spec

from repro.hardware.proportionality import proportionality_index
from repro.runner import ExperimentSpec

UTILIZATIONS = [0.0, 0.25, 0.5, 0.75, 1.0]
WINDOW_SECONDS = 100.0


def sweep():
    real_run = run_spec(ExperimentSpec("proportionality", knobs={
        "utilization": UTILIZATIONS,
        "kind": "real",
        "window_seconds": WINDOW_SECONDS,
    }, profile="commodity"), variant="real")
    real = [(p.report.average_watts, p.report.work_seconds)
            for p in real_run.points]
    peak = real[-1][0]
    ideal_run = run_spec(ExperimentSpec("proportionality", knobs={
        "utilization": UTILIZATIONS,
        "kind": "ideal",
        "window_seconds": WINDOW_SECONDS,
        "peak_watts": peak,
    }, profile="commodity"), variant="ideal")
    ideal = [(p.report.average_watts, p.report.work_seconds)
             for p in ideal_run.points]
    return real, ideal


def test_real_server_far_from_proportional(benchmark):
    real, ideal = run_once(benchmark, sweep)
    rows = []
    for u, (rw, rwork), (iw, iwork) in zip(UTILIZATIONS, real, ideal):
        rows.append((u, round(rw, 1), round(iw, 1),
                     round(rwork / rw, 4) if rw and rwork else 0.0,
                     round(iwork / iw, 4) if iw and iwork else 0.0))
    real_ep = proportionality_index(UTILIZATIONS, [w for w, _ in real])
    ideal_ep = proportionality_index(UTILIZATIONS, [w for w, _ in ideal])
    emit(benchmark,
         "A8: power and efficiency vs utilization, real vs ideal "
         "proportional ([BH07])",
         ["utilization", "real_W", "ideal_W", "real_work_per_J",
          "ideal_work_per_J"], rows,
         real_EP_index=round(real_ep, 3),
         ideal_EP_index=round(ideal_ep, 3))
    # the real box burns a large fraction of peak while idle
    idle_watts = real[0][0]
    peak_watts = real[-1][0]
    assert idle_watts > 0.3 * peak_watts
    # proportionality indices: ideal ~ 1, real clearly below
    assert ideal_ep == pytest.approx(1.0, abs=0.02)
    assert real_ep < 0.75
    # the real server's efficiency collapses at low load...
    real_ee = [work / (w * WINDOW_SECONDS)
               for (w, work) in real[1:]]  # skip u=0 (no work)
    assert real_ee[-1] > 1.5 * real_ee[0]
    # ...while the ideal machine's EE is constant across loads
    ideal_ee = [work / (w * WINDOW_SECONDS) for (w, work) in ideal[1:]]
    assert max(ideal_ee) == pytest.approx(min(ideal_ee), rel=0.05)
