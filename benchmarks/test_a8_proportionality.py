"""A8 (§2.4, [BH07]): energy proportionality of a real vs. ideal server.

We duty-cycle a server through utilization levels 0..1, meter its power
curve, and compute the proportionality index.  The real server's energy
efficiency collapses at low utilization — Barroso & Hölzle's "mostly
10-50 % utilized" regime — while an ideal proportional machine keeps EE
constant at every load level.
"""

import pytest
from conftest import emit, run_once

from repro.hardware.profiles import commodity
from repro.hardware.proportionality import (
    IdealProportionalDevice,
    proportionality_index,
)
from repro.sim import Simulation

UTILIZATIONS = [0.0, 0.25, 0.5, 0.75, 1.0]
WINDOW_SECONDS = 100.0
PERIOD_SECONDS = 1.0


def duty_cycle_real(utilization):
    """Run the commodity server's CPU+disks at a duty cycle; return
    (average watts, work done)."""
    sim = Simulation()
    server, array = commodity(sim)
    busy = utilization * PERIOD_SECONDS
    work_seconds = 0.0

    def loop():
        nonlocal work_seconds
        cycles_per_busy = busy * server.cpu.effective_frequency_hz \
            * server.cpu.spec.cores
        while sim.now < WINDOW_SECONDS - 1e-9:
            if busy > 0:
                io = sim.spawn(array.read(
                    busy * 100e6, stream="duty"))
                yield from server.cpu.execute(cycles_per_busy,
                                              parallelism=4)
                yield io
                work_seconds += busy
            # sleep to the next period boundary (no-op if already on it)
            next_boundary = (int(sim.now / PERIOD_SECONDS + 1e-9) + 1) \
                * PERIOD_SECONDS
            if busy >= PERIOD_SECONDS - 1e-9:
                continue  # fully loaded: no idle phase
            yield sim.timeout(max(0.0, next_boundary - sim.now))

    sim.run(until=sim.spawn(loop()))
    sim.run(until=WINDOW_SECONDS)
    watts = server.meter.energy_joules(0.0, WINDOW_SECONDS) / WINDOW_SECONDS
    return watts, work_seconds


def duty_cycle_ideal(utilization, peak_watts):
    sim = Simulation()
    device = IdealProportionalDevice(sim, "ideal", peak_watts=peak_watts)
    work_seconds = 0.0

    def loop():
        nonlocal work_seconds
        while sim.now < WINDOW_SECONDS - 1e-9:
            busy = utilization * PERIOD_SECONDS
            if busy > 0:
                yield from device.occupy(busy)
                work_seconds += busy
            if PERIOD_SECONDS - busy > 1e-12:
                yield sim.timeout(PERIOD_SECONDS - busy)

    sim.run(until=sim.spawn(loop()))
    sim.run(until=WINDOW_SECONDS)
    watts = device.energy_joules(0.0, WINDOW_SECONDS) / WINDOW_SECONDS
    return watts, work_seconds


def sweep():
    real = [duty_cycle_real(u) for u in UTILIZATIONS]
    peak = real[-1][0]
    ideal = [duty_cycle_ideal(u, peak) for u in UTILIZATIONS]
    return real, ideal


def test_real_server_far_from_proportional(benchmark):
    real, ideal = run_once(benchmark, sweep)
    rows = []
    for u, (rw, rwork), (iw, iwork) in zip(UTILIZATIONS, real, ideal):
        rows.append((u, round(rw, 1), round(iw, 1),
                     round(rwork / rw, 4) if rw and rwork else 0.0,
                     round(iwork / iw, 4) if iw and iwork else 0.0))
    real_ep = proportionality_index(UTILIZATIONS, [w for w, _ in real])
    ideal_ep = proportionality_index(UTILIZATIONS, [w for w, _ in ideal])
    emit(benchmark,
         "A8: power and efficiency vs utilization, real vs ideal "
         "proportional ([BH07])",
         ["utilization", "real_W", "ideal_W", "real_work_per_J",
          "ideal_work_per_J"], rows,
         real_EP_index=round(real_ep, 3),
         ideal_EP_index=round(ideal_ep, 3))
    # the real box burns a large fraction of peak while idle
    idle_watts = real[0][0]
    peak_watts = real[-1][0]
    assert idle_watts > 0.3 * peak_watts
    # proportionality indices: ideal ~ 1, real clearly below
    assert ideal_ep == pytest.approx(1.0, abs=0.02)
    assert real_ep < 0.75
    # the real server's efficiency collapses at low load...
    real_ee = [work / (w * WINDOW_SECONDS)
               for (w, work) in real[1:]]  # skip u=0 (no work)
    assert real_ee[-1] > 1.5 * real_ee[0]
    # ...while the ideal machine's EE is constant across loads
    ideal_ee = [work / (w * WINDOW_SECONDS) for (w, work) in ideal[1:]]
    assert max(ideal_ee) == pytest.approx(min(ideal_ee), rel=0.05)
