"""A15 (§4.2, [PS04]): encourage burstiness to lengthen idle periods.

A rate-limited sequential consumer streams a large table off one disk.
Just-in-time trickle reads keep the disk spinning for the entire run;
burst prefetching into a DRAM buffer lets it sleep between bursts.  We
sweep the buffer size: bigger buffers buy longer idle periods and more
disk-energy savings, net of the buffer's own DRAM residency power —
until the savings saturate.
"""

from conftest import emit, run_once

from repro.hardware.disk import DiskSpec, HardDisk
from repro.hardware.memory import Dram, DramSpec
from repro.sim import Simulation
from repro.storage.prefetcher import BurstPrefetcher, trickle_stream
from repro.units import GIB, MB

TOTAL_BYTES = 6000 * MB
CONSUME_RATE = 10 * MB
BUFFERS_MB = [150, 300, 600, 1200]


def make_env():
    sim = Simulation()
    disk = HardDisk(sim, DiskSpec(
        name="d0", capacity_bytes=100_000 * MB,
        bandwidth_bytes_per_s=100 * MB,
        average_seek_seconds=0.004, rpm=15000,
        per_request_overhead_seconds=0.0,
        active_watts=17.0, idle_watts=12.0, standby_watts=2.0,
        spinup_seconds=6.0, spinup_joules=90.0,
        spindown_seconds=1.5, spindown_joules=6.0))
    dram = Dram(sim, DramSpec(capacity_bytes=2 * GIB,
                              background_watts_per_gib=0.6,
                              allocated_watts_per_gib=1.2,
                              rank_bytes=1 * GIB))
    return sim, disk, dram


def total_energy(sim, disk, dram):
    return disk.energy_joules() + dram.energy_joules()


def sweep():
    rows = []
    sim, disk, dram = make_env()
    sim.run(until=sim.spawn(trickle_stream(
        sim, disk, TOTAL_BYTES, consume_rate_bytes_per_s=CONSUME_RATE)))
    rows.append(("trickle", 0, total_energy(sim, disk, dram), sim.now, 0))
    for buffer_mb in BUFFERS_MB:
        sim, disk, dram = make_env()
        prefetcher = BurstPrefetcher(
            sim, disk, buffer_bytes=buffer_mb * MB,
            consume_rate_bytes_per_s=CONSUME_RATE, dram=dram)
        sim.run(until=sim.spawn(prefetcher.stream(TOTAL_BYTES)))
        rows.append((f"burst-{buffer_mb}MB", buffer_mb,
                     total_energy(sim, disk, dram), sim.now,
                     prefetcher.stats.spin_downs))
    return rows


def test_bigger_buffers_buy_deeper_sleep(benchmark):
    rows = run_once(benchmark, sweep)
    emit(benchmark,
         "A15: trickle vs burst prefetching, disk+DRAM energy ([PS04])",
         ["policy", "buffer_MB", "energy_kJ", "stream_s", "spin_downs"],
         [(name, mb, round(joules / 1e3, 2), round(seconds, 0), downs)
          for name, mb, joules, seconds, downs in rows])
    by_name = {name: (joules, seconds, downs)
               for name, _mb, joules, seconds, downs in rows}
    trickle_joules = by_name["trickle"][0]
    energies = [by_name[f"burst-{mb}MB"][0] for mb in BUFFERS_MB]
    # every buffer size beats trickling
    assert all(e < trickle_joules for e in energies)
    # savings deepen with buffer size at first (longer sleeps)...
    assert energies[0] > energies[1] > energies[2]
    # ...then the buffer's own DRAM residency power overtakes the
    # marginal disk savings: the optimum is interior ([PS04]'s trade)
    assert energies[3] > energies[2]
    # double-buffered refill: bursting adds no completion latency
    for buffer_mb in BUFFERS_MB:
        assert by_name[f"burst-{buffer_mb}MB"][1] <= \
            by_name["trickle"][1] * 1.01