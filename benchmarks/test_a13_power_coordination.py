"""A13 (§5.3, [RRT+08]): database and platform power managers at cross
purposes — and the coordinated handoff that fixes it.

Scenario: overnight idleness has led the reactive DVFS governor to park
the CPU at its lowest P-state.  A scan query arrives; the optimizer
must choose between the compressed (CPU-bound) and uncompressed
(disk-bound) table copies.

* **uncoordinated**: the optimizer costs plans assuming nominal
  frequency, picks the compressed copy ("it's 2x faster"), and the
  query then crawls at the parked frequency — the paper's cross-purposes
  failure.
* **coordinated-adaptive**: the optimizer asks the coordinator what
  frequency is actually in effect and picks the disk-bound plan, which
  is immune to the slow CPU.
* **coordinated-negotiated**: the optimizer requests full frequency for
  the query's duration; the governor grants the pin; the compressed
  plan runs as fast as it was costed.

Both coordination modes must beat the uncoordinated latency; the
negotiated mode should recover (almost) the full-speed plan's latency.
"""

import pytest
from conftest import emit, run_once

from repro.core.coordination import DvfsGovernor, PowerCoordinator
from repro.hardware.profiles import flash_scan_node
from repro.optimizer import CostModel, Objective, score
from repro.relational.executor import ExecutionContext, Executor
from repro.relational.operators import TableScan
from repro.sim import Simulation
from repro.storage.manager import StorageManager
from repro.units import MIB
from repro.workloads.scan_workload import COMPRESSED_CODECS, FIG2_PARAMS
from repro.workloads.tpch_gen import generate_tpch
from repro.workloads.tpch_schema import ORDERS_SCAN_COLUMNS

PARKED = 0.4
TARGET_PLAIN_BYTES = 2.4e9


def build_node():
    sim = Simulation()
    server, array = flash_scan_node(sim)
    storage = StorageManager(sim)
    plain_db = generate_tpch(storage, array, scale_factor=0.001,
                             layout="column")
    storage2 = StorageManager(sim)
    packed_db = generate_tpch(storage2, array, scale_factor=0.001,
                              layout="column",
                              codecs={"orders": COMPRESSED_CODECS})
    plain = plain_db["orders"]
    packed = packed_db["orders"]
    scale = TARGET_PLAIN_BYTES / plain.plain_bytes(ORDERS_SCAN_COLUMNS)
    governor = DvfsGovernor(server.cpu)
    coordinator = PowerCoordinator(governor)
    return sim, server, plain, packed, scale, governor, coordinator


def choose_copy(server, plain, packed, scale, assumed_fraction):
    """Cost both copies at an assumed frequency; return the winner."""
    actual = server.cpu.dvfs_fraction
    if server.cpu.dvfs_fraction != assumed_fraction:
        server.cpu.set_dvfs(assumed_fraction)
    model = CostModel(server, params=FIG2_PARAMS, scale=scale)
    plain_cost = model.cost(TableScan(plain, columns=ORDERS_SCAN_COLUMNS))
    packed_cost = model.cost(TableScan(packed,
                                       columns=ORDERS_SCAN_COLUMNS))
    server.cpu.set_dvfs(actual)
    if score(packed_cost, Objective.TIME) < score(plain_cost,
                                                  Objective.TIME):
        return packed, "compressed"
    return plain, "uncompressed"


def run_mode(mode):
    sim, server, plain, packed, scale, governor, coordinator = build_node()
    # a quiet night: the governor steps all the way down
    for _ in range(5):
        sim.run(until=sim.now + 10.0)
        governor.react()
    assert server.cpu.dvfs_fraction == PARKED

    if mode == "uncoordinated":
        table, choice = choose_copy(server, plain, packed, scale, 1.0)
    elif mode == "adaptive":
        fraction = coordinator.effective_frequency_fraction()
        table, choice = choose_copy(server, plain, packed, scale, fraction)
    else:  # negotiated
        table, choice = choose_copy(server, plain, packed, scale, 1.0)
        coordinator.request_frequency("scan-query", 1.0)
    ctx = ExecutionContext(sim=sim, server=server, params=FIG2_PARAMS,
                           scale=scale, chunk_bytes=32 * MIB)
    result = Executor(ctx).run(TableScan(table,
                                         columns=ORDERS_SCAN_COLUMNS))
    if mode == "negotiated":
        coordinator.release("scan-query")
    return {
        "mode": mode,
        "choice": choice,
        "frequency": server.cpu.dvfs_fraction if mode != "negotiated"
        else 1.0,
        "seconds": result.elapsed_seconds,
        "joules": result.active_energy_joules,
    }


def test_coordination_prevents_cross_purposes(benchmark):
    results = run_once(benchmark, lambda: [
        run_mode("uncoordinated"), run_mode("adaptive"),
        run_mode("negotiated")])
    emit(benchmark,
         "A13: DBMS vs platform DVFS governor, three handoffs "
         "([RRT+08])",
         ["mode", "plan_choice", "exec_freq", "seconds", "joules"],
         [(r["mode"], r["choice"], r["frequency"],
           round(r["seconds"], 2), round(r["joules"], 1))
          for r in results])
    uncoordinated, adaptive, negotiated = results
    # the failure: a CPU-bound plan executed at the parked frequency
    assert uncoordinated["choice"] == "compressed"
    assert uncoordinated["seconds"] > 10.0  # vs ~5 s at full speed
    # adaptive coordination flips to the frequency-immune plan
    assert adaptive["choice"] == "uncompressed"
    assert adaptive["seconds"] == pytest.approx(10.05, rel=0.05)
    # negotiation recovers the fast plan at its costed frequency
    assert negotiated["choice"] == "compressed"
    assert negotiated["seconds"] < 0.75 * uncoordinated["seconds"]
    # both remedies beat the cross-purposes case on latency
    assert adaptive["seconds"] < uncoordinated["seconds"] * 1.25
    assert negotiated["seconds"] < uncoordinated["seconds"]