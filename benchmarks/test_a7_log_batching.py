"""A7 (§5.2): group-commit batching factor.

"It may make sense to increase the batching factor (and increase
response time) to avoid frequent commits on stable storage."  Sweeping
the WAL's batch size over a fixed OLTP stream: flushes and log-device
energy fall, commit latency rises.
"""

from conftest import emit, run_once

from repro.hardware.profiles import commodity
from repro.sim import Simulation
from repro.storage.wal import WriteAheadLog
from repro.workloads import run_oltp_stream

BATCH_FACTORS = [1, 4, 16, 64]


def run_with_batch(batch):
    sim = Simulation()
    server, _array = commodity(sim)
    log_device = server.storage[-1]  # the NVMe drive carries the log
    wal = WriteAheadLog(sim, log_device, batch_records=batch,
                        batch_timeout_seconds=0.02)
    report = run_oltp_stream(sim, server.cpu, wal, n_transactions=600,
                             arrival_rate_per_s=3000.0)
    return report


def sweep():
    return [(batch, run_with_batch(batch)) for batch in BATCH_FACTORS]


def test_batching_factor_trades_latency_for_log_energy(benchmark):
    results = run_once(benchmark, sweep)
    emit(benchmark,
         "A7: WAL group-commit batching factor (§5.2)",
         ["batch", "flushes", "bytes_flushed", "mean_latency_ms",
          "p99_latency_ms", "uJ_per_txn"],
         [(batch, r.log_flushes, r.log_bytes_flushed,
           round(r.mean_commit_latency_seconds * 1e3, 3),
           round(r.p99_commit_latency_seconds * 1e3, 3),
           round(r.joules_per_transaction * 1e6, 2))
          for batch, r in results])
    flushes = [r.log_flushes for _, r in results]
    bytes_flushed = [r.log_bytes_flushed for _, r in results]
    latencies = [r.mean_commit_latency_seconds for _, r in results]
    energies = [r.joules_per_transaction for _, r in results]
    # bigger batches -> strictly fewer flushes and fewer device bytes
    assert flushes == sorted(flushes, reverse=True)
    assert bytes_flushed == sorted(bytes_flushed, reverse=True)
    # the ends of the sweep show the paper's trade cleanly
    assert energies[-1] < 0.7 * energies[0]
    assert latencies[-1] > latencies[0]
    # every transaction still commits
    assert all(r.transactions == 600 for _, r in results)
