"""Figure 1: TPC-H throughput-test time and energy efficiency vs. the
number of disks {36, 66, 108, 204} on the DL785 profile.

Paper's findings this bench must reproduce in shape:
  * performance improves with more disks, with diminishing returns;
  * energy efficiency PEAKS at 66 disks and drops beyond;
  * the most efficient point trades a large performance drop (paper:
    45 %) for an efficiency gain (paper: 14 %).
"""

from conftest import emit, run_once, run_spec

from repro.hardware.profiles import FIG1_DISK_COUNTS
from repro.runner import ExperimentSpec


def test_figure1_disk_sweep(benchmark):
    spec = ExperimentSpec("fig1", profile="dl785")
    run = run_once(benchmark, lambda: run_spec(spec))
    result = run.aggregate()
    rows = [(n, round(t, 1), round(p, 0), ee * 1e6)
            for (n, t, p, ee) in result.rows()]
    gain, drop = result.tradeoff()
    emit(benchmark,
         "Figure 1: throughput test vs. number of disks (paper: EE "
         "peaks at 66; +14% EE for -45% perf)",
         ["disks", "time_s", "avg_watts", "queries_per_MJ"], rows,
         most_efficient_disks=result.most_efficient_disks,
         fastest_disks=result.fastest_disks,
         efficiency_gain_pct=round(gain * 100, 1),
         performance_drop_pct=round(drop * 100, 1),
         spec_hash=spec.spec_hash()[:12],
         cache_hits=run.cache_hits)

    times = [r.makespan_seconds for r in result.reports]
    # performance improves monotonically with disks...
    assert times == sorted(times, reverse=True)
    # ...with diminishing returns: each doubling helps less
    speedup_36_66 = times[0] / times[1]
    speedup_108_204 = times[2] / times[3]
    assert speedup_108_204 < speedup_36_66
    # the paper's headline: the EE peak is interior, at the 66-disk point
    assert result.most_efficient_disks == 66
    assert result.fastest_disks == max(FIG1_DISK_COUNTS)
    # trade-off has the paper's signs and rough magnitudes
    assert 0.05 < gain < 1.0
    assert 0.25 < drop < 0.60
