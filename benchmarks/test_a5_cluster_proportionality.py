"""A5 (§2.4, [TWM+08]): ensemble-level energy proportionality.

Individual servers idle at well over half their peak power, but a
cluster that consolidates load and powers nodes off approximates the
[BH07] proportional ideal.  We play a diurnal trace against three
policies and report energy and the proportionality index of the
resulting cluster power curve.
"""

from conftest import emit, run_once

from repro.consolidation import ClusterPolicy, diurnal_trace, simulate_cluster
from repro.consolidation.cluster import ServerPowerModel

N_SERVERS = 24
DAYS = 7


def sweep():
    trace = diurnal_trace() * DAYS
    model = ServerPowerModel(idle_watts=220.0, peak_watts=360.0,
                             cycle_joules=25_000.0)
    return {policy: simulate_cluster(trace, N_SERVERS, policy, model)
            for policy in ClusterPolicy}


def test_consolidation_approximates_proportionality(benchmark):
    reports = run_once(benchmark, sweep)
    emit(benchmark,
         "A5: cluster policies over a week of diurnal load (§2.4)",
         ["policy", "energy_MJ", "cycle_MJ", "server_hours", "EP_index"],
         [(p.value, round(r.total_energy_joules / 1e6, 1),
           round(r.cycle_energy_joules / 1e6, 2),
           round(r.server_hours, 0), round(r.proportionality(), 3))
          for p, r in reports.items()])
    all_on = reports[ClusterPolicy.ALL_ON]
    packed = reports[ClusterPolicy.CONSOLIDATE]
    lazy = reports[ClusterPolicy.CONSOLIDATE_LAZY]
    # consolidation saves real energy, even after paying cycling costs
    assert packed.total_energy_joules < 0.75 * all_on.total_energy_joules
    assert packed.total_energy_joules <= lazy.total_energy_joules \
        <= all_on.total_energy_joules
    # a non-proportional node (EP ~ 0.4) becomes a fairly proportional
    # ensemble under consolidation
    node_ep = 1.0 - 220.0 / 360.0  # dynamic range of one server
    assert all_on.proportionality() < 0.5
    assert packed.proportionality() > 0.75
    assert packed.proportionality() > all_on.proportionality() + 0.3
