"""A10 (§5.3): designing for total cost of ownership.

"Two potential solutions for increased performance are to either waste
energy and increase performance with diminishing returns or pay for
more hardware and parallelize, keeping the same energy efficiency.
Over time, we expect that the latter solution will prevail since the
energy costs will make up a larger fraction of TCO."

We take the Figure 1 machine's two ends — the 204-disk "waste energy"
configuration and a pair of 66-disk "efficient, parallelized" nodes —
and sweep the electricity price.  Cheap power favors the single big
box; past a crossover price the scale-out option wins, exactly the
§5.3 prediction.
"""

from conftest import emit, run_once, run_spec

from repro.core.metrics import TcoModel
from repro.runner import ExperimentSpec

PRICES = [0.02, 0.05, 0.10, 0.20, 0.40, 0.80, 1.60]
CHASSIS_DOLLARS = 90_000.0     # 8-socket DL785-class tray
DISK_DOLLARS = 350.0           # one 15K SCSI spindle + tray share


def measure():
    spec = ExperimentSpec("fig1", knobs={"disks": [66, 204]},
                          profile="dl785")
    result = run_spec(spec).aggregate()
    eff, fast = result.reports
    options = {
        "1x 204-disk (waste energy)": {
            "watts": fast.average_power_watts,
            "rate": fast.performance,
            "hardware": CHASSIS_DOLLARS + 204 * DISK_DOLLARS,
        },
        "2x 66-disk (parallelize)": {
            "watts": 2 * eff.average_power_watts,
            "rate": 2 * eff.performance,
            "hardware": 2 * (CHASSIS_DOLLARS + 66 * DISK_DOLLARS),
        },
    }
    rows = []
    for price in PRICES:
        costs = {}
        for name, opt in options.items():
            tco = TcoModel(hardware_cost_dollars=opt["hardware"],
                           electricity_dollars_per_kwh=price)
            costs[name] = tco.cost_per_unit_work(opt["watts"], opt["rate"])
        winner = min(costs, key=costs.get)
        rows.append((price, *costs.values(), winner))
    return options, rows


def test_scale_out_wins_as_energy_prices_rise(benchmark):
    options, rows = run_once(benchmark, measure)
    names = list(options)
    emit(benchmark,
         "A10: cost per query vs electricity price (§5.3)",
         ["$/kWh", f"{names[0]} ($/q)", f"{names[1]} ($/q)", "winner"],
         [(p, round(a, 4), round(b, 4), w) for p, a, b, w in rows])
    winners = [w for *_rest, w in rows]
    # cheap power: the single hot box wins on hardware cost
    assert winners[0] == names[0]
    # expensive power: parallelizing at the efficient point wins
    assert winners[-1] == names[1]
    # the crossover is monotone: once scale-out wins, it keeps winning
    flipped = False
    for w in winners:
        if w == names[1]:
            flipped = True
        else:
            assert not flipped, "winner flipped back after crossover"
    # sanity: the scale-out option really does deliver more performance
    assert options[names[1]]["rate"] > options[names[0]]["rate"]
