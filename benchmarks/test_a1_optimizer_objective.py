"""A1 (§4.1): energy-aware operator memory grants.

"The same way many of those knobs have been tuned to date to increase
performance, we expect DBAs to use them to improve energy efficiency
... from selecting the degree of parallelization to assigning memory to
operators or temporary space."  And: hash-join-style big memory
footprints "are expensive [operations] from a power perspective".

We sort a large table under two memory grants — unlimited (in-memory
sort holding the whole input in power-hungry FB-DIMM DRAM) and small
(external sort spilling runs to flash) — and score both under TIME and
under busy-time ENERGY.  The objectives disagree: TIME wants the big
grant, ENERGY prefers spilling to the 2 W flash drives over keeping
gigabytes of DRAM hot.
"""

from conftest import emit, run_once

from repro.hardware.cpu import Cpu, CpuSpec
from repro.hardware.memory import Dram, DramSpec
from repro.hardware.raid import RaidArray
from repro.hardware.server import Server
from repro.hardware.ssd import FlashSsd, SsdSpec
from repro.optimizer import CostModel, Objective, score
from repro.relational.operators import Sort, TableScan
from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType
from repro.sim import Simulation
from repro.storage.manager import StorageManager
from repro.units import GB, GHZ, GIB, MB, MIB

GRANTS = [("unlimited", None), ("1 GiB", 1 * GIB), ("256 MiB", 256 * MIB),
          ("64 MiB", 64 * MIB)]


def fbdimm_server(sim):
    """A 2009-flavoured node with power-hungry FB-DIMM memory."""
    cpu = Cpu(sim, CpuSpec(cores=4, frequency_hz=2.4 * GHZ,
                           idle_watts=20.0, peak_watts=80.0,
                           cstate_watts=3.0))
    dram = Dram(sim, DramSpec(capacity_bytes=16 * GIB,
                              background_watts_per_gib=1.0,
                              allocated_watts_per_gib=9.0,  # FB-DIMM era
                              bandwidth_bytes_per_s=8 * GB,
                              rank_bytes=2 * GIB))
    ssds = [FlashSsd(sim, SsdSpec(name=f"s{i}", capacity_bytes=200 * GB,
                                  read_bandwidth_bytes_per_s=120 * MB,
                                  write_bandwidth_bytes_per_s=100 * MB,
                                  read_watts=2.0, write_watts=2.5,
                                  idle_watts=0.1)) for i in range(2)]
    server = Server(sim, "fbdimm-node", cpu, dram, ssds, base_watts=30.0)
    return server, RaidArray(sim, ssds, name="a0")


def sweep():
    sim = Simulation()
    server, array = fbdimm_server(sim)
    storage = StorageManager(sim)
    table = storage.create_table(
        TableSchema("facts", [
            Column("k", DataType.INT64, nullable=False),
            Column("v", DataType.FLOAT64, nullable=False),
        ]), layout="row", placement=array)
    table.load([((i * 2654435761) % 100_000, float(i))
                for i in range(50_000)])
    model = CostModel(server, scale=2000.0)
    rows = []
    for label, grant in GRANTS:
        plan = Sort(TableScan(table), ["k"],
                    memory_grant_bytes=grant if grant is None
                    else grant / 2000.0,  # grants compare to unscaled bytes
                    spill_placement=array)
        cost = model.cost(plan)
        rows.append({
            "grant": label,
            "seconds": score(cost, Objective.TIME),
            "joules": score(cost, Objective.ENERGY_ATTRIBUTED),
            "spilled": grant is not None,
        })
    return rows


def test_time_and_energy_disagree_on_memory_grant(benchmark):
    rows = run_once(benchmark, sweep)
    emit(benchmark,
         "A1: sort memory grant under TIME vs busy-ENERGY (§4.1)",
         ["grant", "seconds", "joules", "spills"],
         [(r["grant"], round(r["seconds"], 2), round(r["joules"], 1),
           "yes" if r["spilled"] else "no") for r in rows],
         time_pick=min(rows, key=lambda r: r["seconds"])["grant"],
         energy_pick=min(rows, key=lambda r: r["joules"])["grant"])
    by_time = min(rows, key=lambda r: r["seconds"])
    by_energy = min(rows, key=lambda r: r["joules"])
    # TIME wants the in-memory sort; ENERGY prefers spilling to flash
    assert by_time["grant"] == "unlimited"
    assert by_energy["spilled"]
    assert by_time["grant"] != by_energy["grant"]
    # the time objective pays for its choice in Joules, and vice versa
    assert by_energy["seconds"] > by_time["seconds"]
    assert by_time["joules"] > by_energy["joules"]
