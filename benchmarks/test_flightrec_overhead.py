"""Flight-recorder overhead guard.

Recording is a runtime opt-in, so the recorder must be close to free
even when it is on: the hot path appends small tuples to per-lane
lists and defers every object build, dict merge, and derived column
to ``finalize()``.  (Off, it is one module-global read per emission
site and unmeasurable — and the closed-form reports are byte-identical
either way, which ``tests/integration/test_flightrec.py`` pins.)

This guard simulates the same small serving point with recording off
and on — finalize included, since operators always pay it — and
asserts the recorded run stays within 5% of the unrecorded one
(min-of-N wall times, interleaved to decorrelate host noise).  Both
arms land in ``BENCH_core.json`` as ``host_seconds`` rows (points
``off``/``on``), which the regression engine records and reports but
never gates on — wall clock is not this repo's claim.
"""

from __future__ import annotations

import time

from conftest import observatory_recorder
from repro.flightrec import record
from repro.runner import get_experiment

#: the svc_smoke point function at its own defaults: one 350k-query
#: stream on 16 autoscaled power_aware nodes (bare call_point skips
#: the spec layer's CI-sized queries override — more queries, more
#: hot-path signal per measured second)
SMOKE_KNOBS = {"policy": "power_aware"}

ROUNDS = 5
MAX_OVERHEAD = 0.05


def _simulate_point() -> None:
    get_experiment("svc_smoke").call_point(SMOKE_KNOBS, seed=2009)


def _recorded_point() -> None:
    with record() as recorder:
        _simulate_point()
    recorder.finalize()


#: re-measure on a miss: shared-host throttling is transient and
#: multiplicative (±5-10% swings), while a real regression shows up
#: in every attempt — so retrying filters noise without hiding cost
ATTEMPTS = 3


def _measure() -> tuple[float, float]:
    """One min-of-N interleaved measurement of both arms."""
    off_times, on_times = [], []
    for n in range(ROUNDS):
        # alternate arm order so monotonic host drift (thermal,
        # cgroup throttling) cannot bias one arm systematically
        arms = [(_simulate_point, off_times),
                (_recorded_point, on_times)]
        for fn, into in (arms if n % 2 == 0 else reversed(arms)):
            started = time.perf_counter()
            fn()
            into.append(time.perf_counter() - started)
    return min(off_times), min(on_times)


def test_flightrec_overhead_under_five_percent():
    _simulate_point()  # warm imports and caches outside the clock
    _recorded_point()
    for attempt in range(ATTEMPTS):
        off, on = _measure()
        overhead = on / off - 1.0
        print(f"\nflightrec overhead[{attempt}]: off={off:.4f}s "
              f"on={on:.4f}s ({overhead:+.2%})")
        if overhead < MAX_OVERHEAD:
            break
    recorder = observatory_recorder()
    if recorder is not None:
        for point, seconds in (("off", off), ("on", on)):
            recorder.store.append(recorder.build(
                "flightrec_overhead", point=point,
                host_seconds=seconds))
    assert overhead < MAX_OVERHEAD, (
        f"flight recording costs {overhead:.2%} (> {MAX_OVERHEAD:.0%}) "
        f"in every one of {ATTEMPTS} attempts: "
        f"unrecorded {off:.4f}s vs recorded {on:.4f}s")
