"""Serving engines head-to-head: the reference per-query loop vs. the
vectorized array-of-events core (``repro.service.engine``).

The two engines are contractually byte-identical (the golden suite in
``tests/integration/test_engine_equivalence.py`` proves it per build),
so the only interesting number here is the *price*: host wall-clock
for the same simulated stream.  The benchmark races both engines via
:func:`~repro.service.experiments.mega_calibration_point` — which
raises unless the reports match — and ledgers each engine's wall
seconds as ``host_seconds``, the one observatory metric that is
informational by policy (never gated), because host timings belong to
the machine, not the simulation.

Acceptance-scale calibration (1M queries x 256 nodes, >= 10x) is the
``svc_mega_calibration`` experiment recorded into ``BENCH_mega.json``;
this bench runs a smaller point so the suite stays fast everywhere.
"""

from conftest import emit, observatory_recorder, run_once

#: small enough for CI, large enough that the loop's per-query cost
#: dominates interpreter noise
CAL_KNOBS = dict(policy="power_aware", queries=150_000, nodes=64,
                 load=30.0)


def test_engine_calibration(benchmark):
    from repro.service.experiments import mega_calibration_point

    cal = run_once(benchmark,
                   lambda: mega_calibration_point(**CAL_KNOBS))
    recorder = observatory_recorder()
    if recorder is not None:
        # one row per engine, wall seconds in the never-gated
        # host_seconds slot: the ledger keeps the fast-vs-loop trend
        # without ever failing a gate on somebody's laptop
        recorder.record_report("svc_mega_engines", cal, point="loop",
                               host_seconds=cal.loop_seconds)
        recorder.record_report("svc_mega_engines", cal, point="event",
                               host_seconds=cal.event_seconds)
    emit(benchmark,
         "Serving: reference loop vs. vectorized event core "
         f"({CAL_KNOBS['queries']:,} queries x {CAL_KNOBS['nodes']} "
         "nodes, byte-identical reports)",
         ["engine", "wall_s", "sim_makespan_s", "J_per_query_stream"],
         [("loop", round(cal.loop_seconds, 3),
           round(cal.makespan_seconds, 2),
           round(cal.energy_joules / cal.queries_completed, 3)),
          ("event", round(cal.event_seconds, 3),
           round(cal.makespan_seconds, 2),
           round(cal.energy_joules / cal.queries_completed, 3))],
         speedup=round(cal.speedup, 2),
         identical=cal.identical)

    assert cal.identical
    assert cal.queries_completed > 0
    # modest bar on purpose: host-dependent, and the acceptance-scale
    # >= 10x claim is pinned by svc_mega_calibration in BENCH_mega.json
    assert cal.speedup >= 2.0
