"""A18 (§2.2): running a query mix under a provisioned power cap.

"Racks in data centers are provisioned to deliver a certain capacity in
order to properly power and cool the servers" — software must keep the
box under its provisioned share.  The capped scheduler sweeps the cap
from generous to tight over a CPU-heavy batch: peak draw tracks the
cap, queueing delay grows as the cap tightens, and every query still
completes.
"""

from conftest import emit, run_once

from repro.consolidation.capping import PowerCappedScheduler
from repro.hardware.profiles import commodity
from repro.optimizer import CostModel
from repro.relational.executor import ExecutionContext, Executor
from repro.relational.expr import col
from repro.relational.operators import (
    CostParameters,
    Exchange,
    Filter,
    TableScan,
)
from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType
from repro.sim import Simulation
from repro.storage.manager import StorageManager

CAPS = [200.0, 140.0, 110.0, 90.0]
N_QUERIES = 6
SCALE = 300.0
PARAMS = CostParameters(cycles_per_scan_byte=800.0)  # CPU-heavy mix


def build_env():
    sim = Simulation()
    server, array = commodity(sim)
    storage = StorageManager(sim)
    table = storage.create_table(
        TableSchema("facts", [
            Column("k", DataType.INT64, nullable=False),
            Column("grp", DataType.INT64, nullable=False),
            Column("v", DataType.FLOAT64, nullable=False),
        ]), layout="row", placement=array)
    table.load([(i, i % 7, float(i % 131)) for i in range(4000)])
    executor = Executor(ExecutionContext(sim=sim, server=server,
                                         scale=SCALE, params=PARAMS))
    model = CostModel(server, scale=SCALE, params=PARAMS)
    return executor, model, table


def builders(table):
    out = []
    for i in range(N_QUERIES):
        def make(i=i):
            return Exchange(Filter(TableScan(table),
                                   col("grp") == i % 7), 2)
        out.append(make)
    return out


def sweep():
    reports = []
    for cap in CAPS:
        executor, model, table = build_env()
        scheduler = PowerCappedScheduler(executor, model, cap_watts=cap)
        reports.append(scheduler.run_batch(builders(table)))
    return reports


def test_power_cap_is_respected_across_the_sweep(benchmark):
    reports = run_once(benchmark, sweep)
    emit(benchmark,
         "A18: query batch under provisioned power caps (§2.2)",
         ["cap_W", "peak_W", "makespan_s", "mean_queue_s", "energy_J"],
         [(r.cap_watts, round(r.peak_power_watts, 1),
           round(r.makespan_seconds, 2),
           round(r.mean_queue_delay_seconds, 3),
           round(r.energy_joules, 1)) for r in reports])
    # every cap: all queries complete and the cap holds (small slack
    # for unmodeled DRAM activity)
    for report in reports:
        assert report.completed == N_QUERIES
        assert report.peak_power_watts <= report.cap_watts * 1.1
    # peak draw falls (weakly, within measurement noise) as the cap
    # tightens
    peaks = [r.peak_power_watts for r in reports]
    for looser, tighter in zip(peaks, peaks[1:]):
        assert tighter <= looser + 0.5
    # the tightest cap queues markedly longer than the loosest
    # (intermediate points can wobble: throttling also removes
    # device contention, which shortens service times)
    assert reports[-1].mean_queue_delay_seconds > \
        1.5 * reports[0].mean_queue_delay_seconds
    # and the generous cap really does draw more at peak than the
    # tightest one
    assert reports[0].peak_power_watts > \
        1.15 * reports[-1].peak_power_watts