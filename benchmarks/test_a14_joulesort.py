"""A14 (§2.3, [RSR+07]): JouleSort — records sorted per Joule.

The paper's authors built JouleSort to show that the most energy-
efficient sorting machine is NOT the fastest one: the 2007 winner was a
laptop-class CPU with many flash/laptop drives, not a server.  We sort
the same logical input on three simulated machines and rank them by
records/Joule; the wimpy flash node must win the efficiency crown while
the brawny server wins raw speed.
"""

from conftest import emit, run_once

from repro.hardware.cpu import Cpu, CpuSpec
from repro.hardware.memory import Dram, DramSpec
from repro.hardware.profiles import commodity, dl785
from repro.hardware.raid import RaidArray
from repro.hardware.server import Server
from repro.hardware.ssd import FlashSsd, SsdSpec
from repro.sim import Simulation
from repro.units import GB, GHZ, GIB, MB
from repro.workloads.joulesort import run_joulesort

LOGICAL_RECORDS = 40_000_000  # a 4 GB sort


def wimpy_flash_node(sim):
    """Laptop-class CPU + several flash drives (the JouleSort winner's
    recipe)."""
    cpu = Cpu(sim, CpuSpec(cores=2, frequency_hz=1.8 * GHZ,
                           idle_watts=4.0, peak_watts=18.0,
                           cstate_watts=0.5))
    dram = Dram(sim, DramSpec(capacity_bytes=4 * GIB,
                              background_watts_per_gib=0.4,
                              bandwidth_bytes_per_s=6 * GB,
                              rank_bytes=1 * GIB))
    ssds = [FlashSsd(sim, SsdSpec(name=f"f{i}", capacity_bytes=64 * GB,
                                  read_bandwidth_bytes_per_s=90 * MB,
                                  write_bandwidth_bytes_per_s=70 * MB,
                                  read_watts=1.2, write_watts=1.6,
                                  idle_watts=0.05)) for i in range(4)]
    server = Server(sim, "wimpy-flash", cpu, dram, ssds, base_watts=6.0)
    return server, RaidArray(sim, ssds, name="flash4")


def contenders():
    out = {}
    sim = Simulation()
    server, array = wimpy_flash_node(sim)
    out["wimpy-flash"] = (sim, server, array)
    sim = Simulation()
    server, array = commodity(sim)
    out["commodity"] = (sim, server, array)
    sim = Simulation()
    server, array = dl785(sim, n_disks=48, spindle_groups=12)
    out["dl785-48disk"] = (sim, server, array)
    return out


def sweep():
    results = {}
    for name, (sim, server, array) in contenders().items():
        results[name] = run_joulesort(
            sim, server, array, logical_records=LOGICAL_RECORDS,
            physical_records=20_000)
    return results


def test_efficiency_crown_goes_to_the_wimpy_node(benchmark):
    results = run_once(benchmark, sweep)
    emit(benchmark,
         "A14: JouleSort, 40M records (x100B) per machine ([RSR+07])",
         ["machine", "seconds", "avg_W", "records_per_J", "krec_per_s"],
         [(name, round(r.elapsed_seconds, 1),
           round(r.average_power_watts, 0),
           round(r.records_per_joule, 0),
           round(r.records_per_second / 1e3, 0))
          for name, r in results.items()])
    wimpy = results["wimpy-flash"]
    brawny = results["dl785-48disk"]
    middle = results["commodity"]
    # the big server sorts fastest...
    assert brawny.records_per_second == max(
        r.records_per_second for r in results.values())
    # ...but the wimpy flash node wins records/Joule, by a wide margin
    assert wimpy.records_per_joule == max(
        r.records_per_joule for r in results.values())
    assert wimpy.records_per_joule > 5 * brawny.records_per_joule
    # and the commodity box lands between them on efficiency
    assert brawny.records_per_joule < middle.records_per_joule \
        < wimpy.records_per_joule