"""T1 (§2.1): the definitional identities, checked against a metered
run of the engine rather than against themselves.

EE = WorkDone/Energy = WorkDone/(Power x Time) = Perf/Power, and for
fixed work, maximizing EE == minimizing energy.
"""

import pytest
from conftest import emit, run_once

from repro.core.metrics import energy_efficiency, perf_per_watt
from repro.hardware.profiles import commodity
from repro.relational.executor import ExecutionContext, Executor
from repro.relational.operators import TableScan
from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType
from repro.sim import Simulation
from repro.storage.manager import StorageManager


def run_metered_query():
    sim = Simulation()
    server, array = commodity(sim)
    storage = StorageManager(sim)
    table = storage.create_table(
        TableSchema("t", [Column("k", DataType.INT64, nullable=False)]),
        layout="row", placement=array)
    table.load([(i,) for i in range(5000)])
    ctx = ExecutionContext(sim=sim, server=server, scale=500.0)
    return Executor(ctx).run(TableScan(table))


def test_metrics_identities_on_metered_run(benchmark):
    result = run_once(benchmark, run_metered_query)
    work = float(result.row_count)
    ee = energy_efficiency(work, result.energy_joules)
    ppw = perf_per_watt(work / result.elapsed_seconds,
                        result.average_power_watts)
    emit(benchmark, "T1: energy-efficiency identities (§2.1)",
         ["quantity", "value"],
         [("work (rows)", work),
          ("energy (J)", round(result.energy_joules, 2)),
          ("time (s)", round(result.elapsed_seconds, 4)),
          ("EE = work/J", ee),
          ("perf/watt", ppw)])
    # EE == Perf/Power on real metered numbers
    assert ee == pytest.approx(ppw, rel=1e-9)
    # energy == avg power x time on real metered numbers
    assert result.energy_joules == pytest.approx(
        result.average_power_watts * result.elapsed_seconds, rel=1e-9)
