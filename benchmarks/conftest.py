"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures (or one
of the DESIGN.md ablations), prints the paper-style rows, and attaches
them to pytest-benchmark's ``extra_info`` so they land in the JSON
output as well.  Simulated results are deterministic, so each benchmark
runs its workload exactly once (``rounds=1``) — the interesting numbers
are the simulated seconds/Joules, not the host's wall clock.

Sweep-style benchmarks go through :func:`run_spec`, which executes an
:class:`repro.runner.ExperimentSpec` on a process pool
(``$REPRO_BENCH_WORKERS``, default 2) backed by the shared on-disk
result cache (``$REPRO_CACHE_DIR``, default ``.repro-cache/``) — so a
repeated benchmark/CI run skips every already-simulated point.

Every result additionally feeds the observatory ledger: an autouse
fixture notes the running benchmark, and :func:`run_spec` /
:func:`run_once` append :class:`~repro.observatory.BenchRecord` rows
to ``BENCH_<suite>.json`` (suite ``$REPRO_BENCH_SUITE``, default
``core``; directory ``$REPRO_HISTORY_DIR``, default the repo root).
Set ``REPRO_OBSERVATORY=0`` to switch recording off.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, Callable, Optional, Sequence

import pytest

from repro.core.report import format_table
from repro.runner import ExperimentSpec, Runner, RunResult
from repro.runner.reports import report_metrics

#: the benchmark (pytest node) currently running, for ledger records
_CURRENT_BENCHMARK: dict[str, Optional[str]] = {"name": None}

_RECORDER: Any = None


def _observatory_enabled() -> bool:
    return os.environ.get("REPRO_OBSERVATORY", "1").lower() not in (
        "0", "off", "false", "no")


def observatory_recorder():
    """The harness-wide ledger recorder (None when disabled)."""
    global _RECORDER
    if not _observatory_enabled():
        return None
    if _RECORDER is None:
        from repro.observatory import Recorder
        root = os.environ.get(
            "REPRO_HISTORY_DIR",
            str(Path(__file__).resolve().parent.parent))
        suite = os.environ.get("REPRO_BENCH_SUITE", "core")
        _RECORDER = Recorder(root, suite=suite)
    return _RECORDER


@pytest.fixture(autouse=True)
def _observatory_benchmark_name(request):
    """Expose the running benchmark's name to the record helpers."""
    _CURRENT_BENCHMARK["name"] = request.node.name
    yield
    _CURRENT_BENCHMARK["name"] = None


def _benchmark_name(fallback: str) -> str:
    return _CURRENT_BENCHMARK["name"] or fallback


#: (benchmark name, spec hash) -> ledger series name, so two different
#: sweeps inside one benchmark never share a longitudinal series
_NODE_SERIES: dict[tuple[str, str], str] = {}


def _series_name(spec: ExperimentSpec, variant: Optional[str]) -> str:
    name = _benchmark_name(spec.experiment)
    if variant is not None:
        return f"{name}[{variant}]"
    key = (name, spec.spec_hash())
    if key not in _NODE_SERIES:
        taken = {s for (n, _), s in _NODE_SERIES.items() if n == name}
        _NODE_SERIES[key] = (
            name if name not in taken
            else f"{name}[{spec.spec_hash()[:8]}]")
    return _NODE_SERIES[key]


def run_once(benchmark, fn: Callable[[], Any]) -> Any:
    """Run a deterministic experiment once under pytest-benchmark."""
    result = benchmark.pedantic(fn, rounds=1, iterations=1)
    recorder = observatory_recorder()
    if recorder is not None and result is not None:
        sim_seconds, joules = report_metrics(result)
        if sim_seconds > 0 or joules > 0:
            recorder.record_report(_benchmark_name("run_once"), result)
    return result


def run_spec(spec: ExperimentSpec, workers: int | None = None,
             variant: Optional[str] = None) -> RunResult:
    """Execute a spec with the harness-wide pool/cache settings.

    ``variant`` names the ledger series when one benchmark runs several
    sweeps (e.g. A8's real vs. ideal machine); unnamed extra sweeps get
    a spec-hash suffix automatically.
    """
    if workers is None:
        workers = int(os.environ.get("REPRO_BENCH_WORKERS", "2"))
    # traced, so ledger records carry counters and power timelines;
    # traced runs cache under their own keys (see ARCHITECTURE.md)
    result = Runner(workers=workers, cache=True, trace=True).run(spec)
    recorder = observatory_recorder()
    if recorder is not None:
        recorder.record_run(result,
                            benchmark=_series_name(spec, variant))
    return result


def emit(benchmark, title: str, headers: Sequence[str],
         rows: Sequence[Sequence[Any]], **extra: Any) -> None:
    """Print the regenerated table and attach it to the benchmark."""
    text = format_table(headers, rows, title=title)
    print("\n" + text)
    benchmark.extra_info["table"] = text
    for key, value in extra.items():
        print(f"{key}: {value}")
        benchmark.extra_info[key] = value
