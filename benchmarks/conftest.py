"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures (or one
of the DESIGN.md ablations), prints the paper-style rows, and attaches
them to pytest-benchmark's ``extra_info`` so they land in the JSON
output as well.  Simulated results are deterministic, so each benchmark
runs its workload exactly once (``rounds=1``) — the interesting numbers
are the simulated seconds/Joules, not the host's wall clock.

Sweep-style benchmarks go through :func:`run_spec`, which executes an
:class:`repro.runner.ExperimentSpec` on a process pool
(``$REPRO_BENCH_WORKERS``, default 2) backed by the shared on-disk
result cache (``$REPRO_CACHE_DIR``, default ``.repro-cache/``) — so a
repeated benchmark/CI run skips every already-simulated point.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Sequence

from repro.core.report import format_table
from repro.runner import ExperimentSpec, Runner, RunResult


def run_once(benchmark, fn: Callable[[], Any]) -> Any:
    """Run a deterministic experiment once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def run_spec(spec: ExperimentSpec, workers: int | None = None
             ) -> RunResult:
    """Execute a spec with the harness-wide pool/cache settings."""
    if workers is None:
        workers = int(os.environ.get("REPRO_BENCH_WORKERS", "2"))
    return Runner(workers=workers, cache=True).run(spec)


def emit(benchmark, title: str, headers: Sequence[str],
         rows: Sequence[Sequence[Any]], **extra: Any) -> None:
    """Print the regenerated table and attach it to the benchmark."""
    text = format_table(headers, rows, title=title)
    print("\n" + text)
    benchmark.extra_info["table"] = text
    for key, value in extra.items():
        print(f"{key}: {value}")
        benchmark.extra_info[key] = value
