"""A12 (§5.3, [ZCT+05]): multi-speed drives under a diurnal load.

"We will also need to anticipate and adapt our algorithms to the
multitude of technologies architects develop ... multi-speed drives,
and so on."  A Hibernator-style governor serves each epoch at the
slowest RPM whose bandwidth covers demand; against an always-full-speed
baseline it saves disk energy with a bounded throughput cost, and
avoids the spin-down cliff (no multi-second spin-ups on the load path).
"""

from conftest import emit, run_once

from repro.consolidation.speed import SpeedGovernor
from repro.hardware.disk import DiskSpec, HardDisk
from repro.sim import Simulation
from repro.units import MB

EPOCH_SECONDS = 600.0
#: demand per epoch as a fraction of full-speed aggregate bandwidth
LOAD_TRACE = [0.05, 0.05, 0.1, 0.3, 0.6, 0.7, 0.6, 0.3, 0.1, 0.05]
N_DISKS = 4


def make_disks(sim):
    return [HardDisk(sim, DiskSpec(
        name=f"d{i}", capacity_bytes=500_000 * MB,
        bandwidth_bytes_per_s=100 * MB,
        average_seek_seconds=0.004, rpm=15000,
        per_request_overhead_seconds=0.0,
        active_watts=17.0, idle_watts=12.0, standby_watts=2.0,
        speed_levels=(1.0, 0.6, 0.4),
        speed_change_seconds=2.0, speed_change_joules=4.0))
        for i in range(N_DISKS)]


def run_policy(adaptive: bool):
    sim = Simulation()
    disks = make_disks(sim)
    governor = SpeedGovernor(disks) if adaptive else None
    served = [0.0]

    def epoch_driver():
        for demand in LOAD_TRACE:
            epoch_start = sim.now
            if governor is not None:
                yield from governor.apply(demand, EPOCH_SECONDS)
            # each disk streams its share of the epoch's demand
            share = demand * 100 * MB * EPOCH_SECONDS
            readers = [sim.spawn(d.read(int(share), stream=f"epoch-{d.name}"),
                                 name=f"rd-{d.name}")
                       for d in disks]
            yield sim.all_of(readers)
            served[0] += share * N_DISKS
            if sim.now < epoch_start + EPOCH_SECONDS:
                yield sim.timeout(epoch_start + EPOCH_SECONDS - sim.now)

    sim.run(until=sim.spawn(epoch_driver(), name="driver"))
    energy = sum(d.energy_joules() for d in disks)
    changes = sum(d.speed_changes for d in disks)
    return {
        "policy": "adaptive-speed" if adaptive else "full-speed",
        "energy": energy,
        "makespan": sim.now,
        "bytes": served[0],
        "speed_changes": changes,
    }


def test_adaptive_speed_saves_disk_energy(benchmark):
    results = run_once(benchmark, lambda: [run_policy(False),
                                           run_policy(True)])
    emit(benchmark,
         "A12: fixed vs adaptive disk speed over a diurnal trace "
         "([ZCT+05])",
         ["policy", "energy_kJ", "makespan_s", "TB_served",
          "speed_changes"],
         [(r["policy"], round(r["energy"] / 1e3, 1),
           round(r["makespan"], 0), round(r["bytes"] / 1e12, 3),
           r["speed_changes"]) for r in results])
    fixed, adaptive = results
    # same work served
    assert adaptive["bytes"] == fixed["bytes"]
    # adaptive speed saves a meaningful slice of disk energy
    assert adaptive["energy"] < 0.85 * fixed["energy"]
    # the governor actually shifted, and not every epoch (hysteresis)
    assert 0 < adaptive["speed_changes"] < len(LOAD_TRACE) * N_DISKS
    # low-RPM service stretches no epoch past its window by much
    assert adaptive["makespan"] <= fixed["makespan"] * 1.1