"""Telemetry overhead guard.

Tracing is a runtime opt-in, so the capture machinery must cost almost
nothing: spans snapshot busy-seconds at their endpoints and every hook
on the hot path (meter construction, buffer get/put, WAL flush,
prefetch burst) is a single module-global read when telemetry is off.
This guard simulates the same tiny Figure 1 point with capture off and
on and asserts the traced run stays within 5% of the untraced one
(min-of-N wall times, interleaved to decorrelate host noise).
"""

from __future__ import annotations

import time

from repro.runner import get_experiment
from repro.telemetry import capture

#: the tiny Figure 1 settings the integration tests already use
TINY_FIG1 = {
    "disks": 24,
    "streams": 2,
    "queries_per_stream": 1,
    "physical_scale_factor": 0.0005,
    "logical_scale_factor": 1.0,
    "spindle_groups": 6,
}

ROUNDS = 5
MAX_OVERHEAD = 0.05


def _simulate_point() -> None:
    get_experiment("fig1").call_point(TINY_FIG1, seed=2009)


def _traced_point() -> None:
    with capture() as collector:
        _simulate_point()
    collector.finalize()


def test_telemetry_overhead_under_five_percent():
    _simulate_point()  # warm imports and caches outside the clock
    off_times, on_times = [], []
    for _ in range(ROUNDS):
        started = time.perf_counter()
        _simulate_point()
        off_times.append(time.perf_counter() - started)
        started = time.perf_counter()
        _traced_point()
        on_times.append(time.perf_counter() - started)
    off, on = min(off_times), min(on_times)
    overhead = on / off - 1.0
    print(f"\ntelemetry overhead: off={off:.4f}s on={on:.4f}s "
          f"({overhead:+.2%})")
    assert overhead < MAX_OVERHEAD, (
        f"telemetry capture costs {overhead:.2%} (> {MAX_OVERHEAD:.0%}): "
        f"untraced {off:.4f}s vs traced {on:.4f}s")


def test_observatory_recording_overhead_under_five_percent(tmp_path):
    """Appending a ledger record must stay in the telemetry noise.

    Same interleaved min-of-N protocol as above, but both arms run the
    traced point — the measured delta is purely the observatory's
    record build (metric extraction, timeline downsampling) plus the
    JSONL append."""
    from repro.observatory import Recorder

    recorder = Recorder(tmp_path, suite="overhead")
    defn = get_experiment("fig1")

    def traced():
        with capture() as collector:
            report = defn.call_point(TINY_FIG1, seed=2009)
        return report, collector.finalize()

    traced()  # warm imports and caches outside the clock
    off_times, on_times = [], []
    for _ in range(ROUNDS):
        started = time.perf_counter()
        traced()
        off_times.append(time.perf_counter() - started)
        started = time.perf_counter()
        report, trace = traced()
        recorder.record_report("fig1_tiny", report, trace=trace)
        on_times.append(time.perf_counter() - started)
    off, on = min(off_times), min(on_times)
    overhead = on / off - 1.0
    print(f"\nobservatory overhead: off={off:.4f}s on={on:.4f}s "
          f"({overhead:+.2%})")
    assert overhead < MAX_OVERHEAD, (
        f"observatory recording costs {overhead:.2%} "
        f"(> {MAX_OVERHEAD:.0%}): traced {off:.4f}s vs "
        f"traced+recorded {on:.4f}s")
