"""A17 (§5.2): work sharing across queries — cooperative scans.

"Techniques that enable and encourage work sharing across queries will
become increasingly attractive."  N concurrent aggregation queries over
the same fact table run once with independent physical passes and once
with a cooperative shared pass (one leader drives the I/O, the others
piggyback).  Sharing collapses N table reads into one, cutting both
makespan and Joules — and the saving grows with the batch size.
"""

from conftest import emit, run_once

from repro.hardware.profiles import commodity
from repro.relational.executor import ExecutionContext, Executor
from repro.relational.expr import col
from repro.relational.operators import (
    AggregateSpec,
    Filter,
    HashAggregate,
    TableScan,
)
from repro.relational.shared import SharedScanSession, run_independently
from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType
from repro.sim import Simulation
from repro.storage.manager import StorageManager

BATCH_SIZES = [2, 4, 8]
SCALE = 500.0


def build_env():
    sim = Simulation()
    server, array = commodity(sim)
    storage = StorageManager(sim)
    table = storage.create_table(
        TableSchema("facts", [
            Column("k", DataType.INT64, nullable=False),
            Column("grp", DataType.INT64, nullable=False),
            Column("v", DataType.FLOAT64, nullable=False),
        ]), layout="row", placement=array)
    table.load([(i, i % 11, float(i % 233)) for i in range(4000)])
    executor = Executor(ExecutionContext(sim=sim, server=server,
                                         scale=SCALE))
    return sim, server, table, executor


def builders(table, n):
    out = []
    for i in range(n):
        def make(i=i):
            return HashAggregate(
                Filter(TableScan(table), col("grp") == i % 11),
                [], [AggregateSpec("sum", col("v"), "s")])
        out.append(make)
    return out


def run_pair(n):
    sim, server, table, executor = build_env()
    run_independently(executor, builders(table, n))
    indep = (sim.now, server.meter.energy_joules(0.0, sim.now))
    sim, server, table, executor = build_env()
    SharedScanSession(executor).run_batch(builders(table, n))
    shared = (sim.now, server.meter.energy_joules(0.0, sim.now))
    return indep, shared


def sweep():
    return {n: run_pair(n) for n in BATCH_SIZES}


def test_shared_scans_scale_with_batch_size(benchmark):
    results = run_once(benchmark, sweep)
    rows = []
    for n, ((it, ie), (st, se)) in results.items():
        rows.append((n, round(it, 2), round(st, 2),
                     round(ie, 1), round(se, 1),
                     round(ie / se, 2)))
    emit(benchmark,
         "A17: independent vs cooperative scans, N concurrent queries "
         "(§5.2)",
         ["batch", "indep_s", "shared_s", "indep_J", "shared_J",
          "energy_saving_x"], rows)
    savings = []
    for n, ((it, ie), (st, se)) in results.items():
        assert st < it            # sharing is faster
        assert se < ie            # and cheaper
        savings.append(ie / se)
    # the energy saving factor grows with batch size
    assert savings == sorted(savings)
    # at batch 8 the saving approaches the I/O share of the workload
    assert savings[-1] > 2.0