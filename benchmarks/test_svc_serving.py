"""Fleet serving (§4.2, [TWM+08]): dispatch-policy sweep on a 16-node
cluster under the multi-tenant open-loop default stream.

The consolidation-in-space story this bench must reproduce in shape:
  * round-robin and least-loaded keep the whole fleet powered, so
    their Joules/query are nearly identical;
  * power-aware packing concentrates load and lets the autoscaler
    power the cold tail down, cutting Joules/query by >= 15 % at an
    equal-or-better fleet p95;
  * every tenant's p95 SLA holds under every policy.

Runs at ``svc_smoke`` scale (3 x 20k queries) so the CI suite stays
fast; the acceptance-scale sweep (3 x 350k) is ``svc_policies`` via
``python -m repro.runner run svc_policies``.
"""

from conftest import emit, run_once, run_spec

from repro.runner import ExperimentSpec


def test_svc_policy_sweep(benchmark):
    spec = ExperimentSpec("svc_smoke", profile="commodity")
    run = run_once(benchmark, lambda: run_spec(spec))
    sweep = run.aggregate()
    headline = sweep.headline()
    emit(benchmark,
         "Serving: dispatch policies on a 16-node fleet "
         "(packing + autoscaling vs. all-on baselines)",
         ["policy", "completed", "J_per_query", "p95_s", "avg_nodes_on",
          "SLAs"],
         [(policy, completed, round(jpq, 3), round(p95, 3),
           round(nodes_on, 2), slas)
          for (policy, completed, jpq, p95, nodes_on, slas)
          in sweep.rows()],
         savings_vs_round_robin_pct=round(
             headline["savings_fraction"] * 100, 1),
         power_aware_p95_s=round(headline["power_aware_p95_seconds"], 3),
         round_robin_p95_s=round(headline["round_robin_p95_seconds"], 3),
         spec_hash=spec.spec_hash()[:12],
         cache_hits=run.cache_hits)

    # the all-on baselines pay for the whole fleet either way
    rr = sweep.report("round_robin")
    ll = sweep.report("least_loaded")
    assert abs(1.0 - ll.joules_per_query / rr.joules_per_query) < 0.02
    # packing + autoscaling: the acceptance ordering
    assert headline["savings_fraction"] >= 0.15
    assert headline["power_aware_p95_seconds"] <= \
        headline["round_robin_p95_seconds"]
    # consolidation is visible in the duty ledger, not just the Joules
    assert sweep.report("power_aware").average_active_nodes < \
        rr.average_active_nodes
    # and no policy buys energy with a missed SLA
    for report in sweep.reports:
        assert report.slas_met
