"""A2 (§4.1): knob sweep — DVFS level x compression.

"Use existing system-wide knobs ... to achieve the most energy-efficient
configuration."  We sweep the CPU's DVFS fraction against the Figure 2
scan in both storage configurations and show the optimum under energy
is NOT the fastest setting: lowering the clock costs time but saves
busy-energy (dynamic power falls cubically while time grows linearly).

The sweep is a single 2x4 ``ExperimentSpec`` grid executed through the
parallel, cached runner.
"""

from conftest import emit, run_once, run_spec

from repro.runner import ExperimentSpec

DVFS_LEVELS = (1.0, 0.85, 0.7, 0.55)

SPEC = ExperimentSpec("scan", knobs={
    "compressed": [False, True],
    "dvfs_fraction": list(DVFS_LEVELS),
    "scale_factor": 0.001,
}, profile="flash_scan_node")


def sweep():
    run = run_spec(SPEC)
    return [
        {
            "compressed": p.knobs["compressed"],
            "dvfs": p.knobs["dvfs_fraction"],
            "seconds": p.report.total_seconds,
            "joules": p.report.energy_joules,
        }
        for p in run.points
    ]


def test_most_efficient_knob_setting_is_not_fastest(benchmark):
    rows = run_once(benchmark, sweep)
    emit(benchmark,
         "A2: DVFS x compression sweep of the Figure 2 scan (§4.1)",
         ["compressed", "dvfs", "seconds", "joules"],
         [("yes" if r["compressed"] else "no", r["dvfs"],
           round(r["seconds"], 2), round(r["joules"], 1)) for r in rows],
         fastest=min(rows, key=lambda r: r["seconds"])["dvfs"],
         most_efficient=min(rows, key=lambda r: r["joules"])["dvfs"],
         spec_hash=SPEC.spec_hash()[:12])
    fastest = min(rows, key=lambda r: r["seconds"])
    frugal = min(rows, key=lambda r: r["joules"])
    # the energy optimum is a *different* configuration than the fastest
    assert (fastest["compressed"], fastest["dvfs"]) != \
        (frugal["compressed"], frugal["dvfs"])
    # the fastest point runs the clock flat out with compression on
    assert fastest["dvfs"] == 1.0
    assert fastest["compressed"]
    # the frugal point underclocks (and, per Figure 2, skips compression)
    assert frugal["dvfs"] < 1.0
    assert not frugal["compressed"]
    # within the uncompressed (disk-bound) column, downclocking is free
    # speed-wise but saves Joules
    plain = [r for r in rows if not r["compressed"]]
    full = next(r for r in plain if r["dvfs"] == 1.0)
    slow = next(r for r in plain if r["dvfs"] == 0.7)
    assert slow["seconds"] <= full["seconds"] * 1.05
    assert slow["joules"] < full["joules"]
