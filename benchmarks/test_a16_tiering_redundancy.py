"""A16 (§5.1): tiered placement and redundancy for energy.

"For read-mostly workloads, increasing redundancy may improve energy
efficiency.  Additional capacity on disks does not carry energy costs
if the disk usage remains the same."

Part 1 (advisor): place a warehouse across flash / fast-disk / archive
tiers; adding a flash read replica of the disk-pinned hot table lets
the disk tier sleep, cutting steady-state power.

Part 2 (simulation): replay a read stream against the actual device
models in both configurations and verify the metered energy agrees with
the advisor's prediction in direction and rough magnitude.
"""

from conftest import emit, run_once

from repro.hardware.disk import DiskSpec, HardDisk
from repro.hardware.ssd import FlashSsd, SsdSpec
from repro.sim import Simulation
from repro.storage.tiering import StorageTier, TableProfile, TieringAdvisor
from repro.units import GB, MB

READ_RATE = 60 * MB
HOURS = 2.0


def tiers():
    return [
        StorageTier("ssd", capacity_bytes=100 * GB,
                    bandwidth_bytes_per_s=500 * MB,
                    active_watts=3.0, idle_watts=0.3,
                    standby_watts=0.1, can_sleep=True),
        StorageTier("fast-disks", capacity_bytes=1000 * GB,
                    bandwidth_bytes_per_s=300 * MB,
                    active_watts=40.0, idle_watts=30.0,
                    standby_watts=5.0, can_sleep=True),
        StorageTier("archive", capacity_bytes=4000 * GB,
                    bandwidth_bytes_per_s=150 * MB,
                    active_watts=25.0, idle_watts=18.0,
                    standby_watts=2.0, can_sleep=True),
    ]


def advisor_part():
    tables = [
        TableProfile("orders_current", 60 * GB,
                     read_bytes_per_s=READ_RATE,
                     pinned_tier="fast-disks"),
        TableProfile("orders_history", 1800 * GB,
                     read_bytes_per_s=0.5 * MB,
                     pinned_tier="archive"),
    ]
    adv = TieringAdvisor(tiers())
    return adv.place(tables), adv.plan_with_replicas(tables)


def simulate(replicated: bool):
    """Meter a 2-hour read stream against real device models."""
    sim = Simulation()
    disk = HardDisk(sim, DiskSpec(
        name="disk-tier", capacity_bytes=1000 * GB,
        bandwidth_bytes_per_s=300 * MB,
        average_seek_seconds=0.004, rpm=15000,
        active_watts=40.0, idle_watts=30.0, standby_watts=5.0,
        spinup_seconds=6.0, spinup_joules=200.0,
        spindown_seconds=2.0, spindown_joules=30.0))
    ssd = FlashSsd(sim, SsdSpec(
        name="flash-tier", capacity_bytes=100 * GB,
        read_bandwidth_bytes_per_s=500 * MB,
        write_bandwidth_bytes_per_s=400 * MB,
        read_watts=3.0, write_watts=3.5, idle_watts=0.3))
    horizon = HOURS * 3600.0
    serving = ssd if replicated else disk

    def reader():
        if replicated:
            # one-time replica build: copy 60 GB disk -> flash
            copy = 60 * GB
            yield from disk.read(copy, stream="replicate")
            yield from ssd.write(copy, stream="replicate")
            yield from disk.spin_down()
        while sim.now < horizon:
            burst = READ_RATE * 60.0  # a minute of demand per request
            yield from serving.read(int(burst), stream="reads")
            wake = min(60.0, horizon - sim.now)
            if wake > 0:
                yield sim.timeout(max(0.0, 60.0
                                      - burst / (500 * MB if replicated
                                                 else 300 * MB)))

    sim.run(until=sim.spawn(reader(), name="reader"))
    sim.run(until=max(sim.now, horizon))
    return disk.energy_joules() + ssd.energy_joules(), sim.now


def experiment():
    plain_plan, replica_plan = advisor_part()
    plain_joules, _ = simulate(replicated=False)
    replica_joules, _ = simulate(replicated=True)
    return plain_plan, replica_plan, plain_joules, replica_joules


def test_redundancy_saves_energy(benchmark):
    plain_plan, replica_plan, plain_joules, replica_joules = \
        run_once(benchmark, experiment)
    emit(benchmark,
         "A16: tiering + read replicas (§5.1)",
         ["configuration", "advisor_watts", "metered_kJ_2h"],
         [("authoritative only", round(plain_plan.total_watts, 1),
           round(plain_joules / 1e3, 1)),
          ("with flash replica", round(replica_plan.total_watts, 1),
           round(replica_joules / 1e3, 1))],
         replicas=str(replica_plan.replicas),
         sleeping=str(replica_plan.sleeping_tiers))
    # the advisor predicts a substantial saving and puts the hot
    # table's replica on flash, letting the disk tier sleep
    assert replica_plan.replicas.get("orders_current") == "ssd"
    assert "fast-disks" in replica_plan.sleeping_tiers
    assert replica_plan.total_watts < 0.7 * plain_plan.total_watts
    # the metered simulation agrees: replication more than halves the
    # 2-hour energy, even after paying for the replica copy itself
    assert replica_joules < 0.5 * plain_joules
    # and the advisor's watt ratio roughly tracks the metered ratio
    advisor_ratio = replica_plan.total_watts / plain_plan.total_watts
    metered_ratio = replica_joules / plain_joules
    assert abs(advisor_ratio - metered_ratio) < 0.35