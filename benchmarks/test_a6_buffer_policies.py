"""A6 (§4.3/§5.2): energy-aware buffer replacement.

"Keeping a page in RAM will require energy, proportional to the time
the page is cached ... New caching and replacement policies will be
needed."  Pages living on spinning disk are expensive to re-fetch;
flash pages are nearly free.  Classic LRU treats them alike; the
energy-aware policy preferentially surrenders cheap flash pages and
spends its DRAM on disk pages — cutting total fetch energy for the same
capacity.
"""

import random

from conftest import emit, run_once

from repro.sim import Simulation
from repro.storage.buffer import BufferPool, ReplacementPolicy

N_DISK_PAGES = 60
N_SSD_PAGES = 60
CAPACITY = 40
N_ACCESSES = 6000
DISK_FETCH_JOULES = 0.40   # positioning + transfer on a spinning disk
SSD_FETCH_JOULES = 0.015   # flash read
PAGE_RESIDENCY_WATTS = 0.0001


def make_trace(seed=42):
    """A 80/20-skewed access trace over pages on two device classes."""
    rng = random.Random(seed)
    pages = ([("disk", i) for i in range(N_DISK_PAGES)]
             + [("ssd", i) for i in range(N_SSD_PAGES)])
    hot = pages[::3]  # every third page is hot, mixing both classes
    trace = []
    for _ in range(N_ACCESSES):
        pool = hot if rng.random() < 0.8 else pages
        trace.append(rng.choice(pool))
    return trace


def run_policy(policy, trace):
    sim = Simulation()
    pool = BufferPool(sim, CAPACITY, policy=policy,
                      page_residency_watts=PAGE_RESIDENCY_WATTS)
    fetch_energy = 0.0

    def driver():
        nonlocal fetch_energy
        for key in trace:
            yield sim.timeout(0.05)
            if pool.get(key) is None:
                cost = (DISK_FETCH_JOULES if key[0] == "disk"
                        else SSD_FETCH_JOULES)
                fetch_energy += cost
                pool.put(key, f"page{key}", fetch_energy_joules=cost)

    sim.run(until=sim.spawn(driver()))
    residency_energy = (PAGE_RESIDENCY_WATTS * CAPACITY * sim.now)
    return {
        "policy": policy.value,
        "hit_rate": pool.hit_rate,
        "fetch_energy": fetch_energy,
        "total_energy": fetch_energy + residency_energy,
    }


def sweep():
    trace = make_trace()
    return [run_policy(policy, trace) for policy in ReplacementPolicy]


def test_energy_aware_replacement_cuts_fetch_energy(benchmark):
    rows = run_once(benchmark, sweep)
    emit(benchmark,
         "A6: buffer replacement policies under heterogeneous fetch "
         "energy (§4.3)",
         ["policy", "hit_rate", "fetch_J", "total_J"],
         [(r["policy"], round(r["hit_rate"], 3),
           round(r["fetch_energy"], 1), round(r["total_energy"], 1))
          for r in rows])
    by_policy = {r["policy"]: r for r in rows}
    lru = by_policy["lru"]
    clock = by_policy["clock"]
    aware = by_policy["energy-aware"]
    # the energy-aware policy spends less energy than both classics
    assert aware["total_energy"] < 0.9 * lru["total_energy"]
    assert aware["total_energy"] < 0.9 * clock["total_energy"]
    # it may trade raw hit rate for energy: it is NOT required to have
    # the best hit rate, only the best energy
    assert aware["fetch_energy"] < lru["fetch_energy"]
