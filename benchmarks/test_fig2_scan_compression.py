"""Figure 2: relational scan of ORDERS (5 of 7 attributes) on one 90 W
CPU and three 5 W-aggregate flash SSDs, uncompressed vs. compressed.

Paper's numbers: uncompressed 10 s total / 3.2 s CPU / 338 J;
compressed 5.5 s / 5.1 s CPU / 487 J — "compressed data result in a
faster query by trading CPU cycles for disk bandwidth, but overall
energy consumption increases."
"""

import pytest
from conftest import emit, run_once, run_spec

from repro.runner import ExperimentSpec


def test_figure2_scan_compression(benchmark):
    spec = ExperimentSpec("fig2", profile="flash_scan_node")
    result = run_once(benchmark, lambda: run_spec(spec)).aggregate()
    rows = [(config, round(total, 2), round(cpu, 2), round(joules, 0))
            for config, total, cpu, joules in result.rows()]
    emit(benchmark,
         "Figure 2: uncompressed vs compressed scan (paper: 10s/3.2s/"
         "338J vs 5.5s/5.1s/487J)",
         ["config", "total_s", "cpu_s", "joules"], rows,
         speedup=round(result.speedup, 2),
         energy_ratio=round(result.energy_ratio, 2),
         compression_ratio=round(result.compressed.compression_ratio, 2))

    u, c = result.uncompressed, result.compressed
    # uncompressed configuration is calibrated to the paper exactly
    assert u.total_seconds == pytest.approx(10.0, rel=0.05)
    assert u.cpu_seconds == pytest.approx(3.2, rel=0.05)
    assert u.energy_joules == pytest.approx(338.0, rel=0.05)
    # the compressed scan is roughly 2x faster (paper observed 2x)...
    assert 1.5 < result.speedup < 2.5
    # ...CPU-bound rather than disk-bound...
    assert c.cpu_seconds > 0.9 * c.io_seconds
    assert u.cpu_seconds < 0.5 * u.io_seconds
    # ...and the paper's headline inversion holds: faster but hungrier
    assert result.inversion_holds
    assert 1.15 < result.energy_ratio < 1.7
