"""A4 (§4.2): consolidate data onto fewer spindles, spin down the rest.

"Buffer and storage management policies that move data across memory
and disks to consolidate space-shared resources ... enable powering
down unused hardware at the expense of data movement."  The partitioner
packs partitions onto the fewest disks whose bandwidth covers the load;
the migration executor performs the moves and meters them; the plan
pays for itself once the idle period exceeds the break-even.
"""

from conftest import emit, run_once

from repro.consolidation import execute_consolidation
from repro.hardware.profiles import commodity
from repro.sim import Simulation
from repro.storage.partitioner import DeviceSlot, Partition, Partitioner
from repro.units import MB


def run_experiment():
    sim = Simulation()
    server, _array = commodity(sim, n_disks=6)
    disks = {d.name: d for d in server.storage if d.name.startswith("hdd")}
    slots = [DeviceSlot(name, d.spec.capacity_bytes,
                        d.spec.bandwidth_bytes_per_s,
                        d.spec.idle_watts, d.spec.active_watts)
             for name, d in disks.items()]
    # six lukewarm partitions, one per disk; all fit on two disks
    parts = [Partition(f"p{i}", 400 * MB, read_bytes_per_s=20 * MB)
             for i in range(6)]
    current = {f"p{i}": f"hdd{i}" for i in range(6)}
    plan = Partitioner(slots).plan_consolidation(parts, current)
    outcome = execute_consolidation(sim, plan, disks)

    # after migrating, idle through a quiet period and meter the savings
    idle_horizon = 4 * outcome.breakeven_seconds()
    t_mig_end = sim.now
    sim.run(until=t_mig_end + idle_horizon)
    consolidated_idle = sum(
        d.energy_joules(t_mig_end, sim.now) for d in disks.values())
    baseline_idle = sum(d.spec.idle_watts for d in disks.values()) \
        * idle_horizon
    return plan, outcome, consolidated_idle, baseline_idle, idle_horizon


def test_consolidation_pays_off_past_breakeven(benchmark):
    plan, outcome, consolidated, baseline, horizon = \
        run_once(benchmark, run_experiment)
    net = (baseline - consolidated) - outcome.migration_energy_joules
    emit(benchmark,
         "A4: pack partitions, spin down spindles (§4.2)",
         ["quantity", "value"],
         [("disks kept", len(plan.devices_kept)),
          ("disks spun down", len(outcome.released_devices)),
          ("bytes moved (MB)", round(outcome.moved_bytes / MB, 0)),
          ("migration energy (J)", round(outcome.migration_energy_joules, 1)),
          ("metered break-even (s)", round(outcome.breakeven_seconds(), 1)),
          ("idle horizon (s)", round(horizon, 1)),
          ("idle energy, consolidated (J)", round(consolidated, 1)),
          ("idle energy, baseline (J)", round(baseline, 1)),
          ("net saving (J)", round(net, 1))])
    # packing found a real reduction
    assert len(plan.devices_kept) < 6
    assert len(outcome.released_devices) >= 3
    # the migration had a real, finite cost and break-even
    assert outcome.migration_energy_joules > 0
    assert 0 < outcome.breakeven_seconds() < float("inf")
    # past the break-even, consolidation is net-positive
    assert consolidated < baseline
    assert net > 0
