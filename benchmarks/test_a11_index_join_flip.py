"""A11 (§4.1): the paper's hash-join vs. nested-loop example, verbatim.

"Consider the hash-join operator which has been known to outperform
nested-loop join in many occasions, but it relies on using a large
chunk of memory for building and maintaining the hash table.  From a
power perspective, these are expensive operations and may tip the
balance in favor of nested-loop join in more occasions than before."

With a B+tree on the inner join key, the nested loop probes an index
instead of rescanning (A1 showed the unindexed variant is hopeless).
We sweep the outer cardinality on an FB-DIMM node and record which
operator each objective picks, scoring energy with the paper's busy-time
convention (Figure 2's accounting).  The hash join burns the 80 W CPU
building and probing and holds a DRAM grant; the index nested loop
mostly waits on 2 W flash.  Near the time break-even the energy
objective therefore keeps choosing the nested loop at outer sizes where
the time objective has already switched to hash: the paper's "more
occasions" made measurable.
"""

from conftest import emit, run_once

from repro.hardware.cpu import Cpu, CpuSpec
from repro.hardware.memory import Dram, DramSpec
from repro.hardware.raid import RaidArray
from repro.hardware.server import Server
from repro.hardware.ssd import FlashSsd, SsdSpec
from repro.optimizer import CostModel, Objective, score
from repro.relational.operators import (
    HashJoin,
    IndexNestedLoopJoin,
    TableScan,
)
from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType
from repro.sim import Simulation
from repro.storage.manager import StorageManager
from repro.units import GB, GHZ, GIB, MB

OUTER_SIZES = [8, 32, 128, 512, 2048, 8192]
SCALE = 2000.0


def fbdimm_server(sim):
    cpu = Cpu(sim, CpuSpec(cores=4, frequency_hz=2.4 * GHZ,
                           idle_watts=20.0, peak_watts=80.0,
                           cstate_watts=3.0))
    dram = Dram(sim, DramSpec(capacity_bytes=16 * GIB,
                              background_watts_per_gib=1.0,
                              allocated_watts_per_gib=9.0,
                              bandwidth_bytes_per_s=8 * GB,
                              rank_bytes=2 * GIB))
    ssds = [FlashSsd(sim, SsdSpec(name=f"s{i}", capacity_bytes=200 * GB,
                                  read_bandwidth_bytes_per_s=120 * MB,
                                  read_watts=2.0, write_watts=2.5,
                                  idle_watts=0.1)) for i in range(2)]
    server = Server(sim, "fbdimm-node", cpu, dram, ssds, base_watts=30.0)
    return server, RaidArray(sim, ssds, name="a0")


def sweep():
    sim = Simulation()
    server, array = fbdimm_server(sim)
    storage = StorageManager(sim)
    inner = storage.create_table(
        TableSchema("fact", [
            Column("fk", DataType.INT64, nullable=False),
            Column("fv", DataType.FLOAT64, nullable=False),
        ]), layout="row", placement=array)
    inner.load([(i, float(i)) for i in range(30_000)])
    inner.create_index("fk", clustered=True)
    model = CostModel(server, scale=SCALE)
    rows = []
    for n in OUTER_SIZES:
        outer = storage.create_table(
            TableSchema(f"dim_{n}", [
                Column(f"dk_{n}", DataType.INT64, nullable=False),
            ]), layout="row", placement=array)
        outer.load([((i * 7919) % 30_000,) for i in range(n)])
        key = f"dk_{n}"
        inlj_cost = model.cost(IndexNestedLoopJoin(
            TableScan(outer), inner, "fk", key))
        hash_cost = model.cost(HashJoin(
            TableScan(inner), TableScan(outer), ["fk"], [key]))
        rows.append({
            "outer": n,
            "inlj_time": score(inlj_cost, Objective.TIME),
            "hash_time": score(hash_cost, Objective.TIME),
            "inlj_energy": score(inlj_cost, Objective.ENERGY_ATTRIBUTED),
            "hash_energy": score(hash_cost, Objective.ENERGY_ATTRIBUTED),
        })
    return rows


def largest_inlj_win(rows, kind):
    best = 0
    for row in rows:
        if row[f"inlj_{kind}"] < row[f"hash_{kind}"]:
            best = row["outer"]
    return best


def test_energy_keeps_nested_loop_attractive_longer(benchmark):
    rows = run_once(benchmark, sweep)
    emit(benchmark,
         "A11: index NLJ vs hash join break-even, TIME vs ENERGY (§4.1)",
         ["outer_rows", "inlj_s", "hash_s", "inlj_J", "hash_J",
          "time_pick", "energy_pick"],
         [(r["outer"],
           round(r["inlj_time"], 2), round(r["hash_time"], 2),
           round(r["inlj_energy"], 1), round(r["hash_energy"], 1),
           "NLJ" if r["inlj_time"] < r["hash_time"] else "hash",
           "NLJ" if r["inlj_energy"] < r["hash_energy"] else "hash")
          for r in rows],
         nlj_wins_up_to_time=largest_inlj_win(rows, "time"),
         nlj_wins_up_to_energy=largest_inlj_win(rows, "energy"))
    # small outers: nested loop wins under both objectives
    first = rows[0]
    assert first["inlj_time"] < first["hash_time"]
    assert first["inlj_energy"] < first["hash_energy"]
    # large outers: hash join wins under both
    last = rows[-1]
    assert last["hash_time"] < last["inlj_time"]
    assert last["hash_energy"] < last["inlj_energy"]
    # the paper's tip: the energy break-even sits at a strictly larger
    # outer size than the time break-even
    assert largest_inlj_win(rows, "energy") > \
        largest_inlj_win(rows, "time")