"""Disk speed control (paper §5.3 "multi-speed drives", [ZCT+05]).

Hibernator's idea: rather than binary spin-up/spin-down, serve light
load at a lower RPM — less bandwidth, much less spindle power (drag
grows superlinearly with RPM).  :class:`SpeedGovernor` picks, per
epoch, the slowest offered speed whose bandwidth still covers the
observed demand with headroom, and only shifts when the change is worth
its transition cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Sequence

from repro.errors import ConsolidationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.disk import HardDisk


@dataclass
class SpeedDecision:
    """One epoch's choice."""

    epoch: int
    demand_fraction: float
    chosen_speed: float
    changed: bool


class SpeedGovernor:
    """Per-epoch speed selection for a set of multi-speed disks."""

    def __init__(self, disks: Sequence["HardDisk"],
                 headroom: float = 1.25,
                 min_epoch_seconds: float = 60.0) -> None:
        if not disks:
            raise ConsolidationError("governor needs at least one disk")
        if headroom < 1.0:
            raise ConsolidationError("headroom must be >= 1.0")
        if min_epoch_seconds <= 0:
            raise ConsolidationError("epoch must be positive")
        levels = set(disks[0].spec.speed_levels)
        for disk in disks[1:]:
            if set(disk.spec.speed_levels) != levels:
                raise ConsolidationError(
                    "governor requires homogeneous speed levels")
        self.disks = list(disks)
        self.headroom = headroom
        self.min_epoch_seconds = min_epoch_seconds
        self.decisions: list[SpeedDecision] = []

    def choose_speed(self, demand_fraction: float) -> float:
        """Slowest offered speed covering ``demand_fraction`` of full
        bandwidth, with headroom."""
        if demand_fraction < 0:
            raise ConsolidationError("negative demand")
        required = min(1.0, demand_fraction * self.headroom)
        candidates = sorted(self.disks[0].spec.speed_levels)
        for level in candidates:
            if level >= required:
                return level
        return candidates[-1]

    def worth_changing(self, current: float, target: float,
                       epoch_seconds: float) -> bool:
        """Does shifting save more than the transition costs?

        Compares idle power at the two speeds over the epoch against the
        shift's energy (both directions, pessimistically).
        """
        if current == target:
            return False
        spec = self.disks[0].spec
        saving_watts = abs(spec.power_at_speed(spec.idle_watts, current)
                           - spec.power_at_speed(spec.idle_watts, target))
        round_trip = 2 * spec.speed_change_joules
        return saving_watts * epoch_seconds > round_trip

    def apply(self, demand_fraction: float,
              epoch_seconds: float) -> Generator:
        """Set every disk for the coming epoch (process)."""
        if epoch_seconds < self.min_epoch_seconds:
            raise ConsolidationError(
                f"epoch {epoch_seconds}s below the governor's minimum "
                f"{self.min_epoch_seconds}s")
        target = self.choose_speed(demand_fraction)
        current = self.disks[0].speed_fraction
        change = self.worth_changing(current, target, epoch_seconds)
        self.decisions.append(SpeedDecision(
            epoch=len(self.decisions), demand_fraction=demand_fraction,
            chosen_speed=target if change else current, changed=change))
        if not change:
            return
        shifts = [self.disks[0].sim.spawn(disk.set_speed(target),
                                          name=f"shift-{disk.name}")
                  for disk in self.disks]
        yield self.disks[0].sim.all_of(shifts)
