"""Cluster-level consolidation (paper §2.4, [TWM+08] analogue).

Servers are not energy proportional — but an *ensemble* can approximate
proportionality by migrating load onto fewer nodes and powering the rest
off.  :func:`simulate_cluster` plays a load trace against three
policies and reports energy, the effective power-vs-load curve, and its
proportionality index.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import ConsolidationError
from repro.hardware.proportionality import proportionality_index


class ClusterPolicy(enum.Enum):
    """How the ensemble reacts to load."""

    ALL_ON = "all-on"                  # every server up, load spread thin
    CONSOLIDATE = "consolidate"        # pack load, power off the rest
    CONSOLIDATE_LAZY = "consolidate-lazy"  # packing with +1 server headroom


@dataclass(frozen=True)
class ServerPowerModel:
    """Utilization-linear power curve of one node."""

    idle_watts: float = 200.0
    peak_watts: float = 350.0
    #: energy to boot/shut a node once (migration + power cycling)
    cycle_joules: float = 20_000.0

    def power(self, utilization: float) -> float:
        if not 0.0 <= utilization <= 1.0 + 1e-9:
            raise ConsolidationError(f"utilization {utilization} out of range")
        return self.idle_watts + \
            (self.peak_watts - self.idle_watts) * min(1.0, utilization)


@dataclass
class ClusterReport:
    """Outcome of one policy over a trace."""

    policy: ClusterPolicy
    energy_joules: float
    cycle_energy_joules: float
    server_hours: float
    #: (cluster load fraction, cluster power) samples for the EP curve
    power_curve: list[tuple[float, float]] = field(default_factory=list)

    @property
    def total_energy_joules(self) -> float:
        return self.energy_joules + self.cycle_energy_joules

    def proportionality(self) -> float:
        """EP index of the observed cluster power curve."""
        points = sorted(set(self.power_curve))
        if len(points) < 2 or points[0][0] > 0.0 or points[-1][0] < 1.0:
            # extend with the trivial endpoints implied by the policy
            peak = max(p for _, p in points) if points else 1.0
            extended = dict(points)
            extended.setdefault(0.0, min(p for _, p in points))
            extended.setdefault(1.0, peak)
            points = sorted(extended.items())
        loads = [l for l, _ in points]
        powers = [p for _, p in points]
        return proportionality_index(loads, powers)


def diurnal_trace(hours: int = 24, peak_fraction: float = 0.9,
                  trough_fraction: float = 0.15) -> list[float]:
    """A smooth day/night load curve (fraction of cluster capacity)."""
    if not 0 <= trough_fraction <= peak_fraction <= 1:
        raise ConsolidationError("need 0 <= trough <= peak <= 1")
    mid = (peak_fraction + trough_fraction) / 2
    amplitude = (peak_fraction - trough_fraction) / 2
    return [mid + amplitude * math.sin(2 * math.pi * (h - 9) / 24)
            for h in range(hours)]


def simulate_cluster(trace: Sequence[float], n_servers: int,
                     policy: ClusterPolicy,
                     model: ServerPowerModel = ServerPowerModel(),
                     epoch_seconds: float = 3600.0) -> ClusterReport:
    """Play a load trace (fractions of total cluster capacity)."""
    if n_servers < 1:
        raise ConsolidationError("need at least one server")
    if any(not 0.0 <= load <= 1.0 for load in trace):
        raise ConsolidationError("trace loads must be fractions in [0, 1]")
    energy = 0.0
    cycles = 0
    server_hours = 0.0
    curve = []
    previous_active = n_servers
    for load in trace:
        demand = load * n_servers  # server-equivalents of work
        if policy is ClusterPolicy.ALL_ON:
            active = n_servers
        elif policy is ClusterPolicy.CONSOLIDATE:
            active = max(1, math.ceil(demand))
        else:
            active = min(n_servers, max(1, math.ceil(demand) + 1))
        utilization = min(1.0, demand / active)
        power = active * model.power(utilization)
        energy += power * epoch_seconds
        cycles += abs(active - previous_active)
        previous_active = active
        server_hours += active * epoch_seconds / 3600.0
        curve.append((load, power))
    return ClusterReport(
        policy=policy,
        energy_joules=energy,
        cycle_energy_joules=cycles * model.cycle_joules,
        server_hours=server_hours,
        power_curve=curve,
    )
