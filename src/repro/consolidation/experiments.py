"""Runner-facing entry point for the batching scheduler (A3, §4.2).

:func:`batching_point` wraps :func:`~repro.consolidation.scheduler.
run_fifo` / :func:`run_batched` as a registered experiment, so the
FIFO-vs-batching energy/latency trade runs through the spec API::

    python -m repro.runner run batching --window_seconds 60,120,240

Each point returns a :class:`~repro.consolidation.scheduler.
ScheduleReport`, which serializes/caches through the unified report
protocol like every other per-point report.
"""

from __future__ import annotations

from repro.consolidation.scheduler import (ScheduleReport, poisson_arrivals,
                                           run_batched, run_fifo)
from repro.errors import ConsolidationError


def batching_point(policy: str = "batched",
                   window_seconds: float = 120.0,
                   queries: int = 12,
                   rate_per_s: float = 1.0 / 45.0,
                   table_rows: int = 2000,
                   scale: float = 200.0,
                   tail_seconds: float = 300.0,
                   seed: int = 0) -> ScheduleReport:
    """One scheduling-policy run over a sparse Poisson arrival stream.

    Builds the A3 rig — a commodity server whose RAID array can spin
    down, a small row table, full-scan queries — and plays ``queries``
    arrivals at ``rate_per_s`` under ``policy`` (``"fifo"`` or
    ``"batched"``).  Both policies are metered over the same horizon
    (last arrival + ``tail_seconds``), so their Joules compare fairly.
    """
    from repro.hardware.profiles import commodity
    from repro.relational.executor import ExecutionContext, Executor
    from repro.relational.operators import TableScan
    from repro.relational.schema import Column, TableSchema
    from repro.relational.types import DataType
    from repro.sim import Simulation
    from repro.storage.manager import StorageManager

    if policy not in ("fifo", "batched"):
        raise ConsolidationError(
            f"unknown scheduling policy {policy!r}; expected 'fifo' or "
            "'batched'")
    sim = Simulation()
    server, array = commodity(sim)
    storage = StorageManager(sim)
    table = storage.create_table(
        TableSchema("t", [Column("k", DataType.INT64, nullable=False)]),
        layout="row", placement=array)
    table.load([(i,) for i in range(table_rows)])
    executor = Executor(ExecutionContext(sim=sim, server=server,
                                         scale=scale))
    arrivals = poisson_arrivals([lambda: TableScan(table)], queries,
                                rate_per_s=rate_per_s, seed=seed)
    horizon = max(a.at_seconds for a in arrivals) + tail_seconds
    if policy == "fifo":
        return run_fifo(sim, server, executor, arrivals,
                        tail_seconds=horizon - sim.now)
    return run_batched(sim, server, executor, arrivals, array,
                       window_seconds=window_seconds,
                       tail_seconds=horizon - sim.now)
