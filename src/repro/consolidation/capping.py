"""Power-capped query admission (paper §2.2 provisioning + §5.2).

Racks "are provisioned to deliver a certain capacity in order to
properly power and cool the servers" — exceeding the provisioned cap is
not an option, so the scheduler must keep the server's *instantaneous*
power under it.  :class:`PowerCappedScheduler` estimates each query's
incremental peak power from the cost model's device usage and delays
admission until the committed power fits the cap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from repro.errors import ConsolidationError
from repro.hardware.disk import HardDisk
from repro.relational.executor import Executor, QueryResult
from repro.relational.operators import Operator
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover
    from repro.optimizer.cost import CostModel

PlanBuilder = Callable[[], Operator]


@dataclass
class CappedRunReport:
    """Outcome of a power-capped batch."""

    cap_watts: float
    completed: int
    makespan_seconds: float
    energy_joules: float
    peak_power_watts: float
    mean_queue_delay_seconds: float
    results: list[QueryResult] = field(default_factory=list)

    @property
    def queries_per_hour(self) -> float:
        if self.makespan_seconds <= 0:
            return 0.0
        return self.completed * 3600.0 / self.makespan_seconds


class PowerCappedScheduler:
    """Admission control keeping committed power under a cap."""

    def __init__(self, executor: Executor, cost_model: "CostModel",
                 cap_watts: float) -> None:
        server = executor.ctx.server
        self.floor_watts = server.idle_power_watts()
        if cap_watts <= self.floor_watts:
            raise ConsolidationError(
                f"cap {cap_watts:.0f} W is below the server's idle floor "
                f"{self.floor_watts:.0f} W")
        self.executor = executor
        self.cost_model = cost_model
        self.cap_watts = cap_watts

    # -- estimation ---------------------------------------------------------
    def incremental_watts(self, plan: Operator) -> float:
        """Peak power a query adds above the idle floor.

        Conservative: the CPU's share for the widest pipeline plus the
        active-idle delta of every storage device the plan touches.
        """
        server = self.executor.ctx.server
        cost = self.cost_model.cost(plan)
        cpu = server.cpu
        degree = max(p.parallelism for p in cost.pipelines)
        degree = min(degree, cpu.spec.cores)
        cpu_extra = (cpu.spec.peak_watts - cpu.spec.idle_watts) \
            * degree / cpu.spec.cores
        arrays = {id(array): array
                  for p in cost.pipelines for array, _b, _r in p.arrays}
        storage_extra = 0.0
        for array in arrays.values():
            for member in array.members:
                if isinstance(member, HardDisk):
                    storage_extra += (member.spec.active_watts
                                      - member.spec.idle_watts)
                else:
                    storage_extra += (member.spec.read_watts
                                      - member.spec.idle_watts)
        return cpu_extra + storage_extra

    # -- execution -----------------------------------------------------------
    def run_batch(self, builders: Sequence[PlanBuilder]) -> CappedRunReport:
        """Admit queries as power headroom allows; run to completion."""
        if not builders:
            raise ConsolidationError("empty batch")
        sim = self.executor.ctx.sim
        headroom_total = self.cap_watts - self.floor_watts
        # model power as a discrete resource in watt "slots"
        slot_watts = 1.0
        slots = Resource(sim, capacity=max(1, int(headroom_total)),
                         name="power-cap")
        # FCFS admission lock: grants are multi-slot, so admission must
        # be atomic or two half-admitted queries could deadlock
        admission = Resource(sim, capacity=1, name="admission")
        delays: list[float] = []
        results: list[QueryResult] = []
        start = sim.now
        meter = self.executor.ctx.server.meter

        def admit_and_run(builder: PlanBuilder):
            plan = builder()
            need = max(1, min(slots.capacity,
                              int(self.incremental_watts(plan)
                                  / slot_watts)))
            queued_at = sim.now
            yield admission.acquire()
            grants = []
            try:
                for _ in range(need):
                    request = slots.acquire()
                    yield request
                    grants.append(request)
            finally:
                admission.release()
            delays.append(sim.now - queued_at)
            try:
                result = yield from self.executor.run_process(plan)
                results.append(result)
            finally:
                for _ in grants:
                    slots.release()

        processes = [sim.spawn(admit_and_run(b), name=f"capped-q{i}")
                     for i, b in enumerate(builders)]
        sim.run(until=sim.all_of(processes))
        end = sim.now
        peak = max(
            meter.average_power_watts(t, min(t + 1.0, end))
            for t in _second_marks(start, end))
        return CappedRunReport(
            cap_watts=self.cap_watts,
            completed=len(results),
            makespan_seconds=end - start,
            energy_joules=meter.energy_joules(start, end),
            peak_power_watts=peak,
            mean_queue_delay_seconds=(sum(delays) / len(delays)
                                      if delays else 0.0),
            results=results,
        )


def _second_marks(start: float, end: float, max_samples: int = 400):
    """Sampling marks for the peak-power estimate: fine enough to see
    concurrency bursts, bounded for long runs."""
    if end <= start:
        yield start
        return
    step = max(0.01, (end - start) / max_samples)
    t = start
    while t < end:
        yield t
        t += step
