"""Batching query scheduler: consolidation in time (paper §4.2).

"We expect to see workload management policies that encourage
identifiable periods of low and high activity — perhaps batching
requests at the cost of increased latency."  :func:`run_fifo` executes
queries as they arrive (the disks never idle long enough to sleep);
:func:`run_batched` holds arrivals for a window, runs them back to back,
and spins the array down between batches — saving energy if the windows
beat the spin-down break-even.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

from repro.errors import ConsolidationError
from repro.relational.executor import Executor
from repro.relational.operators import Operator

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.raid import RaidArray
    from repro.hardware.server import Server
    from repro.sim.engine import Simulation

PlanBuilder = Callable[[], Operator]


@dataclass(frozen=True)
class Arrival:
    """One query arrival."""

    at_seconds: float
    builder: PlanBuilder


def poisson_arrivals(mix: Sequence[PlanBuilder], n: int,
                     rate_per_s: float,
                     seed: int | None = None) -> list[Arrival]:
    """Draw ``n`` Poisson arrivals cycling through a query mix.

    ``seed`` defaults to the runner's
    :data:`~repro.runner.spec.DEFAULT_SEED`, so an unseeded stream and
    a default registered experiment point draw the same arrivals.
    """
    if rate_per_s <= 0:
        raise ConsolidationError("arrival rate must be positive")
    if not mix:
        raise ConsolidationError("query mix cannot be empty")
    if seed is None:
        from repro.runner.spec import DEFAULT_SEED
        seed = DEFAULT_SEED
    rng = random.Random(seed)
    out = []
    t = 0.0
    for i in range(n):
        t += rng.expovariate(rate_per_s)
        out.append(Arrival(t, mix[i % len(mix)]))
    return out


@dataclass
class ScheduleReport:
    """Outcome of one scheduling policy run."""

    policy: str
    completed: int
    makespan_seconds: float
    energy_joules: float
    mean_latency_seconds: float
    max_latency_seconds: float
    spin_down_count: int = 0
    latencies: list[float] = field(default_factory=list)

    @property
    def average_power_watts(self) -> float:
        if self.makespan_seconds <= 0:
            raise ConsolidationError("empty run: average power undefined")
        return self.energy_joules / self.makespan_seconds

    @property
    def energy_efficiency(self) -> float:
        """Queries per Joule; empty runs raise, like
        :func:`repro.core.metrics.energy_efficiency`."""
        from repro.core.metrics import energy_efficiency
        return energy_efficiency(float(self.completed), self.energy_joules)

    def to_dict(self) -> dict:
        return {
            "policy": self.policy,
            "completed": self.completed,
            "makespan_seconds": self.makespan_seconds,
            "energy_joules": self.energy_joules,
            "mean_latency_seconds": self.mean_latency_seconds,
            "max_latency_seconds": self.max_latency_seconds,
            "spin_down_count": self.spin_down_count,
            "latencies": list(self.latencies),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScheduleReport":
        return cls(**dict(data))


def run_fifo(sim: "Simulation", server: "Server", executor: Executor,
             arrivals: Sequence[Arrival],
             tail_seconds: float = 0.0) -> ScheduleReport:
    """Execute each query as it arrives (queuing on the hardware).

    ``tail_seconds`` extends metering past the last completion (an idle
    tail makes the spin-down comparison fair: both policies are measured
    over the same wall-clock window by passing the same tail).
    """
    latencies: list[float] = []

    def client(arrival: Arrival):
        yield sim.timeout(arrival.at_seconds - sim.now)
        started = sim.now
        yield from executor.run_process(arrival.builder())
        latencies.append(sim.now - started)

    start = sim.now
    ordered = sorted(arrivals, key=lambda a: a.at_seconds)
    # FIFO service: a single dispatcher runs queries in arrival order.
    def dispatcher():
        for arrival in ordered:
            if sim.now < arrival.at_seconds:
                yield sim.timeout(arrival.at_seconds - sim.now)
            issued = sim.now
            yield from executor.run_process(arrival.builder())
            latencies.append(sim.now - issued)

    sim.run(until=sim.spawn(dispatcher(), name="fifo-dispatcher"))
    if tail_seconds:
        sim.run(until=sim.now + tail_seconds)
    end = sim.now
    return _report("fifo", sim, server, latencies, start, end, 0)


def run_batched(sim: "Simulation", server: "Server", executor: Executor,
                arrivals: Sequence[Arrival], array: "RaidArray",
                window_seconds: float,
                spin_down_between: bool = True,
                tail_seconds: float = 0.0) -> ScheduleReport:
    """Hold arrivals for up to ``window_seconds``, run them as a batch,
    and optionally spin the array down between batches."""
    if window_seconds <= 0:
        raise ConsolidationError("batch window must be positive")
    latencies: list[float] = []
    spin_downs = 0
    ordered = sorted(arrivals, key=lambda a: a.at_seconds)
    start = sim.now

    def dispatcher():
        nonlocal spin_downs
        i = 0
        while i < len(ordered):
            # sleep until the batch window containing arrival i closes
            window_end = ordered[i].at_seconds + window_seconds
            if sim.now < window_end:
                yield sim.timeout(window_end - sim.now)
            batch = []
            while i < len(ordered) and ordered[i].at_seconds <= sim.now:
                batch.append(ordered[i])
                i += 1
            yield from array.spin_up()
            for arrival in batch:
                yield from executor.run_process(arrival.builder())
                latencies.append(sim.now - arrival.at_seconds)
            if spin_down_between:
                yield from array.spin_down()
                spin_downs += 1

    sim.run(until=sim.spawn(dispatcher(), name="batch-dispatcher"))
    if tail_seconds:
        sim.run(until=sim.now + tail_seconds)
    end = sim.now
    return _report("batched", sim, server, latencies, start, end,
                   spin_downs)


def _report(policy: str, sim: "Simulation", server: "Server",
            latencies: list[float], start: float, end: float,
            spin_downs: int) -> ScheduleReport:
    if not latencies:
        raise ConsolidationError("no queries completed")
    return ScheduleReport(
        policy=policy,
        completed=len(latencies),
        makespan_seconds=end - start,
        energy_joules=server.meter.energy_joules(start, end),
        mean_latency_seconds=sum(latencies) / len(latencies),
        max_latency_seconds=max(latencies),
        spin_down_count=spin_downs,
        latencies=latencies,
    )
