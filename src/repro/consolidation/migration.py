"""Execute consolidation plans against simulated devices (paper §4.2).

Takes a :class:`~repro.storage.partitioner.ConsolidationPlan`, performs
the planned data movement on the simulated disks (reads from sources,
writes to targets), spins the released spindles down, and reports what
the migration actually cost — so callers can check the planner's
break-even arithmetic against metered reality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.errors import ConsolidationError
from repro.storage.partitioner import ConsolidationPlan

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.disk import HardDisk
    from repro.sim.engine import Simulation


@dataclass
class MigrationOutcome:
    """Metered results of executing a consolidation plan."""

    moved_bytes: int
    migration_seconds: float
    migration_energy_joules: float
    released_devices: list[str]
    idle_savings_watts: float

    def breakeven_seconds(self) -> float:
        """Metered time for the new placement to repay the migration."""
        if self.idle_savings_watts <= 0:
            return float("inf")
        return self.migration_energy_joules / self.idle_savings_watts


def execute_consolidation(sim: "Simulation",
                          plan: ConsolidationPlan,
                          devices: Mapping[str, "HardDisk"]
                          ) -> MigrationOutcome:
    """Run the plan's moves concurrently, then spin down released disks."""
    for move in plan.moves:
        for name in (move.source, move.target):
            if name not in devices:
                raise ConsolidationError(f"plan references unknown device "
                                         f"{name!r}")
    for name in plan.devices_released:
        if name not in devices:
            raise ConsolidationError(f"plan releases unknown device "
                                     f"{name!r}")
    start = sim.now
    energy_before = sum(d.energy_joules(0.0, start)
                        for d in devices.values())

    def mover(move):
        yield from devices[move.source].read(move.size_bytes,
                                             stream=f"mig-{move.partition}")
        yield from devices[move.target].write(move.size_bytes,
                                              stream=f"mig-{move.partition}")

    movers = [sim.spawn(mover(m), name=f"move-{m.partition}")
              for m in plan.moves]
    if movers:
        sim.run(until=sim.all_of(movers))
    spinners = [sim.spawn(devices[name].spin_down(), name=f"down-{name}")
                for name in plan.devices_released]
    if spinners:
        sim.run(until=sim.all_of(spinners))
    end = sim.now
    energy_after = sum(d.energy_joules(0.0, end) for d in devices.values())
    savings = sum(devices[name].spec.idle_watts
                  - devices[name].spec.standby_watts
                  for name in plan.devices_released)
    return MigrationOutcome(
        moved_bytes=sum(m.size_bytes for m in plan.moves),
        migration_seconds=end - start,
        migration_energy_joules=energy_after - energy_before,
        released_devices=list(plan.devices_released),
        idle_savings_watts=savings,
    )
