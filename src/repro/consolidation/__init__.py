"""Resource-use consolidation (paper §4.2).

Shift computations and relocate data "to consolidate resource use both
in time and space, to facilitate powering down individual hardware
components":

* :mod:`~repro.consolidation.scheduler` — consolidation **in time**:
  batch queries to lengthen device idle periods and spin disks down
  between batches.
* :mod:`~repro.consolidation.migration` — consolidation **in space**:
  execute a migration plan that packs data onto fewer spindles.
* :mod:`~repro.consolidation.cluster` — consolidation **across nodes**:
  approximate energy proportionality at the ensemble level by powering
  whole servers off ([TWM+08]-style).
"""

from repro.consolidation.scheduler import (
    Arrival,
    ScheduleReport,
    poisson_arrivals,
    run_batched,
    run_fifo,
)
from repro.consolidation.migration import MigrationOutcome, execute_consolidation
from repro.consolidation.speed import SpeedGovernor
from repro.consolidation.cluster import (
    ClusterPolicy,
    ClusterReport,
    diurnal_trace,
    simulate_cluster,
)

__all__ = [
    "Arrival",
    "ClusterPolicy",
    "ClusterReport",
    "MigrationOutcome",
    "ScheduleReport",
    "SpeedGovernor",
    "diurnal_trace",
    "execute_consolidation",
    "poisson_arrivals",
    "run_batched",
    "run_fifo",
    "simulate_cluster",
]
