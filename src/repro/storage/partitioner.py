"""Partition placement and consolidation planning.

Two of the paper's knobs live here:

* Figure 1's knob — "repartitioning our database across fewer disks" —
  is :meth:`Partitioner.plan_repartition`, which prices the data movement
  the paper says must be weighed against the efficiency gain.
* §4.2's consolidation — "move data across resources so unused hardware
  can be powered down" — is :meth:`Partitioner.plan_consolidation`,
  which packs partitions onto the fewest devices whose bandwidth still
  covers the observed access rates, and prices the migration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import ConsolidationError


@dataclass(frozen=True)
class Partition:
    """A unit of placeable data with an observed access rate."""

    name: str
    size_bytes: int
    read_bytes_per_s: float = 0.0

    def __post_init__(self) -> None:
        if self.size_bytes < 0 or self.read_bytes_per_s < 0:
            raise ConsolidationError(f"partition {self.name!r}: negative size "
                                     "or rate")


@dataclass(frozen=True)
class DeviceSlot:
    """A placement target: capacity, bandwidth, and power if kept on."""

    name: str
    capacity_bytes: int
    bandwidth_bytes_per_s: float
    idle_watts: float
    active_watts: float

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.bandwidth_bytes_per_s <= 0:
            raise ConsolidationError(
                f"device {self.name!r}: capacity/bandwidth must be positive")


@dataclass
class Move:
    """One planned data movement."""

    partition: str
    source: str
    target: str
    size_bytes: int


@dataclass
class RepartitionPlan:
    """The cost of changing a striping width (Figure 1's maintenance cost)."""

    old_width: int
    new_width: int
    bytes_moved: int
    estimated_seconds: float
    estimated_joules: float


@dataclass
class ConsolidationPlan:
    """Placement after consolidation, plus what it costs and saves."""

    assignments: dict[str, str]           # partition -> device
    moves: list[Move] = field(default_factory=list)
    devices_kept: list[str] = field(default_factory=list)
    devices_released: list[str] = field(default_factory=list)
    migration_seconds: float = 0.0
    migration_joules: float = 0.0
    idle_savings_watts: float = 0.0

    def breakeven_seconds(self) -> float:
        """How long the new placement must hold to repay the migration."""
        if self.idle_savings_watts <= 0:
            return float("inf")
        return self.migration_joules / self.idle_savings_watts


class Partitioner:
    """Placement planner over a homogeneous device set."""

    def __init__(self, devices: Sequence[DeviceSlot]) -> None:
        if not devices:
            raise ConsolidationError("need at least one device")
        names = [d.name for d in devices]
        if len(set(names)) != len(names):
            raise ConsolidationError("duplicate device names")
        self.devices = list(devices)
        self._by_name = {d.name: d for d in devices}

    # -- striping -----------------------------------------------------------
    def stripe(self, total_bytes: int, width: int) -> dict[str, int]:
        """Spread ``total_bytes`` evenly over the first ``width`` devices."""
        if not 1 <= width <= len(self.devices):
            raise ConsolidationError(
                f"width {width} outside 1..{len(self.devices)}")
        if total_bytes < 0:
            raise ConsolidationError("negative data size")
        share, remainder = divmod(total_bytes, width)
        out = {}
        for i, device in enumerate(self.devices[:width]):
            size = share + (1 if i < remainder else 0)
            if size > device.capacity_bytes:
                raise ConsolidationError(
                    f"device {device.name!r} cannot hold {size} bytes")
            out[device.name] = size
        return out

    def plan_repartition(self, total_bytes: int, old_width: int,
                         new_width: int) -> RepartitionPlan:
        """Price restriping from ``old_width`` to ``new_width`` devices.

        Every byte is read from the old layout and written to the new one;
        reads and writes proceed at the aggregate bandwidth of their side,
        the slower side dominating.  Energy charges active power on both
        device sets for that duration.
        """
        if total_bytes < 0:
            raise ConsolidationError("negative data size")
        for width in (old_width, new_width):
            if not 1 <= width <= len(self.devices):
                raise ConsolidationError(
                    f"width {width} outside 1..{len(self.devices)}")
        self.stripe(total_bytes, new_width)  # validates capacity
        if old_width == new_width or total_bytes == 0:
            return RepartitionPlan(old_width, new_width, 0, 0.0, 0.0)
        read_bw = sum(d.bandwidth_bytes_per_s
                      for d in self.devices[:old_width])
        write_bw = sum(d.bandwidth_bytes_per_s
                       for d in self.devices[:new_width])
        seconds = total_bytes / min(read_bw, write_bw)
        active = (sum(d.active_watts for d in self.devices[:old_width])
                  + sum(d.active_watts for d in self.devices[:new_width]))
        return RepartitionPlan(old_width, new_width, total_bytes,
                               seconds, active * seconds)

    # -- consolidation --------------------------------------------------------
    def plan_consolidation(self, partitions: Sequence[Partition],
                           current: dict[str, str],
                           bandwidth_headroom: float = 0.5
                           ) -> ConsolidationPlan:
        """Pack partitions onto the fewest devices and plan the migration.

        ``current`` maps partition name to its current device.
        ``bandwidth_headroom`` caps how much of a device's bandwidth the
        packed access rates may use (leaving room for bursts).

        First-fit-decreasing by size; a device accepts a partition if both
        remaining capacity and remaining bandwidth allow it.
        """
        if not 0 < bandwidth_headroom <= 1:
            raise ConsolidationError("headroom must be in (0, 1]")
        for part in partitions:
            if part.name not in current:
                raise ConsolidationError(
                    f"partition {part.name!r} has no current placement")
            if current[part.name] not in self._by_name:
                raise ConsolidationError(
                    f"partition {part.name!r} placed on unknown device "
                    f"{current[part.name]!r}")
        ordered = sorted(partitions, key=lambda p: p.size_bytes, reverse=True)
        remaining_cap = {d.name: d.capacity_bytes for d in self.devices}
        remaining_bw = {d.name: d.bandwidth_bytes_per_s * bandwidth_headroom
                        for d in self.devices}
        assignments: dict[str, str] = {}
        used: list[str] = []
        for part in ordered:
            placed = False
            for name in used:
                if (remaining_cap[name] >= part.size_bytes
                        and remaining_bw[name] >= part.read_bytes_per_s):
                    self._place(part, name, assignments,
                                remaining_cap, remaining_bw)
                    placed = True
                    break
            if not placed:
                for device in self.devices:
                    if device.name in used:
                        continue
                    if (remaining_cap[device.name] >= part.size_bytes
                            and remaining_bw[device.name]
                            >= part.read_bytes_per_s):
                        used.append(device.name)
                        self._place(part, device.name, assignments,
                                    remaining_cap, remaining_bw)
                        placed = True
                        break
            if not placed:
                raise ConsolidationError(
                    f"partition {part.name!r} fits no device")
        moves = [Move(p.name, current[p.name], assignments[p.name],
                      p.size_bytes)
                 for p in ordered if current[p.name] != assignments[p.name]]
        released = [d.name for d in self.devices if d.name not in used]
        seconds, joules = self._migration_cost(moves)
        savings = sum(self._by_name[name].idle_watts for name in released)
        return ConsolidationPlan(
            assignments=assignments, moves=moves, devices_kept=used,
            devices_released=released, migration_seconds=seconds,
            migration_joules=joules, idle_savings_watts=savings)

    def _place(self, part: Partition, device: str,
               assignments: dict[str, str], cap: dict[str, int],
               bw: dict[str, float]) -> None:
        assignments[part.name] = device
        cap[device] -= part.size_bytes
        bw[device] -= part.read_bytes_per_s

    def _migration_cost(self, moves: Sequence[Move]
                        ) -> tuple[float, float]:
        seconds = 0.0
        joules = 0.0
        for move in moves:
            src = self._by_name[move.source]
            dst = self._by_name[move.target]
            rate = min(src.bandwidth_bytes_per_s, dst.bandwidth_bytes_per_s)
            duration = move.size_bytes / rate
            seconds += duration
            joules += duration * (src.active_watts + dst.active_watts)
        return seconds, joules
