"""Storage engine: pages, files, compression, buffering, logging.

Physical layout is byte-accurate — rows and column segments are really
encoded — so the simulated I/O the engine charges corresponds to actual
stored bytes, and compression ratios are measured, not assumed.
"""

from repro.storage.btree import BPlusTree
from repro.storage.buffer import BufferPool, ReplacementPolicy
from repro.storage.column import ColumnFile
from repro.storage.compression import (
    Codec,
    DeltaCodec,
    DictionaryCodec,
    LzLiteCodec,
    NoneCodec,
    RleCodec,
    best_codec_for,
    codec_by_name,
)
from repro.storage.heap import HeapFile
from repro.storage.index import TableIndex
from repro.storage.manager import StorageManager, Table
from repro.storage.page import SlottedPage
from repro.storage.partitioner import Partitioner, RepartitionPlan
from repro.storage.prefetcher import BurstPrefetcher, trickle_stream
from repro.storage.tiering import StorageTier, TableProfile, TieringAdvisor
from repro.storage.wal import WriteAheadLog

__all__ = [
    "BPlusTree",
    "BufferPool",
    "BurstPrefetcher",
    "Codec",
    "ColumnFile",
    "DeltaCodec",
    "DictionaryCodec",
    "HeapFile",
    "LzLiteCodec",
    "NoneCodec",
    "Partitioner",
    "RepartitionPlan",
    "ReplacementPolicy",
    "RleCodec",
    "SlottedPage",
    "StorageManager",
    "StorageTier",
    "Table",
    "TableIndex",
    "TableProfile",
    "TieringAdvisor",
    "WriteAheadLog",
    "best_codec_for",
    "codec_by_name",
    "trickle_stream",
]
