"""Write-ahead log with group commit.

§5.2: "it may make sense to increase the batching factor (and increase
response time) to avoid frequent commits on stable storage."  The log's
``batch_records`` and ``batch_timeout_seconds`` knobs are exactly that
batching factor; experiment A7 sweeps them and measures the energy /
response-time trade-off on the log device.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Union

from repro.errors import WalError
from repro.sim.events import Event
from repro.telemetry.context import current_collector

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.disk import HardDisk
    from repro.hardware.ssd import FlashSsd
    from repro.sim.engine import Simulation

LogDevice = Union["HardDisk", "FlashSsd"]

#: fixed header written with every log record
RECORD_OVERHEAD_BYTES = 24
#: sector alignment padding charged per physical flush
FLUSH_OVERHEAD_BYTES = 512


@dataclass
class WalStats:
    """Aggregate log activity."""

    records_appended: int = 0
    flushes: int = 0
    bytes_flushed: int = 0
    commit_latencies: list[float] = field(default_factory=list)

    @property
    def mean_commit_latency(self) -> float:
        if not self.commit_latencies:
            return 0.0
        return sum(self.commit_latencies) / len(self.commit_latencies)

    @property
    def records_per_flush(self) -> float:
        if self.flushes == 0:
            return 0.0
        return self.records_appended / self.flushes


class WriteAheadLog:
    """Group-committing WAL on a simulated device."""

    def __init__(self, sim: "Simulation", device: LogDevice,
                 batch_records: int = 1,
                 batch_timeout_seconds: float = 0.0) -> None:
        if batch_records < 1:
            raise WalError("batch_records must be >= 1")
        if batch_timeout_seconds < 0:
            raise WalError("batch timeout cannot be negative")
        self.sim = sim
        self.device = device
        self.batch_records = batch_records
        self.batch_timeout_seconds = batch_timeout_seconds
        self.stats = WalStats()
        self._queue: list[tuple[int, Event, float]] = []
        self._arrival: Event | None = None
        self._batch_full: Event | None = None
        self._closed = False
        self._next_lsn = 1
        sim.spawn(self._flusher(), name="wal-flusher")

    # -- client API -----------------------------------------------------------
    def append(self, payload_bytes: int) -> Event:
        """Queue a log record; the returned event fires at commit (flush).

        ``payload_bytes`` is the record body size; header overhead is
        added automatically.
        """
        if self._closed:
            raise WalError("log is closed")
        if payload_bytes < 0:
            raise WalError("negative record size")
        ack = Event(self.sim)
        size = payload_bytes + RECORD_OVERHEAD_BYTES
        self._queue.append((size, ack, self.sim.now))
        self.stats.records_appended += 1
        self._next_lsn += 1
        if self._arrival is not None and not self._arrival.triggered:
            self._arrival.succeed()
        if (self._batch_full is not None and not self._batch_full.triggered
                and len(self._queue) >= self.batch_records):
            self._batch_full.succeed()
        return ack

    def close(self) -> None:
        """Refuse further appends; in-flight records still flush."""
        self._closed = True
        if self._arrival is not None and not self._arrival.triggered:
            self._arrival.succeed()

    # -- flusher daemon ---------------------------------------------------------
    def _flusher(self):
        while True:
            if not self._queue:
                if self._closed:
                    return
                self._arrival = Event(self.sim)
                yield self._arrival
                self._arrival = None
                if not self._queue:
                    return  # woken by close() with nothing to do
            if (len(self._queue) < self.batch_records
                    and self.batch_timeout_seconds > 0 and not self._closed):
                self._batch_full = Event(self.sim)
                deadline = self.sim.timeout(self.batch_timeout_seconds)
                yield self.sim.any_of([deadline, self._batch_full])
                self._batch_full = None
            batch = self._queue[:self.batch_records]
            self._queue = self._queue[self.batch_records:]
            nbytes = FLUSH_OVERHEAD_BYTES + sum(size for size, _, _ in batch)
            yield from self.device.write(nbytes, stream="wal")
            now = self.sim.now
            self.stats.flushes += 1
            self.stats.bytes_flushed += nbytes
            telemetry = current_collector()
            if telemetry is not None:
                telemetry.count("wal.flush")
                telemetry.count("wal.bytes_flushed", nbytes)
            for _size, ack, enqueued_at in batch:
                self.stats.commit_latencies.append(now - enqueued_at)
                ack.succeed(now)
