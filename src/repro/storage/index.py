"""Secondary indexes over stored tables.

A :class:`TableIndex` wraps a B+tree built over one column of a
row-store table and models its physical footprint: entries pack into
``page_size`` leaf pages, upper levels are assumed buffer-resident (the
classic costing assumption), so an exact-match probe reads one leaf
page and a range scan reads the touched leaves plus the heap pages of
matching rows — sequentially if the index is clustered, randomly if
not.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator

from repro.errors import StorageError
from repro.storage.btree import BPlusTree

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.manager import Table

#: bytes per (key, rid) leaf entry, for page-count modeling
LEAF_ENTRY_BYTES = 24


class TableIndex:
    """A B+tree index on one column of a row-store table."""

    def __init__(self, table: "Table", column: str,
                 page_size: int = 8192,
                 clustered: bool = False) -> None:
        if table.heap is None:
            raise StorageError(
                f"table {table.name!r} is columnar; indexes are "
                "supported on row-store tables")
        if column not in table.schema:
            raise StorageError(
                f"table {table.name!r} has no column {column!r}")
        self.table = table
        self.column = column
        self.page_size = page_size
        self.clustered = clustered
        order = max(8, page_size // LEAF_ENTRY_BYTES)
        self.tree = BPlusTree(order=order)
        position = table.schema.position(column)
        previous = None
        sorted_so_far = True
        for page_no, page in enumerate(table.heap.pages):
            for slot, payload in page.records():
                row = table.schema.decode_row(payload)
                key = row[position]
                if key is None:
                    raise StorageError(
                        f"cannot index NULLs in {table.name}.{column}")
                if previous is not None and key < previous:
                    sorted_so_far = False
                previous = key
                self.tree.insert(key, (page_no, slot))
        # a clustered index requires the heap to actually be in key order
        if clustered and not sorted_so_far:
            raise StorageError(
                f"{table.name}.{column}: heap is not in key order; "
                "cannot declare the index clustered")
        self._naturally_sorted = sorted_so_far

    @property
    def name(self) -> str:
        return f"{self.table.name}_{self.column}_idx"

    @property
    def entry_count(self) -> int:
        return len(self.tree)

    # -- physical modeling ---------------------------------------------------
    def leaf_pages(self) -> int:
        """Leaf pages in the index."""
        return self.tree.leaf_count()

    def size_bytes(self) -> int:
        """Modeled on-storage footprint of the index."""
        return self.leaf_pages() * self.page_size

    def probe_io_bytes(self) -> int:
        """Bytes one exact-match probe reads (one leaf page; upper
        levels assumed cached)."""
        return self.page_size

    def range_leaf_bytes(self, low: Any = None, high: Any = None) -> int:
        """Leaf bytes a range scan reads."""
        return self.tree.leaves_touched(low, high) * self.page_size

    def heap_fetch_plan(self, n_rows: int) -> tuple[int, int]:
        """(bytes, random_requests) for fetching ``n_rows`` heap rows.

        Clustered: matching rows are contiguous, so the heap read is a
        sequential run of ceil(rows/rows-per-page) pages (0 random
        requests).  Unclustered: one random page read per row, capped at
        the page count (beyond that every page is touched anyway).
        """
        heap = self.table.heap
        assert heap is not None
        if n_rows <= 0 or heap.page_count == 0:
            return 0, 0
        rows_per_page = max(1, heap.row_count // heap.page_count)
        if self.clustered:
            pages = -(-n_rows // rows_per_page)
            return pages * heap.page_size, 0
        pages = min(n_rows, heap.page_count)
        return pages * heap.page_size, pages

    # -- lookups -----------------------------------------------------------
    def search_rows(self, key: Any) -> list[tuple]:
        """Decoded rows matching an exact key."""
        heap = self.table.heap
        assert heap is not None
        return [heap.fetch(rid) for rid in self.tree.search(key)]

    def range_rows(self, low: Any = None, high: Any = None,
                   include_low: bool = True,
                   include_high: bool = True) -> Iterator[tuple]:
        """Decoded rows with keys in the given range, in key order."""
        heap = self.table.heap
        assert heap is not None
        for _key, rid in self.tree.range_scan(low, high, include_low,
                                              include_high):
            yield heap.fetch(rid)

    def __repr__(self) -> str:
        kind = "clustered" if self.clustered else "secondary"
        return (f"TableIndex({self.name!r}, {kind}, "
                f"entries={self.entry_count})")
