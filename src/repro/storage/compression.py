"""Compression codecs.

The paper's Figure 2 hinges on compression "trading CPU cycles for
reduced bandwidth requirements" (§4.1).  These codecs are real — they
produce actual bytes and round-trip losslessly — so compression ratios
are measured, and each codec carries a CPU cost model (cycles per byte)
that the executor charges to the simulated CPU when scanning compressed
segments.

Codecs
------
* :class:`NoneCodec` — plain concatenated encoding.
* :class:`RleCodec` — run-length encoding, best for sorted/low-churn data.
* :class:`DictionaryCodec` — distinct-value table + bit-packed indices.
* :class:`DeltaCodec` — zigzag varint deltas for integers and dates.
* :class:`LzLiteCodec` — a small LZ77/LZSS byte compressor.
"""

from __future__ import annotations

import struct
from datetime import date, timedelta
from typing import Any, Sequence

from repro.errors import CompressionError
from repro.relational.types import DataType

_EPOCH = date(1970, 1, 1)
_COUNT = struct.Struct("<I")


def _encode_plain(values: Sequence[Any], dtype: DataType) -> bytes:
    out = bytearray(_COUNT.pack(len(values)))
    for v in values:
        out += dtype.encode(v)
    return bytes(out)


def _decode_plain(data: bytes, dtype: DataType) -> list[Any]:
    (count,) = _COUNT.unpack_from(data, 0)
    offset = _COUNT.size
    values = []
    for _ in range(count):
        value, consumed = dtype.decode(data, offset)
        offset += consumed
        values.append(value)
    if offset != len(data):
        raise CompressionError("trailing bytes after plain segment")
    return values


class Codec:
    """Base codec: byte-real encode/decode plus a CPU cost model."""

    name = "abstract"
    #: cycles charged per *compressed* byte when decoding during a scan
    decode_cycles_per_byte = 0.0
    #: cycles charged per *uncompressed* byte when encoding at load time
    encode_cycles_per_byte = 0.0

    def encode(self, values: Sequence[Any], dtype: DataType) -> bytes:
        raise NotImplementedError

    def decode(self, data: bytes, dtype: DataType) -> list[Any]:
        raise NotImplementedError

    def supports(self, dtype: DataType) -> bool:
        """Whether this codec can encode the given type."""
        return True

    def __repr__(self) -> str:
        return f"<codec {self.name}>"


class NoneCodec(Codec):
    """No compression: values stored in their plain encoding."""

    name = "none"
    decode_cycles_per_byte = 0.0
    encode_cycles_per_byte = 0.0

    def encode(self, values: Sequence[Any], dtype: DataType) -> bytes:
        return _encode_plain(values, dtype)

    def decode(self, data: bytes, dtype: DataType) -> list[Any]:
        return _decode_plain(data, dtype)


class RleCodec(Codec):
    """Run-length encoding: (run_length:u32, value) pairs."""

    name = "rle"
    decode_cycles_per_byte = 1.2
    encode_cycles_per_byte = 1.5

    def encode(self, values: Sequence[Any], dtype: DataType) -> bytes:
        out = bytearray(_COUNT.pack(len(values)))
        i = 0
        n = len(values)
        while i < n:
            j = i
            while j < n and values[j] == values[i]:
                j += 1
            if values[i] is None:
                raise CompressionError("RLE does not encode NULLs")
            out += _COUNT.pack(j - i)
            out += dtype.encode(values[i])
            i = j
        return bytes(out)

    def decode(self, data: bytes, dtype: DataType) -> list[Any]:
        (count,) = _COUNT.unpack_from(data, 0)
        offset = _COUNT.size
        values: list[Any] = []
        while offset < len(data):
            (run,) = _COUNT.unpack_from(data, offset)
            offset += _COUNT.size
            value, consumed = dtype.decode(data, offset)
            offset += consumed
            values.extend([value] * run)
        if len(values) != count:
            raise CompressionError(
                f"RLE decoded {len(values)} values, expected {count}")
        return values


class DictionaryCodec(Codec):
    """Distinct-value dictionary with bit-packed indices."""

    name = "dictionary"
    decode_cycles_per_byte = 2.2
    encode_cycles_per_byte = 3.0

    def encode(self, values: Sequence[Any], dtype: DataType) -> bytes:
        if any(v is None for v in values):
            raise CompressionError("dictionary codec does not encode NULLs")
        distinct: dict[Any, int] = {}
        for v in values:
            if v not in distinct:
                distinct[v] = len(distinct)
        entries = list(distinct)
        width = max(1, (len(entries) - 1).bit_length()) if entries else 1
        out = bytearray(_COUNT.pack(len(values)))
        out += _COUNT.pack(len(entries))
        out.append(width)
        for entry in entries:
            out += dtype.encode(entry)
        out += _pack_bits([distinct[v] for v in values], width)
        return bytes(out)

    def decode(self, data: bytes, dtype: DataType) -> list[Any]:
        (count,) = _COUNT.unpack_from(data, 0)
        (n_entries,) = _COUNT.unpack_from(data, _COUNT.size)
        width = data[2 * _COUNT.size]
        offset = 2 * _COUNT.size + 1
        entries = []
        for _ in range(n_entries):
            value, consumed = dtype.decode(data, offset)
            offset += consumed
            entries.append(value)
        indices = _unpack_bits(data[offset:], width, count)
        try:
            return [entries[i] for i in indices]
        except IndexError:
            raise CompressionError("dictionary index out of range") from None


class DeltaCodec(Codec):
    """First value + zigzag varint deltas (integers and dates)."""

    name = "delta"
    decode_cycles_per_byte = 1.8
    encode_cycles_per_byte = 2.0

    _INT_TYPES = (DataType.INT32, DataType.INT64, DataType.DATE)

    def supports(self, dtype: DataType) -> bool:
        return dtype in self._INT_TYPES

    def _to_int(self, value: Any, dtype: DataType) -> int:
        if dtype is DataType.DATE:
            return (value - _EPOCH).days
        return value

    def _from_int(self, value: int, dtype: DataType) -> Any:
        if dtype is DataType.DATE:
            return _EPOCH + timedelta(days=value)
        return value

    def encode(self, values: Sequence[Any], dtype: DataType) -> bytes:
        if not self.supports(dtype):
            raise CompressionError(f"delta codec cannot encode {dtype.value}")
        if any(v is None for v in values):
            raise CompressionError("delta codec does not encode NULLs")
        out = bytearray(_COUNT.pack(len(values)))
        prev = 0
        for v in values:
            current = self._to_int(v, dtype)
            out += _zigzag_varint(current - prev)
            prev = current
        return bytes(out)

    def decode(self, data: bytes, dtype: DataType) -> list[Any]:
        (count,) = _COUNT.unpack_from(data, 0)
        offset = _COUNT.size
        values = []
        prev = 0
        for _ in range(count):
            delta, offset = _read_zigzag_varint(data, offset)
            prev += delta
            values.append(self._from_int(prev, dtype))
        if offset != len(data):
            raise CompressionError("trailing bytes after delta segment")
        return values


class LzLiteCodec(Codec):
    """A small LZ77/LZSS byte compressor over the plain encoding.

    Token stream: ``0x00 len literal-bytes`` or ``0x01 offset:u16 len:u8``
    (match of ``len`` bytes starting ``offset`` back).  Deliberately
    simple; its job is to be a *real* heavier-weight codec whose CPU cost
    the energy model can price against its bandwidth savings.
    """

    name = "lzlite"
    decode_cycles_per_byte = 3.5
    encode_cycles_per_byte = 12.0

    _MIN_MATCH = 4
    _MAX_MATCH = 255
    _WINDOW = 65535

    def encode(self, values: Sequence[Any], dtype: DataType) -> bytes:
        return self.compress_bytes(_encode_plain(values, dtype))

    def decode(self, data: bytes, dtype: DataType) -> list[Any]:
        return _decode_plain(self.decompress_bytes(data), dtype)

    def compress_bytes(self, raw: bytes) -> bytes:
        """LZ-compress an arbitrary byte string."""
        out = bytearray(_COUNT.pack(len(raw)))
        table: dict[bytes, int] = {}
        i = 0
        literal_start = 0
        n = len(raw)
        while i < n:
            match_len = 0
            match_offset = 0
            if i + self._MIN_MATCH <= n:
                key = raw[i:i + self._MIN_MATCH]
                candidate = table.get(key, -1)
                table[key] = i
                if candidate >= 0 and i - candidate <= self._WINDOW:
                    length = self._MIN_MATCH
                    limit = min(self._MAX_MATCH, n - i)
                    while (length < limit
                           and raw[candidate + length] == raw[i + length]):
                        length += 1
                    match_len = length
                    match_offset = i - candidate
            if match_len >= self._MIN_MATCH:
                self._flush_literals(out, raw, literal_start, i)
                out.append(0x01)
                out += struct.pack("<HB", match_offset, match_len)
                i += match_len
                literal_start = i
            else:
                i += 1
        self._flush_literals(out, raw, literal_start, n)
        return bytes(out)

    def _flush_literals(self, out: bytearray, raw: bytes,
                        start: int, end: int) -> None:
        pos = start
        while pos < end:
            chunk = raw[pos:min(pos + 255, end)]
            out.append(0x00)
            out.append(len(chunk))
            out += chunk
            pos += len(chunk)

    def decompress_bytes(self, data: bytes) -> bytes:
        """Inverse of :meth:`compress_bytes`."""
        (expected,) = _COUNT.unpack_from(data, 0)
        offset = _COUNT.size
        out = bytearray()
        while offset < len(data):
            tag = data[offset]
            offset += 1
            if tag == 0x00:
                length = data[offset]
                offset += 1
                out += data[offset:offset + length]
                offset += length
            elif tag == 0x01:
                match_offset, length = struct.unpack_from("<HB", data, offset)
                offset += 3
                start = len(out) - match_offset
                if start < 0:
                    raise CompressionError("LZ match before stream start")
                for k in range(length):
                    out.append(out[start + k])
            else:
                raise CompressionError(f"bad LZ token tag {tag}")
        if len(out) != expected:
            raise CompressionError(
                f"LZ stream decoded {len(out)} bytes, expected {expected}")
        return bytes(out)


# --- bit packing / varints ---------------------------------------------------

def _pack_bits(indices: Sequence[int], width: int) -> bytes:
    acc = 0
    nbits = 0
    out = bytearray()
    for idx in indices:
        acc |= idx << nbits
        nbits += width
        while nbits >= 8:
            out.append(acc & 0xFF)
            acc >>= 8
            nbits -= 8
    if nbits:
        out.append(acc & 0xFF)
    return bytes(out)


def _unpack_bits(data: bytes, width: int, count: int) -> list[int]:
    mask = (1 << width) - 1
    acc = 0
    nbits = 0
    pos = 0
    out = []
    for _ in range(count):
        while nbits < width:
            if pos >= len(data):
                raise CompressionError("bit stream exhausted")
            acc |= data[pos] << nbits
            pos += 1
            nbits += 8
        out.append(acc & mask)
        acc >>= width
        nbits -= width
    return out


def _zigzag_varint(value: int) -> bytes:
    encoded = ((-value) << 1) - 1 if value < 0 else value << 1
    out = bytearray()
    while True:
        byte = encoded & 0x7F
        encoded >>= 7
        if encoded:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def _read_zigzag_varint(data: bytes, offset: int) -> tuple[int, int]:
    shift = 0
    value = 0
    while True:
        if offset >= len(data):
            raise CompressionError("varint truncated")
        byte = data[offset]
        offset += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            break
        shift += 7
    if value & 1:
        return -((value + 1) >> 1), offset
    return value >> 1, offset


# --- registry ----------------------------------------------------------------

_CODECS: dict[str, Codec] = {
    codec.name: codec
    for codec in (NoneCodec(), RleCodec(), DictionaryCodec(),
                  DeltaCodec(), LzLiteCodec())
}


def codec_by_name(name: str) -> Codec:
    """Look up a codec instance by its registered name."""
    try:
        return _CODECS[name]
    except KeyError:
        raise CompressionError(
            f"unknown codec {name!r}; known: {sorted(_CODECS)}") from None


def best_codec_for(values: Sequence[Any], dtype: DataType,
                   candidates: Sequence[str] = ("none", "rle", "dictionary",
                                                "delta", "lzlite"),
                   sample_size: int = 2000) -> Codec:
    """Pick the candidate with the smallest encoding of a value sample.

    This is the kind of physical-design decision §5.1 asks the system to
    make; callers can then weigh the winner's CPU cost via its
    ``decode_cycles_per_byte`` before committing.
    """
    sample = list(values[:sample_size])
    if not sample:
        return codec_by_name("none")
    best: Codec = codec_by_name("none")
    best_size = None
    for name in candidates:
        codec = codec_by_name(name)
        if not codec.supports(dtype):
            continue
        try:
            size = len(codec.encode(sample, dtype))
        except CompressionError:
            continue
        if best_size is None or size < best_size:
            best, best_size = codec, size
    return best
