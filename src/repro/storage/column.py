"""Column files: per-column segmented storage with optional compression.

The Figure 2 scanner reads only the projected columns, so a column file
tracks encoded bytes per column; the executor charges I/O for exactly
the segments a query touches, and CPU for decompressing them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional, Sequence

from repro.errors import StorageError
from repro.relational.schema import TableSchema
from repro.storage.compression import Codec, NoneCodec, codec_by_name

DEFAULT_SEGMENT_ROWS = 4096


@dataclass
class ColumnSegment:
    """One sealed run of values for a single column."""

    row_count: int
    data: bytes
    codec: Codec

    @property
    def compressed_bytes(self) -> int:
        return len(self.data)


class ColumnFile:
    """A columnar table: each column is a list of encoded segments."""

    def __init__(self, schema: TableSchema,
                 codecs: Optional[dict[str, Codec | str]] = None,
                 segment_rows: int = DEFAULT_SEGMENT_ROWS) -> None:
        if segment_rows < 1:
            raise StorageError("segment_rows must be >= 1")
        self.schema = schema
        self.segment_rows = segment_rows
        self._codecs: dict[str, Codec] = {}
        for col in schema.columns:
            chosen = (codecs or {}).get(col.name, NoneCodec())
            if isinstance(chosen, str):
                chosen = codec_by_name(chosen)
            if not chosen.supports(col.dtype):
                raise StorageError(
                    f"codec {chosen.name!r} cannot encode column "
                    f"{col.name!r} of type {col.dtype.value}")
            self._codecs[col.name] = chosen
        self._segments: dict[str, list[ColumnSegment]] = {
            c.name: [] for c in schema.columns}
        self._pending: list[Sequence[Any]] = []
        self._row_count = 0
        self._plain_bytes: dict[str, int] = {c.name: 0 for c in schema.columns}

    # -- sizing -------------------------------------------------------------
    @property
    def row_count(self) -> int:
        return self._row_count

    def codec_for(self, column: str) -> Codec:
        """The codec configured for a column."""
        try:
            return self._codecs[column]
        except KeyError:
            raise StorageError(f"no column {column!r}") from None

    def column_compressed_bytes(self, column: str) -> int:
        """Encoded (on-storage) bytes of one column, pending rows sealed."""
        self.seal()
        return sum(seg.compressed_bytes for seg in self._segment_list(column))

    def column_plain_bytes(self, column: str) -> int:
        """Bytes the column would occupy uncompressed."""
        self.seal()
        return self._plain_bytes[column]

    def size_bytes(self, columns: Optional[Sequence[str]] = None) -> int:
        """Total encoded bytes across the given columns (default: all)."""
        names = list(columns) if columns else self.schema.column_names()
        return sum(self.column_compressed_bytes(n) for n in names)

    def compression_ratio(self, columns: Optional[Sequence[str]] = None
                          ) -> float:
        """compressed / plain bytes over the given columns."""
        names = list(columns) if columns else self.schema.column_names()
        plain = sum(self.column_plain_bytes(n) for n in names)
        if plain == 0:
            return 1.0
        return self.size_bytes(names) / plain

    # -- loading ------------------------------------------------------------
    def append(self, row: Sequence[Any]) -> None:
        """Buffer one row; segments seal every ``segment_rows`` rows."""
        self.schema.validate_row(row)
        self._pending.append(tuple(row))
        self._row_count += 1
        if len(self._pending) >= self.segment_rows:
            self._seal_pending()

    def append_many(self, rows: Sequence[Sequence[Any]]) -> None:
        """Bulk load."""
        for row in rows:
            self.append(row)

    def seal(self) -> None:
        """Flush any buffered rows into (possibly short) segments."""
        if self._pending:
            self._seal_pending()

    def _seal_pending(self) -> None:
        rows = self._pending
        self._pending = []
        for position, col in enumerate(self.schema.columns):
            values = [row[position] for row in rows]
            codec = self._codecs[col.name]
            data = codec.encode(values, col.dtype)
            self._segments[col.name].append(
                ColumnSegment(len(values), data, codec))
            self._plain_bytes[col.name] += sum(
                col.dtype.encoded_size(v) for v in values if v is not None)

    # -- scanning -----------------------------------------------------------
    def scan(self, columns: Optional[Sequence[str]] = None
             ) -> Iterator[tuple[Any, ...]]:
        """Yield tuples of the requested columns, in load order."""
        self.seal()
        names = list(columns) if columns else self.schema.column_names()
        for name in names:
            if name not in self._segments:
                raise StorageError(f"no column {name!r}")
        if not names:
            raise StorageError("must scan at least one column")
        segment_lists = [self._segment_list(name) for name in names]
        dtypes = [self.schema.column(name).dtype for name in names]
        n_segments = len(segment_lists[0])
        for seg_idx in range(n_segments):
            decoded = [
                seg_list[seg_idx].codec.decode(seg_list[seg_idx].data, dtype)
                for seg_list, dtype in zip(segment_lists, dtypes)]
            yield from zip(*decoded)

    def scan_segments(self, column: str) -> Iterator[ColumnSegment]:
        """Iterate the sealed segments of one column."""
        self.seal()
        yield from self._segment_list(column)

    def _segment_list(self, column: str) -> list[ColumnSegment]:
        try:
            return self._segments[column]
        except KeyError:
            raise StorageError(f"no column {column!r}") from None

    def __repr__(self) -> str:
        return (f"ColumnFile({self.schema.name!r}, rows={self._row_count}, "
                f"bytes={self.size_bytes()})")
