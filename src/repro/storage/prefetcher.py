"""Energy-efficient prefetching (paper §4.2, [PS04]).

"Previous work on energy-efficient prefetching and caching for mobile
computing proposed modifications to the OS to encourage burstiness and
increase the length of idle periods.  A database storage manager could
also incorporate similar techniques, especially since certain table
scans have highly predictable access patterns."

A rate-limited sequential consumer (a throttled ETL, replication feed,
media scan) normally trickles reads, keeping the disk spinning forever.
:class:`BurstPrefetcher` reads ahead in large bursts into a DRAM buffer
and spins the disk down between bursts — trading buffer memory (whose
residency power it charges) for long, deep idle periods.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Optional, Union

from repro.errors import StorageError
from repro.hardware.power import Transition, breakeven_idle_seconds
from repro.telemetry.context import current_collector

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.disk import HardDisk
    from repro.hardware.memory import Dram
    from repro.sim.engine import Simulation


@dataclass
class PrefetchStats:
    """What a streaming run did."""

    bursts: int = 0
    bytes_streamed: float = 0.0
    spin_downs: int = 0
    buffer_bytes: float = 0.0


class BurstPrefetcher:
    """Bursty read-ahead with inter-burst spin-down."""

    def __init__(self, sim: "Simulation", disk: "HardDisk",
                 buffer_bytes: float,
                 consume_rate_bytes_per_s: float,
                 dram: Optional["Dram"] = None,
                 spin_down_between: bool = True) -> None:
        if buffer_bytes <= 0:
            raise StorageError("buffer must be positive")
        if consume_rate_bytes_per_s <= 0:
            raise StorageError("consume rate must be positive")
        self.sim = sim
        self.disk = disk
        self.buffer_bytes = buffer_bytes
        self.consume_rate = consume_rate_bytes_per_s
        self.dram = dram
        self.spin_down_between = spin_down_between
        self.stats = PrefetchStats(buffer_bytes=buffer_bytes)

    # -- planning helpers ---------------------------------------------------
    def idle_period_seconds(self) -> float:
        """Idle time one full buffer buys the disk between bursts."""
        fill_seconds = self.buffer_bytes / \
            self.disk.effective_bandwidth_bytes_per_s
        drain_seconds = self.buffer_bytes / self.consume_rate
        return max(0.0, drain_seconds - fill_seconds)

    def spin_down_pays_off(self) -> bool:
        """Does the inter-burst idle period beat the spin break-even?"""
        spec = self.disk.spec
        breakeven = breakeven_idle_seconds(
            spec.idle_watts, spec.standby_watts,
            Transition("idle", "standby", spec.spindown_seconds,
                       spec.spindown_joules),
            Transition("standby", "idle", spec.spinup_seconds,
                       spec.spinup_joules))
        return self.idle_period_seconds() > breakeven

    def recommended_buffer_bytes(self, safety_factor: float = 1.5) -> float:
        """Smallest buffer whose idle period clears the break-even."""
        spec = self.disk.spec
        breakeven = breakeven_idle_seconds(
            spec.idle_watts, spec.standby_watts,
            Transition("idle", "standby", spec.spindown_seconds,
                       spec.spindown_joules),
            Transition("standby", "idle", spec.spinup_seconds,
                       spec.spinup_joules))
        bandwidth = self.disk.effective_bandwidth_bytes_per_s
        if self.consume_rate >= bandwidth:
            raise StorageError(
                "consumer faster than the disk; bursting cannot create "
                "idle periods")
        # drain - fill = B/rate - B/bw > breakeven
        needed = breakeven / (1.0 / self.consume_rate - 1.0 / bandwidth)
        return needed * safety_factor

    # -- streaming -----------------------------------------------------------
    def stream(self, total_bytes: float,
               stream_token: str = "prefetch") -> Generator:
        """Serve ``total_bytes`` to the rate-limited consumer (process).

        Double-buffered: the next burst's spin-up and read overlap the
        tail of the current drain, so bursting adds (almost) no
        completion latency over trickling — the consumer never starves
        as long as the drain outlasts the refill lead time.
        """
        if total_bytes < 0:
            raise StorageError("negative stream size")
        if self.dram is not None:
            self.dram.allocate(int(self.buffer_bytes))
        try:
            remaining = total_bytes
            while remaining > 0:
                burst = min(self.buffer_bytes, remaining)
                yield from self.disk.read(int(burst), stream=stream_token)
                self.stats.bursts += 1
                telemetry = current_collector()
                if telemetry is not None:
                    telemetry.count("prefetch.burst")
                remaining -= burst
                self.stats.bytes_streamed += burst
                drain_seconds = burst / self.consume_rate
                if remaining <= 0:
                    yield self.sim.timeout(drain_seconds)
                    break
                # lead time to have the next burst ready before starvation
                next_fill = (min(self.buffer_bytes, remaining)
                             / self.disk.effective_bandwidth_bytes_per_s)
                lead = next_fill
                sleepable = drain_seconds
                if self.spin_down_between and self.spin_down_pays_off():
                    lead += self.disk.spec.spinup_seconds
                    quiet = max(0.0, drain_seconds - lead)
                    yield from self.disk.spin_down()
                    self.stats.spin_downs += 1
                    if telemetry is not None:
                        telemetry.count("prefetch.spin_down")
                    sleepable = quiet
                else:
                    sleepable = max(0.0, drain_seconds - lead)
                yield self.sim.timeout(sleepable)
                # loop re-enters disk.read, which spins up if needed,
                # overlapping the remaining drain
        finally:
            if self.dram is not None:
                self.dram.free(int(self.buffer_bytes))


def trickle_stream(sim: "Simulation", disk: "HardDisk",
                   total_bytes: float,
                   consume_rate_bytes_per_s: float,
                   request_bytes: float = 1 << 20,
                   stream_token: str = "trickle") -> Generator:
    """The baseline: read just-in-time at the consumer's rate (process).

    The disk services a small request every ``request_bytes /
    consume_rate`` seconds and never idles long enough to sleep.
    """
    if total_bytes < 0 or consume_rate_bytes_per_s <= 0:
        raise StorageError("bad trickle parameters")
    remaining = total_bytes
    while remaining > 0:
        piece = min(request_bytes, remaining)
        yield from disk.read(int(piece), stream=stream_token)
        yield sim.timeout(piece / consume_rate_bytes_per_s)
        remaining -= piece
