"""Buffer pool with classic and energy-aware replacement.

§4.3 of the paper: "keeping a page in RAM will require energy,
proportional to the time the page is cached.  New caching and
replacement policies will be needed."  The :data:`ReplacementPolicy.ENERGY_AWARE`
policy implements that idea: it evicts the page whose expected re-fetch
energy *per second of residency* is lowest, so cheap-to-refetch pages
yield their DRAM to expensive ones.

The pool is pure bookkeeping — it decides hits, misses, and victims;
the caller performs the simulated I/O for fetches and writebacks (and
knows each page's fetch energy, since that depends on where it lives).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Hashable, Optional

from repro.errors import BufferPoolError
from repro.telemetry.context import current_collector

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulation


class ReplacementPolicy(enum.Enum):
    """Victim-selection policies."""

    LRU = "lru"
    CLOCK = "clock"
    ENERGY_AWARE = "energy-aware"


@dataclass
class Evicted:
    """A page pushed out of the pool; ``dirty`` pages need writeback."""

    key: Hashable
    page: Any
    dirty: bool


class _Frame:
    __slots__ = ("key", "page", "dirty", "pin_count", "last_access_seq",
                 "last_access_time", "ref_bit", "access_count",
                 "ewma_interval", "fetch_energy_joules")

    def __init__(self, key: Hashable, page: Any, now: float, seq: int,
                 fetch_energy_joules: float) -> None:
        self.key = key
        self.page = page
        self.dirty = False
        self.pin_count = 0
        self.last_access_seq = seq
        self.last_access_time = now
        self.ref_bit = True
        self.access_count = 1
        self.ewma_interval: Optional[float] = None
        self.fetch_energy_joules = fetch_energy_joules


class BufferPool:
    """A fixed-capacity page cache."""

    #: EWMA smoothing for observed inter-access intervals
    _ALPHA = 0.5
    #: assumed re-access interval for pages seen only once (pessimistic)
    _DEFAULT_INTERVAL = 60.0

    def __init__(self, sim: "Simulation", capacity_pages: int,
                 policy: ReplacementPolicy = ReplacementPolicy.LRU,
                 page_residency_watts: float = 0.0) -> None:
        if capacity_pages < 1:
            raise BufferPoolError("capacity must be >= 1 page")
        if page_residency_watts < 0:
            raise BufferPoolError("residency power cannot be negative")
        self.sim = sim
        self.capacity_pages = capacity_pages
        self.policy = policy
        self.page_residency_watts = page_residency_watts
        self._frames: dict[Hashable, _Frame] = {}
        self._seq = 0
        self._clock_hand = 0
        self._clock_order: list[Hashable] = []
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- lookups ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._frames)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._frames

    def get(self, key: Hashable, pin: bool = False) -> Optional[Any]:
        """Return the cached page or None (a miss).  Records the access."""
        frame = self._frames.get(key)
        telemetry = current_collector()
        if frame is None:
            self.misses += 1
            if telemetry is not None:
                telemetry.count("buffer.miss")
            return None
        self.hits += 1
        if telemetry is not None:
            telemetry.count("buffer.hit")
        self._touch(frame)
        if pin:
            frame.pin_count += 1
        return frame.page

    # -- insertion -----------------------------------------------------------
    def put(self, key: Hashable, page: Any,
            fetch_energy_joules: float = 0.0,
            dirty: bool = False, pin: bool = False) -> list[Evicted]:
        """Cache a freshly-fetched page; returns any evicted pages.

        ``fetch_energy_joules`` is what re-reading this page from its home
        device would cost — the energy-aware policy's key input.
        """
        if key in self._frames:
            raise BufferPoolError(f"page {key!r} already cached")
        if fetch_energy_joules < 0:
            raise BufferPoolError("fetch energy cannot be negative")
        evicted = []
        while len(self._frames) >= self.capacity_pages:
            evicted.append(self._evict_one())
        frame = _Frame(key, page, self.sim.now, self._next_seq(),
                       fetch_energy_joules)
        frame.dirty = dirty
        if pin:
            frame.pin_count = 1
        self._frames[key] = frame
        self._clock_order.append(key)
        return evicted

    # -- pinning / dirtying -----------------------------------------------
    def pin(self, key: Hashable) -> None:
        """Prevent eviction until unpinned."""
        self._frame(key).pin_count += 1

    def unpin(self, key: Hashable) -> None:
        """Release one pin."""
        frame = self._frame(key)
        if frame.pin_count <= 0:
            raise BufferPoolError(f"page {key!r} is not pinned")
        frame.pin_count -= 1

    def mark_dirty(self, key: Hashable) -> None:
        """Record that the cached page diverged from storage."""
        self._frame(key).dirty = True

    def flush(self) -> list[Evicted]:
        """Drop every unpinned page (dirty ones returned for writeback)."""
        out = []
        for key in [k for k, f in self._frames.items() if f.pin_count == 0]:
            frame = self._frames.pop(key)
            self._clock_order.remove(key)
            out.append(Evicted(key, frame.page, frame.dirty))
        return out

    # -- statistics ------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def residency_power_watts(self) -> float:
        """Instantaneous DRAM power attributable to cached pages."""
        return self.page_residency_watts * len(self._frames)

    # -- internals ------------------------------------------------------------
    def _frame(self, key: Hashable) -> _Frame:
        try:
            return self._frames[key]
        except KeyError:
            raise BufferPoolError(f"page {key!r} not cached") from None

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _touch(self, frame: _Frame) -> None:
        now = self.sim.now
        interval = now - frame.last_access_time
        if interval > 0:
            if frame.ewma_interval is None:
                frame.ewma_interval = interval
            else:
                frame.ewma_interval = (self._ALPHA * interval
                                       + (1 - self._ALPHA) * frame.ewma_interval)
        frame.last_access_time = now
        frame.last_access_seq = self._next_seq()
        frame.ref_bit = True
        frame.access_count += 1

    def _evict_one(self) -> Evicted:
        victim_key = self._choose_victim()
        frame = self._frames.pop(victim_key)
        self._clock_order.remove(victim_key)
        self.evictions += 1
        telemetry = current_collector()
        if telemetry is not None:
            telemetry.count("buffer.eviction")
        return Evicted(victim_key, frame.page, frame.dirty)

    def _choose_victim(self) -> Hashable:
        unpinned = [f for f in self._frames.values() if f.pin_count == 0]
        if not unpinned:
            raise BufferPoolError("every page is pinned; cannot evict")
        if self.policy is ReplacementPolicy.LRU:
            return min(unpinned, key=lambda f: f.last_access_seq).key
        if self.policy is ReplacementPolicy.CLOCK:
            return self._clock_victim()
        return self._energy_victim(unpinned)

    def _clock_victim(self) -> Hashable:
        spins = 0
        limit = 2 * len(self._clock_order) + 1
        while spins < limit:
            if self._clock_hand >= len(self._clock_order):
                self._clock_hand = 0
            key = self._clock_order[self._clock_hand]
            frame = self._frames[key]
            if frame.pin_count == 0 and not frame.ref_bit:
                return key
            frame.ref_bit = False
            self._clock_hand += 1
            spins += 1
        raise BufferPoolError("every page is pinned; cannot evict")

    def _energy_victim(self, unpinned: list[_Frame]) -> Hashable:
        """Evict the page with the lowest energy-savings rate.

        Keeping a page saves its re-fetch energy once per expected
        re-access interval, at the cost of residency power.  The page with
        the smallest net savings rate

            fetch_energy / expected_interval - residency_watts

        is the cheapest to give up.  Ties (e.g. all rates negative or
        equal) fall back to LRU order.
        """
        def rate(frame: _Frame) -> tuple[float, int]:
            interval = frame.ewma_interval or self._DEFAULT_INTERVAL
            saving = (frame.fetch_energy_joules / interval
                      - self.page_residency_watts)
            return (saving, frame.last_access_seq)

        return min(unpinned, key=rate).key
