"""Heap files: unordered collections of slotted pages (row store)."""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.errors import StorageError
from repro.relational.schema import TableSchema
from repro.storage.page import DEFAULT_PAGE_SIZE, SlottedPage

RecordId = tuple[int, int]  # (page_no, slot)


class HeapFile:
    """A row-store file: rows encoded into slotted pages, in insert order."""

    def __init__(self, schema: TableSchema,
                 page_size: int = DEFAULT_PAGE_SIZE) -> None:
        self.schema = schema
        self.page_size = page_size
        self.pages: list[SlottedPage] = []
        self._row_count = 0

    # -- sizing ------------------------------------------------------------
    @property
    def row_count(self) -> int:
        """Live rows in the file."""
        return self._row_count

    @property
    def page_count(self) -> int:
        return len(self.pages)

    def size_bytes(self) -> int:
        """Physical size: page count times page size (what I/O reads)."""
        return len(self.pages) * self.page_size

    def payload_bytes(self) -> int:
        """Bytes of live record payloads (excludes page overhead)."""
        return sum(len(payload)
                   for page in self.pages
                   for _slot, payload in page.records())

    # -- mutation -----------------------------------------------------------
    def insert(self, row: Sequence[Any]) -> RecordId:
        """Append a row; returns its record id."""
        payload = self.schema.encode_row(row)
        if len(payload) > self.page_size // 2:
            raise StorageError(
                f"row of {len(payload)} bytes exceeds half a page; "
                "oversized rows are not supported")
        if not self.pages or not self.pages[-1].has_room_for(len(payload)):
            self.pages.append(SlottedPage(len(self.pages), self.page_size))
        slot = self.pages[-1].insert(payload)
        self._row_count += 1
        return (len(self.pages) - 1, slot)

    def insert_many(self, rows: Sequence[Sequence[Any]]) -> None:
        """Bulk append."""
        for row in rows:
            self.insert(row)

    def delete(self, rid: RecordId) -> None:
        """Tombstone a row."""
        page_no, slot = rid
        self._page(page_no).delete(slot)
        self._row_count -= 1

    def fetch(self, rid: RecordId) -> tuple[Any, ...]:
        """Decode the row at ``rid``."""
        page_no, slot = rid
        return self.schema.decode_row(self._page(page_no).read(slot))

    # -- scanning -----------------------------------------------------------
    def scan(self) -> Iterator[tuple[Any, ...]]:
        """Yield all live rows in (page, slot) order."""
        for page in self.pages:
            for _slot, payload in page.records():
                yield self.schema.decode_row(payload)

    def scan_page(self, page_no: int) -> Iterator[tuple[Any, ...]]:
        """Yield the live rows of one page."""
        for _slot, payload in self._page(page_no).records():
            yield self.schema.decode_row(payload)

    def _page(self, page_no: int) -> SlottedPage:
        if not 0 <= page_no < len(self.pages):
            raise StorageError(
                f"heap {self.schema.name!r}: page {page_no} out of range")
        return self.pages[page_no]

    def __repr__(self) -> str:
        return (f"HeapFile({self.schema.name!r}, rows={self._row_count}, "
                f"pages={len(self.pages)})")
