"""B+tree secondary indexes.

A textbook B+tree: interior nodes route by separator keys, leaves hold
(key, record-id) pairs and are chained for range scans.  Indexes give
the engine the access paths §5.1 cares about (selective predicates
without full scans) and make the paper's §4.1 nested-loop example
realistic: with an index, the inner lookup is logarithmic, so the
memory-power cost of a hash table can genuinely tip the optimizer's
balance.

The tree is an in-memory structure whose *I/O footprint* is modeled for
costing: nodes correspond to pages of ``page_size`` bytes, and probes /
range scans report how many leaf pages they touched so the executor can
charge device reads.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, Optional

from repro.errors import StorageError

DEFAULT_ORDER = 64


class _Node:
    __slots__ = ("keys", "children", "values", "next_leaf", "is_leaf")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.keys: list[Any] = []
        # interior nodes
        self.children: list["_Node"] = []
        # leaves: values[i] is the list of record ids for keys[i]
        self.values: list[list[Any]] = []
        self.next_leaf: Optional["_Node"] = None


class BPlusTree:
    """A B+tree mapping keys to lists of record ids."""

    def __init__(self, order: int = DEFAULT_ORDER) -> None:
        if order < 3:
            raise StorageError("B+tree order must be >= 3")
        self.order = order
        self._root = _Node(is_leaf=True)
        self._size = 0
        self._height = 1

    # -- properties ------------------------------------------------------
    def __len__(self) -> int:
        """Number of (key, rid) entries."""
        return self._size

    @property
    def height(self) -> int:
        """Levels from root to leaf, inclusive."""
        return self._height

    def leaf_count(self) -> int:
        """Number of leaf nodes (pages a full scan reads)."""
        node = self._leftmost_leaf()
        count = 0
        while node is not None:
            count += 1
            node = node.next_leaf
        return count

    # -- mutation -----------------------------------------------------------
    def insert(self, key: Any, rid: Any) -> None:
        """Add one entry; duplicate keys accumulate rids."""
        if key is None:
            raise StorageError("cannot index NULL keys")
        split = self._insert(self._root, key, rid)
        if split is not None:
            separator, right = split
            new_root = _Node(is_leaf=False)
            new_root.keys = [separator]
            new_root.children = [self._root, right]
            self._root = new_root
            self._height += 1
        self._size += 1

    def _insert(self, node: _Node, key: Any, rid: Any
                ) -> Optional[tuple[Any, _Node]]:
        if node.is_leaf:
            idx = bisect.bisect_left(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                node.values[idx].append(rid)
                return None
            node.keys.insert(idx, key)
            node.values.insert(idx, [rid])
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            return None
        idx = bisect.bisect_right(node.keys, key)
        split = self._insert(node.children[idx], key, rid)
        if split is None:
            return None
        separator, right = split
        node.keys.insert(idx, separator)
        node.children.insert(idx + 1, right)
        if len(node.keys) > self.order:
            return self._split_interior(node)
        return None

    def _split_leaf(self, node: _Node) -> tuple[Any, _Node]:
        mid = len(node.keys) // 2
        right = _Node(is_leaf=True)
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        right.next_leaf = node.next_leaf
        node.next_leaf = right
        return right.keys[0], right

    def _split_interior(self, node: _Node) -> tuple[Any, _Node]:
        mid = len(node.keys) // 2
        separator = node.keys[mid]
        right = _Node(is_leaf=False)
        right.keys = node.keys[mid + 1:]
        right.children = node.children[mid + 1:]
        node.keys = node.keys[:mid]
        node.children = node.children[:mid + 1]
        return separator, right

    # -- lookups -----------------------------------------------------------
    def _find_leaf(self, key: Any) -> _Node:
        node = self._root
        while not node.is_leaf:
            idx = bisect.bisect_right(node.keys, key)
            node = node.children[idx]
        return node

    def _leftmost_leaf(self) -> _Node:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        return node

    def search(self, key: Any) -> list[Any]:
        """Record ids for an exact key (empty list if absent)."""
        leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return list(leaf.values[idx])
        return []

    def range_scan(self, low: Any = None, high: Any = None,
                   include_low: bool = True,
                   include_high: bool = True) -> Iterator[tuple[Any, Any]]:
        """Yield (key, rid) pairs with low <= key <= high, in key order.

        ``None`` bounds are open ends.
        """
        if low is not None:
            leaf: Optional[_Node] = self._find_leaf(low)
        else:
            leaf = self._leftmost_leaf()
        while leaf is not None:
            for key, rids in zip(leaf.keys, leaf.values):
                if low is not None:
                    if key < low or (key == low and not include_low):
                        continue
                if high is not None:
                    if key > high or (key == high and not include_high):
                        return
                for rid in rids:
                    yield key, rid
            leaf = leaf.next_leaf

    def count_range(self, low: Any = None, high: Any = None) -> int:
        """Entries within [low, high] (both inclusive)."""
        return sum(1 for _ in self.range_scan(low, high))

    def leaves_touched(self, low: Any = None, high: Any = None) -> int:
        """Leaf pages a range scan over [low, high] reads."""
        if low is not None:
            leaf: Optional[_Node] = self._find_leaf(low)
        else:
            leaf = self._leftmost_leaf()
        touched = 0
        while leaf is not None:
            touched += 1
            if high is not None and leaf.keys and leaf.keys[-1] > high:
                break
            leaf = leaf.next_leaf
        return touched

    def validate(self) -> None:
        """Check the structural invariants (testing aid)."""
        self._validate(self._root, None, None, depth=1)
        # leaves all at the same depth and keys globally sorted
        keys = [k for k, _ in self.range_scan()]
        if keys != sorted(keys):
            raise StorageError("leaf chain out of order")

    def _validate(self, node: _Node, low: Any, high: Any,
                  depth: int) -> None:
        if node.keys != sorted(node.keys):
            raise StorageError("node keys out of order")
        for key in node.keys:
            if low is not None and key < low:
                raise StorageError("key below subtree bound")
            if high is not None and key >= high:
                raise StorageError("key above subtree bound")
        if node.is_leaf:
            if depth != self._height:
                raise StorageError("leaf at wrong depth")
            if len(node.keys) != len(node.values):
                raise StorageError("leaf keys/values mismatch")
            return
        if len(node.children) != len(node.keys) + 1:
            raise StorageError("interior fanout mismatch")
        bounds = [low, *node.keys, high]
        for child, (lo, hi) in zip(node.children,
                                   zip(bounds, bounds[1:])):
            self._validate(child, lo, hi, depth + 1)
