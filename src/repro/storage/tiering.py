"""Tiered data placement and energy-motivated redundancy (paper §5.1).

"With energy efficiency in mind, we expect to see more choices:
different sets of disk arrays that vary in performance/power
characteristics, different types of solid state drives, along with
remote storage ... Furthermore, for read-mostly workloads, increasing
redundancy may improve energy efficiency.  Additional capacity on disks
does not carry energy costs if the disk usage remains the same."

:class:`TieringAdvisor` places tables across heterogeneous storage
tiers to minimize steady-state power, and prices the paper's redundancy
trick: keep a *read replica* of a hot table on flash so the
authoritative disk copy can sleep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import StorageError


@dataclass(frozen=True)
class StorageTier:
    """One class of storage with a power/performance character."""

    name: str
    capacity_bytes: float
    bandwidth_bytes_per_s: float
    active_watts: float
    idle_watts: float
    standby_watts: float = 0.0
    can_sleep: bool = False

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.bandwidth_bytes_per_s <= 0:
            raise StorageError(f"tier {self.name!r}: bad capacity/bandwidth")
        if not 0 <= self.standby_watts <= self.idle_watts \
                <= self.active_watts:
            raise StorageError(
                f"tier {self.name!r}: need standby <= idle <= active")

    def busy_fraction(self, bytes_per_second: float) -> float:
        """Utilization serving a demand stream."""
        if bytes_per_second < 0:
            raise StorageError("negative demand")
        return min(1.0, bytes_per_second / self.bandwidth_bytes_per_s)

    def power_watts(self, bytes_per_second: float,
                    powered: bool = True) -> float:
        """Steady-state power at a demand level."""
        if not powered:
            return self.standby_watts if self.can_sleep else self.idle_watts
        busy = self.busy_fraction(bytes_per_second)
        return self.idle_watts + (self.active_watts - self.idle_watts) * busy


@dataclass(frozen=True)
class TableProfile:
    """A table's size and read traffic.

    ``pinned_tier`` fixes the authoritative copy's home (the common
    durability policy: the system of record lives on the big disk
    tier).  Pinned tables can still get read *replicas* elsewhere —
    which is exactly where the paper's redundancy trick pays.
    """

    name: str
    size_bytes: float
    read_bytes_per_s: float = 0.0
    write_bytes_per_s: float = 0.0
    pinned_tier: str | None = None

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise StorageError(f"table {self.name!r}: size must be positive")
        if self.read_bytes_per_s < 0 or self.write_bytes_per_s < 0:
            raise StorageError(f"table {self.name!r}: negative traffic")


@dataclass
class TieringPlan:
    """The advisor's placement and its predicted steady-state power."""

    assignments: dict[str, str] = field(default_factory=dict)
    replicas: dict[str, str] = field(default_factory=dict)
    tier_watts: dict[str, float] = field(default_factory=dict)
    total_watts: float = 0.0
    sleeping_tiers: list[str] = field(default_factory=list)


class TieringAdvisor:
    """Greedy energy-minimizing placement over storage tiers."""

    def __init__(self, tiers: Sequence[StorageTier]) -> None:
        if not tiers:
            raise StorageError("need at least one tier")
        names = [t.name for t in tiers]
        if len(set(names)) != len(names):
            raise StorageError("duplicate tier names")
        self.tiers = list(tiers)
        self._by_name = {t.name: t for t in tiers}

    # -- placement -----------------------------------------------------------
    def marginal_scan_watts(self, tier: StorageTier,
                            bytes_per_second: float) -> float:
        """Power added to a tier by a demand stream."""
        return ((tier.active_watts - tier.idle_watts)
                * tier.busy_fraction(bytes_per_second))

    def place(self, tables: Sequence[TableProfile]) -> TieringPlan:
        """Assign each table to one tier, minimizing steady-state power.

        Greedy by traffic density (hottest first): each table goes to the
        tier where its marginal power is smallest among tiers with room,
        counting a tier's idle power once when first used.  Unused
        sleepable tiers are left asleep.
        """
        ordered = sorted(tables,
                         key=lambda t: t.read_bytes_per_s
                         + t.write_bytes_per_s, reverse=True)
        remaining = {t.name: t.capacity_bytes for t in self.tiers}
        used: set[str] = set()
        plan = TieringPlan()
        for table in ordered:
            best_tier = None
            best_cost = None
            demand = table.read_bytes_per_s + table.write_bytes_per_s
            for tier in self.tiers:
                if (table.pinned_tier is not None
                        and tier.name != table.pinned_tier):
                    continue
                if remaining[tier.name] < table.size_bytes:
                    continue
                cost = self.marginal_scan_watts(tier, demand)
                if tier.name not in used:
                    wake_cost = tier.idle_watts - (
                        tier.standby_watts if tier.can_sleep else
                        tier.idle_watts)
                    cost += wake_cost
                if best_cost is None or cost < best_cost:
                    best_tier, best_cost = tier, cost
            if best_tier is None:
                raise StorageError(
                    f"table {table.name!r} fits no tier")
            plan.assignments[table.name] = best_tier.name
            remaining[best_tier.name] -= table.size_bytes
            used.add(best_tier.name)
        self._finalize(plan, tables, used)
        return plan

    def _finalize(self, plan: TieringPlan,
                  tables: Sequence[TableProfile],
                  used: set[str]) -> None:
        demand_per_tier: dict[str, float] = {t.name: 0.0
                                             for t in self.tiers}
        for table in tables:
            home = plan.replicas.get(table.name,
                                     plan.assignments[table.name])
            demand_per_tier[home] += table.read_bytes_per_s
            demand_per_tier[plan.assignments[table.name]] += \
                table.write_bytes_per_s
        total = 0.0
        for tier in self.tiers:
            powered = tier.name in used or \
                tier.name in plan.replicas.values()
            # a tier whose tables are all replica-served can sleep
            if powered and tier.can_sleep \
                    and demand_per_tier[tier.name] == 0.0:
                powered = False
            watts = tier.power_watts(demand_per_tier[tier.name],
                                     powered=powered)
            plan.tier_watts[tier.name] = watts
            if not powered:
                plan.sleeping_tiers.append(tier.name)
            total += watts
        plan.total_watts = total

    # -- redundancy (§5.1) ----------------------------------------------------
    def replication_saving_watts(self, table: TableProfile,
                                 home: StorageTier,
                                 replica: StorageTier) -> float:
        """Steady-state Watts saved by serving reads from a replica.

        The home tier drops from read-busy to (sleeping, if the replica
        absorbs all traffic and the table is read-only) idle; the
        replica tier picks the read stream up.  Writes still go to the
        home copy, so write traffic blocks the sleep.
        """
        before = (self.marginal_scan_watts(
            home, table.read_bytes_per_s + table.write_bytes_per_s))
        after_replica = self.marginal_scan_watts(
            replica, table.read_bytes_per_s)
        if table.write_bytes_per_s == 0 and home.can_sleep:
            # the home copy can sleep entirely
            home_after = home.standby_watts - home.idle_watts
        else:
            home_after = self.marginal_scan_watts(
                home, table.write_bytes_per_s)
        return before - (after_replica + home_after)

    def plan_with_replicas(self, tables: Sequence[TableProfile]
                           ) -> TieringPlan:
        """Place tables, then add read replicas where they save power.

        Replicas consume replica-tier capacity; candidates are evaluated
        hottest-first.
        """
        plan = self.place(tables)
        remaining = {t.name: t.capacity_bytes for t in self.tiers}
        for table in tables:
            remaining[plan.assignments[table.name]] -= table.size_bytes
        ordered = sorted(tables, key=lambda t: t.read_bytes_per_s,
                         reverse=True)
        for table in ordered:
            home = self._by_name[plan.assignments[table.name]]
            best = None
            best_saving = 0.0
            for tier in self.tiers:
                if tier.name == home.name:
                    continue
                if remaining[tier.name] < table.size_bytes:
                    continue
                saving = self.replication_saving_watts(table, home, tier)
                if saving > best_saving:
                    best, best_saving = tier, saving
            if best is not None:
                plan.replicas[table.name] = best.name
                remaining[best.name] -= table.size_bytes
        used = set(plan.assignments.values())
        plan.tier_watts.clear()
        plan.sleeping_tiers.clear()
        self._finalize(plan, tables, used)
        return plan
