"""Slotted pages.

The classic layout: a fixed-size byte array with a header and a slot
directory growing from the front, and record payloads growing from the
back.  Deleted slots become tombstones; their space is reclaimed by
:meth:`SlottedPage.compact`.

Layout::

    [ page_id:u32 | slot_count:u16 | free_ptr:u16 | slots... ] ... [records]

Each slot is ``offset:u16, length:u16``; a tombstone has offset 0xFFFF.
"""

from __future__ import annotations

import struct
from typing import Iterator, Optional

from repro.errors import PageError

_HEADER = struct.Struct("<IHH")
_SLOT = struct.Struct("<HH")
_TOMBSTONE = 0xFFFF

DEFAULT_PAGE_SIZE = 8192


class SlottedPage:
    """A fixed-size page of variable-length records."""

    def __init__(self, page_id: int, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        if page_size < _HEADER.size + _SLOT.size + 1:
            raise PageError(f"page size {page_size} too small")
        if page_size - 1 > _TOMBSTONE:
            raise PageError(f"page size {page_size} exceeds u16 offsets")
        if page_id < 0:
            raise PageError(f"negative page id {page_id}")
        self.page_id = page_id
        self.page_size = page_size
        self._slots: list[tuple[int, int]] = []  # (offset, length)
        self._records: dict[int, bytes] = {}     # slot -> payload
        self._free_ptr = page_size                # records grow downward

    # -- space accounting ---------------------------------------------------
    @property
    def slot_count(self) -> int:
        return len(self._slots)

    @property
    def live_records(self) -> int:
        """Records not deleted."""
        return len(self._records)

    def free_space(self) -> int:
        """Bytes available for a new record *and* its slot entry."""
        directory_end = _HEADER.size + _SLOT.size * len(self._slots)
        return max(0, self._free_ptr - directory_end - _SLOT.size)

    def has_room_for(self, payload_len: int) -> bool:
        return payload_len <= self.free_space()

    # -- record operations --------------------------------------------------
    def insert(self, payload: bytes) -> int:
        """Store a record; returns its slot number."""
        if not payload:
            raise PageError("empty records are not allowed")
        if not self.has_room_for(len(payload)):
            raise PageError(
                f"page {self.page_id}: record of {len(payload)} bytes does "
                f"not fit ({self.free_space()} free)")
        self._free_ptr -= len(payload)
        slot = len(self._slots)
        self._slots.append((self._free_ptr, len(payload)))
        self._records[slot] = payload
        return slot

    def read(self, slot: int) -> bytes:
        """Record payload at ``slot``."""
        self._check_slot(slot)
        try:
            return self._records[slot]
        except KeyError:
            raise PageError(
                f"page {self.page_id}: slot {slot} is deleted") from None

    def delete(self, slot: int) -> None:
        """Tombstone a record; space reclaimed on :meth:`compact`."""
        self._check_slot(slot)
        if slot not in self._records:
            raise PageError(f"page {self.page_id}: slot {slot} already deleted")
        del self._records[slot]
        self._slots[slot] = (_TOMBSTONE, 0)

    def update(self, slot: int, payload: bytes) -> None:
        """Replace a record in place (must fit the page)."""
        old = self.read(slot)
        if len(payload) <= len(old):
            offset, _length = self._slots[slot]
            self._slots[slot] = (offset, len(payload))
            self._records[slot] = payload
            return
        growth = len(payload) - len(old)
        if growth > self.free_space() + _SLOT.size:
            raise PageError(
                f"page {self.page_id}: updated record does not fit")
        self._free_ptr -= len(payload)
        self._slots[slot] = (self._free_ptr, len(payload))
        self._records[slot] = payload

    def compact(self) -> int:
        """Defragment: rewrite live records contiguously.

        Slot numbers are preserved (tombstoned slots remain tombstones so
        record ids stay stable).  Returns bytes reclaimed.
        """
        before = self.free_space()
        self._free_ptr = self.page_size
        for slot in range(len(self._slots)):
            payload = self._records.get(slot)
            if payload is None:
                self._slots[slot] = (_TOMBSTONE, 0)
                continue
            self._free_ptr -= len(payload)
            self._slots[slot] = (self._free_ptr, len(payload))
        return self.free_space() - before

    def records(self) -> Iterator[tuple[int, bytes]]:
        """Iterate (slot, payload) over live records in slot order."""
        for slot in range(len(self._slots)):
            payload = self._records.get(slot)
            if payload is not None:
                yield slot, payload

    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < len(self._slots):
            raise PageError(
                f"page {self.page_id}: slot {slot} out of range "
                f"0..{len(self._slots) - 1}")

    # -- serialization ------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize to exactly ``page_size`` bytes."""
        buf = bytearray(self.page_size)
        _HEADER.pack_into(buf, 0, self.page_id, len(self._slots),
                          self._free_ptr)
        pos = _HEADER.size
        for slot, (offset, length) in enumerate(self._slots):
            _SLOT.pack_into(buf, pos, offset, length)
            pos += _SLOT.size
            payload = self._records.get(slot)
            if payload is not None:
                buf[offset:offset + length] = payload
        return bytes(buf)

    @classmethod
    def from_bytes(cls, data: bytes) -> "SlottedPage":
        """Reconstruct a page from its serialized form."""
        if len(data) < _HEADER.size:
            raise PageError("buffer smaller than a page header")
        page_id, slot_count, free_ptr = _HEADER.unpack_from(data, 0)
        page = cls(page_id, page_size=len(data))
        page._free_ptr = free_ptr
        pos = _HEADER.size
        for slot in range(slot_count):
            offset, length = _SLOT.unpack_from(data, pos)
            pos += _SLOT.size
            if offset == _TOMBSTONE:
                page._slots.append((_TOMBSTONE, 0))
            else:
                page._slots.append((offset, length))
                page._records[slot] = bytes(data[offset:offset + length])
        return page

    def __repr__(self) -> str:
        return (f"SlottedPage(id={self.page_id}, live={self.live_records}, "
                f"free={self.free_space()})")
