"""Storage manager: tables, their layouts, and their placement.

A :class:`Table` couples a schema with a physical representation (row
heap or column file) and a placement (the RAID array it lives on), so
the executor can (a) iterate real tuples and (b) charge simulated I/O to
the right devices for the bytes the physical layout actually occupies.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator, Optional, Sequence

from repro.errors import StorageError
from repro.relational.schema import TableSchema
from repro.storage.column import ColumnFile
from repro.storage.compression import Codec
from repro.storage.heap import HeapFile

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.raid import RaidArray
    from repro.sim.engine import Simulation
    from repro.storage.index import TableIndex

ROW_LAYOUT = "row"
COLUMN_LAYOUT = "column"


class Table:
    """A stored table: schema + physical file + placement."""

    def __init__(self, schema: TableSchema, layout: str,
                 placement: "RaidArray",
                 codecs: Optional[dict[str, Codec | str]] = None,
                 page_size: int = 8192,
                 segment_rows: int = 4096) -> None:
        if layout not in (ROW_LAYOUT, COLUMN_LAYOUT):
            raise StorageError(f"unknown layout {layout!r}")
        if layout == ROW_LAYOUT and codecs:
            raise StorageError("row layout does not support column codecs")
        self.schema = schema
        self.layout = layout
        self.placement = placement
        self.heap: Optional[HeapFile] = None
        self.columnar: Optional[ColumnFile] = None
        self.indexes: dict[str, "TableIndex"] = {}
        if layout == ROW_LAYOUT:
            self.heap = HeapFile(schema, page_size=page_size)
        else:
            self.columnar = ColumnFile(schema, codecs=codecs,
                                       segment_rows=segment_rows)

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def row_count(self) -> int:
        if self.heap is not None:
            return self.heap.row_count
        assert self.columnar is not None
        return self.columnar.row_count

    # -- loading -----------------------------------------------------------
    def load(self, rows: Sequence[Sequence[Any]]) -> None:
        """Bulk-load rows into the physical layout."""
        if self.heap is not None:
            self.heap.insert_many(rows)
        else:
            assert self.columnar is not None
            self.columnar.append_many(rows)
            self.columnar.seal()

    # -- sizing ------------------------------------------------------------
    def scan_bytes(self, columns: Optional[Sequence[str]] = None) -> int:
        """Bytes a scan of the given columns reads from storage.

        A row store always reads whole pages regardless of projection;
        a column store reads only the projected columns' segments.
        """
        if self.heap is not None:
            return self.heap.size_bytes()
        assert self.columnar is not None
        return self.columnar.size_bytes(columns)

    def plain_bytes(self, columns: Optional[Sequence[str]] = None) -> int:
        """Uncompressed size of the given columns (CPU-side volume)."""
        if self.heap is not None:
            return self.heap.size_bytes()
        assert self.columnar is not None
        names = list(columns) if columns else self.schema.column_names()
        return sum(self.columnar.column_plain_bytes(n) for n in names)

    def decode_cycles_per_scan_byte(self,
                                    columns: Optional[Sequence[str]] = None
                                    ) -> float:
        """Weighted decompression cost over the scanned columns."""
        if self.columnar is None:
            return 0.0
        names = list(columns) if columns else self.schema.column_names()
        total_bytes = 0
        weighted = 0.0
        for name in names:
            nbytes = self.columnar.column_compressed_bytes(name)
            codec = self.columnar.codec_for(name)
            total_bytes += nbytes
            weighted += codec.decode_cycles_per_byte * nbytes
        if total_bytes == 0:
            return 0.0
        return weighted / total_bytes

    # -- tuple access -----------------------------------------------------
    def iterate(self, columns: Optional[Sequence[str]] = None
                ) -> Iterator[tuple[Any, ...]]:
        """Yield real tuples (projected for column stores)."""
        if self.heap is not None:
            if columns is None:
                yield from self.heap.scan()
            else:
                positions = [self.schema.position(c) for c in columns]
                for row in self.heap.scan():
                    yield tuple(row[p] for p in positions)
            return
        assert self.columnar is not None
        yield from self.columnar.scan(columns)

    # -- indexing ----------------------------------------------------------
    def create_index(self, column: str,
                     clustered: bool = False) -> "TableIndex":
        """Build a B+tree index on ``column`` (row-store tables only)."""
        from repro.storage.index import TableIndex
        if column in self.indexes:
            raise StorageError(
                f"table {self.name!r} already has an index on {column!r}")
        index = TableIndex(self, column, clustered=clustered)
        self.indexes[column] = index
        return index

    def index_on(self, column: str) -> Optional["TableIndex"]:
        """The index on ``column``, or None."""
        return self.indexes.get(column)

    def __repr__(self) -> str:
        return (f"Table({self.name!r}, {self.layout}, rows={self.row_count}, "
                f"on={self.placement.name})")


class StorageManager:
    """The catalog of stored tables and their placements."""

    def __init__(self, sim: "Simulation") -> None:
        self.sim = sim
        self._tables: dict[str, Table] = {}

    def create_table(self, schema: TableSchema, layout: str,
                     placement: "RaidArray",
                     codecs: Optional[dict[str, Codec | str]] = None,
                     **kwargs: Any) -> Table:
        """Register a new table; names are unique."""
        if schema.name in self._tables:
            raise StorageError(f"table {schema.name!r} already exists")
        table = Table(schema, layout, placement, codecs=codecs, **kwargs)
        self._tables[schema.name] = table
        return table

    def drop_table(self, name: str) -> None:
        """Remove a table from the catalog."""
        if name not in self._tables:
            raise StorageError(f"no table named {name!r}")
        del self._tables[name]

    def table(self, name: str) -> Table:
        """Look up a table by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise StorageError(f"no table named {name!r}") from None

    def tables(self) -> list[Table]:
        return [self._tables[k] for k in sorted(self._tables)]

    def __contains__(self, name: str) -> bool:
        return name in self._tables
