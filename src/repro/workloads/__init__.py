"""Workloads: TPC-H-style data/queries and the paper's two experiments'
drivers (throughput test, compressed-scan microbenchmark, OLTP stream).

Batch ETL pipelines — declarative stage DAGs served as scheduled
tenants of the fleet — live in the :mod:`repro.workloads.pipelines`
subpackage (see PIPELINES.md).

The v1 drivers (``run_throughput_test``, ``run_scan_experiment``) are
deprecated shims over the spec API; they resolve lazily (PEP 562) so
importing this package never touches them, and they warn on use.
"""

from repro.workloads.tpch_schema import (
    ORDERS_SCAN_COLUMNS,
    tpch_schemas,
)
from repro.workloads.tpch_gen import TpchDatabase, generate_tpch
from repro.workloads.tpch_queries import (
    q1,
    q14,
    q3_spec,
    q5_spec,
    q6,
    q10_spec,
    throughput_mix,
)
from repro.workloads.throughput import ThroughputReport, run_throughput
from repro.workloads.scan_workload import ScanReport, run_scan
from repro.workloads.duty_cycle import DutyCycleReport, run_duty_cycle
from repro.workloads.oltp import OltpReport, run_oltp_stream

#: deprecated v1 drivers, resolved lazily on attribute access
_DEPRECATED_SHIMS = {
    "run_scan_experiment": ("repro.workloads.scan_workload",
                            "run_scan_experiment"),
    "run_throughput_test": ("repro.workloads.throughput",
                            "run_throughput_test"),
}

__all__ = [
    "ORDERS_SCAN_COLUMNS",
    "DutyCycleReport",
    "OltpReport",
    "ScanReport",
    "ThroughputReport",
    "TpchDatabase",
    "generate_tpch",
    "q1",
    "q3_spec",
    "q5_spec",
    "q6",
    "q10_spec",
    "q14",
    "run_duty_cycle",
    "run_oltp_stream",
    "run_scan",
    "run_scan_experiment",
    "run_throughput",
    "run_throughput_test",
    "throughput_mix",
    "tpch_schemas",
]


def __getattr__(name: str):
    if name in _DEPRECATED_SHIMS:
        import importlib
        module_name, attr = _DEPRECATED_SHIMS[name]
        return getattr(importlib.import_module(module_name), attr)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_DEPRECATED_SHIMS))
