"""Workloads: TPC-H-style data/queries and the paper's two experiments'
drivers (throughput test, compressed-scan microbenchmark, OLTP stream).
"""

from repro.workloads.tpch_schema import (
    ORDERS_SCAN_COLUMNS,
    tpch_schemas,
)
from repro.workloads.tpch_gen import TpchDatabase, generate_tpch
from repro.workloads.tpch_queries import (
    q1,
    q14,
    q3_spec,
    q5_spec,
    q6,
    q10_spec,
    throughput_mix,
)
from repro.workloads.throughput import (
    ThroughputReport,
    run_throughput,
    run_throughput_test,
)
from repro.workloads.scan_workload import (
    ScanReport,
    run_scan,
    run_scan_experiment,
)
from repro.workloads.duty_cycle import DutyCycleReport, run_duty_cycle
from repro.workloads.oltp import OltpReport, run_oltp_stream

__all__ = [
    "ORDERS_SCAN_COLUMNS",
    "DutyCycleReport",
    "OltpReport",
    "ScanReport",
    "ThroughputReport",
    "TpchDatabase",
    "generate_tpch",
    "q1",
    "q3_spec",
    "q5_spec",
    "q6",
    "q10_spec",
    "q14",
    "run_duty_cycle",
    "run_oltp_stream",
    "run_scan",
    "run_scan_experiment",
    "run_throughput",
    "run_throughput_test",
    "throughput_mix",
    "tpch_schemas",
]
