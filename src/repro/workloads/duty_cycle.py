"""Duty-cycle utilization sweep (the A8 proportionality driver).

Runs a server at a fixed utilization by alternating busy and idle
phases on a one-second period, meters the average power over the
window, and reports the useful work done — the experiment behind
Barroso & Hölzle's energy-proportionality argument (§2.4, [BH07]).
Two machine kinds are supported: the calibrated ``commodity`` profile
("real") and an :class:`~repro.hardware.proportionality.IdealProportionalDevice`
("ideal", which needs the real machine's ``peak_watts``).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any

from repro.errors import WorkloadError
from repro.hardware.profiles import commodity
from repro.hardware.proportionality import IdealProportionalDevice
from repro.sim import Simulation


@dataclass
class DutyCycleReport:
    """Average power and useful work at one utilization level."""

    kind: str                 # "real" | "ideal"
    utilization: float
    window_seconds: float
    average_watts: float
    work_seconds: float

    @property
    def energy_joules(self) -> float:
        return self.average_watts * self.window_seconds

    @property
    def work_per_joule(self) -> float:
        """Busy-seconds of useful work bought per Joule."""
        if self.energy_joules <= 0 or self.work_seconds <= 0:
            return 0.0
        return self.work_seconds / self.energy_joules

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "DutyCycleReport":
        return cls(**data)


def _real_window(utilization: float, window_seconds: float,
                 period_seconds: float) -> tuple[float, float]:
    """Duty-cycle the commodity server's CPU+disks; return
    (average watts, work seconds)."""
    sim = Simulation()
    server, array = commodity(sim)
    busy = utilization * period_seconds
    work_seconds = 0.0

    def loop():
        nonlocal work_seconds
        cycles_per_busy = busy * server.cpu.effective_frequency_hz \
            * server.cpu.spec.cores
        while sim.now < window_seconds - 1e-9:
            if busy > 0:
                io = sim.spawn(array.read(busy * 100e6, stream="duty"))
                yield from server.cpu.execute(cycles_per_busy,
                                              parallelism=4)
                yield io
                work_seconds += busy
            next_boundary = (int(sim.now / period_seconds + 1e-9) + 1) \
                * period_seconds
            if busy >= period_seconds - 1e-9:
                continue  # fully loaded: no idle phase
            yield sim.timeout(max(0.0, next_boundary - sim.now))

    sim.run(until=sim.spawn(loop()))
    sim.run(until=window_seconds)
    watts = server.meter.energy_joules(0.0, window_seconds) \
        / window_seconds
    return watts, work_seconds


def _ideal_window(utilization: float, window_seconds: float,
                  period_seconds: float,
                  peak_watts: float) -> tuple[float, float]:
    sim = Simulation()
    device = IdealProportionalDevice(sim, "ideal", peak_watts=peak_watts)
    work_seconds = 0.0

    def loop():
        nonlocal work_seconds
        while sim.now < window_seconds - 1e-9:
            busy = utilization * period_seconds
            if busy > 0:
                yield from device.occupy(busy)
                work_seconds += busy
            if period_seconds - busy > 1e-12:
                yield sim.timeout(period_seconds - busy)

    sim.run(until=sim.spawn(loop()))
    sim.run(until=window_seconds)
    watts = device.energy_joules(0.0, window_seconds) / window_seconds
    return watts, work_seconds


def run_duty_cycle(utilization: float,
                   kind: str = "real",
                   window_seconds: float = 100.0,
                   period_seconds: float = 1.0,
                   peak_watts: float | None = None) -> DutyCycleReport:
    """Meter one utilization level on a real or ideal machine."""
    if not 0.0 <= utilization <= 1.0:
        raise WorkloadError("utilization must be in [0, 1]")
    if window_seconds <= 0 or period_seconds <= 0:
        raise WorkloadError("window and period must be positive")
    if kind == "real":
        watts, work = _real_window(utilization, window_seconds,
                                   period_seconds)
    elif kind == "ideal":
        if peak_watts is None or peak_watts <= 0:
            raise WorkloadError(
                "ideal machine needs the real machine's peak_watts")
        watts, work = _ideal_window(utilization, window_seconds,
                                    period_seconds, peak_watts)
    else:
        raise WorkloadError(f"unknown machine kind {kind!r}")
    return DutyCycleReport(kind=kind, utilization=utilization,
                           window_seconds=window_seconds,
                           average_watts=watts, work_seconds=work)
