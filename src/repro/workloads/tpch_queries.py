"""TPC-H-style analytic queries.

Simplified analogues that preserve each query's operator mix and
data-flow shape: Q1 (scan-heavy aggregation), Q6 (selective scan with an
arithmetic aggregate), Q3/Q5/Q10 (multi-way joins with aggregation).
Q1 and Q6 are provided as direct operator trees; the join queries as
:class:`~repro.optimizer.planner.QuerySpec` for the planner.
"""

from __future__ import annotations

from datetime import date
from typing import Optional

from repro.relational.expr import Between, Case, InList, Like, col
from repro.relational.operators import (
    AggregateSpec,
    Exchange,
    HashAggregate,
    HashJoin,
    Operator,
    Sort,
    TableScan,
)
from repro.optimizer.planner import JoinEdge, QuerySpec, TableRef
from repro.workloads.tpch_gen import TpchDatabase


def q1(db: TpchDatabase, ship_cutoff: date = date(1998, 9, 2),
       parallelism: int = 1) -> Operator:
    """Pricing summary report: big scan, group by two flags."""
    scan: Operator = TableScan(
        db["lineitem"],
        columns=["l_returnflag", "l_linestatus", "l_quantity",
                 "l_extendedprice", "l_discount", "l_tax", "l_shipdate"],
        predicate=col("l_shipdate") <= ship_cutoff)
    if parallelism > 1:
        scan = Exchange(scan, parallelism)
    disc_price = col("l_extendedprice") * (col("l_discount") * -1.0 + 1.0)
    return Sort(HashAggregate(
        scan, ["l_returnflag", "l_linestatus"],
        [AggregateSpec("sum", col("l_quantity"), "sum_qty"),
         AggregateSpec("sum", col("l_extendedprice"), "sum_base_price"),
         AggregateSpec("sum", disc_price, "sum_disc_price"),
         AggregateSpec("avg", col("l_quantity"), "avg_qty"),
         AggregateSpec("avg", col("l_discount"), "avg_disc"),
         AggregateSpec("count", None, "count_order")]),
        ["l_returnflag", "l_linestatus"])


def q6(db: TpchDatabase, year_start: date = date(1994, 1, 1),
       year_end: date = date(1995, 1, 1),
       discount: float = 0.06, quantity: float = 24.0,
       parallelism: int = 1) -> Operator:
    """Forecasting revenue change: selective scan + single aggregate."""
    predicate = ((col("l_shipdate") >= year_start)
                 & (col("l_shipdate") < year_end)
                 & Between(col("l_discount"), round(discount - 0.011, 3),
                           round(discount + 0.011, 3))
                 & (col("l_quantity") < quantity))
    scan: Operator = TableScan(
        db["lineitem"],
        columns=["l_shipdate", "l_discount", "l_quantity",
                 "l_extendedprice"],
        predicate=predicate)
    if parallelism > 1:
        scan = Exchange(scan, parallelism)
    revenue = col("l_extendedprice") * col("l_discount")
    return HashAggregate(scan, [],
                         [AggregateSpec("sum", revenue, "revenue")])


def q14(db: TpchDatabase, month_start: date = date(1995, 9, 1),
        month_end: date = date(1995, 10, 1),
        parallelism: int = 1) -> Operator:
    """Promotion effect: share of revenue from PROMO parts.

    lineitem x part with a conditional (CASE) aggregate — the classic
    promo-revenue percentage.
    """
    part_scan: Operator = TableScan(
        db["part"], columns=["p_partkey", "p_type"])
    line_scan: Operator = TableScan(
        db["lineitem"],
        columns=["l_partkey", "l_extendedprice", "l_discount",
                 "l_shipdate"],
        predicate=((col("l_shipdate") >= month_start)
                   & (col("l_shipdate") < month_end)))
    if parallelism > 1:
        line_scan = Exchange(line_scan, parallelism)
    joined = HashJoin(part_scan, line_scan,
                      ["p_partkey"], ["l_partkey"])
    revenue = col("l_extendedprice") * (col("l_discount") * -1.0 + 1.0)
    promo_revenue = Case(
        [(Like(col("p_type"), "PROMO%"), revenue)], default=0.0)
    return HashAggregate(
        joined, [],
        [AggregateSpec("sum", promo_revenue, "promo_revenue"),
         AggregateSpec("sum", revenue, "total_revenue")])


def q3_spec(db: TpchDatabase, segment: str = "BUILDING",
            cutoff: date = date(1995, 3, 15)) -> QuerySpec:
    """Shipping priority: customer x orders x lineitem, top revenue."""
    return QuerySpec(
        tables=[
            TableRef(db["customer"],
                     predicate=col("c_mktsegment") == segment,
                     columns=["c_custkey", "c_mktsegment"]),
            TableRef(db["orders"],
                     predicate=col("o_orderdate") < cutoff,
                     columns=["o_orderkey", "o_custkey", "o_orderdate"]),
            TableRef(db["lineitem"],
                     predicate=col("l_shipdate") > cutoff,
                     columns=["l_orderkey", "l_extendedprice",
                              "l_discount", "l_shipdate"]),
        ],
        joins=[
            JoinEdge("customer", "orders", ["c_custkey"], ["o_custkey"]),
            JoinEdge("orders", "lineitem", ["o_orderkey"], ["l_orderkey"]),
        ],
        group_by=["o_orderkey"],
        aggregates=[AggregateSpec(
            "sum", col("l_extendedprice") * (col("l_discount") * -1.0 + 1.0),
            "revenue")],
        order_by=["o_orderkey"],
        limit=10,
    )


def q5_spec(db: TpchDatabase, region: str = "ASIA",
            year_start: date = date(1994, 1, 1),
            year_end: date = date(1995, 1, 1)) -> QuerySpec:
    """Local supplier volume: five-way join, revenue by nation."""
    return QuerySpec(
        tables=[
            TableRef(db["region"], predicate=col("r_name") == region),
            TableRef(db["nation"]),
            TableRef(db["supplier"], columns=["s_suppkey", "s_nationkey"]),
            TableRef(db["lineitem"],
                     columns=["l_orderkey", "l_suppkey",
                              "l_extendedprice", "l_discount"]),
            TableRef(db["orders"],
                     predicate=((col("o_orderdate") >= year_start)
                                & (col("o_orderdate") < year_end)),
                     columns=["o_orderkey", "o_orderdate"]),
        ],
        joins=[
            JoinEdge("region", "nation", ["r_regionkey"], ["n_regionkey"]),
            JoinEdge("nation", "supplier", ["n_nationkey"], ["s_nationkey"]),
            JoinEdge("supplier", "lineitem", ["s_suppkey"], ["l_suppkey"]),
            JoinEdge("orders", "lineitem", ["o_orderkey"], ["l_orderkey"]),
        ],
        group_by=["n_name"],
        aggregates=[AggregateSpec(
            "sum", col("l_extendedprice") * (col("l_discount") * -1.0 + 1.0),
            "revenue")],
        order_by=["n_name"],
    )


def q10_spec(db: TpchDatabase,
             quarter_start: date = date(1993, 10, 1),
             quarter_end: date = date(1994, 1, 1)) -> QuerySpec:
    """Returned-item reporting: revenue lost to returns, by customer."""
    return QuerySpec(
        tables=[
            TableRef(db["customer"], columns=["c_custkey", "c_name"]),
            TableRef(db["orders"],
                     predicate=((col("o_orderdate") >= quarter_start)
                                & (col("o_orderdate") < quarter_end)),
                     columns=["o_orderkey", "o_custkey", "o_orderdate"]),
            TableRef(db["lineitem"],
                     predicate=col("l_returnflag") == "R",
                     columns=["l_orderkey", "l_extendedprice",
                              "l_discount", "l_returnflag"]),
        ],
        joins=[
            JoinEdge("customer", "orders", ["c_custkey"], ["o_custkey"]),
            JoinEdge("orders", "lineitem", ["o_orderkey"], ["l_orderkey"]),
        ],
        group_by=["c_custkey"],
        aggregates=[AggregateSpec(
            "sum", col("l_extendedprice") * (col("l_discount") * -1.0 + 1.0),
            "revenue")],
        limit=20,
    )


def throughput_mix(db: TpchDatabase, parallelism: int = 4,
                   shipmode_filter: Optional[list[str]] = None
                   ) -> list:
    """The query mix one throughput-test stream cycles through.

    Returns plan *builders* (each call constructs a fresh operator tree,
    since trees are single-use), scan-dominated like the TPC-H
    throughput test.
    """
    modes = shipmode_filter or ["SHIP", "RAIL"]

    def q_scan_orders() -> Operator:
        from repro.workloads.tpch_schema import ORDERS_SCAN_COLUMNS
        scan: Operator = TableScan(db["orders"],
                                   columns=ORDERS_SCAN_COLUMNS)
        if parallelism > 1:
            scan = Exchange(scan, parallelism)
        return HashAggregate(
            scan, ["o_orderstatus"],
            [AggregateSpec("sum", col("o_totalprice"), "total"),
             AggregateSpec("count", None, "n")])

    def q_shipmode() -> Operator:
        scan: Operator = TableScan(
            db["lineitem"],
            columns=["l_shipmode", "l_extendedprice", "l_quantity"],
            predicate=InList(col("l_shipmode"), modes))
        if parallelism > 1:
            scan = Exchange(scan, parallelism)
        return HashAggregate(
            scan, ["l_shipmode"],
            [AggregateSpec("sum", col("l_extendedprice"), "revenue"),
             AggregateSpec("avg", col("l_quantity"), "avg_qty")])

    return [
        lambda: q1(db, parallelism=parallelism),
        lambda: q6(db, parallelism=parallelism),
        q_scan_orders,
        q_shipmode,
    ]
