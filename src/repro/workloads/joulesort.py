"""JouleSort: the balanced energy-efficiency benchmark ([RSR+07]).

The paper's authors proposed JouleSort — records sorted per Joule for a
fixed input size — as the system-level energy-efficiency yardstick.
This driver runs an external sort of fixed-size records through the
engine on any simulated server and reports the records/Joule metric,
letting hardware configurations be compared the way [RSR+07] compared
real machines (experiment A14 pits a wimpy flash node against a brawny
disk server).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import WorkloadError
from repro.relational.executor import ExecutionContext, Executor
from repro.relational.operators import Sort, TableScan
from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType
from repro.storage.manager import StorageManager
from repro.units import MIB

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.raid import RaidArray
    from repro.hardware.server import Server
    from repro.sim.engine import Simulation

#: classic sort-benchmark record: 10-byte key + 90-byte payload
RECORD_BYTES = 100


@dataclass
class JouleSortReport:
    """One JouleSort run's outcome."""

    records: int
    elapsed_seconds: float
    energy_joules: float
    spilled: bool
    average_power_watts: float

    @property
    def records_per_joule(self) -> float:
        """The JouleSort metric."""
        if self.energy_joules <= 0:
            return 0.0
        return self.records / self.energy_joules

    @property
    def records_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.records / self.elapsed_seconds


def run_joulesort(sim: "Simulation", server: "Server",
                  placement: "RaidArray",
                  logical_records: int = 10_000_000,
                  physical_records: int = 20_000,
                  memory_grant_bytes: Optional[float] = None,
                  seed: int = 1757) -> JouleSortReport:
    """Sort ``logical_records`` 100-byte records and meter the machine.

    ``physical_records`` rows are materialized and replay-inflated to
    the logical size; ``memory_grant_bytes`` (logical) below the dataset
    size forces an external sort with spills to the placement.
    """
    if logical_records < physical_records or physical_records < 2:
        raise WorkloadError("need logical >= physical >= 2 records")
    scale = logical_records / physical_records
    storage = StorageManager(sim)
    # 10-byte key modeled as int64 + 90-byte payload as fixed varchar
    table = storage.create_table(
        TableSchema("joulesort_input", [
            Column("key", DataType.INT64, nullable=False),
            Column("payload", DataType.VARCHAR, nullable=False),
        ]), layout="row", placement=placement)
    payload = "x" * 86  # 86 + 4-byte length header = 90 bytes
    table.load([(((i * 2654435761) ^ (i >> 3)) % (1 << 62), payload)
                for i in range(physical_records)])
    grant_physical = (memory_grant_bytes / scale
                      if memory_grant_bytes is not None else None)
    plan = Sort(TableScan(table), ["key"],
                memory_grant_bytes=grant_physical,
                spill_placement=placement)
    ctx = ExecutionContext(sim=sim, server=server, scale=scale,
                           chunk_bytes=32 * MIB)
    result = Executor(ctx).run(plan)
    keys = [row[0] for row in result.rows]
    if keys != sorted(keys):
        raise WorkloadError("sort produced unsorted output")
    return JouleSortReport(
        records=logical_records,
        elapsed_seconds=result.elapsed_seconds,
        energy_joules=result.energy_joules,
        spilled=plan.spilled,
        average_power_watts=result.average_power_watts,
    )
