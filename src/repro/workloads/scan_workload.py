"""The Figure 2 scan microbenchmark.

A column scanner projects five of ORDERS' seven attributes off three
flash SSDs, once uncompressed and once compressed.  The paper's node:
CPU 90 W active, SSDs 5 W aggregate; uncompressed the scan is disk-bound
(10 s, 3.2 s CPU, 338 J), compressed it is CPU-bound and *faster but
more energy-hungry* (5.5 s, 5.1 s CPU, 487 J).  Energy uses the paper's
convention: only busy time is charged ("assuming that an idle CPU does
not consume any power").
"""

from __future__ import annotations

import warnings
from dataclasses import asdict, dataclass
from typing import Any, Optional

from repro.errors import WorkloadError
from repro.hardware.profiles import flash_scan_node
from repro.relational.executor import ExecutionContext, Executor
from repro.relational.operators import TableScan
from repro.relational.operators.base import CostParameters
from repro.sim import Simulation
from repro.storage.manager import StorageManager
from repro.units import GB, MIB
from repro.workloads.tpch_gen import generate_tpch
from repro.workloads.tpch_schema import ORDERS_SCAN_COLUMNS

#: logical size of the projected five columns in the paper's setup:
#: 10 s of disk-bound reading at 240 MB/s aggregate flash bandwidth
PAPER_SCAN_BYTES = 2.4 * GB

#: Figure 2 charges pure byte-processing cost (3.2 s at 2.4 GHz over
#: 2.4 GB = 3.2 cycles/byte) with no per-tuple surcharges
FIG2_PARAMS = CostParameters(cycles_per_scan_byte=3.2,
                             cycles_per_tuple_overhead=0.0)

#: per-column codecs for the compressed configuration: keys and dates
#: delta-coded, low-cardinality status dictionary-coded, the rest LZ —
#: measured ratio ~0.5 with ~3.2 decompression cycles per stored byte,
#: bracketing the paper's operating point (ratio ~0.55, 3.45 cycles/B)
COMPRESSED_CODECS = {
    "o_orderkey": "delta",
    "o_custkey": "lzlite",
    "o_orderstatus": "dictionary",
    "o_totalprice": "lzlite",
    "o_orderdate": "delta",
}


@dataclass
class ScanReport:
    """One configuration's measurements (paper-scale units)."""

    compressed: bool
    total_seconds: float
    cpu_seconds: float
    io_seconds: float
    energy_joules: float          # active (busy-time) accounting, as in Fig 2
    full_energy_joules: float     # wall-style accounting, for reference
    bytes_read: float
    compression_ratio: float

    @property
    def energy_efficiency(self) -> float:
        """Scans per Joule (x1 scan)."""
        if self.energy_joules <= 0:
            return 0.0
        return 1.0 / self.energy_joules

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ScanReport":
        return cls(**data)


def run_scan(compressed: bool = False,
             scale_factor: float = 0.002,
             target_plain_bytes: float = PAPER_SCAN_BYTES,
             codec: Optional[str] = None,
             params: Optional[CostParameters] = None,
             dvfs_fraction: float = 1.0,
             seed: int = 2009) -> ScanReport:
    """Run one Figure 2 configuration and return its measurements.

    Real ORDERS data is generated at ``scale_factor`` and scanned for
    real; replay inflation scales the charged bytes so the plain
    projection equals ``target_plain_bytes`` (the paper's 2.4 GB).
    """
    if scale_factor <= 0 or target_plain_bytes <= 0:
        raise WorkloadError("scale factor and target bytes must be positive")
    sim = Simulation()
    server, array = flash_scan_node(sim)
    server.cpu.set_dvfs(dvfs_fraction)
    storage = StorageManager(sim)
    codecs = None
    if compressed:
        if codec is None:
            per_column = dict(COMPRESSED_CODECS)
        else:
            per_column = {name: codec for name in ORDERS_SCAN_COLUMNS}
        codecs = {"orders": per_column}
    db = generate_tpch(storage, array, scale_factor=scale_factor,
                       layout="column", codecs=codecs, seed=seed)
    orders = db["orders"]
    plain = orders.plain_bytes(ORDERS_SCAN_COLUMNS)
    stored = orders.scan_bytes(ORDERS_SCAN_COLUMNS)
    scale = target_plain_bytes / plain
    ctx = ExecutionContext(sim=sim, server=server,
                           params=params or FIG2_PARAMS,
                           scale=scale, chunk_bytes=32 * MIB)
    result = Executor(ctx).run(
        TableScan(orders, columns=ORDERS_SCAN_COLUMNS))
    io_busy = max(
        (device.busy_seconds() for device in server.storage), default=0.0)
    return ScanReport(
        compressed=compressed,
        total_seconds=result.elapsed_seconds,
        cpu_seconds=result.cpu_busy_seconds,
        io_seconds=io_busy,
        energy_joules=result.active_energy_joules,
        full_energy_joules=result.energy_joules,
        bytes_read=stored * scale,
        compression_ratio=stored / plain,
    )


def run_scan_experiment(*args: Any, **kwargs: Any) -> ScanReport:
    """Deprecated alias of :func:`run_scan`.

    Kept so pre-``repro.runner`` call sites keep working; new code
    should sweep the ``scan`` experiment through
    :class:`~repro.runner.Runner` (which adds process-pool parallelism
    and result caching) or call :func:`run_scan` directly.
    """
    warnings.warn("run_scan_experiment is deprecated; use repro.runner "
                  "(ExperimentSpec/Runner) or run_scan instead",
                  DeprecationWarning, stacklevel=2)
    return run_scan(*args, **kwargs)
