"""TPC-H-style schemas.

ORDERS deliberately has exactly seven attributes, matching the paper's
Figure 2 description ("a query that projects five out of seven
attributes of table ORDERS"); LINEITEM carries the columns the classic
analytic queries touch.
"""

from __future__ import annotations

from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType

#: the five ORDERS attributes the Figure 2 scan projects
ORDERS_SCAN_COLUMNS = ["o_orderkey", "o_custkey", "o_orderstatus",
                       "o_totalprice", "o_orderdate"]


def region_schema() -> TableSchema:
    return TableSchema("region", [
        Column("r_regionkey", DataType.INT32, nullable=False),
        Column("r_name", DataType.VARCHAR, nullable=False),
    ])


def nation_schema() -> TableSchema:
    return TableSchema("nation", [
        Column("n_nationkey", DataType.INT32, nullable=False),
        Column("n_name", DataType.VARCHAR, nullable=False),
        Column("n_regionkey", DataType.INT32, nullable=False),
    ])


def supplier_schema() -> TableSchema:
    return TableSchema("supplier", [
        Column("s_suppkey", DataType.INT64, nullable=False),
        Column("s_name", DataType.VARCHAR, nullable=False),
        Column("s_nationkey", DataType.INT32, nullable=False),
        Column("s_acctbal", DataType.FLOAT64, nullable=False),
    ])


def customer_schema() -> TableSchema:
    return TableSchema("customer", [
        Column("c_custkey", DataType.INT64, nullable=False),
        Column("c_name", DataType.VARCHAR, nullable=False),
        Column("c_nationkey", DataType.INT32, nullable=False),
        Column("c_mktsegment", DataType.VARCHAR, nullable=False),
        Column("c_acctbal", DataType.FLOAT64, nullable=False),
    ])


def part_schema() -> TableSchema:
    return TableSchema("part", [
        Column("p_partkey", DataType.INT64, nullable=False),
        Column("p_name", DataType.VARCHAR, nullable=False),
        Column("p_brand", DataType.VARCHAR, nullable=False),
        Column("p_type", DataType.VARCHAR, nullable=False),
        Column("p_size", DataType.INT32, nullable=False),
        Column("p_retailprice", DataType.FLOAT64, nullable=False),
    ])


def orders_schema() -> TableSchema:
    """Seven attributes, per the paper's scan experiment."""
    return TableSchema("orders", [
        Column("o_orderkey", DataType.INT64, nullable=False),
        Column("o_custkey", DataType.INT64, nullable=False),
        Column("o_orderstatus", DataType.VARCHAR, nullable=False),
        Column("o_totalprice", DataType.FLOAT64, nullable=False),
        Column("o_orderdate", DataType.DATE, nullable=False),
        Column("o_orderpriority", DataType.VARCHAR, nullable=False),
        Column("o_clerk", DataType.VARCHAR, nullable=False),
    ])


def lineitem_schema() -> TableSchema:
    return TableSchema("lineitem", [
        Column("l_orderkey", DataType.INT64, nullable=False),
        Column("l_partkey", DataType.INT64, nullable=False),
        Column("l_suppkey", DataType.INT64, nullable=False),
        Column("l_quantity", DataType.FLOAT64, nullable=False),
        Column("l_extendedprice", DataType.FLOAT64, nullable=False),
        Column("l_discount", DataType.FLOAT64, nullable=False),
        Column("l_tax", DataType.FLOAT64, nullable=False),
        Column("l_returnflag", DataType.VARCHAR, nullable=False),
        Column("l_linestatus", DataType.VARCHAR, nullable=False),
        Column("l_shipdate", DataType.DATE, nullable=False),
        Column("l_shipmode", DataType.VARCHAR, nullable=False),
    ])


def tpch_schemas() -> dict[str, TableSchema]:
    """All schemas by table name."""
    schemas = [region_schema(), nation_schema(), supplier_schema(),
               customer_schema(), part_schema(), orders_schema(),
               lineitem_schema()]
    return {s.name: s for s in schemas}
