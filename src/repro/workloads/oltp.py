"""OLTP insert stream for the logging experiment (paper §5.2).

New-order-style transactions arrive as a Poisson process; each burns a
few CPU microseconds and appends a commit record to the WAL.  Sweeping
the WAL's batching factor trades commit latency for fewer, larger log
flushes — and therefore less log-device energy.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import WorkloadError
from repro.storage.wal import WriteAheadLog

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.cpu import Cpu
    from repro.sim.engine import Simulation


@dataclass
class OltpReport:
    """Outcome of one OLTP stream run."""

    transactions: int
    makespan_seconds: float
    mean_commit_latency_seconds: float
    p99_commit_latency_seconds: float
    log_flushes: int
    log_bytes_flushed: int
    log_device_energy_joules: float
    latencies: list[float] = field(default_factory=list)

    @property
    def throughput_tps(self) -> float:
        if self.makespan_seconds <= 0:
            return 0.0
        return self.transactions / self.makespan_seconds

    @property
    def joules_per_transaction(self) -> float:
        if self.transactions == 0:
            return 0.0
        return self.log_device_energy_joules / self.transactions


def run_oltp_stream(sim: "Simulation", cpu: "Cpu", wal: WriteAheadLog,
                    n_transactions: int = 500,
                    arrival_rate_per_s: float = 1000.0,
                    payload_bytes: int = 160,
                    cycles_per_transaction: float = 40_000.0,
                    seed: int = 7) -> OltpReport:
    """Drive transactions through CPU + WAL and meter the log device."""
    if n_transactions < 1:
        raise WorkloadError("need at least one transaction")
    if arrival_rate_per_s <= 0:
        raise WorkloadError("arrival rate must be positive")
    rng = random.Random(seed)
    latencies: list[float] = []
    device = wal.device
    energy_start = device.energy_joules(0.0, sim.now)
    flushes_start = wal.stats.flushes
    bytes_start = wal.stats.bytes_flushed
    start = sim.now

    def transaction():
        began = sim.now
        yield from cpu.execute(cycles_per_transaction)
        yield wal.append(payload_bytes)
        latencies.append(sim.now - began)

    def open_loop_driver():
        for _ in range(n_transactions):
            yield sim.timeout(rng.expovariate(arrival_rate_per_s))
            sim.spawn(transaction(), name="txn")

    driver = sim.spawn(open_loop_driver(), name="oltp-driver")
    sim.run(until=driver)
    sim.run()  # drain in-flight transactions and final flushes
    end = sim.now
    ordered = sorted(latencies)
    p99 = ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]
    return OltpReport(
        transactions=len(latencies),
        makespan_seconds=end - start,
        mean_commit_latency_seconds=sum(latencies) / len(latencies),
        p99_commit_latency_seconds=p99,
        log_flushes=wal.stats.flushes - flushes_start,
        log_bytes_flushed=wal.stats.bytes_flushed - bytes_start,
        log_device_energy_joules=device.energy_joules(0.0, end)
        - energy_start,
        latencies=latencies,
    )
