"""Deterministic TPC-H-style data generator.

Row counts follow the official per-scale-factor ratios; value
distributions preserve the properties the experiments need (skew,
low-cardinality status/priority/mode columns for dictionary compression,
monotone keys for delta compression, a seven-year date range for range
predicates).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from datetime import date, timedelta
from typing import TYPE_CHECKING, Optional

from repro.errors import WorkloadError
from repro.storage.compression import Codec
from repro.storage.manager import StorageManager, Table
from repro.workloads import tpch_schema

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.raid import RaidArray

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
NATIONS_PER_REGION = 5
SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
SHIP_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
ORDER_STATUSES = ["F", "O", "P"]
RETURN_FLAGS = ["R", "A", "N"]
LINE_STATUSES = ["O", "F"]
PART_TYPES = ["PROMO BRUSHED", "STANDARD POLISHED", "MEDIUM PLATED",
              "ECONOMY ANODIZED", "LARGE BURNISHED", "SMALL BRUSHED"]

DATE_LO = date(1992, 1, 1)
DATE_HI = date(1998, 12, 1)


@dataclass
class TpchDatabase:
    """The generated tables plus generation metadata."""

    scale_factor: float
    tables: dict[str, Table] = field(default_factory=dict)

    def __getitem__(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise WorkloadError(f"no TPC-H table named {name!r}") from None

    def total_scan_bytes(self) -> int:
        """Physical bytes of the whole database."""
        return sum(t.scan_bytes() for t in self.tables.values())


def _row_counts(scale_factor: float) -> dict[str, int]:
    return {
        "region": len(REGIONS),
        "nation": len(REGIONS) * NATIONS_PER_REGION,
        "supplier": max(4, int(10_000 * scale_factor)),
        "customer": max(10, int(150_000 * scale_factor)),
        "part": max(10, int(200_000 * scale_factor)),
        "orders": max(20, int(1_500_000 * scale_factor)),
        "lineitem": max(80, int(6_000_000 * scale_factor)),
    }


def generate_tpch(storage: StorageManager, placement: "RaidArray",
                  scale_factor: float = 0.001,
                  layout: str = "row",
                  codecs: Optional[dict[str, dict[str, Codec | str]]] = None,
                  seed: int = 2009) -> TpchDatabase:
    """Create and load all seven tables.

    ``codecs`` maps table name -> per-column codec dict (column layout
    only).  Generation is deterministic in ``seed``.
    """
    if scale_factor <= 0:
        raise WorkloadError("scale factor must be positive")
    rng = random.Random(seed)
    counts = _row_counts(scale_factor)
    schemas = tpch_schema.tpch_schemas()
    db = TpchDatabase(scale_factor=scale_factor)
    for name, schema in schemas.items():
        table_codecs = (codecs or {}).get(name)
        db.tables[name] = storage.create_table(
            schema, layout=layout, placement=placement,
            codecs=table_codecs if layout == "column" else None)

    _load_region(db["region"])
    _load_nation(db["nation"])
    _load_supplier(db["supplier"], counts["supplier"], rng)
    _load_customer(db["customer"], counts["customer"], rng)
    _load_part(db["part"], counts["part"], rng)
    _load_orders(db["orders"], counts["orders"], counts["customer"], rng)
    _load_lineitem(db["lineitem"], counts["lineitem"], counts["orders"],
                   counts["part"], counts["supplier"], rng)
    return db


def _random_date(rng: random.Random) -> date:
    span = (DATE_HI - DATE_LO).days
    return DATE_LO + timedelta(days=rng.randrange(span))


def _load_region(table: Table) -> None:
    table.load([(i, name) for i, name in enumerate(REGIONS)])


def _load_nation(table: Table) -> None:
    rows = []
    for r in range(len(REGIONS)):
        for i in range(NATIONS_PER_REGION):
            key = r * NATIONS_PER_REGION + i
            rows.append((key, f"NATION_{key:02d}", r))
    table.load(rows)


def _load_supplier(table: Table, n: int, rng: random.Random) -> None:
    n_nations = len(REGIONS) * NATIONS_PER_REGION
    table.load([
        (i, f"Supplier#{i:09d}", rng.randrange(n_nations),
         round(rng.uniform(-999.99, 9999.99), 2))
        for i in range(n)])


def _load_customer(table: Table, n: int, rng: random.Random) -> None:
    n_nations = len(REGIONS) * NATIONS_PER_REGION
    table.load([
        (i, f"Customer#{i:09d}", rng.randrange(n_nations),
         rng.choice(SEGMENTS), round(rng.uniform(-999.99, 9999.99), 2))
        for i in range(n)])


def _load_part(table: Table, n: int, rng: random.Random) -> None:
    table.load([
        (i, f"part {i % 999} name", f"Brand#{rng.randrange(1, 6)}"
         f"{rng.randrange(1, 6)}", rng.choice(PART_TYPES),
         rng.randrange(1, 51), round(900 + (i % 200) + i / 10.0, 2))
        for i in range(n)])


def _load_orders(table: Table, n: int, n_customers: int,
                 rng: random.Random) -> None:
    table.load([
        (i, rng.randrange(n_customers),
         rng.choices(ORDER_STATUSES, weights=[49, 49, 2])[0],
         round(rng.uniform(850.0, 555_000.0), 2),
         _random_date(rng),
         rng.choice(PRIORITIES),
         f"Clerk#{rng.randrange(1000):09d}")
        for i in range(n)])


def _load_lineitem(table: Table, n: int, n_orders: int, n_parts: int,
                   n_suppliers: int, rng: random.Random) -> None:
    rows = []
    order = 0
    while len(rows) < n:
        # 1-7 lines per order, like the real generator
        for _line in range(rng.randrange(1, 8)):
            if len(rows) >= n:
                break
            quantity = float(rng.randrange(1, 51))
            price = round(quantity * rng.uniform(900.0, 1100.0), 2)
            ship = _random_date(rng)
            flag = rng.choices(RETURN_FLAGS, weights=[24, 25, 51])[0]
            status = "F" if ship < date(1995, 6, 17) else "O"
            rows.append((
                order % n_orders,
                rng.randrange(n_parts),
                rng.randrange(n_suppliers),
                quantity,
                price,
                round(rng.choice([0.0, 0.01, 0.02, 0.04, 0.05,
                                  0.06, 0.08, 0.1]), 2),
                round(rng.uniform(0.0, 0.08), 2),
                flag,
                status,
                ship,
                rng.choice(SHIP_MODES),
            ))
        order += 1
    table.load(rows)
