"""The ``BatchTenant`` adapter: a pipeline as serving-fleet tenants.

:func:`~repro.service.fleet.simulate_service` knows nothing about
DAGs — it serves a time-ordered :class:`~repro.service.workload.
ArrivalStream` of per-tenant arrivals.  This module is the bridge: each
pipeline stage becomes one :class:`~repro.service.workload.Tenant`
named ``etl.<pipeline>.<stage>`` with ``batch=True``, one
:class:`~repro.service.workload.QueryClass` shaped like the stage's
tasks, and a *deadline-bearing* SLA — the p95 budget is the gap between
the stage's planned release and the pipeline's freshness deadline, not
a per-query latency target.  Batch arrivals are therefore loose enough
that the packing dispatcher treats them as infinitely patient work, and
the admission limit never rejects them (see
``Tenant.batch`` in :mod:`repro.service.workload`).

:meth:`BatchTenant.attach` merges the stage arrivals (placed by the
:class:`~repro.workloads.pipelines.schedule.EtlScheduler`) into an
interactive stream, preserving the interactive tenants' arrivals
byte-for-byte — merging is a stable sort over concatenated columns, so
an interactive arrival's time, service demand, and tenant identity
never change, which is what makes the zero-interactive equivalence
property (standalone pipeline == ``svc_etl`` at load 0) structural
rather than approximate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.service.spec import FleetSpec
from repro.service.workload import ArrivalStream, QueryClass, Tenant
from repro.workloads.pipelines.schedule import EtlScheduler, StagePlan
from repro.workloads.pipelines.spec import PipelineError, PipelineSpec

#: batch tenants are namespaced under this prefix
BATCH_TENANT_PREFIX = "etl."


def stage_tenant_name(pipeline: str, stage: str) -> str:
    """The tenant (and query-class) name of one pipeline stage."""
    return f"{BATCH_TENANT_PREFIX}{pipeline}.{stage}"


@dataclass(frozen=True)
class BatchTenant:
    """Adapts one :class:`PipelineSpec` into schedulable tenants."""

    pipeline: PipelineSpec
    scheduler: EtlScheduler = field(default_factory=EtlScheduler)

    def tenant_names(self) -> tuple[str, ...]:
        """Stage-tenant names in pipeline declaration order."""
        return tuple(stage_tenant_name(self.pipeline.name, s.name)
                     for s in self.pipeline.stages)

    def attach(self,
               interactive: Optional[ArrivalStream],
               fleet: FleetSpec) -> tuple[ArrivalStream, StagePlan]:
        """Plan the pipeline and merge its arrivals into ``interactive``
        (or build a batch-only stream when ``interactive`` is None).

        Returns the merged stream and the :class:`StagePlan` that
        placed the stage releases.
        """
        plan = self.scheduler.plan(self.pipeline, fleet)

        base_tenants: tuple[Tenant, ...] = ()
        base_classes: tuple[QueryClass, ...] = ()
        if interactive is not None:
            base_tenants = interactive.tenants
            base_classes = interactive.classes
            taken = {t.name for t in base_tenants}
            clash = taken.intersection(self.tenant_names())
            if clash:
                raise PipelineError(
                    "interactive stream already has tenants named "
                    f"{sorted(clash)}")

        tenants = list(base_tenants)
        classes = list(base_classes)
        chunks_t, chunks_s, chunks_tenant, chunks_cls = [], [], [], []
        for j, stage in enumerate(self.pipeline.stages):
            name = stage_tenant_name(self.pipeline.name, stage.name)
            planned = plan.planned(stage.name)
            budget = plan.deadline_seconds - planned.release_seconds
            if budget <= 0:  # pragma: no cover - plan() guarantees slack
                raise PipelineError(
                    f"stage {stage.name!r} releases after the freshness "
                    "deadline")
            classes.append(QueryClass(name, stage.seconds_per_task))
            tenants.append(Tenant(
                name=name,
                rate_per_s=stage.tasks / max(
                    planned.duration_estimate_seconds, 1e-9),
                sla_p95_seconds=budget,
                mix=((name, 1.0),),
                batch=True,
            ))
            times = self.scheduler.task_times(planned, stage)
            chunks_t.append(times)
            chunks_s.append(np.full(stage.tasks, stage.seconds_per_task))
            chunks_tenant.append(np.full(
                stage.tasks, len(base_tenants) + j, dtype=np.int32))
            chunks_cls.append(np.full(
                stage.tasks, len(base_classes) + j, dtype=np.int32))

        if interactive is not None:
            chunks_t.insert(0, interactive.times)
            chunks_s.insert(0, interactive.service_seconds)
            chunks_tenant.insert(0, interactive.tenant_index)
            chunks_cls.insert(0, interactive.class_index)

        times = np.concatenate(chunks_t)
        order = np.argsort(times, kind="stable")
        merged = ArrivalStream(
            tenants=tuple(tenants),
            classes=tuple(classes),
            times=times[order],
            service_seconds=np.concatenate(chunks_s)[order],
            tenant_index=np.concatenate(chunks_tenant)[order].astype(
                np.int32),
            class_index=np.concatenate(chunks_cls)[order].astype(
                np.int32),
        )
        return merged, plan
