"""Batch ETL pipelines as scheduled tenants of the serving fleet.

The paper's §3-§4 agenda asks when data-management work should be
*delayed and consolidated* onto already-hot nodes rather than executed
eagerly.  This package asks it concretely: declarative stage DAGs
(:mod:`~repro.workloads.pipelines.spec`) run as batch tenants of
:func:`~repro.service.fleet.simulate_service` under an
:class:`~repro.workloads.pipelines.schedule.EtlScheduler` (eager /
delayed / consolidated), with per-stage energy attribution through
:mod:`repro.telemetry` spans, a dataset manifest
(:mod:`~repro.workloads.pipelines.catalog`), and the ``svc_etl``
experiment answering the question with gated numbers.

See PIPELINES.md for the author-facing guide.
"""

from repro.workloads.pipelines.catalog import DatasetCatalog, DatasetVersion
from repro.workloads.pipelines.experiments import (default_pipeline,
                                                   etl_aggregate, etl_point)
from repro.workloads.pipelines.report import (ETL_MODES, EtlReport,
                                              EtlSweepResult, StageStats)
from repro.workloads.pipelines.run import run_pipeline
from repro.workloads.pipelines.schedule import (MODES, EtlScheduler,
                                                PlannedStage, StagePlan)
from repro.workloads.pipelines.spec import (KINDS, PipelineError,
                                            PipelineSpec, Stage)
from repro.workloads.pipelines.tenants import BatchTenant, stage_tenant_name

__all__ = [
    "BatchTenant",
    "DatasetCatalog",
    "DatasetVersion",
    "ETL_MODES",
    "EtlReport",
    "EtlScheduler",
    "EtlSweepResult",
    "KINDS",
    "MODES",
    "PipelineError",
    "PipelineSpec",
    "PlannedStage",
    "Stage",
    "StagePlan",
    "StageStats",
    "default_pipeline",
    "etl_aggregate",
    "etl_point",
    "run_pipeline",
    "stage_tenant_name",
]
