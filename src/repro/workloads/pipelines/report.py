"""ETL run results: per-stage outcomes over a serving report.

An :class:`EtlReport` wraps the :class:`~repro.service.report.
ServiceReport` of the merged (interactive + batch) run with the
pipeline-level reading: per-stage completion windows and marginal busy
energy (:class:`StageStats`), the freshness verdict, the plan that
placed the releases, and the dataset versions the load stages
published.  It speaks the unified report protocol
(``to_dict``/``from_dict`` invert exactly), so ``svc_etl`` points
cache, pool, and gate like every other experiment.

:class:`EtlSweepResult` folds the mode × load grid into the headline
the ROADMAP question asks for: the *marginal* Joules each scheduling
mode adds over the no-ETL baseline of the same interactive day —
eager's burst-at-peak premium vs. what delay and consolidation save.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from repro.service.report import ServiceReport
from repro.workloads.pipelines.spec import PipelineError


@dataclass
class StageStats:
    """One stage's measured outcome.

    ``attribution_start/end_seconds`` bound the fleet-time window the
    stage owns in the telemetry tiling (see
    :func:`~repro.workloads.pipelines.run.run_pipeline`): windows are
    consecutive, ordered by stage completion, and tile the whole run,
    which is what makes per-stage span Joules sum exactly to the
    closed-form report.  ``busy_joules`` is the stage's *marginal* busy
    energy — completed work × (peak − idle) draw — exact on a
    homogeneous fleet (estimated with the first class's model
    otherwise).
    """

    stage: str
    kind: str
    tenant: str
    tasks: int
    completed: int
    release_seconds: float
    completion_seconds: float
    deadline_seconds: float
    busy_joules: float
    attribution_start_seconds: float
    attribution_end_seconds: float

    @property
    def duration_seconds(self) -> float:
        """Release-to-last-completion span."""
        return self.completion_seconds - self.release_seconds

    @property
    def met_deadline(self) -> bool:
        return self.completion_seconds <= self.deadline_seconds

    def to_dict(self) -> dict[str, Any]:
        return {
            "stage": self.stage,
            "kind": self.kind,
            "tenant": self.tenant,
            "tasks": self.tasks,
            "completed": self.completed,
            "release_seconds": self.release_seconds,
            "completion_seconds": self.completion_seconds,
            "deadline_seconds": self.deadline_seconds,
            "busy_joules": self.busy_joules,
            "attribution_start_seconds": self.attribution_start_seconds,
            "attribution_end_seconds": self.attribution_end_seconds,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StageStats":
        return cls(**dict(data))


@dataclass
class EtlReport:
    """Outcome of one pipeline run alongside interactive traffic."""

    pipeline: str
    pipeline_hash: str
    #: scheduling mode (``none`` for a no-ETL baseline point)
    mode: str
    freshness_sla_seconds: float
    #: last batch-task completion (0.0 on a baseline point)
    completion_seconds: float
    freshness_met: bool
    #: measured stage starts before a parent stage's last completion
    precedence_violations: int
    stages: list[StageStats] = field(default_factory=list)
    #: the serialized :class:`StagePlan` (None on a baseline point)
    plan: Optional[dict[str, Any]] = None
    #: dataset versions the load stages published
    catalog: list[dict[str, Any]] = field(default_factory=list)
    #: the merged run's serving report
    service: Optional[ServiceReport] = None

    # -- derived ------------------------------------------------------

    @property
    def energy_joules(self) -> float:
        """Whole-run fleet energy (the closed-form report's)."""
        return self.service.energy_joules

    @property
    def makespan_seconds(self) -> float:
        return self.service.makespan_seconds

    @property
    def freshness_slack_seconds(self) -> float:
        """Deadline margin of the last completion (negative = breach)."""
        return self.freshness_sla_seconds - self.completion_seconds

    @property
    def batch_busy_joules(self) -> float:
        """Marginal busy energy of all batch work."""
        return sum(s.busy_joules for s in self.stages)

    @property
    def batch_tenant_names(self) -> set[str]:
        return {s.tenant for s in self.stages}

    @property
    def interactive_slas_met(self) -> bool:
        """Whether every *interactive* tenant's p95 target held."""
        batch = self.batch_tenant_names
        return all(t.sla_met for t in self.service.tenants
                   if t.tenant not in batch)

    @property
    def batch_slas_met(self) -> bool:
        """Whether every stage tenant's deadline-bearing budget held."""
        batch = self.batch_tenant_names
        return all(t.sla_met for t in self.service.tenants
                   if t.tenant in batch)

    def stage_stats(self, name: str) -> StageStats:
        for s in self.stages:
            if s.stage == name:
                return s
        raise PipelineError(
            f"report for {self.pipeline!r} has no stage {name!r}")

    def rows(self) -> list[tuple]:
        """Per-stage rows for the table printers."""
        return [
            (s.stage, s.kind, s.completed, s.release_seconds,
             s.completion_seconds, s.busy_joules,
             "met" if s.met_deadline else "MISSED")
            for s in self.stages
        ]

    # -- serialization ------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "pipeline": self.pipeline,
            "pipeline_hash": self.pipeline_hash,
            "mode": self.mode,
            "freshness_sla_seconds": self.freshness_sla_seconds,
            "completion_seconds": self.completion_seconds,
            "freshness_met": self.freshness_met,
            "precedence_violations": self.precedence_violations,
            "stages": [s.to_dict() for s in self.stages],
            "plan": self.plan,
            "catalog": list(self.catalog),
            "service": (self.service.to_dict()
                        if self.service is not None else None),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EtlReport":
        payload = dict(data)
        payload["stages"] = [StageStats.from_dict(s)
                             for s in data.get("stages", ())]
        service = data.get("service")
        payload["service"] = (ServiceReport.from_dict(service)
                              if service is not None else None)
        payload["catalog"] = list(data.get("catalog", ()))
        return cls(**payload)


#: mode ordering for sweep aggregation (baseline first)
ETL_MODES: tuple[str, ...] = ("none", "eager", "delayed", "consolidated")


@dataclass
class EtlSweepResult:
    """The ``svc_etl`` mode × load grid, folded.

    Parallel arrays (like the hetero and PVC/QED sweeps): point ``i``
    ran scheduling mode ``modes[i]`` at interactive load ``loads[i]``.
    The ``none`` points are no-ETL baselines of the identical
    interactive day — subtracting them isolates each mode's *marginal*
    Joules, which is the number the ROADMAP question is about.
    """

    modes: list[str]
    loads: list[float]
    reports: list[EtlReport]

    def report(self, mode: str, load: float) -> EtlReport:
        for m, ld, r in zip(self.modes, self.loads, self.reports):
            if m == mode and ld == load:
                return r
        ran = ", ".join(f"{m}@{ld}" for m, ld in zip(self.modes,
                                                     self.loads))
        raise PipelineError(
            f"sweep has no point mode={mode!r} load={load}; ran: {ran}")

    def load_levels(self) -> list[float]:
        seen: list[float] = []
        for ld in self.loads:
            if ld not in seen:
                seen.append(ld)
        return seen

    def marginal_joules(self, mode: str, load: float) -> float:
        """Joules ``mode`` added over the same day's no-ETL baseline."""
        return (self.report(mode, load).energy_joules
                - self.report("none", load).energy_joules)

    def headline(self) -> dict[str, Any]:
        """The acceptance numbers, summed across load levels.

        Marginal Joules per scheduling mode, the fractional savings of
        delay and consolidation over eager, and the SLA verdicts that
        make the savings claimable (every freshness deadline and every
        interactive p95 must hold).
        """
        loads = self.load_levels()
        marginal = {
            mode: sum(self.marginal_joules(mode, ld) for ld in loads)
            for mode in ("eager", "delayed", "consolidated")
        }
        etl = [r for r in self.reports if r.mode != "none"]
        return {
            "eager_marginal_joules": marginal["eager"],
            "delayed_marginal_joules": marginal["delayed"],
            "consolidated_marginal_joules": marginal["consolidated"],
            "delayed_savings_fraction":
                1.0 - marginal["delayed"] / marginal["eager"],
            "consolidated_savings_fraction":
                1.0 - marginal["consolidated"] / marginal["eager"],
            "all_freshness_met": all(r.freshness_met for r in etl),
            "interactive_slas_met": all(r.interactive_slas_met
                                        for r in self.reports),
            "precedence_violations": sum(r.precedence_violations
                                         for r in etl),
        }

    def rows(self) -> list[tuple]:
        """Per-point rows: mode, load, Joules, marginal, freshness."""
        out = []
        for m, ld, r in zip(self.modes, self.loads, self.reports):
            marginal = (0.0 if m == "none"
                        else self.marginal_joules(m, ld))
            out.append((m, ld, r.energy_joules, marginal,
                        r.completion_seconds,
                        "met" if r.freshness_met else "MISSED",
                        "met" if r.interactive_slas_met else "MISSED"))
        return out

    def to_dict(self) -> dict[str, Any]:
        return {
            "modes": list(self.modes),
            "loads": list(self.loads),
            "reports": [r.to_dict() for r in self.reports],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EtlSweepResult":
        return cls(
            modes=list(data.get("modes", ())),
            loads=list(data.get("loads", ())),
            reports=[EtlReport.from_dict(r)
                     for r in data.get("reports", ())],
        )
