"""The ETL scheduling policy hook: eager vs. delayed vs. consolidated.

Lang & Patel (arXiv 0909.1767) trade latency headroom for Joules;
batch ETL has the most headroom of anything in the system — an entire
freshness window.  The :class:`EtlScheduler` decides how to spend it,
in one of three modes:

``eager``
    Release every stage as early as its inputs allow, starting the
    instant the day's input data lands (``ready_seconds`` — typically
    in the middle of the interactive peak).  Task groups arrive as
    bursts stacked on top of peak interactive demand — the autoscaler
    books capacity for them at the worst possible moment.

``delayed``
    Shift the whole pipeline to ``offpeak_start_seconds`` (clamped
    earlier if the freshness deadline would be breached).  Started at
    the *edge* of the peak window, the bursts land on a fleet that is
    still booted but newly idle — capacity that is already paid for.

``consolidated``
    Delay, and additionally *pace* each stage's task arrivals so the
    offered batch demand never exceeds
    ``consolidation_node_equivalents`` — the trickle packs onto the
    powered-on floor instead of spiking the autoscaler's demand
    estimate.  Slowest in wall-clock, cheapest in Joules, bounded by
    the same deadline arithmetic.

The scheduler *plans*: stage releases are computed ahead of execution
from slack-inflated duration estimates (the serving engine consumes a
fixed arrival stream, so precedence is enforced by releasing a stage
only after its parents' estimated completions, and verified after the
run by :func:`~repro.workloads.pipelines.run.run_pipeline`, which
counts measured ``precedence_violations``).

>>> from repro.workloads.pipelines.spec import PipelineSpec, Stage
>>> from repro.service.spec import FleetSpec
>>> p = PipelineSpec("mini", (
...     Stage("pull", "extract", tasks=4, seconds_per_task=2.0),
...     Stage("publish", "load", tasks=1, seconds_per_task=1.0,
...           inputs=("pull",)),), freshness_sla_seconds=600.0)
>>> plan = EtlScheduler(mode="delayed",
...                     offpeak_start_seconds=300.0).plan(
...     p, FleetSpec.homogeneous(4))
>>> plan.start_seconds
300.0
>>> plan.release_of("publish") > plan.release_of("pull")
True
>>> plan.completion_estimate_seconds <= p.freshness_sla_seconds
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional

import numpy as np

from repro.service.spec import FleetSpec
from repro.workloads.pipelines.spec import (PipelineError, PipelineSpec,
                                            Stage)

#: the scheduling-mode vocabulary
MODES: tuple[str, ...] = ("eager", "delayed", "consolidated")


@dataclass(frozen=True)
class PlannedStage:
    """One stage's planned release window."""

    stage: str
    #: absolute release instant on the stream clock
    release_seconds: float
    #: slack-inflated duration estimate used for children's releases
    duration_estimate_seconds: float
    #: node-equivalents the estimate assumed the stage can occupy
    parallelism: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "stage": self.stage,
            "release_seconds": self.release_seconds,
            "duration_estimate_seconds": self.duration_estimate_seconds,
            "parallelism": self.parallelism,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PlannedStage":
        return cls(**dict(data))


@dataclass(frozen=True)
class StagePlan:
    """A pipeline's planned releases under one scheduling mode."""

    pipeline: str
    mode: str
    #: absolute instant the first root stage releases
    start_seconds: float
    #: the pipeline's absolute complete-by instant
    deadline_seconds: float
    stages: tuple[PlannedStage, ...]

    def release_of(self, stage: str) -> float:
        for p in self.stages:
            if p.stage == stage:
                return p.release_seconds
        raise PipelineError(
            f"plan for {self.pipeline!r} has no stage {stage!r}")

    def planned(self, stage: str) -> PlannedStage:
        for p in self.stages:
            if p.stage == stage:
                return p
        raise PipelineError(
            f"plan for {self.pipeline!r} has no stage {stage!r}")

    @property
    def completion_estimate_seconds(self) -> float:
        """Estimated absolute completion of the last stage."""
        return max(p.release_seconds + p.duration_estimate_seconds
                   for p in self.stages)

    def to_dict(self) -> dict[str, Any]:
        return {
            "pipeline": self.pipeline,
            "mode": self.mode,
            "start_seconds": self.start_seconds,
            "deadline_seconds": self.deadline_seconds,
            "stages": [p.to_dict() for p in self.stages],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StagePlan":
        return cls(
            pipeline=data["pipeline"],
            mode=data["mode"],
            start_seconds=data["start_seconds"],
            deadline_seconds=data["deadline_seconds"],
            stages=tuple(PlannedStage.from_dict(p)
                         for p in data.get("stages", ())),
        )


@dataclass(frozen=True)
class EtlScheduler:
    """Plans stage releases for one pipeline under one mode.

    ``slack_fraction`` inflates every duration estimate (default 25%),
    and every estimate additionally absorbs one fleet boot time
    (``queue_headroom_seconds``, defaulting to the slowest node
    class's ``boot_seconds``) — a stage's burst can force the
    autoscaler to boot nodes, and its tasks queue for the full boot
    before any of them runs.  A child stage never releases before its
    parents' *inflated* estimated completions, which is what keeps
    measured precedence violations at zero in practice.
    """

    mode: str = "eager"
    #: the instant the pipeline's input data lands; no stage may
    #: release earlier, and ``eager`` starts exactly here
    ready_seconds: float = 0.0
    #: where the delayed/consolidated modes try to start (absolute;
    #: typically the end of the interactive peak window)
    offpeak_start_seconds: float = 0.0
    #: fractional inflation applied to every duration estimate
    slack_fraction: float = 0.25
    #: additive per-stage headroom against boot waves and queueing;
    #: ``None`` means "the fleet's slowest boot time"
    queue_headroom_seconds: Optional[float] = None
    #: offered-demand ceiling (node-equivalents) for paced arrivals in
    #: ``consolidated`` mode
    consolidation_node_equivalents: float = 1.5

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise PipelineError(
                f"unknown scheduling mode {self.mode!r} "
                f"(one of {', '.join(MODES)})")
        if self.ready_seconds < 0:
            raise PipelineError("ready_seconds cannot be negative")
        if self.offpeak_start_seconds < 0:
            raise PipelineError("offpeak_start_seconds cannot be negative")
        if self.slack_fraction < 0:
            raise PipelineError("slack_fraction cannot be negative")
        if self.queue_headroom_seconds is not None \
                and self.queue_headroom_seconds < 0:
            raise PipelineError(
                "queue_headroom_seconds cannot be negative")
        if self.consolidation_node_equivalents <= 0:
            raise PipelineError(
                "consolidation_node_equivalents must be positive")

    def _parallelism(self, stage: Stage, fleet: FleetSpec) -> float:
        cap = fleet.total_capacity
        if self.mode == "consolidated":
            cap = min(cap, self.consolidation_node_equivalents)
        return min(float(stage.tasks), cap)

    def plan(self, pipeline: PipelineSpec, fleet: FleetSpec) -> StagePlan:
        """Compute the release plan; raises :class:`PipelineError` when
        the freshness SLA cannot be met even from time 0."""
        inflate = 1.0 + self.slack_fraction
        headroom = self.queue_headroom_seconds
        if headroom is None:
            headroom = max(c.model.boot_seconds for c in fleet.classes)
        release: dict[str, float] = {}
        duration: dict[str, float] = {}
        planned: dict[str, PlannedStage] = {}
        for stage in pipeline.topological():
            par = self._parallelism(stage, fleet)
            dur = stage.work_seconds / par * inflate + headroom
            rel = max((release[dep] + duration[dep]
                       for dep in stage.inputs), default=0.0)
            release[stage.name] = rel
            duration[stage.name] = dur
            planned[stage.name] = PlannedStage(
                stage=stage.name, release_seconds=rel,
                duration_estimate_seconds=dur, parallelism=par)

        makespan_est = max(release[s.name] + duration[s.name]
                           for s in pipeline.stages)
        deadline = pipeline.freshness_sla_seconds
        latest_start = deadline - makespan_est
        if latest_start < self.ready_seconds:
            raise PipelineError(
                f"pipeline {pipeline.name!r} cannot meet its freshness "
                f"SLA in mode {self.mode!r}: estimated makespan "
                f"{makespan_est:.1f}s exceeds the {deadline:.1f}s "
                "complete-by instant even when started the moment the "
                f"inputs land ({self.ready_seconds:.1f}s)")
        if self.mode == "eager":
            start = self.ready_seconds
        else:
            start = max(self.ready_seconds,
                        min(self.offpeak_start_seconds, latest_start))

        shifted = tuple(
            PlannedStage(stage=p.stage,
                         release_seconds=start + p.release_seconds,
                         duration_estimate_seconds=(
                             p.duration_estimate_seconds),
                         parallelism=p.parallelism)
            for p in (planned[s.name] for s in pipeline.stages))
        return StagePlan(pipeline=pipeline.name, mode=self.mode,
                         start_seconds=start, deadline_seconds=deadline,
                         stages=shifted)

    def task_times(self, planned: PlannedStage,
                   stage: Stage) -> np.ndarray:
        """Arrival instants for one stage's tasks under this mode.

        Eager and delayed release the whole group as a burst at the
        stage's release instant; consolidated paces tasks at an
        inter-arrival of ``seconds_per_task /
        consolidation_node_equivalents``, capping the stage's offered
        demand at the consolidation ceiling.
        """
        if self.mode != "consolidated":
            return np.full(stage.tasks, planned.release_seconds)
        gap = stage.seconds_per_task / self.consolidation_node_equivalents
        return planned.release_seconds + gap * np.arange(stage.tasks)
