"""The ``svc_etl`` experiment: when does delaying batch ETL save Joules?

One point serves one diurnal interactive day (peak then trough,
:func:`~repro.service.workload.build_diurnal_stream`) with the
``nightly_sales`` pipeline attached under one scheduling mode — or, for
``mode="none"``, the identical day with no pipeline at all, the
baseline that isolates each mode's *marginal* Joules.  The sweep grid
is the ROADMAP question operationalized: scheduling mode × interactive
load, with the autoscaled ``power_aware`` fleet reacting to whatever
demand the scheduler creates.

The energy mechanics under measurement: batch work's *busy* Joules are
mode-invariant (energy is utilization-linear), so every measured delta
comes from fleet dynamics — an eager burst in the middle of the peak
inflates the autoscaler's demand estimate and books boot cycles plus
idle tail time at the worst moment; a delayed burst lands at the peak's
edge on nodes that are booted but newly idle; a consolidated trickle
stays under the trough fleet's existing capacity and books nothing.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.service.autoscale import Autoscaler
from repro.service.dispatch import make_policy
from repro.service.fleet import simulate_service
from repro.service.node import NodePowerModel
from repro.service.spec import FleetSpec
from repro.service.workload import build_diurnal_stream
from repro.workloads.pipelines.report import (ETL_MODES, EtlReport,
                                              EtlSweepResult)
from repro.workloads.pipelines.run import run_pipeline
from repro.workloads.pipelines.schedule import EtlScheduler
from repro.workloads.pipelines.spec import (PipelineError, PipelineSpec,
                                            Stage)


def default_pipeline(scale: float = 1.0,
                     freshness_sla_seconds: float = 1680.0
                     ) -> PipelineSpec:
    """The ``nightly_sales`` reference pipeline.

    A classic extract → clean → join → aggregate → load DAG over two
    sources; ``scale`` multiplies every stage's task count (≥ 1), so
    the same shape sweeps from a smoke test to a fleet-filling batch.
    """
    if scale <= 0:
        raise PipelineError("pipeline scale must be positive")

    def n(tasks: int) -> int:
        return max(1, round(tasks * scale))

    return PipelineSpec(
        name="nightly_sales",
        freshness_sla_seconds=freshness_sla_seconds,
        stages=(
            Stage("extract_orders", "extract",
                  tasks=n(8), seconds_per_task=6.0),
            Stage("extract_customers", "extract",
                  tasks=n(4), seconds_per_task=4.0),
            Stage("clean_orders", "clean",
                  tasks=n(8), seconds_per_task=4.0,
                  inputs=("extract_orders",)),
            Stage("join_enrich", "join",
                  tasks=n(8), seconds_per_task=8.0,
                  inputs=("clean_orders", "extract_customers")),
            Stage("aggregate_daily", "aggregate",
                  tasks=n(4), seconds_per_task=6.0,
                  inputs=("join_enrich",)),
            Stage("load_warehouse", "load",
                  tasks=n(2), seconds_per_task=5.0,
                  inputs=("aggregate_daily",), dataset="sales_daily"),
        ),
    )


def etl_point(mode: str = "eager",
              load: float = 1.0,
              day_seconds: float = 1800.0,
              peak_seconds: float = 900.0,
              offpeak_load: float = 0.15,
              etl_scale: float = 1.0,
              freshness_sla_seconds: float = 1680.0,
              etl_ready_seconds: Optional[float] = None,
              offpeak_start_seconds: Optional[float] = None,
              slack_fraction: float = 0.25,
              consolidation_node_equivalents: float = 1.5,
              nodes: int = 16,
              profile: str = "commodity",
              policy: str = "power_aware",
              pack_backlog_seconds: float = 0.2,
              admission_limit_seconds: Optional[float] = None,
              target_utilization: float = 0.55,
              epoch_seconds: float = 30.0,
              min_nodes: int = 2,
              seed: int = 0) -> EtlReport:
    """Serve one diurnal day with the pipeline under one mode.

    ``load`` multiplies the peak-phase interactive rates (the trough
    stays at ``offpeak_load`` of the loaded peak); ``load=0`` drops
    interactive traffic entirely — the configuration the
    zero-interactive equivalence property pins against a standalone
    :func:`~repro.workloads.pipelines.run.run_pipeline`.
    ``mode="none"`` serves the interactive day with no pipeline: the
    baseline for marginal-Joules arithmetic.
    """
    if mode not in ETL_MODES:
        raise PipelineError(
            f"unknown mode {mode!r} (one of {', '.join(ETL_MODES)})")
    if load < 0:
        raise PipelineError("interactive load cannot be negative")

    interactive = None
    if load > 0:
        interactive = build_diurnal_stream(
            day_seconds, peak_seconds,
            peak_load=load, offpeak_load=load * offpeak_load,
            seed=seed)

    fleet = FleetSpec.homogeneous(
        nodes, NodePowerModel.from_server(profile))
    dispatch = make_policy(policy,
                           pack_backlog_seconds=pack_backlog_seconds,
                           admission_limit_seconds=admission_limit_seconds)
    autoscaler = Autoscaler(
        fleet.classes[0].model,
        epoch_seconds=epoch_seconds,
        target_utilization=target_utilization,
        min_nodes=min_nodes,
    ) if dispatch.autoscaled else None

    pipeline = default_pipeline(etl_scale, freshness_sla_seconds)

    if mode == "none":
        if interactive is None:
            raise PipelineError(
                "mode 'none' needs interactive traffic: there is "
                "nothing else to serve")
        report = simulate_service(interactive, fleet=fleet,
                                  policy=dispatch,
                                  autoscaler=autoscaler)
        return EtlReport(
            pipeline=pipeline.name,
            pipeline_hash=pipeline.pipeline_hash,
            mode="none",
            freshness_sla_seconds=freshness_sla_seconds,
            completion_seconds=0.0,
            freshness_met=True,
            precedence_violations=0,
            service=report,
        )

    scheduler = EtlScheduler(
        mode=mode,
        # the day's extract inputs land mid-peak by default: eager
        # runs right there; delayed/consolidated wait for the trough
        ready_seconds=(peak_seconds / 2.0
                       if etl_ready_seconds is None
                       else etl_ready_seconds),
        offpeak_start_seconds=(peak_seconds
                               if offpeak_start_seconds is None
                               else offpeak_start_seconds),
        slack_fraction=slack_fraction,
        consolidation_node_equivalents=consolidation_node_equivalents,
    )
    return run_pipeline(pipeline, fleet=fleet, scheduler=scheduler,
                        interactive=interactive, policy=dispatch,
                        autoscaler=autoscaler)


def etl_aggregate(points: Sequence[Any]) -> EtlSweepResult:
    """Fold finished mode × load points into the sweep result."""
    order = {name: i for i, name in enumerate(ETL_MODES)}
    ordered = sorted(
        points,
        key=lambda p: (float(p.knobs.get("load", 1.0)),
                       order.get(str(p.knobs.get("mode", "eager")),
                                 len(order))))
    return EtlSweepResult(
        modes=[str(p.knobs.get("mode", "eager")) for p in ordered],
        loads=[float(p.knobs.get("load", 1.0)) for p in ordered],
        reports=[p.report for p in ordered])
