"""Declarative batch-ETL pipelines: the ``Stage``/``PipelineSpec`` DAG.

The paper's agenda (§3-§4) asks when data-management work should be
*delayed and consolidated* rather than executed the moment it arrives.
Interactive serving cannot ask that question — a dashboard query
deferred for twenty minutes is a failure — but batch ETL can: a nightly
pipeline does not care *when* it runs, only that its datasets are fresh
by a complete-by instant.  This module declares that kind of work.

A :class:`Stage` is one step of a pipeline (``extract``, ``clean``,
``transform``, ``join``, ``aggregate``, or ``load``) expressed as a
*group of identical tasks*: ``tasks`` executions of
``seconds_per_task`` speed-1 node-seconds each.  Stages name their
``inputs``, forming a DAG; ``load`` stages publish a ``dataset`` into
the :class:`~repro.workloads.pipelines.catalog.DatasetCatalog`.

A :class:`PipelineSpec` is the whole DAG plus one *freshness SLA*: the
absolute stream instant by which the final stage must have completed.
That single number replaces the per-query latency SLAs of interactive
tenants and is what gives the scheduler
(:class:`~repro.workloads.pipelines.schedule.EtlScheduler`) its
latitude — everything before the deadline is free to move.

Specs serialize (``to_dict``/``from_dict`` invert exactly) and hash
stably (:meth:`PipelineSpec.pipeline_hash` — the same canonical-JSON
SHA-256 discipline as :meth:`~repro.service.spec.FleetSpec.fleet_hash`)
so pipelines ride the runner cache and observatory provenance like any
other knob.

>>> p = PipelineSpec(
...     name="mini",
...     stages=(
...         Stage("pull", "extract", tasks=4, seconds_per_task=2.0),
...         Stage("agg", "aggregate", tasks=2, seconds_per_task=3.0,
...               inputs=("pull",)),
...         Stage("publish", "load", tasks=1, seconds_per_task=1.0,
...               inputs=("agg",), dataset="mini_daily"),
...     ),
...     freshness_sla_seconds=600.0,
... )
>>> [s.name for s in p.topological()]
['pull', 'agg', 'publish']
>>> p.total_work_seconds
15.0
>>> p == PipelineSpec.from_dict(p.to_dict())
True
>>> p.pipeline_hash == PipelineSpec.from_dict(p.to_dict()).pipeline_hash
True
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from repro.errors import ReproError


class PipelineError(ReproError):
    """Pipeline declaration, planning, or bookkeeping failure."""


#: the stage vocabulary, in the canonical extract → load order
KINDS: tuple[str, ...] = ("extract", "clean", "transform", "join",
                          "aggregate", "load")


@dataclass(frozen=True)
class Stage:
    """One pipeline step: ``tasks`` identical units of batch work.

    ``inputs`` names the stages whose outputs this stage consumes (its
    DAG parents); only ``load`` stages may carry a ``dataset`` — the
    catalog name their output publishes under (defaults to the stage
    name when omitted on a ``load`` stage).

    >>> Stage("clean_orders", "clean", tasks=8, seconds_per_task=4.0,
    ...       inputs=("extract_orders",)).work_seconds
    32.0
    """

    name: str
    kind: str
    tasks: int
    seconds_per_task: float
    inputs: tuple[str, ...] = ()
    dataset: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.inputs, tuple):
            object.__setattr__(self, "inputs", tuple(self.inputs))
        if not self.name:
            raise PipelineError("stage needs a name")
        if self.kind not in KINDS:
            raise PipelineError(
                f"stage {self.name!r}: unknown kind {self.kind!r} "
                f"(one of {', '.join(KINDS)})")
        if self.tasks < 1:
            raise PipelineError(
                f"stage {self.name!r}: needs at least one task")
        if self.seconds_per_task <= 0:
            raise PipelineError(
                f"stage {self.name!r}: seconds_per_task must be positive")
        if len(set(self.inputs)) != len(self.inputs):
            raise PipelineError(
                f"stage {self.name!r}: duplicate input names")
        if self.dataset is not None and self.kind != "load":
            raise PipelineError(
                f"stage {self.name!r}: only load stages publish a "
                "dataset")

    @property
    def work_seconds(self) -> float:
        """Total speed-1 node-seconds this stage demands."""
        return self.tasks * self.seconds_per_task

    @property
    def published_dataset(self) -> Optional[str]:
        """Catalog name a ``load`` stage publishes (None otherwise)."""
        if self.kind != "load":
            return None
        return self.dataset if self.dataset is not None else self.name

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "tasks": self.tasks,
            "seconds_per_task": self.seconds_per_task,
            "inputs": list(self.inputs),
            "dataset": self.dataset,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Stage":
        return cls(
            name=data["name"],
            kind=data["kind"],
            tasks=data["tasks"],
            seconds_per_task=data["seconds_per_task"],
            inputs=tuple(data.get("inputs", ())),
            dataset=data.get("dataset"),
        )


@dataclass(frozen=True)
class PipelineSpec:
    """A named stage DAG with one freshness SLA.

    ``freshness_sla_seconds`` is the absolute complete-by instant on
    the arrival-stream clock (the simulated "day" starts at 0): every
    stage must have completed by then.  Validation rejects dangling
    inputs and cycles at construction, so a spec that exists is
    runnable.

    >>> PipelineSpec("bad", (Stage("a", "extract", 1, 1.0,
    ...                            inputs=("a",)),), 10.0)
    Traceback (most recent call last):
        ...
    repro.workloads.pipelines.spec.PipelineError: pipeline 'bad': \
cycle through stage 'a'
    """

    name: str
    stages: tuple[Stage, ...]
    freshness_sla_seconds: float

    def __post_init__(self) -> None:
        if not isinstance(self.stages, tuple):
            object.__setattr__(self, "stages", tuple(self.stages))
        if not self.name:
            raise PipelineError("pipeline needs a name")
        if not self.stages:
            raise PipelineError(
                f"pipeline {self.name!r}: needs at least one stage")
        if self.freshness_sla_seconds <= 0:
            raise PipelineError(
                f"pipeline {self.name!r}: freshness SLA must be a "
                "positive complete-by instant")
        names = [s.name for s in self.stages]
        if len(set(names)) != len(names):
            raise PipelineError(
                f"pipeline {self.name!r}: duplicate stage names")
        declared = set(names)
        for s in self.stages:
            for dep in s.inputs:
                if dep not in declared:
                    raise PipelineError(
                        f"pipeline {self.name!r}: stage {s.name!r} "
                        f"consumes undeclared input {dep!r}")
        self.topological()  # raises PipelineError on a cycle

    def stage(self, name: str) -> Stage:
        for s in self.stages:
            if s.name == name:
                return s
        raise PipelineError(
            f"pipeline {self.name!r} has no stage {name!r}")

    def topological(self) -> tuple[Stage, ...]:
        """Stages in dependency order (deterministic Kahn: ties break
        by declaration order, so the result is stable provenance)."""
        index = {s.name: i for i, s in enumerate(self.stages)}
        indegree = {s.name: len(s.inputs) for s in self.stages}
        children: dict[str, list[str]] = {s.name: [] for s in self.stages}
        for s in self.stages:
            for dep in s.inputs:
                children[dep].append(s.name)
        ready = sorted((n for n, d in indegree.items() if d == 0),
                       key=index.__getitem__)
        order: list[Stage] = []
        while ready:
            name = ready.pop(0)
            order.append(self.stages[index[name]])
            grew = False
            for child in children[name]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    ready.append(child)
                    grew = True
            if grew:
                ready.sort(key=index.__getitem__)
        if len(order) != len(self.stages):
            stuck = min((n for n, d in indegree.items() if d > 0),
                        key=index.__getitem__)
            raise PipelineError(
                f"pipeline {self.name!r}: cycle through stage {stuck!r}")
        return tuple(order)

    def roots(self) -> tuple[Stage, ...]:
        """Stages with no inputs (the extract frontier)."""
        return tuple(s for s in self.stages if not s.inputs)

    def sinks(self) -> tuple[Stage, ...]:
        """Stages nothing consumes (the publish frontier)."""
        consumed = {dep for s in self.stages for dep in s.inputs}
        return tuple(s for s in self.stages if s.name not in consumed)

    @property
    def total_work_seconds(self) -> float:
        """Whole-pipeline demand in speed-1 node-seconds."""
        return sum(s.work_seconds for s in self.stages)

    @property
    def total_tasks(self) -> int:
        return sum(s.tasks for s in self.stages)

    def datasets(self) -> tuple[tuple[str, str], ...]:
        """``(dataset, stage)`` pairs the pipeline's loads publish."""
        return tuple((s.published_dataset, s.name) for s in self.stages
                     if s.published_dataset is not None)

    # -- serialization ------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "freshness_sla_seconds": self.freshness_sla_seconds,
            "stages": [s.to_dict() for s in self.stages],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PipelineSpec":
        return cls(
            name=data["name"],
            freshness_sla_seconds=data["freshness_sla_seconds"],
            stages=tuple(Stage.from_dict(s)
                         for s in data.get("stages", ())),
        )

    @property
    def pipeline_hash(self) -> str:
        """Canonical-JSON SHA-256 of the spec: stable across process
        restarts, dict key order, and stage-tuple identity — the same
        discipline as ``ExperimentSpec.spec_hash``."""
        blob = json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()
