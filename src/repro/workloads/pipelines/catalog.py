"""The dataset catalog: a manifest of what pipelines published, when.

Modeled on manifest-driven dataset managers (a ``manifest.json`` of
versioned datasets): every ``load`` stage that completes publishes a
:class:`DatasetVersion` — which dataset, which pipeline and stage
produced it, the producing spec's ``pipeline_hash`` as the version
token, the completion instant, and whether the pipeline's freshness
SLA held.  A :class:`DatasetCatalog` accumulates versions across runs
(append-only, like the observatory's ledgers) and answers the
operator's question: *is this dataset fresh, and which pipeline run
made it so?*

>>> cat = DatasetCatalog()
>>> v = DatasetVersion(dataset="sales_daily", version="abc123def456",
...                    pipeline="nightly_sales", stage="load_warehouse",
...                    produced_at_seconds=1042.5, fresh=True, tasks=2)
>>> cat.publish(v)
>>> cat.latest("sales_daily").fresh
True
>>> cat2 = DatasetCatalog.from_dict(cat.to_dict())
>>> cat2.latest("sales_daily") == cat.latest("sales_daily")
True
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.workloads.pipelines.spec import PipelineError


@dataclass(frozen=True)
class DatasetVersion:
    """One published dataset version (one load-stage completion)."""

    dataset: str
    #: the producing spec's ``pipeline_hash`` prefix — two runs of the
    #: same spec publish the same version token, distinguished by
    #: :attr:`produced_at_seconds`
    version: str
    pipeline: str
    stage: str
    #: completion instant of the publishing stage (stream clock)
    produced_at_seconds: float
    #: whether the producing pipeline met its freshness SLA
    fresh: bool
    #: tasks the publishing stage completed
    tasks: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "dataset": self.dataset,
            "version": self.version,
            "pipeline": self.pipeline,
            "stage": self.stage,
            "produced_at_seconds": self.produced_at_seconds,
            "fresh": self.fresh,
            "tasks": self.tasks,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DatasetVersion":
        return cls(**dict(data))


@dataclass
class DatasetCatalog:
    """An append-only manifest of published dataset versions."""

    entries: list[DatasetVersion] = field(default_factory=list)

    def publish(self, version: DatasetVersion) -> None:
        self.entries.append(version)

    def datasets(self) -> list[str]:
        """Distinct dataset names, first-published order."""
        seen: list[str] = []
        for e in self.entries:
            if e.dataset not in seen:
                seen.append(e.dataset)
        return seen

    def versions(self, dataset: str) -> list[DatasetVersion]:
        return [e for e in self.entries if e.dataset == dataset]

    def latest(self, dataset: str) -> DatasetVersion:
        """The most recently published version of ``dataset``."""
        versions = self.versions(dataset)
        if not versions:
            raise PipelineError(
                f"catalog has no dataset {dataset!r}; published: "
                f"{', '.join(self.datasets()) or '(none)'}")
        return versions[-1]

    def fresh(self, dataset: str) -> bool:
        """Whether the latest version of ``dataset`` met freshness."""
        return self.latest(dataset).fresh

    # -- serialization ------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {"entries": [e.to_dict() for e in self.entries]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DatasetCatalog":
        return cls(entries=[DatasetVersion.from_dict(e)
                            for e in data.get("entries", ())])

    def save(self, path: str) -> None:
        """Write the manifest as JSON (the ``manifest.json`` idiom)."""
        with open(path, "w", encoding="utf-8") as f:
            json.dump(self.to_dict(), f, indent=2, sort_keys=True)
            f.write("\n")

    @classmethod
    def load(cls, path: str) -> "DatasetCatalog":
        with open(path, encoding="utf-8") as f:
            return cls.from_dict(json.load(f))
