"""Run one pipeline on the serving fleet and read back the ETL story.

:func:`run_pipeline` is the pipelines layer's ``simulate_service``:
plan the stage releases (:class:`~repro.workloads.pipelines.schedule.
EtlScheduler`), merge the stage arrivals into the interactive stream
(:class:`~repro.workloads.pipelines.tenants.BatchTenant`), serve the
merged stream, then derive the pipeline-level outcome from the
per-arrival latencies the engines expose as runtime metadata
(:attr:`~repro.service.report.ServiceReport.latencies`): per-stage
completion windows, the freshness verdict, measured precedence
violations, and the dataset versions the load stages published.

**Per-stage energy attribution.**  When a :func:`repro.telemetry.
capture` collector is installed, the serving run executes on the
reference loop with the device mirror, and this module opens one root
span ``pipeline.<name>.<stage>`` per stage *after* the run — span
Joules are integrals of the mirrored device power series over the span
window, so post-hoc spans are exact.  The windows are the consecutive
completion-ordered tiles of ``[0, makespan]`` (each stage owns the
fleet interval it closes, the last stage's tile extends to the end of
the run), so the per-stage Joules sum to the closed-form report's
``energy_joules`` at 1e-9 — the same reconciliation contract the
telemetry mirror itself is pinned to.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.service.autoscale import Autoscaler
from repro.service.fleet import simulate_service
from repro.service.spec import FleetSpec
from repro.service.workload import ArrivalStream
from repro.workloads.pipelines.catalog import DatasetCatalog, DatasetVersion
from repro.workloads.pipelines.report import EtlReport, StageStats
from repro.workloads.pipelines.schedule import EtlScheduler, StagePlan
from repro.workloads.pipelines.spec import PipelineError, PipelineSpec
from repro.workloads.pipelines.tenants import BatchTenant, stage_tenant_name

#: telemetry root spans are namespaced under this prefix
PIPELINE_SPAN_PREFIX = "pipeline."


def run_pipeline(pipeline: PipelineSpec,
                 fleet: Optional[FleetSpec] = None,
                 scheduler: Optional[EtlScheduler] = None,
                 interactive: Optional[ArrivalStream] = None,
                 policy="power_aware",
                 autoscaler: Optional[Autoscaler] = None,
                 engine: str = "auto",
                 catalog: Optional[DatasetCatalog] = None,
                 **policy_kwargs) -> EtlReport:
    """Serve ``pipeline`` (plus ``interactive`` traffic, if any) and
    return the :class:`EtlReport`.

    ``catalog`` (optional) receives the published
    :class:`DatasetVersion` entries in addition to the copies embedded
    in the report.  Fault schedules are not accepted here — batch work
    under chaos routes through ``simulate_service(faults=...)``
    directly (see OPERATIONS.md on freshness during incidents).
    """
    if fleet is None:
        fleet = FleetSpec.homogeneous(16)
    if scheduler is None:
        scheduler = EtlScheduler()
    adapter = BatchTenant(pipeline, scheduler)
    merged, plan = adapter.attach(interactive, fleet)

    report = simulate_service(merged, fleet=fleet, policy=policy,
                              autoscaler=autoscaler, engine=engine,
                              **policy_kwargs)
    latencies = report.latencies
    if latencies is None:  # pragma: no cover - both engines attach them
        raise PipelineError(
            "serving engine did not expose per-arrival latencies")

    n_base = len(merged.tenants) - len(pipeline.stages)
    model = fleet.classes[0].model
    scale = 1.0 / model.speed_factor
    marginal_watts = model.peak_watts - model.idle_watts

    times = merged.times
    tenant_idx = merged.tenant_index
    stage_completion: dict[str, float] = {}
    stage_last: dict[str, float] = {}
    stage_starts: dict[str, np.ndarray] = {}
    raw: list[dict] = []
    for j, stage in enumerate(pipeline.stages):
        mask = tenant_idx == n_base + j
        lat = latencies[mask]
        done = lat == lat  # batch arrivals are admission-exempt, but
        completed = int(done.sum())  # guard against NaN all the same
        completions = times[mask][done] + lat[done]
        last = float(completions.max()) if completed else float("nan")
        scaled = stage.seconds_per_task * scale
        stage_completion[stage.name] = last
        stage_last[stage.name] = last
        stage_starts[stage.name] = completions - scaled
        raw.append({
            "stage": stage, "completed": completed, "last": last,
            "busy_joules": completed * scaled * marginal_watts,
        })

    violations = 0
    for stage in pipeline.stages:
        parents_last = max((stage_last[d] for d in stage.inputs),
                          default=float("-inf"))
        if parents_last == float("-inf"):
            continue
        starts = stage_starts[stage.name]
        violations += int((starts < parents_last - 1e-9).sum())

    completion = max(stage_completion.values())
    fresh = completion <= pipeline.freshness_sla_seconds

    entries = []
    for stage in pipeline.stages:
        ds = stage.published_dataset
        if ds is None:
            continue
        entries.append(DatasetVersion(
            dataset=ds,
            version=pipeline.pipeline_hash[:12],
            pipeline=pipeline.name,
            stage=stage.name,
            produced_at_seconds=stage_completion[stage.name],
            fresh=(stage_completion[stage.name]
                   <= pipeline.freshness_sla_seconds),
            tasks=pipeline.stage(stage.name).tasks,
        ))
        if catalog is not None:
            catalog.publish(entries[-1])

    tiles = _attribution_tiles(pipeline, plan, stage_completion,
                               report.makespan_seconds)
    _open_stage_spans(pipeline, tiles)

    stages = []
    for j, (stage, info) in enumerate(zip(pipeline.stages, raw)):
        start, end = tiles[stage.name]
        stages.append(StageStats(
            stage=stage.name,
            kind=stage.kind,
            tenant=stage_tenant_name(pipeline.name, stage.name),
            tasks=stage.tasks,
            completed=info["completed"],
            release_seconds=plan.release_of(stage.name),
            completion_seconds=info["last"],
            deadline_seconds=pipeline.freshness_sla_seconds,
            busy_joules=info["busy_joules"],
            attribution_start_seconds=start,
            attribution_end_seconds=end,
        ))

    return EtlReport(
        pipeline=pipeline.name,
        pipeline_hash=pipeline.pipeline_hash,
        mode=scheduler.mode,
        freshness_sla_seconds=pipeline.freshness_sla_seconds,
        completion_seconds=completion,
        freshness_met=fresh,
        precedence_violations=violations,
        stages=stages,
        plan=plan.to_dict(),
        catalog=[e.to_dict() for e in entries],
        service=report,
    )


def _attribution_tiles(pipeline: PipelineSpec,
                       plan: StagePlan,
                       completion: dict[str, float],
                       makespan: float) -> dict[str, tuple[float, float]]:
    """Consecutive completion-ordered windows tiling ``[0, makespan]``.

    Stage ``k`` (in completion order) owns ``[completion[k-1],
    completion[k]]``; the first tile reaches back to time 0 and the
    last extends to the makespan, so the tiles partition the whole run
    and integrals over them sum to the whole-run integral exactly.
    """
    order = sorted(pipeline.stages,
                   key=lambda s: (completion[s.name], s.name))
    tiles: dict[str, tuple[float, float]] = {}
    prev = 0.0
    for i, stage in enumerate(order):
        end = makespan if i == len(order) - 1 \
            else max(prev, completion[stage.name])
        tiles[stage.name] = (prev, end)
        prev = end
    return tiles


def _open_stage_spans(pipeline: PipelineSpec,
                      tiles: dict[str, tuple[float, float]]) -> None:
    """Materialize the attribution tiles as telemetry root spans.

    No-op without an installed collector.  Spans are opened and closed
    immediately with explicit window bounds; the collector integrates
    the mirrored device power series over each window at finalize, so
    opening them after the run loses nothing.
    """
    from repro.telemetry import current_collector
    collector = current_collector()
    if collector is None:
        return
    for stage in pipeline.stages:
        start, end = tiles[stage.name]
        span = collector.stack.open(
            f"{PIPELINE_SPAN_PREFIX}{pipeline.name}.{stage.name}",
            start, collector.busy_snapshot(), root=True)
        collector.stack.close(span, end, collector.busy_snapshot())
