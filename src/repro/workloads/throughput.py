"""TPC-H-style throughput test (the Figure 1 driver).

Multiple client streams issue analytic queries concurrently against one
server; the report carries makespan, energy and the efficiency metric
the paper plots (work done per Joule).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional, Sequence

from repro.errors import WorkloadError
from repro.relational.executor import ExecutionContext, Executor
from repro.relational.operators import Operator
from repro.relational.operators.base import CostParameters
from repro.units import MB

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.server import Server
    from repro.sim.engine import Simulation

PlanBuilder = Callable[[], Operator]


@dataclass
class ThroughputReport:
    """Outcome of one throughput test."""

    streams: int
    queries_completed: int
    makespan_seconds: float
    energy_joules: float
    breakdown_joules: dict[str, float] = field(default_factory=dict)
    query_seconds: list[float] = field(default_factory=list)

    @property
    def average_power_watts(self) -> float:
        if self.makespan_seconds <= 0:
            return 0.0
        return self.energy_joules / self.makespan_seconds

    @property
    def queries_per_hour(self) -> float:
        if self.makespan_seconds <= 0:
            return 0.0
        return self.queries_completed * 3600.0 / self.makespan_seconds

    @property
    def performance(self) -> float:
        """Queries per second (the paper's 'performance' axis inverse)."""
        if self.makespan_seconds <= 0:
            return 0.0
        return self.queries_completed / self.makespan_seconds

    @property
    def energy_efficiency(self) -> float:
        """Queries per Joule (the paper's Figure 1 right axis)."""
        if self.energy_joules <= 0:
            return 0.0
        return self.queries_completed / self.energy_joules

    def to_dict(self) -> dict[str, Any]:
        return {
            "streams": self.streams,
            "queries_completed": self.queries_completed,
            "makespan_seconds": self.makespan_seconds,
            "energy_joules": self.energy_joules,
            "breakdown_joules": dict(self.breakdown_joules),
            "query_seconds": list(self.query_seconds),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ThroughputReport":
        return cls(**data)


def run_throughput(sim: "Simulation", server: "Server",
                   mix: Sequence[PlanBuilder],
                   streams: int = 4,
                   queries_per_stream: int = 4,
                   scale: float = 1.0,
                   chunk_bytes: float = 56 * MB,
                   params: Optional[CostParameters] = None
                   ) -> ThroughputReport:
    """Run the throughput test to completion and meter it.

    Each stream cycles through ``mix`` starting at its own offset (the
    TPC-H throughput test permutes query order per stream), so different
    streams hit different tables simultaneously and the disks see
    interleaved access patterns.
    """
    if not mix:
        raise WorkloadError("query mix cannot be empty")
    if streams < 1 or queries_per_stream < 1:
        raise WorkloadError("need at least one stream and one query")
    ctx = ExecutionContext(sim=sim, server=server, scale=scale,
                           chunk_bytes=chunk_bytes,
                           params=params or CostParameters())
    executor = Executor(ctx)
    query_seconds: list[float] = []

    def stream(stream_no: int):
        for k in range(queries_per_stream):
            builder = mix[(stream_no + k) % len(mix)]
            started = sim.now
            yield from executor.run_process(builder())
            query_seconds.append(sim.now - started)

    start = sim.now
    processes = [sim.spawn(stream(i), name=f"stream-{i}")
                 for i in range(streams)]
    sim.run(until=sim.all_of(processes))
    end = sim.now
    return ThroughputReport(
        streams=streams,
        queries_completed=streams * queries_per_stream,
        makespan_seconds=end - start,
        energy_joules=server.meter.energy_joules(start, end),
        breakdown_joules=server.meter.breakdown_joules(start, end),
        query_seconds=query_seconds,
    )


def run_throughput_test(*args: Any, **kwargs: Any) -> ThroughputReport:
    """Deprecated alias of :func:`run_throughput`.

    Kept so pre-``repro.runner`` call sites keep working; new code
    should build an :class:`~repro.runner.ExperimentSpec` (or call
    :func:`run_throughput` directly when driving its own simulation).
    """
    warnings.warn("run_throughput_test is deprecated; use repro.runner "
                  "(ExperimentSpec/Runner) or run_throughput instead",
                  DeprecationWarning, stacklevel=2)
    return run_throughput(*args, **kwargs)
