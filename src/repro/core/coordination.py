"""Coordinating the DBMS with platform power management (paper §5.3).

"Consider a hardware controller that changes the voltage and frequency
in parallel with the query optimizer which is making decisions based on
current runtime power states.  If these two do not communicate and
coordinate their choices, they may end up working cross purposes
[RRT+08].  The software needs to ensure there is an efficient handoff
from one controller to another."

:class:`DvfsGovernor` is a reactive utilization-driven frequency
controller; :class:`PowerCoordinator` is the handoff protocol: the
query engine can *ask* what frequency will actually be in effect
(adaptive planning) or *request* a frequency for a query's duration
(negotiated planning).  Experiment A13 shows the cross-purposes failure
and both remedies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Optional

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.cpu import Cpu


@dataclass(frozen=True)
class GovernorPolicy:
    """Reactive ondemand-style thresholds."""

    low_utilization: float = 0.3
    high_utilization: float = 0.7
    epoch_seconds: float = 10.0

    def __post_init__(self) -> None:
        if not 0 <= self.low_utilization < self.high_utilization <= 1:
            raise ReproError("need 0 <= low < high <= 1")
        if self.epoch_seconds <= 0:
            raise ReproError("epoch must be positive")


class DvfsGovernor:
    """A hardware frequency controller reacting to observed utilization.

    Steps down one P-state after a low-utilization epoch, up one after a
    high-utilization epoch.  The database does not control it — unless
    it goes through the :class:`PowerCoordinator`.
    """

    def __init__(self, cpu: "Cpu",
                 policy: GovernorPolicy = GovernorPolicy()) -> None:
        self.cpu = cpu
        self.policy = policy
        self._levels = sorted(cpu.spec.dvfs_fractions, reverse=True)
        self._pinned_by: Optional[str] = None
        self._busy_baseline = cpu.busy_seconds()
        self._epoch_started = cpu.sim.now
        self.transitions = 0

    # -- observation --------------------------------------------------------
    def observe_epoch(self) -> float:
        """Utilization since the last observation; resets the window."""
        now = self.cpu.sim.now
        busy = self.cpu.busy_seconds()
        elapsed = now - self._epoch_started
        capacity = elapsed * self.cpu.spec.cores
        utilization = ((busy - self._busy_baseline) / capacity
                       if capacity > 0 else 0.0)
        self._busy_baseline = busy
        self._epoch_started = now
        return min(1.0, utilization)

    def react(self) -> float:
        """One governor step: observe, maybe shift a P-state.

        Returns the frequency fraction now in effect.  Skips shifting
        while the CPU is busy (a frequency change mid-burst would be
        unsafe) or while a coordinator pin is held.
        """
        utilization = self.observe_epoch()
        if self._pinned_by is not None or self.cpu.busy_units > 0:
            return self.cpu.dvfs_fraction
        current = self._levels.index(self.cpu.dvfs_fraction)
        target = current
        if utilization < self.policy.low_utilization:
            target = min(len(self._levels) - 1, current + 1)
        elif utilization > self.policy.high_utilization:
            target = max(0, current - 1)
        if target != current:
            self.cpu.set_dvfs(self._levels[target])
            self.transitions += 1
        return self.cpu.dvfs_fraction

    def run(self, horizon_seconds: float) -> Generator:
        """Periodic governor loop (process)."""
        sim = self.cpu.sim
        end = sim.now + horizon_seconds
        while sim.now < end:
            yield sim.timeout(min(self.policy.epoch_seconds,
                                  end - sim.now))
            self.react()

    # -- pinning (used by the coordinator) -----------------------------------
    def pin(self, owner: str, fraction: float) -> None:
        if self._pinned_by is not None and self._pinned_by != owner:
            raise ReproError(
                f"governor already pinned by {self._pinned_by!r}")
        if fraction not in self.cpu.spec.dvfs_fractions:
            raise ReproError(f"{fraction} is not an offered P-state")
        self._pinned_by = owner
        if self.cpu.dvfs_fraction != fraction:
            self.cpu.set_dvfs(fraction)
            self.transitions += 1

    def unpin(self, owner: str) -> None:
        if self._pinned_by != owner:
            raise ReproError(f"{owner!r} does not hold the pin")
        self._pinned_by = None

    @property
    def pinned(self) -> bool:
        return self._pinned_by is not None


class PowerCoordinator:
    """The §5.3 handoff between the DBMS and the platform governor."""

    def __init__(self, governor: DvfsGovernor) -> None:
        self.governor = governor

    def effective_frequency_fraction(self) -> float:
        """What the optimizer should plan against (adaptive mode)."""
        return self.governor.cpu.dvfs_fraction

    def request_frequency(self, owner: str, fraction: float) -> None:
        """Negotiated mode: hold a P-state for a query's duration."""
        self.governor.pin(owner, fraction)

    def release(self, owner: str) -> None:
        """Return control to the reactive governor."""
        self.governor.unpin(owner)
