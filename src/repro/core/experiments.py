"""The paper's published experiments as library functions.

Shared by the benchmark harness, the examples, and the integration
tests, so the numbers in EXPERIMENTS.md come from exactly one code
path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.profiler import EnergyProfile, ProfilePoint
from repro.hardware.profiles import FIG1_DISK_COUNTS, dl785
from repro.sim import Simulation
from repro.storage.manager import StorageManager
from repro.workloads.scan_workload import ScanReport, run_scan_experiment
from repro.workloads.throughput import ThroughputReport, run_throughput_test
from repro.workloads.tpch_gen import generate_tpch
from repro.workloads.tpch_queries import throughput_mix


@dataclass
class Figure1Result:
    """Time and energy efficiency vs. number of disks."""

    disk_counts: list[int]
    reports: list[ThroughputReport]
    profile: EnergyProfile = field(init=False)

    def __post_init__(self) -> None:
        self.profile = EnergyProfile(knob_name="disks")
        for n, report in zip(self.disk_counts, self.reports):
            self.profile.points.append(ProfilePoint(
                knob_value=n,
                seconds=report.makespan_seconds,
                energy_joules=report.energy_joules,
                work_done=report.queries_completed,
            ))

    @property
    def most_efficient_disks(self) -> int:
        return self.profile.best_efficiency().knob_value

    @property
    def fastest_disks(self) -> int:
        return self.profile.best_performance().knob_value

    def tradeoff(self) -> tuple[float, float]:
        """(efficiency gain, performance drop) of best-EE vs. fastest."""
        return self.profile.tradeoff()

    def rows(self) -> list[tuple]:
        """Paper-style rows: disks, time, power, energy efficiency."""
        return [
            (n, r.makespan_seconds, r.average_power_watts,
             r.energy_efficiency)
            for n, r in zip(self.disk_counts, self.reports)
        ]


def run_figure1(disk_counts: Sequence[int] = FIG1_DISK_COUNTS,
                physical_scale_factor: float = 0.002,
                logical_scale_factor: float = 300.0,
                streams: int = 6,
                queries_per_stream: int = 3,
                parallelism: int = 4,
                spindle_groups: int = 12) -> Figure1Result:
    """Reproduce Figure 1: TPC-H throughput test vs. number of disks.

    Data is generated once per disk count at ``physical_scale_factor``
    and replayed as if at ``logical_scale_factor`` (the audited system
    ran SF 300).  Hardware is the DL785 profile with RAID 5.
    """
    reports = []
    for n_disks in disk_counts:
        sim = Simulation()
        server, array = dl785(sim, n_disks=n_disks,
                              spindle_groups=spindle_groups)
        storage = StorageManager(sim)
        db = generate_tpch(storage, array,
                           scale_factor=physical_scale_factor)
        mix = throughput_mix(db, parallelism=parallelism)
        reports.append(run_throughput_test(
            sim, server, mix, streams=streams,
            queries_per_stream=queries_per_stream,
            scale=logical_scale_factor / physical_scale_factor))
    return Figure1Result(disk_counts=list(disk_counts), reports=reports)


@dataclass
class Figure2Result:
    """Uncompressed vs. compressed scan on the flash node."""

    uncompressed: ScanReport
    compressed: ScanReport

    @property
    def speedup(self) -> float:
        """How much faster the compressed scan runs (paper: ~2x)."""
        return self.uncompressed.total_seconds / self.compressed.total_seconds

    @property
    def energy_ratio(self) -> float:
        """Compressed / uncompressed energy (paper: 487/338 = 1.44)."""
        return self.compressed.energy_joules / self.uncompressed.energy_joules

    @property
    def inversion_holds(self) -> bool:
        """The paper's headline: the faster plan uses more energy."""
        return (self.compressed.total_seconds
                < self.uncompressed.total_seconds
                and self.compressed.energy_joules
                > self.uncompressed.energy_joules)

    def rows(self) -> list[tuple]:
        """Paper-style rows: config, total s, CPU s, Joules."""
        return [
            ("uncompressed", self.uncompressed.total_seconds,
             self.uncompressed.cpu_seconds,
             self.uncompressed.energy_joules),
            ("compressed", self.compressed.total_seconds,
             self.compressed.cpu_seconds,
             self.compressed.energy_joules),
        ]


def run_figure2(scale_factor: float = 0.002,
                seed: int = 2009) -> Figure2Result:
    """Reproduce Figure 2: the compressed-vs-uncompressed flash scan."""
    return Figure2Result(
        uncompressed=run_scan_experiment(compressed=False,
                                         scale_factor=scale_factor,
                                         seed=seed),
        compressed=run_scan_experiment(compressed=True,
                                       scale_factor=scale_factor,
                                       seed=seed),
    )
