"""The paper's published experiments as library functions.

Shared by the benchmark harness, the examples, and the integration
tests, so the numbers in EXPERIMENTS.md come from exactly one code
path.

The sweep *machinery* lives in :mod:`repro.runner`: this module only
defines the physics of a single sweep point (:func:`figure1_point`,
:func:`figure2_point`) and the figure-level result containers.  The
historical entry points :func:`run_figure1` / :func:`run_figure2` are
kept as deprecated shims that route through a serial
:class:`~repro.runner.Runner`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.profiler import EnergyProfile, ProfilePoint
from repro.hardware.profiles import FIG1_DISK_COUNTS, dl785
from repro.sim import Simulation
from repro.storage.manager import StorageManager
from repro.workloads.scan_workload import ScanReport, run_scan
from repro.workloads.throughput import ThroughputReport, run_throughput
from repro.workloads.tpch_gen import generate_tpch
from repro.workloads.tpch_queries import throughput_mix


@dataclass
class Figure1Result:
    """Time and energy efficiency vs. number of disks."""

    disk_counts: list[int]
    reports: list[ThroughputReport]
    profile: EnergyProfile = field(init=False)

    def __post_init__(self) -> None:
        self.profile = EnergyProfile(knob_name="disks")
        for n, report in zip(self.disk_counts, self.reports):
            self.profile.points.append(ProfilePoint(
                knob_value=n,
                seconds=report.makespan_seconds,
                energy_joules=report.energy_joules,
                work_done=report.queries_completed,
            ))

    @property
    def most_efficient_disks(self) -> int:
        return self.profile.best_efficiency().knob_value

    @property
    def fastest_disks(self) -> int:
        return self.profile.best_performance().knob_value

    def tradeoff(self) -> tuple[float, float]:
        """(efficiency gain, performance drop) of best-EE vs. fastest."""
        return self.profile.tradeoff()

    def rows(self) -> list[tuple]:
        """Paper-style rows: disks, time, power, energy efficiency."""
        return [
            (n, r.makespan_seconds, r.average_power_watts,
             r.energy_efficiency)
            for n, r in zip(self.disk_counts, self.reports)
        ]

    def to_dict(self) -> dict[str, Any]:
        return {
            "disk_counts": list(self.disk_counts),
            "reports": [r.to_dict() for r in self.reports],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Figure1Result":
        return cls(disk_counts=list(data["disk_counts"]),
                   reports=[ThroughputReport.from_dict(r)
                            for r in data["reports"]])


def figure1_point(disks: int,
                  physical_scale_factor: float = 0.002,
                  logical_scale_factor: float = 300.0,
                  streams: int = 6,
                  queries_per_stream: int = 3,
                  parallelism: int = 4,
                  spindle_groups: int = 12,
                  seed: int = 2009) -> ThroughputReport:
    """One Figure 1 sweep point: the TPC-H throughput test at ``disks``.

    Data is generated at ``physical_scale_factor`` and replayed as if
    at ``logical_scale_factor`` (the audited system ran SF 300).
    Hardware is the DL785 profile with RAID 5.
    """
    sim = Simulation()
    server, array = dl785(sim, n_disks=disks,
                          spindle_groups=spindle_groups)
    storage = StorageManager(sim)
    db = generate_tpch(storage, array,
                       scale_factor=physical_scale_factor, seed=seed)
    mix = throughput_mix(db, parallelism=parallelism)
    return run_throughput(
        sim, server, mix, streams=streams,
        queries_per_stream=queries_per_stream,
        scale=logical_scale_factor / physical_scale_factor)


def run_figure1(disk_counts: Sequence[int] = FIG1_DISK_COUNTS,
                physical_scale_factor: float = 0.002,
                logical_scale_factor: float = 300.0,
                streams: int = 6,
                queries_per_stream: int = 3,
                parallelism: int = 4,
                spindle_groups: int = 12) -> Figure1Result:
    """Deprecated: reproduce Figure 1 through a serial, uncached Runner.

    Prefer building the spec yourself — it unlocks the process pool and
    the on-disk result cache::

        from repro.runner import ExperimentSpec, Runner
        run = Runner(workers=4).run(ExperimentSpec("fig1"))
        result = run.aggregate()          # a Figure1Result
    """
    warnings.warn("run_figure1 is deprecated; use repro.runner "
                  "(ExperimentSpec('fig1') + Runner) instead",
                  DeprecationWarning, stacklevel=2)
    from repro.runner import ExperimentSpec, Runner
    spec = ExperimentSpec("fig1", knobs={
        "disks": list(disk_counts),
        "physical_scale_factor": physical_scale_factor,
        "logical_scale_factor": logical_scale_factor,
        "streams": streams,
        "queries_per_stream": queries_per_stream,
        "parallelism": parallelism,
        "spindle_groups": spindle_groups,
    })
    return Runner(workers=1, cache=False).run(spec).aggregate()


@dataclass
class Figure2Result:
    """Uncompressed vs. compressed scan on the flash node."""

    uncompressed: ScanReport
    compressed: ScanReport

    @property
    def speedup(self) -> float:
        """How much faster the compressed scan runs (paper: ~2x)."""
        return self.uncompressed.total_seconds / self.compressed.total_seconds

    @property
    def energy_ratio(self) -> float:
        """Compressed / uncompressed energy (paper: 487/338 = 1.44)."""
        return self.compressed.energy_joules / self.uncompressed.energy_joules

    @property
    def inversion_holds(self) -> bool:
        """The paper's headline: the faster plan uses more energy."""
        return (self.compressed.total_seconds
                < self.uncompressed.total_seconds
                and self.compressed.energy_joules
                > self.uncompressed.energy_joules)

    def rows(self) -> list[tuple]:
        """Paper-style rows: config, total s, CPU s, Joules."""
        return [
            ("uncompressed", self.uncompressed.total_seconds,
             self.uncompressed.cpu_seconds,
             self.uncompressed.energy_joules),
            ("compressed", self.compressed.total_seconds,
             self.compressed.cpu_seconds,
             self.compressed.energy_joules),
        ]

    def to_dict(self) -> dict[str, Any]:
        return {
            "uncompressed": self.uncompressed.to_dict(),
            "compressed": self.compressed.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Figure2Result":
        return cls(
            uncompressed=ScanReport.from_dict(data["uncompressed"]),
            compressed=ScanReport.from_dict(data["compressed"]),
        )


def figure2_point(compressed: bool, scale_factor: float = 0.002,
                  dvfs_fraction: float = 1.0,
                  seed: int = 2009) -> ScanReport:
    """One Figure 2 configuration (a thin alias of :func:`run_scan`)."""
    return run_scan(compressed=compressed, scale_factor=scale_factor,
                    dvfs_fraction=dvfs_fraction, seed=seed)


def run_figure2(scale_factor: float = 0.002,
                seed: int = 2009) -> Figure2Result:
    """Deprecated: reproduce Figure 2 through a serial, uncached Runner.

    Prefer ``Runner().run(ExperimentSpec("fig2"))`` — see
    :func:`run_figure1` for the pattern.
    """
    warnings.warn("run_figure2 is deprecated; use repro.runner "
                  "(ExperimentSpec('fig2') + Runner) instead",
                  DeprecationWarning, stacklevel=2)
    from repro.runner import ExperimentSpec, Runner
    spec = ExperimentSpec("fig2",
                          knobs={"compressed": [False, True],
                                 "scale_factor": scale_factor},
                          seed=seed)
    return Runner(workers=1, cache=False).run(spec).aggregate()
