"""Plain-text table formatting for the benchmark harness."""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import ReproError


def _render(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: str = "") -> str:
    """Render an aligned ASCII table (what the benches print)."""
    if not headers:
        raise ReproError("table needs headers")
    for row in rows:
        if len(row) != len(headers):
            raise ReproError(
                f"row {row!r} has {len(row)} cells, expected {len(headers)}")
    cells = [[_render(v) for v in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
              for i, h in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
