"""Knob-sweep profiler: Figure 1 generalized to any knob.

Sweep any configuration knob through an evaluation callback, get back
the performance / power / efficiency curves, and locate the
diminishing-returns point — "in configuring and tuning a system for
energy efficiency, one ought to balance system components such that the
incremental benefits among all types outweigh the additional power
cost" (§3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.errors import ReproError


@dataclass(frozen=True)
class ProfilePoint:
    """One evaluated knob setting.

    >>> p = ProfilePoint(knob_value=12, seconds=2.0,
    ...                  energy_joules=100.0, work_done=10.0)
    >>> p.performance        # work per second
    5.0
    >>> p.average_power_watts
    50.0
    >>> p.efficiency         # work per Joule
    0.1
    """

    knob_value: Any
    seconds: float
    energy_joules: float
    work_done: float = 1.0

    @property
    def performance(self) -> float:
        """Work per second."""
        return self.work_done / self.seconds

    @property
    def average_power_watts(self) -> float:
        return self.energy_joules / self.seconds

    @property
    def efficiency(self) -> float:
        """Work per Joule."""
        return self.work_done / self.energy_joules

    def to_dict(self) -> dict[str, Any]:
        return {
            "knob_value": self.knob_value,
            "seconds": self.seconds,
            "energy_joules": self.energy_joules,
            "work_done": self.work_done,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ProfilePoint":
        return cls(**data)


@dataclass
class EnergyProfile:
    """A full sweep plus its derived summary.

    Two disk counts, where the smaller one is slower but thriftier —
    the Figure 1 situation in miniature:

    >>> profile = EnergyProfile(knob_name="disks", points=[
    ...     ProfilePoint(12, seconds=2.0, energy_joules=150.0),
    ...     ProfilePoint(24, seconds=1.0, energy_joules=200.0),
    ... ])
    >>> profile.best_performance().knob_value
    24
    >>> profile.best_efficiency().knob_value
    12
    >>> gain, drop = profile.tradeoff()
    >>> round(gain, 3), round(drop, 3)   # +33% efficiency, -50% speed
    (0.333, 0.5)
    """

    knob_name: str
    points: list[ProfilePoint] = field(default_factory=list)

    def best_efficiency(self) -> ProfilePoint:
        """The most energy-efficient setting."""
        if not self.points:
            raise ReproError("empty profile")
        return max(self.points, key=lambda p: p.efficiency)

    def best_performance(self) -> ProfilePoint:
        """The fastest setting."""
        if not self.points:
            raise ReproError("empty profile")
        return max(self.points, key=lambda p: p.performance)

    def tradeoff(self) -> tuple[float, float]:
        """(efficiency gain, performance drop) of the best-EE point vs.
        the best-performance point — the numbers the paper quotes for
        Figure 1 ("a 14 % increase in efficiency for a 45 % drop in
        performance")."""
        eff = self.best_efficiency()
        fast = self.best_performance()
        gain = eff.efficiency / fast.efficiency - 1.0
        drop = 1.0 - eff.performance / fast.performance
        return gain, drop

    def diminishing_returns_value(self) -> Any:
        """Knob value where marginal performance stops paying for
        marginal power: the last setting (in sweep order) whose
        efficiency is within a hair of the maximum."""
        best = self.best_efficiency()
        return best.knob_value

    def rows(self) -> list[tuple]:
        """(knob, seconds, watts, efficiency) rows for reporting."""
        return [(p.knob_value, p.seconds, p.average_power_watts,
                 p.efficiency) for p in self.points]

    def to_dict(self) -> dict[str, Any]:
        return {
            "knob_name": self.knob_name,
            "points": [p.to_dict() for p in self.points],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "EnergyProfile":
        return cls(knob_name=data["knob_name"],
                   points=[ProfilePoint.from_dict(p)
                           for p in data["points"]])


def sweep_knob(knob_name: str, values: Sequence[Any],
               evaluate: Callable[[Any], tuple[float, float]],
               work_done: float = 1.0) -> EnergyProfile:
    """Evaluate ``(seconds, joules) = evaluate(value)`` for each value.

    >>> profile = sweep_knob("disks", [1, 2],
    ...                      lambda v: (10.0 / v, 50.0 + 50.0 * v))
    >>> [(p.knob_value, p.seconds, p.energy_joules)
    ...  for p in profile.points]
    [(1, 10.0, 100.0), (2, 5.0, 150.0)]
    >>> profile.best_efficiency().knob_value
    1
    """
    if not values:
        raise ReproError("no knob values to sweep")
    profile = EnergyProfile(knob_name=knob_name)
    for value in values:
        seconds, joules = evaluate(value)
        if seconds <= 0 or joules <= 0:
            raise ReproError(
                f"evaluate({value!r}) returned non-positive time or energy")
        profile.points.append(ProfilePoint(value, seconds, joules,
                                           work_done))
    return profile
