"""Core framework: the paper's thesis made executable.

Energy-efficiency metrics (§2.1), the knob-sweep profiler that finds
Figure 1's diminishing-returns point for any knob, the two published
experiments as library functions, and report formatting for the
benchmark harness.
"""

from repro.core.metrics import (
    TcoModel,
    energy_delay_product,
    energy_efficiency,
    perf_per_watt,
)
from repro.core.profiler import (
    EnergyProfile,
    ProfilePoint,
    sweep_knob,
)
from repro.core.experiments import (
    Figure1Result,
    Figure2Result,
    figure1_point,
    figure2_point,
    run_figure1,
    run_figure2,
)
from repro.core.coordination import DvfsGovernor, PowerCoordinator
from repro.core.report import format_table

__all__ = [
    "DvfsGovernor",
    "EnergyProfile",
    "Figure1Result",
    "Figure2Result",
    "PowerCoordinator",
    "ProfilePoint",
    "TcoModel",
    "energy_delay_product",
    "energy_efficiency",
    "figure1_point",
    "figure2_point",
    "format_table",
    "perf_per_watt",
    "run_figure1",
    "run_figure2",
    "sweep_knob",
]
