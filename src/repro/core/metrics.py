"""Energy-efficiency metrics and the TCO model.

§2.1 defines energy efficiency as work done per unit energy, equivalent
to performance per Watt; §5.3 adds the total-cost-of-ownership framing
(management + hardware + energy) under which "pay for more hardware and
parallelize, keeping the same energy efficiency" eventually wins.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError
from repro.units import KWH


def energy_efficiency(work_done: float, energy_joules: float) -> float:
    """Work per Joule (§2.1): transactions/J, searches/J, queries/J...

    >>> energy_efficiency(1000.0, 500.0)   # 1000 queries on 500 J
    2.0
    >>> energy_efficiency(10.0, 0.0)
    Traceback (most recent call last):
        ...
    repro.errors.ReproError: energy must be positive
    """
    if energy_joules <= 0:
        raise ReproError("energy must be positive")
    if work_done < 0:
        raise ReproError("work cannot be negative")
    return work_done / energy_joules


def perf_per_watt(work_rate_per_s: float, power_watts: float) -> float:
    """Performance over power — identical to energy efficiency (§2.1).

    The two formulations coincide because both numerator and
    denominator are rates over the same interval:

    >>> perf_per_watt(300.0, 150.0)
    2.0
    >>> perf_per_watt(300.0, 150.0) == energy_efficiency(300.0, 150.0)
    True
    """
    if power_watts <= 0:
        raise ReproError("power must be positive")
    if work_rate_per_s < 0:
        raise ReproError("work rate cannot be negative")
    return work_rate_per_s / power_watts


def energy_delay_product(energy_joules: float, seconds: float) -> float:
    """EDP: the classic single-number compromise between E and T.

    Lower is better; halving time at constant energy helps exactly as
    much as halving energy at constant time:

    >>> energy_delay_product(100.0, 2.0)
    200.0
    >>> energy_delay_product(50.0, 4.0)
    200.0
    """
    if energy_joules < 0 or seconds < 0:
        raise ReproError("energy and time must be non-negative")
    return energy_joules * seconds


@dataclass(frozen=True)
class TcoModel:
    """Total cost of ownership over a deployment lifetime (§5.3).

    ``cooling_overhead`` burdens every IT Watt with facility Watts
    ([PBS+03]'s 0.5-1 W per W).

    A 1 kW server at $0.10/kWh with 0.5 W/W cooling for three years:

    >>> model = TcoModel(hardware_cost_dollars=10_000.0)
    >>> round(model.energy_cost(1000.0), 2)
    3944.7
    >>> round(model.total_cost(1000.0), 2)
    13944.7
    >>> round(model.energy_cost_fraction(1000.0), 3)
    0.283
    """

    hardware_cost_dollars: float
    electricity_dollars_per_kwh: float = 0.10
    cooling_overhead: float = 0.5
    management_dollars_per_year: float = 0.0
    lifetime_years: float = 3.0

    def __post_init__(self) -> None:
        if self.hardware_cost_dollars < 0:
            raise ReproError("hardware cost cannot be negative")
        if self.lifetime_years <= 0:
            raise ReproError("lifetime must be positive")

    def energy_cost(self, average_watts: float) -> float:
        """Lifetime electricity + cooling cost at an average draw."""
        if average_watts < 0:
            raise ReproError("power cannot be negative")
        burdened = average_watts * (1.0 + self.cooling_overhead)
        joules = burdened * self.lifetime_years * 365.25 * 24 * 3600
        return joules / KWH * self.electricity_dollars_per_kwh

    def total_cost(self, average_watts: float) -> float:
        """Hardware + management + lifetime energy."""
        return (self.hardware_cost_dollars
                + self.management_dollars_per_year * self.lifetime_years
                + self.energy_cost(average_watts))

    def cost_per_unit_work(self, average_watts: float,
                           work_per_second: float) -> float:
        """Dollars per unit of work over the lifetime."""
        if work_per_second <= 0:
            raise ReproError("work rate must be positive")
        total_work = work_per_second * self.lifetime_years * 365.25 * 24 * 3600
        return self.total_cost(average_watts) / total_work

    def energy_cost_fraction(self, average_watts: float) -> float:
        """Share of TCO going to energy — the §5.3 trend variable."""
        total = self.total_cost(average_watts)
        if total <= 0:
            raise ReproError("degenerate TCO")
        return self.energy_cost(average_watts) / total
