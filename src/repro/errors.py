"""Exception hierarchy for the repro library.

Every error raised by this package derives from :class:`ReproError`, so
applications can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """The discrete-event simulation was driven into an invalid state."""


class HardwareError(ReproError):
    """A device model was misconfigured or misused."""


class PowerStateError(HardwareError):
    """An illegal power-state transition was requested."""


class StorageError(ReproError):
    """Storage-engine failure: page, file, buffer or log misuse."""


class PageError(StorageError):
    """A slotted-page operation violated the page layout invariants."""


class BufferPoolError(StorageError):
    """Buffer-pool misuse, e.g. unpinning a page that is not pinned."""


class WalError(StorageError):
    """Write-ahead-log protocol violation."""


class CompressionError(StorageError):
    """A codec failed to encode or decode a segment."""


class CatalogError(ReproError):
    """Catalog lookup or registration failure."""


class SchemaError(ReproError):
    """Schema definition or tuple/schema mismatch."""


class ExpressionError(ReproError):
    """Expression tree construction or evaluation failure."""


class PlanError(ReproError):
    """Query-plan construction or validation failure."""


class ExecutionError(ReproError):
    """Runtime failure while executing a physical plan."""


class OptimizerError(ReproError):
    """The optimizer could not produce a plan."""


class WorkloadError(ReproError):
    """Workload generation or driver failure."""


class ConsolidationError(ReproError):
    """Consolidation planning/scheduling failure."""
