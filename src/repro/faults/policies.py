"""Graceful-degradation policies: retry with backoff, per-tenant shedding.

When a dispatch attempt fails — the routed node's RPC times out, or
the node crashes with the query in flight — the fleet does not shrug:
a :class:`RetryPolicy` re-dispatches the query onto a survivor after
an exponential backoff, and a :class:`ShedPolicy` sheds arrivals that
could no longer meet their tenant's SLA anyway, protecting the
latency of the queries that still can.  Both are small frozen value
objects so they serialize into chaos-report provenance and hash into
spec identities unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.schedule import FaultError


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff retry for failed dispatch attempts.

    ``max_attempts`` bounds the *total* dispatch attempts per query
    (first try included).  ``backoff_seconds(n)`` is the pause before
    attempt ``n + 1`` after ``n`` failed attempts;
    ``timeout_detect_seconds`` is how long a client waits before
    declaring a dispatch attempt timed out (it is paid in latency on
    every timeout hit).

    >>> policy = RetryPolicy(max_attempts=4, base_backoff_seconds=0.1,
    ...                      backoff_multiplier=2.0)
    >>> [policy.backoff_seconds(n) for n in (1, 2, 3)]
    [0.1, 0.2, 0.4]
    >>> policy.exhausted(4)
    True
    >>> RetryPolicy().exhausted(1)
    False
    """

    max_attempts: int = 4
    base_backoff_seconds: float = 0.05
    backoff_multiplier: float = 2.0
    timeout_detect_seconds: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise FaultError("need at least one dispatch attempt")
        if self.base_backoff_seconds < 0 or self.timeout_detect_seconds < 0:
            raise FaultError("backoff and timeout detection cannot be "
                             "negative")
        if self.backoff_multiplier < 1.0:
            raise FaultError("backoff multiplier must be >= 1")

    def backoff_seconds(self, failed_attempts: int) -> float:
        """Pause after ``failed_attempts`` consecutive failures."""
        if failed_attempts < 1:
            raise FaultError("backoff is only defined after a failure")
        return (self.base_backoff_seconds
                * self.backoff_multiplier ** (failed_attempts - 1))

    def exhausted(self, attempts: int) -> bool:
        """Whether ``attempts`` dispatch attempts used up the budget."""
        return attempts >= self.max_attempts


@dataclass(frozen=True)
class ShedPolicy:
    """Per-tenant admission shedding keyed to SLA headroom.

    An arrival is shed when the backlog it would join, plus its own
    service demand, already exceeds ``slack_fraction`` of its tenant's
    p95 SLA — the query was going to miss anyway, so the fleet drops
    it at the door instead of letting it push every query behind it
    over the line.  Tighter-SLA tenants therefore shed *earlier* under
    the same backlog, which is exactly the per-tenant part: a 2 s
    dashboard SLA stops accepting at a backlog a 15 s analytics SLA
    happily rides out.

    >>> shed = ShedPolicy(slack_fraction=0.5)
    >>> shed.threshold_seconds(2.0)
    1.0
    >>> shed.sheds(backlog_seconds=1.2, service_seconds=0.05,
    ...            sla_p95_seconds=2.0)
    True
    >>> shed.sheds(backlog_seconds=1.2, service_seconds=0.05,
    ...            sla_p95_seconds=15.0)
    False
    """

    slack_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.slack_fraction <= 0:
            raise FaultError("shed slack fraction must be positive")

    def threshold_seconds(self, sla_p95_seconds: float) -> float:
        """Backlog beyond which a tenant's arrival is shed."""
        return self.slack_fraction * sla_p95_seconds

    def sheds(self, backlog_seconds: float, service_seconds: float,
              sla_p95_seconds: float) -> bool:
        """Whether to shed an arrival facing ``backlog_seconds``."""
        return (backlog_seconds + service_seconds
                > self.threshold_seconds(sla_p95_seconds))
