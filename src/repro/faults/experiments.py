"""Runner-facing entry points for the chaos subsystem.

:func:`chaos_point` is one ``chaos_*`` sweep point: one dispatch
policy serving one generated arrival stream while one seeded
:class:`~repro.faults.schedule.FaultSchedule` breaks the fleet.  All
knobs are JSON scalars, so chaos runs cache, sweep, and pool like
every other registered experiment::

    python -m repro.runner run chaos_smoke
    python -m repro.runner run chaos_frontier      # intensity sweep

:func:`chaos_aggregate` folds an intensity sweep into a
:class:`ChaosSweepResult` — the availability-vs-energy frontier the
operator's handbook (OPERATIONS.md) reads chaos reports against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence

from repro.faults.engine import simulate_faulty_service
from repro.faults.policies import RetryPolicy, ShedPolicy
from repro.faults.schedule import FaultError, FaultMix, build_fault_schedule
from repro.service.autoscale import Autoscaler
from repro.service.dispatch import make_policy, policy_knob_names
from repro.service.node import NodePowerModel
from repro.service.report import ServiceReport
from repro.service.spec import FleetSpec
from repro.service.workload import build_stream


def chaos_point(policy: str = "power_aware",
                queries: int = 100_000,
                nodes: int = 16,
                profile: str = "commodity",
                intensity: float = 1.0,
                crash_rate_per_node_hour: float = 0.8,
                crash_downtime_seconds: float = 300.0,
                throttle_rate_per_node_hour: float = 0.3,
                throttle_dvfs_fraction: float = 0.7,
                disk_rate_per_node_hour: float = 0.1,
                raid_width: int = 8,
                timeout_rate_per_node_hour: float = 0.2,
                max_attempts: int = 4,
                base_backoff_seconds: float = 0.05,
                timeout_detect_seconds: float = 0.5,
                shed_slack_fraction: Optional[float] = 0.5,
                pack_backlog_seconds: float = 0.2,
                admission_limit_seconds: Optional[float] = None,
                target_utilization: float = 0.55,
                epoch_seconds: float = 30.0,
                min_nodes: int = 2,
                horizon_slack: float = 1.1,
                seed: int = 0) -> ServiceReport:
    """Serve one stream while a seeded fault schedule breaks the fleet.

    The same ``seed`` drives both the arrival stream and the fault
    schedule (each through its own ``SeedSequence`` lanes), so one
    integer reproduces the whole run.  ``shed_slack_fraction=None``
    disables admission shedding; ``intensity`` scales every fault rate
    at once — the ``chaos_frontier`` sweep axis.
    """
    model = NodePowerModel.from_server(profile)
    fleet = FleetSpec.homogeneous(nodes, model)
    stream = build_stream(queries, seed=seed)
    schedule = build_fault_schedule(
        nodes, stream.duration_seconds * horizon_slack, seed=seed,
        mix=FaultMix(
            crash_rate_per_node_hour=crash_rate_per_node_hour,
            crash_downtime_seconds=crash_downtime_seconds,
            throttle_rate_per_node_hour=throttle_rate_per_node_hour,
            throttle_dvfs_fraction=throttle_dvfs_fraction,
            disk_rate_per_node_hour=disk_rate_per_node_hour,
            raid_width=raid_width,
            timeout_rate_per_node_hour=timeout_rate_per_node_hour,
            intensity=intensity,
        ))
    retry = RetryPolicy(max_attempts=max_attempts,
                        base_backoff_seconds=base_backoff_seconds,
                        timeout_detect_seconds=timeout_detect_seconds)
    shed = (ShedPolicy(slack_fraction=shed_slack_fraction)
            if shed_slack_fraction is not None else None)
    accepted = policy_knob_names(policy)
    candidate: dict[str, Any] = {
        "pack_backlog_seconds": pack_backlog_seconds,
        "admission_limit_seconds": admission_limit_seconds}
    dispatch = make_policy(policy, **{k: v for k, v in candidate.items()
                                      if k in accepted})
    autoscaler = Autoscaler(
        model,
        epoch_seconds=epoch_seconds,
        target_utilization=target_utilization,
        min_nodes=min_nodes,
    ) if dispatch.autoscaled else None
    return simulate_faulty_service(
        stream, schedule, fleet=fleet, policy=dispatch,
        autoscaler=autoscaler, retry=retry, shed=shed)


@dataclass
class ChaosSweepResult:
    """A fault-intensity sweep folded into one frontier.

    The chaos analogue of
    :class:`~repro.service.report.ServiceSweepResult`: the axis is the
    fault intensity multiplier, and the reading is the paper's
    energy-vs-availability trade-off measured — how many Joules per
    query the fleet pays, and how much availability it keeps, as the
    failure rate climbs.
    """

    intensities: list[float]
    reports: list[ServiceReport]

    def __post_init__(self) -> None:
        if len(self.intensities) != len(self.reports):
            raise FaultError("one report per intensity, "
                             f"got {len(self.reports)} reports for "
                             f"{len(self.intensities)} intensities")

    def report_at(self, intensity: float) -> ServiceReport:
        for x, report in zip(self.intensities, self.reports):
            if x == intensity:
                return report
        raise FaultError(f"sweep has no intensity {intensity!r}; ran: "
                         f"{', '.join(map(str, self.intensities))}")

    def headline(self) -> dict[str, float]:
        """The acceptance numbers at the highest swept intensity."""
        worst = self.reports[-1]
        assert worst.faults is not None
        return {
            "intensity": self.intensities[-1],
            "availability": worst.availability,
            "downtime_fraction": worst.faults.downtime_fraction,
            "queries_lost": float(worst.faults.queries_lost),
            "joules_per_query": worst.joules_per_query,
            "p95_seconds": worst.p95_latency_seconds,
        }

    def rows(self) -> list[tuple]:
        """Frontier rows: intensity, availability, lost, J/query,
        p95, surviving-tenant SLA verdict."""
        out = []
        for x, r in zip(self.intensities, self.reports):
            faults = r.faults
            out.append((
                x, r.availability,
                faults.queries_lost if faults is not None else 0,
                r.joules_per_query, r.p95_latency_seconds,
                "met" if r.surviving_slas_met else "MISSED",
            ))
        return out

    def to_dict(self) -> dict[str, Any]:
        return {"intensities": list(self.intensities),
                "reports": [r.to_dict() for r in self.reports]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ChaosSweepResult":
        return cls(
            intensities=list(data.get("intensities", [])),
            reports=[ServiceReport.from_dict(r)
                     for r in data.get("reports", [])])


def chaos_aggregate(points: Sequence[Any]) -> ChaosSweepResult:
    """Fold finished chaos points into the intensity frontier."""
    ordered = sorted(points,
                     key=lambda p: float(p.knobs.get("intensity", 1.0)))
    return ChaosSweepResult(
        intensities=[float(p.knobs.get("intensity", 1.0))
                     for p in ordered],
        reports=[p.report for p in ordered])
