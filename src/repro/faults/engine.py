"""The chaos engine: fleet serving under a deterministic fault plan.

:func:`simulate_faulty_service` is the fault-tolerant sibling of
:func:`repro.service.fleet.simulate_service`: the same closed-form
FCFS pipes and utilization-linear energy identity, but arrivals now
share the timeline with a :class:`~repro.faults.schedule.FaultSchedule`
— node crashes, thermal throttling to a lower DVFS state, RAID-group
disk failures, and transient dispatch-timeout windows.  The merged
timeline is a single heap of (time, priority, sequence) events, so a
chaos run is exactly as deterministic as a healthy one: same stream,
same schedule, byte-identical report.

Degradation is graceful, not silent.  A crash truncates the in-flight
query at the crash instant, retracts everything queued behind it, and
re-dispatches the destroyed work onto survivors under a
:class:`~repro.faults.policies.RetryPolicy` (exponential backoff, a
bounded attempt budget); a :class:`~repro.faults.policies.ShedPolicy`
refuses arrivals that could no longer meet their tenant's SLA; the
:class:`~repro.service.autoscale.Autoscaler` prices replacement boots
at crash instants against its break-even rule.  Every arrival ends in
exactly one bucket — completed, rejected, or crash-lost — and the
:class:`~repro.service.report.FaultStats` ledger reconciles them.

Telemetry keeps its exactness guarantee through every transition: the
mirror replays truncated executions, zero-power crash gaps, and
recovery boots into real metered devices, so the trace energy matches
the closed form to the same 1e-9 relative tolerance as the healthy
path.  Because a crash rewrites a node's recent history (queued work
is retracted), mirror records are deferred: completions are emitted
only once they are *settled* — confirmed to predate every later fault
on their node.
"""

from __future__ import annotations

import heapq
from bisect import bisect_right
from collections import deque
from typing import Optional

import numpy as np

from repro.faults.policies import RetryPolicy, ShedPolicy
from repro.faults.schedule import FaultError, FaultSchedule
from repro.service.autoscale import Autoscaler
from repro.service.dispatch import (DispatchContext, DispatchPolicy,
                                    dispatch_candidates, make_policy)
from repro.service.fleet import (_build_nodes, _mirror_power_state,
                                 _resolve_fleet, _TelemetryMirror)
from repro.service.node import NodePowerModel
from repro.service.report import (FaultStats, ServiceError, ServiceReport,
                                  TenantStats, quantile, rollup_classes)
from repro.service.spec import FleetSpec
from repro.service.workload import ArrivalStream

# arrival-state codes (per-query resolution ledger)
_PENDING, _COMPLETED, _REJECTED, _LOST = 0, 1, 2, 3
# heap priorities: faults and repairs rewrite the world the
# re-dispatches then see, so they win ties; batch releases run last so
# a released batch dispatches onto the post-fault fleet
_PRIO_FAULT, _PRIO_REDISPATCH, _PRIO_RELEASE = 0, 1, 2
_EMPTY: frozenset = frozenset()


class _FaultMirror(_TelemetryMirror):
    """The healthy mirror, taught about crashes.

    The fault engine always passes the execution's busy draw to
    ``serve`` explicitly (a throttled node runs below peak; the base
    mirror handles that since PVC landed), and ``crash`` drops the
    device to zero watts with no drain rectangle — the node just
    stops drawing power.
    """

    def crash(self, i: int, now: float) -> None:
        self.devices[i].power_series.record(now, 0.0)
        span = self._spans[i]
        if span is not None:
            self.collector.stack.close(span, now, {})
            self._spans[i] = None

    def sync(self, nodes) -> None:
        _mirror_power_state(self, nodes)

    def finish(self, end: float, report: ServiceReport) -> None:
        super().finish(end, report)
        faults = report.faults
        if faults is not None:
            for key, value in faults.to_dict().items():
                if isinstance(value, int):
                    self.collector.count(f"fault.{key}", value)


def _merge_windows(windows: list[tuple[float, float]]) \
        -> tuple[list[float], list[float]]:
    """Union overlapping [start, end) windows; returns (starts, ends)
    as parallel ascending lists for bisection."""
    windows.sort()
    starts: list[float] = []
    ends: list[float] = []
    for s, e in windows:
        if starts and s <= ends[-1]:
            if e > ends[-1]:
                ends[-1] = e
        else:
            starts.append(s)
            ends.append(e)
    return starts, ends


def simulate_faulty_service(stream: ArrivalStream,
                            schedule: FaultSchedule,
                            fleet: Optional[FleetSpec] = None,
                            policy: DispatchPolicy | str = "power_aware",
                            autoscaler: Optional[Autoscaler] = None,
                            retry: Optional[RetryPolicy] = None,
                            shed: Optional[ShedPolicy] = None,
                            engine: str = "auto",
                            n_nodes: Optional[int] = None,
                            model: Optional[NodePowerModel] = None,
                            **policy_kwargs) -> ServiceReport:
    """Serve ``stream`` on a fleet while ``schedule`` breaks it.

    ``fleet`` is a :class:`~repro.service.spec.FleetSpec` (default: 16
    calibrated ``commodity`` nodes); the legacy ``n_nodes=``/``model=``
    pair still works as a deprecated homogeneous shim (removal
    announced for 2.0).  Chaos runs always execute on the reference
    loop — fault windows rewrite per-node history, which the vectorized
    event core of :mod:`repro.service.engine` cannot replay — so
    ``engine`` accepts ``"auto"``/``"loop"`` (both run the loop) and
    rejects ``"event"``.  On a
    heterogeneous fleet every fault prices against the struck node's
    *own* power curve — a throttled wimpy node's busy draw follows the
    cubic DVFS rule on its class's idle/peak watts, a crashed node
    retracts its own marginal Joules, and the autoscaler's emergency
    replacement boots are gated by each spare's own break-even time.

    Semantics per fault kind:

    * ``crash`` — the node loses power at the fault instant: the
      in-flight query is destroyed mid-execution, the queue behind it
      is retracted, no drain lump is paid, and the node is bootable
      again only at crash + downtime.  Destroyed queries re-dispatch
      onto survivors after ``retry`` backoff until the attempt budget
      runs out (then they count as *lost*).  A crash that lands on an
      already-down node is skipped; one that lands inside the atomic
      boot window fires at the window's end.
    * ``throttle`` — the node drops to DVFS fraction *f* for the
      window: service times divide by *f*, busy power is
      ``idle + (peak - idle) * f**3`` (the cubic dynamic-power rule of
      :func:`repro.hardware.cpu.dvfs_power_watts`).  Overlapping
      windows compound.
    * ``disk`` — the node's RAID group runs degraded for the rebuild:
      service times divide by the event severity (see
      :func:`~repro.faults.schedule.degraded_speed_factor`); power is
      unchanged.
    * ``timeout`` — dispatch attempts routed to the node during the
      window fail after ``retry.timeout_detect_seconds`` and re-route
      to a survivor (degraded-mode dispatch); an arrival that burns
      its whole attempt budget on timeouts is rejected.

    PVC and QED policies run under faults since the flight recorder
    landed: a DVFS governor's downclock composes with any active
    throttle window (effective cubic factor is their product), and a
    batching policy's hold queues release through the same event heap
    — a released batch routes, sheds, crashes, and retries as one
    unit, with every member sharing the outcome.

    The returned :class:`~repro.service.report.ServiceReport` carries a
    :class:`~repro.service.report.FaultStats` ledger reconciling every
    arrival: ``offered == completed + rejected + lost``, exactly.

    >>> from repro.faults.schedule import FaultEvent, FaultSchedule
    >>> from repro.service.spec import FleetSpec
    >>> from repro.service.workload import build_stream
    >>> stream = build_stream(200, seed=1)
    >>> crash = FaultEvent(kind="crash", node=0, start=1.0, duration=30.0)
    >>> plan = FaultSchedule(n_nodes=4, horizon_seconds=60.0,
    ...                      events=(crash,))
    >>> report = simulate_faulty_service(
    ...     stream, plan, fleet=FleetSpec.homogeneous(4),
    ...     policy="round_robin")
    >>> report.faults.crashes
    1
    >>> report.queries_offered == (report.queries_completed
    ...                            + report.queries_rejected
    ...                            + report.queries_lost)
    True
    """
    if engine not in ("auto", "event", "loop"):
        raise ServiceError(
            f"unknown engine {engine!r}: pass 'auto', 'event', or 'loop'")
    if engine == "event":
        from repro.service.engine import event_core_unsupported
        raise ServiceError(
            "engine='event' cannot serve this configuration: "
            f"{event_core_unsupported(None, faults=True)} "
            "(use engine='auto' to fall back to the reference loop)")
    fleet = _resolve_fleet(fleet, n_nodes, model)
    n_nodes = fleet.n_nodes
    if len(stream) == 0:
        raise ServiceError("empty arrival stream")
    if schedule.n_nodes != n_nodes:
        raise FaultError(
            f"schedule covers {schedule.n_nodes} nodes but the fleet has "
            f"{n_nodes}")
    policy = make_policy(policy, **policy_kwargs)
    if policy.autoscaled and autoscaler is None:
        autoscaler = Autoscaler(fleet.classes[0].model)
    if not policy.autoscaled:
        autoscaler = None
    if retry is None:
        retry = RetryPolicy()

    nodes = _build_nodes(fleet)
    on_ids = list(range(n_nodes))
    models = [node.model for node in nodes]

    from repro.telemetry import current_collector
    collector = current_collector()
    mirror = (None if collector is None else
              _FaultMirror(collector, nodes, start_on=True))

    from repro.flightrec.context import current_recorder
    rec = current_recorder()
    if rec is not None:
        rec.begin_run("chaos", stream, nodes, policy.name,
                      autoscaler is not None)
    rec_detail = rec is not None and rec.detail
    batching = policy.batching
    dvfs = policy.dvfs

    times, services, slas = stream.columns().lists()
    tenant_idx = stream.tenant_index
    n = len(times)
    latencies = np.full(n, np.nan)
    state = np.zeros(n, dtype=np.int8)
    was_crashed = np.zeros(n, dtype=bool)
    attempts = [0] * n

    # -- per-node fault state (each node on its class's power curve) --
    peak_minus_idle = [m.peak_watts - m.idle_watts for m in models]
    throttle_active: list[list[float]] = [[] for _ in range(n_nodes)]
    disk_active: list[list[float]] = [[] for _ in range(n_nodes)]
    speed_mult = [1.0] * n_nodes
    throttle_factor = [1.0] * n_nodes
    busy_watts = [m.idle_watts + pmi
                  for m, pmi in zip(models, peak_minus_idle)]
    #: unsettled executions per node: (job, start, end, scaled, watts,
    #: frequency) — job is an arrival index or a released Batch
    pending: list[deque] = [deque() for _ in range(n_nodes)]

    def recompute(i: int) -> None:
        tf = 1.0
        for f in throttle_active[i]:
            tf *= f
        df = 1.0
        for f in disk_active[i]:
            df *= f
        speed_mult[i] = tf * df
        throttle_factor[i] = tf
        busy_watts[i] = models[i].idle_watts \
            + peak_minus_idle[i] * tf ** 3

    # -- the merged event timeline ------------------------------------
    heap: list[tuple] = []
    seq = 0

    def push(at: float, prio: int, kind: str, payload) -> None:
        nonlocal seq
        heapq.heappush(heap, (at, prio, seq, kind, payload))
        seq += 1

    stats = FaultStats()
    crash_intervals: list[tuple[float, float]] = []
    timeout_raw: list[list[tuple[float, float]]] = \
        [[] for _ in range(n_nodes)]
    for event in schedule.events:
        if event.kind == "timeout":
            timeout_raw[event.node].append((event.start, event.end))
            stats.timeout_windows += 1
        else:
            push(event.start, _PRIO_FAULT, "fault", event)
    timeout_windows = [_merge_windows(w) for w in timeout_raw]

    def in_timeout(i: int, now: float) -> bool:
        starts, ends = timeout_windows[i]
        pos = bisect_right(starts, now) - 1
        return pos >= 0 and now < ends[pos]

    # -- settlement: confirm completions that predate later faults ----
    last_completion = 0.0

    def settle(i: int, upto: float) -> None:
        q = pending[i]
        while q and q[0][2] <= upto:
            job, start, end, _scaled, watts, freq = q.popleft()
            if type(job) is int:
                latencies[job] = end - times[job]
                state[job] = _COMPLETED
                if rec is not None:
                    rec.fault_serves.append(
                        (job, i, start, end, watts, freq, None))
            else:
                for m in job.members:
                    latencies[m] = end - times[m]
                    state[m] = _COMPLETED
                if rec is not None:
                    rec.fault_serves.append(
                        (job.members, i, start, end, watts, freq,
                         job.service_seconds))
            if mirror is not None:
                mirror.serve(i, start, end, watts)

    # -- dispatch (and re-dispatch) -----------------------------------
    # ``job`` is an arrival index, or (when the policy batches) a
    # released Batch dispatched as one shared execution: its combined
    # demand routes, executes, and sheds as a unit, and every member
    # shares the outcome (latency, rejection, crash loss)
    def dispatch(job, now: float, excluded: frozenset) -> None:
        nonlocal last_completion
        ids = (on_ids if not excluded
               else [i for i in on_ids if i not in excluded])
        if not ids and excluded:
            # every survivor is excluded: forget the exclusions and
            # spend attempts anywhere rather than stall
            ids = on_ids
        if not ids:
            # total blackout: boot a repaired spare, else park the
            # query until the earliest repair completes
            spare = next((i for i in range(n_nodes)
                          if not nodes[i].on
                          and nodes[i].busy_until <= now), None)
            if spare is None:
                wake = min(nodes[i].busy_until for i in range(n_nodes))
                push(wake, _PRIO_REDISPATCH, "redispatch", (job, _EMPTY))
                return
            nodes[spare].power_on(now)
            on_ids.append(spare)
            stats.emergency_boots += 1
            if mirror is not None:
                mirror.power_on(spare, now)
            if rec is not None:
                rec.events.append((now, "boot", spare, None, None,
                                   {"reason": "blackout"}))
            ids = on_ids
        if type(job) is int:
            who = (job,)
            s = services[job]
            sla = slas[job]
        else:
            who = job.members
            s = job.service_seconds
            sla = job.sla_seconds
        ctx = DispatchContext(nodes, ids, now, s, sla)
        i = policy.route(ctx)
        node = nodes[i]
        for m in who:
            attempts[m] += 1
        if rec_detail:
            rec.events.append(
                (now, "dispatch", i,
                 int(tenant_idx[who[0]]) if len(who) == 1 else None,
                 who[0], dispatch_candidates(ctx, i)))
        if in_timeout(i, now):
            stats.timeouts += 1
            if retry.exhausted(attempts[who[0]]):
                state[list(who)] = _REJECTED
                if rec is not None:
                    rec.events.append(
                        (now, "reject", i, None, who[0],
                         {"reason": "timeout", "members": list(who)}))
            else:
                stats.retries += 1
                delay = (retry.timeout_detect_seconds
                         + retry.backoff_seconds(attempts[who[0]]))
                push(now + delay, _PRIO_REDISPATCH, "redispatch",
                     (job, excluded | {i}))
                if rec is not None:
                    rec.events.append(
                        (now, "timeout", i, None, who[0],
                         {"retry_at": now + delay,
                          "members": list(who)}))
                    rec.events.append(
                        (now, "retry", i, None, who[0],
                         {"reason": "timeout", "members": list(who)}))
            return
        if not policy.admits(node, now):
            state[list(who)] = _REJECTED
            if rec is not None:
                rec.events.append((now, "reject", i, None, who[0],
                                   {"members": list(who)}))
            return
        if shed is not None and shed.sheds(
                node.backlog(now),
                s / (node.model.speed_factor * speed_mult[i]), sla):
            state[list(who)] = _REJECTED
            stats.queries_shed += len(who)
            if rec is not None:
                rec.events.append((now, "shed", i, None, who[0],
                                   {"members": list(who)}))
            return
        freq = 1.0
        w = busy_watts[i]
        mult = speed_mult[i]
        if dvfs:
            freq = policy.frequency(ctx, i)
            if freq < 1.0:
                # compose the governor's downclock with any throttle
                # fault: both follow the cubic dynamic-power rule, so
                # the effective cubic factor is their product
                w = models[i].idle_watts \
                    + peak_minus_idle[i] * (throttle_factor[i] * freq) ** 3
                mult = mult * freq
        start, end = node.serve_active(now, s, w, mult)
        if len(who) > 1:
            node.completed += len(who) - 1
        pending[i].append((job, start, end, end - start, w, freq))
        if end > last_completion:
            last_completion = end

    # -- fault application --------------------------------------------
    def do_crash(i: int, now: float, downtime: float) -> None:
        node = nodes[i]
        if not node.on:
            stats.faults_skipped += 1
            return
        if now < node.boot_until:
            # the boot window is atomic: the lump is unsplittable, so
            # a mid-boot crash fires the instant the boot completes
            push(node.boot_until, _PRIO_FAULT, "crash_deferred",
                 (i, downtime))
            return
        settle(i, now)
        q = pending[i]
        lost: list = []          # destroyed jobs, in queue order
        lost_queries = 0
        retract_busy = 0.0
        retract_joules = 0.0
        if q and q[0][1] < now:
            # in-flight execution: ran up to the crash, then destroyed
            job0, s0, _e0, scaled0, w0, _f0 = q.popleft()
            unexecuted = scaled0 - (now - s0)
            retract_busy += unexecuted
            retract_joules += (w0 - node.model.idle_watts) * unexecuted
            lost.append(job0)
            lost_queries += (1 if type(job0) is int
                             else len(job0.members))
            if mirror is not None:
                mirror.serve(i, s0, now, w0)
            if rec is not None:
                rec.events.append(
                    (now, "truncated_serve", i, None,
                     job0 if type(job0) is int else job0.members[0],
                     {"start": s0, "end": now, "watts": w0}))
        while q:
            job2, _s2, _e2, scaled2, w2, _f2 = q.popleft()
            retract_busy += scaled2
            retract_joules += (w2 - node.model.idle_watts) * scaled2
            lost.append(job2)
            lost_queries += (1 if type(job2) is int
                             else len(job2.members))
        node.retract(retract_busy, retract_joules, lost_queries)
        repair_at = now + downtime
        node.crash(now, repair_at)
        on_ids.remove(i)
        stats.crashes += 1
        crash_intervals.append((now, repair_at))
        if mirror is not None:
            mirror.crash(i, now)
        if rec is not None:
            rec.events.append((now, "crash", i, None, None,
                               {"repair_at": repair_at,
                                "lost": lost_queries}))
        push(repair_at, _PRIO_FAULT, "repair", i)
        for job2 in lost:
            members = (job2,) if type(job2) is int else job2.members
            for m in members:
                was_crashed[m] = True
            if retry.exhausted(attempts[members[0]]):
                state[list(members)] = _LOST
                if rec is not None:
                    rec.events.append(
                        (now, "lost", i, None, members[0],
                         {"members": list(members)}))
            else:
                stats.retries += 1
                push(now + retry.backoff_seconds(attempts[members[0]]),
                     _PRIO_REDISPATCH, "redispatch", (job2, _EMPTY))
                if rec is not None:
                    rec.events.append(
                        (now, "retry", i, None, members[0],
                         {"reason": "crash", "members": list(members)}))
        if autoscaler is not None:
            booted = autoscaler.emergency(now, nodes, on_ids, downtime)
            if mirror is not None:
                for b in booted:
                    mirror.power_on(b, now)

    def do_repair(i: int, now: float) -> None:
        node = nodes[i]
        stats.recoveries += 1
        if rec is not None:
            rec.events.append((now, "repair", i, None, None, {}))
        if node.on:
            return
        if autoscaler is None or not on_ids:
            # all-on fleets restore their node count; an autoscaled
            # fleet leaves the repaired node parked as a spare (unless
            # the fleet has gone dark, which liveness can't wait out)
            if node.busy_until <= now:
                node.power_on(now)
                on_ids.append(i)
                on_ids.sort()
                if mirror is not None:
                    mirror.power_on(i, now)
                if rec is not None:
                    rec.events.append((now, "boot", i, None, None,
                                       {"reason": "repair"}))

    # -- batch release plumbing (only when the policy batches) --------
    # every policy interaction reschedules one wake-up at the earliest
    # outstanding hold deadline; stale wake-ups (the queue already
    # flushed full) fall through ``due`` as no-ops
    scheduled_releases: set[float] = set()

    def schedule_release() -> None:
        nd = policy.next_deadline()
        if nd != float("inf") and nd not in scheduled_releases:
            scheduled_releases.add(nd)
            push(nd, _PRIO_RELEASE, "release", None)

    def execute_batch(batch, now: float) -> None:
        # the autoscaler observes the *combined* (shared) demand at
        # release — consolidation pressure follows executed work
        if autoscaler is not None:
            autoscaler.observe(batch.service_seconds)
        dispatch(batch, now, _EMPTY)

    # -- the run -------------------------------------------------------
    epoch = autoscaler.epoch_seconds if autoscaler is not None else 0.0
    next_epoch = epoch if autoscaler is not None else float("inf")
    # epochs stop with the workload (legacy semantics): late fault and
    # repair events must not keep the autoscaler power-cycling a fleet
    # that has nothing left to serve
    last_arrival = times[-1]
    k_next = 0
    while k_next < n or heap:
        if heap and (k_next >= n or heap[0][0] <= times[k_next]):
            t, _prio, _seq, kind, payload = heapq.heappop(heap)
        else:
            t, kind, payload = times[k_next], "arrival", k_next
            k_next += 1
        while t >= next_epoch and next_epoch <= last_arrival:
            for i in list(on_ids):
                settle(i, next_epoch)
            autoscaler.step(next_epoch, nodes, on_ids)
            if mirror is not None:
                mirror.sync(nodes)
            next_epoch += epoch
        if kind == "arrival":
            if batching:
                ti = int(tenant_idx[payload])
                for batch in policy.offer(payload, t, services[payload],
                                          ti, slas[payload]):
                    execute_batch(batch, t)
                schedule_release()
            else:
                if autoscaler is not None:
                    autoscaler.observe(services[payload])
                dispatch(payload, t, _EMPTY)
        elif kind == "release":
            scheduled_releases.discard(t)
            for batch in policy.due(t):
                execute_batch(batch, t)
            schedule_release()
        elif kind == "redispatch":
            job, excluded = payload
            dispatch(job, t, excluded)
        elif kind == "fault":
            event = payload
            if event.kind == "crash":
                do_crash(event.node, t, event.duration)
            elif event.kind == "throttle":
                throttle_active[event.node].append(event.severity)
                recompute(event.node)
                stats.throttle_windows += 1
                push(event.end, _PRIO_FAULT, "fault_end",
                     ("throttle", event.node, event.severity))
                if rec is not None:
                    rec.events.append(
                        (t, "throttle_start", event.node, None, None,
                         {"severity": event.severity,
                          "until": event.end}))
            else:  # disk
                disk_active[event.node].append(event.severity)
                recompute(event.node)
                stats.disk_failures += 1
                push(event.end, _PRIO_FAULT, "fault_end",
                     ("disk", event.node, event.severity))
                if rec is not None:
                    rec.events.append(
                        (t, "disk_fail", event.node, None, None,
                         {"severity": event.severity,
                          "until": event.end}))
        elif kind == "fault_end":
            which, i, severity = payload
            lanes = throttle_active if which == "throttle" else disk_active
            lanes[i].remove(severity)
            recompute(i)
            if rec is not None:
                rec.events.append(
                    (t, "throttle_end" if which == "throttle"
                     else "disk_recover", i, None, None,
                     {"severity": severity}))
        elif kind == "crash_deferred":
            i, downtime = payload
            do_crash(i, t, downtime)
        else:  # repair
            do_repair(payload, t)

    if batching:
        # every open hold had a scheduled release, so this is normally
        # empty; it guards third-party batching policies whose
        # ``next_deadline`` under-reports
        for batch in policy.flush():
            execute_batch(batch, batch.release_at)

    # -- close the books ----------------------------------------------
    end = max(last_completion, times[-1])
    for node in nodes:
        if node.on and node.busy_until > end:
            end = node.busy_until
    # a crash that struck a powered-on node after the serving window
    # still closed that node's energy interval at the crash instant;
    # the fleet (and the telemetry mirror) must integrate idle draw on
    # the survivors out to the same instant or the books won't balance
    for crashed_at, _repair_at in crash_intervals:
        if crashed_at > end:
            end = crashed_at
    for i in range(n_nodes):
        settle(i, end)
    if int((state == _PENDING).sum()):  # pragma: no cover - invariant
        raise FaultError("internal: arrivals left unresolved")
    node_stats = [node.finalize(end) for node in nodes]

    completed = state == _COMPLETED
    rejected = state == _REJECTED
    crash_lost = state == _LOST
    stats.queries_lost = int(crash_lost.sum())
    stats.queries_recovered = int((was_crashed & completed).sum())
    stats.emergency_boots += (autoscaler.emergency_boots
                              if autoscaler is not None else 0)
    stats.node_seconds_lost = sum(
        max(0.0, min(repair, end) - crashed)
        for crashed, repair in crash_intervals)
    stats.downtime_fraction = (stats.node_seconds_lost / (n_nodes * end)
                               if end > 0 else 0.0)

    lat = latencies[completed]
    if lat.size:
        p50, p95, p99 = np.quantile(lat, [0.50, 0.95, 0.99])
        mean = float(lat.mean())
    else:
        p50 = p95 = p99 = mean = 0.0
    tenants = []
    for ti, tenant in enumerate(stream.tenants):
        mask = tenant_idx == ti
        t_lat = np.sort(latencies[mask & completed])
        samples = t_lat.tolist()
        tenants.append(TenantStats(
            tenant=tenant.name,
            completed=int(t_lat.size),
            rejected=int((mask & rejected).sum()),
            crashed=int((mask & crash_lost).sum()),
            mean_latency_seconds=float(t_lat.mean()) if samples else 0.0,
            p50_latency_seconds=quantile(samples, 0.50) if samples else 0.0,
            p95_latency_seconds=quantile(samples, 0.95) if samples else 0.0,
            p99_latency_seconds=quantile(samples, 0.99) if samples else 0.0,
            sla_p95_seconds=tenant.sla_p95_seconds,
        ))

    report = ServiceReport(
        policy=policy.name,
        n_nodes=n_nodes,
        queries_offered=n,
        queries_completed=int(completed.sum()),
        queries_rejected=int(rejected.sum()),
        makespan_seconds=end,
        energy_joules=sum(s.energy_joules for s in node_stats),
        p50_latency_seconds=float(p50),
        p95_latency_seconds=float(p95),
        p99_latency_seconds=float(p99),
        mean_latency_seconds=mean,
        node_seconds_on=sum(s.on_seconds for s in node_stats),
        tenants=tenants,
        nodes=node_stats,
        faults=stats,
        classes=rollup_classes(node_stats),
        fleet=fleet.to_dict(),
    )
    report.engine = "loop"
    if rec is not None:
        rec.end_run(end, report)
    if mirror is not None:
        mirror.finish(end, report)
    return report
