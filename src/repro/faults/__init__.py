"""repro.faults: deterministic fault injection & graceful degradation.

The chaos layer of the reproduction: seeded, reproducible fault
schedules (node crashes, thermal throttling, RAID-group disk failures,
dispatch-timeout windows) played against the fleet-serving simulator,
with retry-with-backoff, per-tenant admission shedding, and
break-even-priced emergency boots as the degradation machinery.  The
operator-facing story lives in OPERATIONS.md at the repo root.

Quick start::

    from repro.faults import build_fault_schedule, simulate_faulty_service
    from repro.service import FleetSpec, build_stream

    stream = build_stream(100_000, seed=0)
    fleet = FleetSpec.homogeneous(16)         # or FleetSpec.of(...)
    schedule = build_fault_schedule(fleet=fleet,
                                    horizon_seconds=stream.duration_seconds,
                                    seed=0)
    report = simulate_faulty_service(stream, schedule, fleet=fleet)
    print(report.availability, report.faults.crashes)

or, the registered experiments::

    python -m repro.runner run chaos_smoke
    python -m repro.runner run chaos_frontier
"""

from repro.faults.engine import simulate_faulty_service
from repro.faults.experiments import (ChaosSweepResult, chaos_aggregate,
                                      chaos_point)
from repro.faults.policies import RetryPolicy, ShedPolicy
from repro.faults.schedule import (FAULT_KINDS, FaultError, FaultEvent,
                                   FaultMix, FaultSchedule,
                                   build_fault_schedule,
                                   degraded_speed_factor)

__all__ = [
    "FAULT_KINDS",
    "ChaosSweepResult",
    "FaultError",
    "FaultEvent",
    "FaultMix",
    "FaultSchedule",
    "RetryPolicy",
    "ShedPolicy",
    "build_fault_schedule",
    "chaos_aggregate",
    "chaos_point",
    "degraded_speed_factor",
    "simulate_faulty_service",
]
