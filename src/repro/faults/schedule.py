"""Deterministic fault schedules: what breaks, where, and when.

The paper's energy-proportionality argument (§2.4, §5) assumes nodes
can be powered down and brought back at will; a real fleet also loses
nodes it did *not* choose to lose.  A :class:`FaultSchedule` is the
pre-drawn, seeded list of those losses — node crashes, thermal
throttling to a lower DVFS state, disk failures inside a node's RAID
group, and transient dispatch-timeout windows — so a chaos run is as
reproducible as any other experiment in this repo: same seed, same
faults, byte-identical report.

Schedules follow the same discipline as
:class:`~repro.runner.ExperimentSpec`: every field is JSON-scalar,
:meth:`FaultSchedule.to_dict` / :meth:`FaultSchedule.from_dict` invert
exactly, and :meth:`FaultSchedule.schedule_hash` is a stable SHA-256
over the canonical JSON.  Generation draws each (node, fault-kind)
lane from its own ``PCG64(SeedSequence([seed, node, kind]))`` Poisson
process, so changing one node's faults never perturbs another's —
the same sub-seeding rule as
:func:`repro.service.workload.build_stream`.

>>> mix = FaultMix(crash_rate_per_node_hour=1.0,
...                crash_downtime_seconds=120.0,
...                throttle_rate_per_node_hour=0.0,
...                disk_rate_per_node_hour=0.0,
...                timeout_rate_per_node_hour=0.0)
>>> schedule = build_fault_schedule(
...     n_nodes=2, horizon_seconds=3600.0, seed=7, mix=mix)
>>> all(e.kind == "crash" for e in schedule.events)
True
>>> schedule == FaultSchedule.from_dict(schedule.to_dict())
True
>>> schedule.schedule_hash() == build_fault_schedule(
...     n_nodes=2, horizon_seconds=3600.0, seed=7,
...     mix=mix).schedule_hash()
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Mapping

import numpy as np

from repro.errors import ReproError

#: fault kinds a schedule may carry, in lane order (the integer lane
#: index seeds the kind's PCG64 sub-stream, so adding a kind never
#: reshuffles the existing ones)
FAULT_KINDS = ("crash", "throttle", "disk", "timeout")


class FaultError(ReproError):
    """A fault schedule is malformed or inconsistently applied."""


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault on one node.

    ``severity`` is kind-specific: the DVFS fraction for ``throttle``
    (speed and the cubic dynamic-power term both scale with it), the
    degraded speed factor for ``disk`` (service times divide by it
    while the RAID group rebuilds), and unused (0.0) for ``crash`` and
    ``timeout``.
    """

    kind: str
    node: int
    start: float
    duration: float
    severity: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultError(f"unknown fault kind {self.kind!r}; "
                             f"known: {', '.join(FAULT_KINDS)}")
        if self.node < 0:
            raise FaultError(f"fault on negative node {self.node}")
        if self.start < 0 or self.duration <= 0:
            raise FaultError(
                f"{self.kind} on node {self.node}: need start >= 0 and "
                f"duration > 0, got {self.start}/{self.duration}")
        if self.kind in ("throttle", "disk") and not 0 < self.severity <= 1:
            raise FaultError(
                f"{self.kind} severity must be in (0, 1], got "
                f"{self.severity}")

    @property
    def end(self) -> float:
        return self.start + self.duration

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "node": self.node, "start": self.start,
                "duration": self.duration, "severity": self.severity}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultEvent":
        return cls(**dict(data))


@dataclass(frozen=True)
class FaultSchedule:
    """A time-ordered, reproducible fault plan for one fleet run.

    >>> quiet = FaultSchedule(n_nodes=4, horizon_seconds=100.0)
    >>> len(quiet), quiet.planned_downtime_node_seconds()
    (0, 0.0)
    """

    n_nodes: int
    horizon_seconds: float
    events: tuple[FaultEvent, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise FaultError("schedule needs at least one node")
        if self.horizon_seconds <= 0:
            raise FaultError("schedule horizon must be positive")
        for event in self.events:
            if event.node >= self.n_nodes:
                raise FaultError(
                    f"{event.kind} targets node {event.node} but the "
                    f"schedule covers {self.n_nodes} nodes")
        ordered = tuple(sorted(
            self.events, key=lambda e: (e.start, e.node,
                                        FAULT_KINDS.index(e.kind))))
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def by_kind(self, kind: str) -> list[FaultEvent]:
        """Events of one kind, in time order."""
        if kind not in FAULT_KINDS:
            raise FaultError(f"unknown fault kind {kind!r}")
        return [e for e in self.events if e.kind == kind]

    def planned_downtime_node_seconds(self) -> float:
        """Node-seconds of scheduled crash downtime (before the engine
        skips events that land on already-down nodes)."""
        return float(sum(e.duration for e in self.by_kind("crash")))

    def describe(self) -> str:
        """One operator-readable line per kind."""
        parts = []
        for kind in FAULT_KINDS:
            events = self.by_kind(kind)
            if events:
                parts.append(f"{len(events)} {kind}")
        body = ", ".join(parts) if parts else "no faults"
        return (f"{body} across {self.n_nodes} nodes over "
                f"{self.horizon_seconds:.0f}s")

    # -- identity ------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "n_nodes": self.n_nodes,
            "horizon_seconds": self.horizon_seconds,
            "seed": self.seed,
            "events": [e.to_dict() for e in self.events],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSchedule":
        payload = dict(data)
        payload["events"] = tuple(FaultEvent.from_dict(e)
                                  for e in data.get("events", []))
        return cls(**payload)

    def schedule_hash(self) -> str:
        """Stable SHA-256 of the canonical JSON form — the identity a
        chaos report carries, same discipline as
        :meth:`repro.runner.ExperimentSpec.spec_hash`."""
        from repro.runner.spec import stable_hash
        return stable_hash(self.to_dict())


def degraded_speed_factor(raid_width: int,
                          rebuild_overhead: float = 0.2) -> float:
    """Serving speed of a node whose RAID 5 group lost a member.

    Mirrors :meth:`repro.hardware.raid.RaidArray._degrade_shares`:
    each of the ``width - 1`` survivors reads its own share plus an
    equal slice of the lost member's, so the slowest-member service
    time stretches by ``width / (width - 1)``; ``rebuild_overhead`` is
    the extra slowdown from rebuild traffic competing with serving
    I/O.

    >>> round(degraded_speed_factor(8), 6)
    0.729167
    >>> degraded_speed_factor(2, rebuild_overhead=0.0)
    0.5
    """
    if raid_width < 2:
        raise FaultError("degraded operation needs a RAID width >= 2")
    if rebuild_overhead < 0:
        raise FaultError("rebuild overhead cannot be negative")
    reconstruction = (raid_width - 1) / raid_width
    return reconstruction / (1.0 + rebuild_overhead)


@dataclass(frozen=True)
class FaultMix:
    """Per-kind Poisson rates and shapes for :func:`build_fault_schedule`.

    Rates are events per node-hour; ``intensity`` scales all of them at
    once (the sweep axis of the ``chaos_frontier`` experiment).
    """

    crash_rate_per_node_hour: float = 0.8
    crash_downtime_seconds: float = 300.0
    throttle_rate_per_node_hour: float = 0.3
    throttle_duration_seconds: float = 120.0
    throttle_dvfs_fraction: float = 0.7
    disk_rate_per_node_hour: float = 0.1
    rebuild_seconds: float = 180.0
    raid_width: int = 8
    timeout_rate_per_node_hour: float = 0.2
    timeout_duration_seconds: float = 30.0
    intensity: float = 1.0

    def __post_init__(self) -> None:
        if min(self.crash_rate_per_node_hour,
               self.throttle_rate_per_node_hour,
               self.disk_rate_per_node_hour,
               self.timeout_rate_per_node_hour, self.intensity) < 0:
            raise FaultError("fault rates and intensity cannot be negative")
        if min(self.crash_downtime_seconds, self.throttle_duration_seconds,
               self.rebuild_seconds, self.timeout_duration_seconds) <= 0:
            raise FaultError("fault durations must be positive")
        if not 0 < self.throttle_dvfs_fraction <= 1:
            raise FaultError("throttle DVFS fraction must be in (0, 1]")


def build_fault_schedule(n_nodes: int | None = None,
                         horizon_seconds: float = 0.0,
                         seed: int = 0,
                         mix: FaultMix | None = None,
                         fleet: Any = None,
                         **mix_kwargs: Any) -> FaultSchedule:
    """Draw a deterministic Poisson fault plan for a fleet.

    Each (node, kind) lane is an independent Poisson process whose
    PCG64 stream is seeded ``SeedSequence([seed, node, lane])`` —
    stable under changes to every other lane.  Keyword arguments are
    :class:`FaultMix` fields, for callers that don't build the mix
    themselves.

    Passing a :class:`~repro.service.spec.FleetSpec` as ``fleet``
    (instead of ``n_nodes``) switches to *per-class* lanes: each
    node's streams are seeded ``SeedSequence([seed, class_index,
    within_class_index, lane])``, so a class's fault draws are a
    function of its position in the composition, not of the global
    node index — resizing the beefy tier never perturbs the wimpy
    tier's crashes.  The emitted events still target global node
    indices, matching :func:`repro.service.fleet.simulate_service`'s
    node order for that spec.
    """
    if mix is None:
        mix = FaultMix(**mix_kwargs)
    elif mix_kwargs:
        raise FaultError("pass a FaultMix or its fields, not both")
    if (n_nodes is None) == (fleet is None):
        raise FaultError(
            "pass exactly one of n_nodes= or fleet= to size the plan")
    if fleet is not None:
        # (class_index, within_class_index) per global node index
        lane_keys = []
        for ci, node_class in enumerate(fleet.classes):
            lane_keys.extend((ci, wi) for wi in range(node_class.count))
        n_nodes = len(lane_keys)
    else:
        lane_keys = [(node,) for node in range(n_nodes)]
    if n_nodes < 1:
        raise FaultError("schedule needs at least one node")
    if horizon_seconds <= 0:
        raise FaultError("schedule horizon must be positive")

    lanes = (
        ("crash", mix.crash_rate_per_node_hour,
         mix.crash_downtime_seconds, 0.0),
        ("throttle", mix.throttle_rate_per_node_hour,
         mix.throttle_duration_seconds, mix.throttle_dvfs_fraction),
        ("disk", mix.disk_rate_per_node_hour, mix.rebuild_seconds,
         degraded_speed_factor(mix.raid_width)),
        ("timeout", mix.timeout_rate_per_node_hour,
         mix.timeout_duration_seconds, 0.0),
    )
    events: list[FaultEvent] = []
    for node, key in enumerate(lane_keys):
        for lane, (kind, rate, duration, severity) in enumerate(lanes):
            effective = rate * mix.intensity
            if effective <= 0:
                continue
            rng = np.random.default_rng(
                np.random.SeedSequence([seed, *key, lane]))
            mean_gap = 3600.0 / effective
            t = float(rng.exponential(mean_gap))
            while t < horizon_seconds:
                events.append(FaultEvent(kind=kind, node=node, start=t,
                                         duration=duration,
                                         severity=severity))
                t += float(rng.exponential(mean_gap))
    return FaultSchedule(n_nodes=n_nodes, horizon_seconds=horizon_seconds,
                         events=tuple(events), seed=seed)
