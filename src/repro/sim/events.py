"""Event primitives for the simulation engine.

An :class:`Event` is a one-shot future: it starts pending, is triggered
exactly once (with a value or an exception), and then runs its callbacks.
Processes wait on events by ``yield``-ing them; the engine wires the
resumption up through a callback.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sim.engine import Simulation

Callback = Callable[["Event"], None]


class Event:
    """A one-shot occurrence that processes can wait on.

    Events are triggered with either :meth:`succeed` (carrying an optional
    value) or :meth:`fail` (carrying an exception that will be re-raised
    inside every waiting process).
    """

    def __init__(self, sim: "Simulation") -> None:
        self.sim = sim
        self.callbacks: list[Callback] = []
        self._triggered = False
        self._ok: bool | None = None
        self._value: Any = None

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has succeeded or failed."""
        return self._triggered

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if not self._triggered:
            raise SimulationError("event not yet triggered")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The success value or failure exception carried by the event."""
        if not self._triggered:
            raise SimulationError("event not yet triggered")
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Mark the event successful and schedule its callbacks."""
        self._trigger(ok=True, value=value)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Mark the event failed; waiting processes see the exception."""
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        self._trigger(ok=False, value=exception)
        return self

    def _trigger(self, ok: bool, value: Any) -> None:
        if self._triggered:
            raise SimulationError(f"{self!r} triggered twice")
        self._triggered = True
        self._ok = ok
        self._value = value
        self.sim._schedule_event(self)

    # -- waiting -------------------------------------------------------
    def add_callback(self, callback: Callback) -> None:
        """Register ``callback`` to run when the event fires.

        If the event already fired *and was dispatched*, the callback runs
        via a fresh zero-delay dispatch so ordering stays deterministic.
        """
        if self._triggered and not self.callbacks and self._dispatched:
            self.sim._schedule_call(lambda: callback(self))
        else:
            self.callbacks.append(callback)

    _dispatched = False

    def __repr__(self) -> str:
        state = "pending"
        if self._triggered:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that succeeds after a fixed simulated delay."""

    def __init__(self, sim: "Simulation", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"timeout delay must be non-negative, got {delay}")
        super().__init__(sim)
        self.delay = delay
        self._triggered = True  # scheduled at construction, cannot re-trigger
        self._ok = True
        self._value = value
        sim._schedule_event(self, delay=delay)


class AllOf(Event):
    """Succeeds when every child event has succeeded.

    Fails as soon as any child fails (with that child's exception).
    The success value is the list of child values, in input order.
    """

    def __init__(self, sim: "Simulation", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._children = list(events)
        self._pending = len(self._children)
        if self._pending == 0:
            self.succeed([])
            return
        for child in self._children:
            child.add_callback(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self._triggered:
            return
        if not child.ok:
            self.fail(child.value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([c.value for c in self._children])


class AnyOf(Event):
    """Succeeds (or fails) as soon as the first child event triggers."""

    def __init__(self, sim: "Simulation", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._children = list(events)
        if not self._children:
            raise SimulationError("AnyOf needs at least one event")
        for child in self._children:
            child.add_callback(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self._triggered:
            return
        if child.ok:
            self.succeed(child.value)
        else:
            self.fail(child.value)
