"""Queued resources for the simulation engine.

A :class:`Resource` models a server with fixed capacity (CPU cores, a disk
spindle, a RAID controller queue slot).  Processes ``yield
resource.acquire()`` to obtain a unit, and must call ``release()`` exactly
once per acquisition.  The resource keeps busy-time accounting so device
models can convert occupancy into utilization and power.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulation

from repro.sim.events import Event


class _Request(Event):
    """The event handed to a waiting process; succeeds on grant."""

    def __init__(self, sim: "Simulation", resource: "Resource") -> None:
        super().__init__(sim)
        self.resource = resource


class Resource:
    """A FIFO multi-server resource with utilization accounting."""

    def __init__(self, sim: "Simulation", capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name or f"resource@{id(self):#x}"
        self._in_use = 0
        self._waiting: deque[_Request] = deque()
        # busy-time integral: sum over time of (units in use) dt
        self._busy_integral = 0.0
        self._last_change = sim.now
        self._observed_since = sim.now

    # -- acquisition ---------------------------------------------------
    def acquire(self) -> _Request:
        """Request one unit.  Yield the returned event to wait for grant."""
        request = _Request(self.sim, self)
        if self._in_use < self.capacity:
            self._grant(request)
        else:
            self._waiting.append(request)
        return request

    def release(self) -> None:
        """Return one unit, granting it to the longest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"{self.name}: release() without acquire()")
        self._account()
        self._in_use -= 1
        if self._waiting:
            self._grant(self._waiting.popleft())

    def cancel(self, request: _Request) -> None:
        """Withdraw a queued (ungranted) request."""
        try:
            self._waiting.remove(request)
        except ValueError:
            raise SimulationError(
                f"{self.name}: request not waiting (already granted or cancelled)"
            ) from None

    def _grant(self, request: _Request) -> None:
        self._account()
        self._in_use += 1
        request.succeed(self)

    # -- accounting ------------------------------------------------------
    def _account(self) -> None:
        now = self.sim.now
        self._busy_integral += self._in_use * (now - self._last_change)
        self._last_change = now

    @property
    def in_use(self) -> int:
        """Units currently granted."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Requests waiting for a unit."""
        return len(self._waiting)

    def utilization(self) -> float:
        """Mean fraction of capacity in use since the last reset."""
        self._account()
        elapsed = self.sim.now - self._observed_since
        if elapsed <= 0:
            return 0.0
        return self._busy_integral / (elapsed * self.capacity)

    def busy_seconds(self) -> float:
        """Unit-seconds of busy time since the last reset."""
        self._account()
        return self._busy_integral

    def reset_accounting(self) -> None:
        """Restart the utilization window at the current time."""
        self._busy_integral = 0.0
        self._last_change = self.sim.now
        self._observed_since = self.sim.now

    def __repr__(self) -> str:
        return (f"Resource({self.name!r}, {self._in_use}/{self.capacity} busy, "
                f"{len(self._waiting)} queued)")
