"""Time-series tracing for simulations.

Devices emit step-function samples (power changes at state transitions);
:class:`TimeSeries` stores them and can integrate, average, and resample.
:class:`TraceRecorder` is a keyed collection of series for a whole run.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator

from repro.errors import SimulationError


class TimeSeries:
    """A right-continuous step function sampled at change points.

    ``record(t, v)`` means "the value is ``v`` from time ``t`` until the
    next recorded point".  Integration treats the series as a step
    function, which matches how device power evolves between state
    transitions.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._times: list[float] = []
        self._values: list[float] = []

    def record(self, t: float, value: float) -> None:
        """Append a sample.  Time must be non-decreasing.

        Re-recording at the same timestamp overwrites the prior value,
        which is what a device wants when it changes state twice in the
        same instant (only the final state holds for any positive span).
        """
        if self._times and t < self._times[-1]:
            raise SimulationError(
                f"series {self.name!r}: time went backwards "
                f"({t} after {self._times[-1]})")
        if self._times and t == self._times[-1]:
            self._values[-1] = value
            return
        self._times.append(t)
        self._values.append(value)

    def __len__(self) -> int:
        return len(self._times)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(zip(self._times, self._values))

    @property
    def times(self) -> list[float]:
        return list(self._times)

    @property
    def values(self) -> list[float]:
        return list(self._values)

    def value_at(self, t: float) -> float:
        """The step-function value at time ``t``."""
        if not self._times or t < self._times[0]:
            raise SimulationError(
                f"series {self.name!r} has no value at t={t}")
        idx = bisect.bisect_right(self._times, t) - 1
        return self._values[idx]

    def integrate(self, t0: float, t1: float) -> float:
        """Integral of the step function over ``[t0, t1]``.

        For a power series in Watts this is energy in Joules.
        """
        if t1 < t0:
            raise SimulationError(f"bad interval [{t0}, {t1}]")
        if t1 == t0 or not self._times:
            return 0.0
        if t0 < self._times[0]:
            raise SimulationError(
                f"series {self.name!r} starts at {self._times[0]}, "
                f"cannot integrate from {t0}")
        total = 0.0
        idx = bisect.bisect_right(self._times, t0) - 1
        cursor = t0
        while cursor < t1:
            seg_end = self._times[idx + 1] if idx + 1 < len(self._times) else t1
            seg_end = min(seg_end, t1)
            total += self._values[idx] * (seg_end - cursor)
            cursor = seg_end
            idx += 1
        return total

    def average(self, t0: float, t1: float) -> float:
        """Time-weighted mean over ``[t0, t1]``."""
        if t1 <= t0:
            raise SimulationError(f"bad interval [{t0}, {t1}]")
        return self.integrate(t0, t1) / (t1 - t0)

    def resample(self, t0: float, t1: float, step: float) -> list[tuple[float, float]]:
        """Sample the step function on a regular grid (for plotting)."""
        if step <= 0:
            raise SimulationError(f"step must be positive, got {step}")
        out = []
        t = t0
        while t <= t1 + 1e-12:
            out.append((t, self.value_at(min(t, t1))))
            t += step
        return out


class TraceRecorder:
    """A keyed collection of :class:`TimeSeries` for one simulation run."""

    def __init__(self) -> None:
        self._series: dict[str, TimeSeries] = {}

    def series(self, key: str) -> TimeSeries:
        """Get (or lazily create) the series for ``key``."""
        if key not in self._series:
            self._series[key] = TimeSeries(name=key)
        return self._series[key]

    def record(self, key: str, t: float, value: float) -> None:
        """Append a sample to the series for ``key``."""
        self.series(key).record(t, value)

    def keys(self) -> list[str]:
        return sorted(self._series)

    def __contains__(self, key: str) -> bool:
        return key in self._series

    def total(self, keys: Iterable[str], t0: float, t1: float) -> float:
        """Sum of integrals across the given series over ``[t0, t1]``."""
        return sum(self._series[k].integrate(t0, t1) for k in keys)
