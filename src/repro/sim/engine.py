"""The discrete-event simulation engine.

Processes are generators that yield :class:`~repro.sim.events.Event`
instances; the engine resumes a process when the event it waits on
triggers.  Scheduling is deterministic: events fire in (time, sequence)
order, so two runs of the same simulation produce identical traces.

Example
-------
>>> from repro.sim import Simulation
>>> sim = Simulation()
>>> log = []
>>> def worker(name, delay):
...     yield sim.timeout(delay)
...     log.append((sim.now, name))
>>> _ = sim.spawn(worker("a", 2.0))
>>> _ = sim.spawn(worker("b", 1.0))
>>> sim.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import SimulationError
from repro.sim.clock import Clock
from repro.sim.events import AllOf, AnyOf, Event, Timeout

ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A running process.

    A ``Process`` is itself an event: it triggers with the generator's
    return value when the generator finishes, or fails with the exception
    that escaped it.  This lets processes wait on each other by yielding
    the :class:`Process` object.
    """

    def __init__(self, sim: "Simulation", generator: ProcessGenerator,
                 name: str = "") -> None:
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"spawn() needs a generator, got {type(generator).__name__}"
            )
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # Kick the process off at the current time.
        sim._schedule_call(self._resume_first)

    def _resume_first(self) -> None:
        self._step(None, ok=True)

    def _on_event(self, event: Event) -> None:
        self._waiting_on = None
        self._step(event.value, ok=event.ok)

    def _step(self, value: Any, ok: bool) -> None:
        if self._triggered:
            return
        try:
            if ok:
                target = self._generator.send(value)
            else:
                target = self._generator.throw(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate via event
            self.fail(exc)
            return
        if not isinstance(target, Event):
            self.fail(SimulationError(
                f"process {self.name!r} yielded {target!r}; "
                "processes must yield Event instances"))
            return
        if target.sim is not self.sim:
            self.fail(SimulationError(
                f"process {self.name!r} yielded an event from another simulation"))
            return
        self._waiting_on = target
        target.add_callback(self._on_event)

    def interrupt(self, reason: str = "interrupted") -> None:
        """Abort the process by throwing :class:`SimulationError` into it."""
        if self._triggered:
            return
        waiting = self._waiting_on
        self._waiting_on = None
        if waiting is not None and self._on_event in waiting.callbacks:
            waiting.callbacks.remove(self._on_event)
        self.sim._schedule_call(
            lambda: self._step(SimulationError(reason), ok=False))

    def __repr__(self) -> str:
        state = "running"
        if self._triggered:
            state = "done" if self._ok else "failed"
        return f"<Process {self.name!r} {state}>"


class Simulation:
    """Event queue, clock, and process scheduler."""

    def __init__(self, start: float = 0.0) -> None:
        self.clock = Clock(start)
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._processes: list[Process] = []

    # -- time ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time, in seconds."""
        return self.clock.now

    # -- event construction ------------------------------------------------
    def event(self) -> Event:
        """Create a new untriggered event bound to this simulation."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """An event that fires once every given event has succeeded."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """An event that fires when the first of the given events triggers."""
        return AnyOf(self, events)

    def spawn(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start a new process from a generator and return its Process event."""
        process = Process(self, generator, name=name)
        self._processes.append(process)
        return process

    # -- scheduling (internal) ----------------------------------------------
    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._queue, (self.now + delay, self._seq, event))
        self._seq += 1

    def _schedule_call(self, fn: Callable[[], None], delay: float = 0.0) -> None:
        """Schedule a bare callback via a throwaway event."""
        event = Event(self)
        event.add_callback(lambda _evt: fn())
        event._triggered = True
        event._ok = True
        self._schedule_event(event, delay=delay)

    # -- running ------------------------------------------------------------
    def step(self) -> None:
        """Dispatch the single next event in the queue."""
        if not self._queue:
            raise SimulationError("no events left to step")
        when, _seq, event = heapq.heappop(self._queue)
        self.clock.advance_to(when)
        event._dispatched = True
        callbacks, event.callbacks = event.callbacks, []
        if event.triggered and not event.ok and callbacks:
            # Someone is handling this failure; don't re-raise it later.
            event._failure_observed = True
        for callback in callbacks:
            callback(event)

    def run(self, until: float | Event | None = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the event queue drains), a
        float (run up to that simulated time), or an :class:`Event` (run
        until it triggers, returning its value or raising its exception).
        """
        if isinstance(until, Event):
            return self._run_until_event(until)
        if until is not None and until < self.now:
            raise SimulationError(
                f"cannot run until {until}: already at {self.now}")
        while self._queue:
            when = self._queue[0][0]
            if until is not None and when > until:
                self.clock.advance_to(until)
                return None
            self.step()
        if until is not None:
            self.clock.advance_to(until)
        self._raise_orphaned_failures()
        return None

    def _run_until_event(self, until: Event) -> Any:
        while not until.triggered:
            if not self._queue:
                raise SimulationError(
                    "event queue drained before the awaited event triggered")
            self.step()
        if until.ok:
            return until.value
        raise until.value

    def _raise_orphaned_failures(self) -> None:
        """Surface process crashes nobody waited on.

        Errors should never pass silently: if a spawned process failed and
        no other process observed the failure, raise it at the end of the
        run instead of swallowing it.
        """
        for process in self._processes:
            if (process.triggered and not process.ok
                    and not getattr(process, "_failure_observed", False)):
                raise process.value

    def __repr__(self) -> str:
        return f"Simulation(now={self.now:.9g}, pending={len(self._queue)})"
