"""Simulated clock.

The clock only moves forward, and only the simulation engine should move
it.  It is factored out of the engine so device models can hold a
reference to "the current time" without depending on the full engine.
"""

from __future__ import annotations

from repro.errors import SimulationError


class Clock:
    """A monotonically non-decreasing virtual clock, in seconds."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise SimulationError(f"clock cannot start at negative time {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock forward to time ``t``.

        Raises :class:`SimulationError` if ``t`` is in the past; advancing
        to the current time is a no-op.
        """
        if t < self._now:
            raise SimulationError(
                f"clock cannot move backwards: now={self._now}, requested={t}"
            )
        self._now = t

    def __repr__(self) -> str:
        return f"Clock(now={self._now:.9g})"
