"""Discrete-event simulation kernel.

A small, deterministic, SimPy-flavoured engine: processes are Python
generators that ``yield`` events (timeouts, resource acquisitions, other
processes), and the :class:`~repro.sim.engine.Simulation` advances a
virtual clock from event to event.  All hardware models in
:mod:`repro.hardware` and all workload drivers are built on this kernel.
"""

from repro.sim.clock import Clock
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.engine import Process, Simulation
from repro.sim.resources import Resource
from repro.sim.tracing import TimeSeries, TraceRecorder

__all__ = [
    "AllOf",
    "AnyOf",
    "Clock",
    "Event",
    "Process",
    "Resource",
    "Simulation",
    "TimeSeries",
    "Timeout",
    "TraceRecorder",
]
