"""CPU model with DVFS P-states and deep-idle C-states.

Work is expressed in *cycles*; the CPU converts cycles to simulated
seconds at its current effective frequency.  Power follows the classic
utilization-linear model with a cubic DVFS term (dynamic power is
proportional to f * V^2 and voltage scales roughly with frequency):

    P = P_idle + (P_peak - P_idle) * dvfs_fraction^3 * (busy_cores / cores)

The paper's Figure 2 charges an active CPU at its full 90 W and an idle
CPU at zero; :attr:`Cpu.active_power_per_unit_watts` exposes the per-core
active power so :meth:`~repro.hardware.meter.EnergyMeter.active_energy_joules`
can reproduce that accounting convention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator

from repro.errors import HardwareError
from repro.hardware.device import Device
from repro.sim.resources import Resource
from repro.units import GHZ

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulation


@dataclass(frozen=True)
class CpuSpec:
    """Static parameters of a CPU package."""

    name: str = "cpu"
    cores: int = 4
    frequency_hz: float = 2.4 * GHZ
    idle_watts: float = 15.0
    peak_watts: float = 90.0
    cstate_watts: float = 3.0
    cstate_enter_seconds: float = 50e-6
    cstate_exit_seconds: float = 100e-6
    dvfs_fractions: tuple[float, ...] = (1.0, 0.85, 0.7, 0.55)

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise HardwareError(f"{self.name}: cores must be >= 1")
        if self.frequency_hz <= 0:
            raise HardwareError(f"{self.name}: frequency must be positive")
        if not 0 <= self.idle_watts <= self.peak_watts:
            raise HardwareError(
                f"{self.name}: need 0 <= idle ({self.idle_watts}) "
                f"<= peak ({self.peak_watts})")
        if self.cstate_watts > self.idle_watts:
            raise HardwareError(f"{self.name}: C-state power above idle power")
        if not self.dvfs_fractions or any(
                not 0 < f <= 1.0 for f in self.dvfs_fractions):
            raise HardwareError(
                f"{self.name}: DVFS fractions must be in (0, 1]")


class Cpu(Device):
    """A multi-core CPU executing cycle-denominated work."""

    def __init__(self, sim: "Simulation", spec: CpuSpec) -> None:
        super().__init__(sim, spec.name, initial_power_watts=spec.idle_watts)
        self.spec = spec
        self.cores = Resource(sim, capacity=spec.cores, name=f"{spec.name}.cores")
        self._dvfs_fraction = spec.dvfs_fractions[0]
        self._sleeping = False
        self._update_power()

    # -- frequency scaling -------------------------------------------------
    @property
    def dvfs_fraction(self) -> float:
        """Current frequency as a fraction of nominal."""
        return self._dvfs_fraction

    @property
    def effective_frequency_hz(self) -> float:
        """Cycles per second at the current P-state."""
        return self.spec.frequency_hz * self._dvfs_fraction

    def set_dvfs(self, fraction: float) -> None:
        """Switch to the P-state with the given frequency fraction.

        Only offered fractions are legal, and the CPU must be idle (a
        frequency change mid-computation would silently misprice the
        already-scheduled timeout).
        """
        if fraction not in self.spec.dvfs_fractions:
            raise HardwareError(
                f"{self.name}: {fraction} not an offered DVFS fraction "
                f"{self.spec.dvfs_fractions}")
        if self.busy_units > 0:
            raise HardwareError(
                f"{self.name}: cannot change DVFS while {self.busy_units} "
                "cores are busy")
        self._dvfs_fraction = fraction
        self._update_power()

    # -- C-states -----------------------------------------------------------
    @property
    def sleeping(self) -> bool:
        """Whether the package is in its deep C-state."""
        return self._sleeping

    def sleep(self) -> Generator:
        """Enter the deep C-state (process; yields the entry latency)."""
        if self.busy_units > 0:
            raise HardwareError(f"{self.name}: cannot sleep while busy")
        if self._sleeping:
            return
        yield self.sim.timeout(self.spec.cstate_enter_seconds)
        self._sleeping = True
        self._update_power()

    def wake(self) -> Generator:
        """Leave the deep C-state (process; yields the exit latency)."""
        if not self._sleeping:
            return
        yield self.sim.timeout(self.spec.cstate_exit_seconds)
        self._sleeping = False
        self._update_power()

    # -- execution -----------------------------------------------------------
    def execute(self, cycles: float, parallelism: int = 1) -> Generator:
        """Run ``cycles`` of work using ``parallelism`` cores (process).

        With ``parallelism > 1`` the cycles are divided evenly across the
        cores (perfect speed-up); contention with other work is modeled by
        the core resource queue.
        """
        if cycles < 0:
            raise HardwareError(f"{self.name}: negative cycle count {cycles}")
        if not 1 <= parallelism <= self.spec.cores:
            raise HardwareError(
                f"{self.name}: parallelism {parallelism} outside "
                f"1..{self.spec.cores}")
        if self._sleeping:
            yield from self.wake()
        if cycles == 0:
            return
        for _ in range(parallelism):
            yield self.cores.acquire()
        self._mark_busy(parallelism)
        try:
            seconds = cycles / (self.effective_frequency_hz * parallelism)
            yield self.sim.timeout(seconds)
        finally:
            self._mark_idle(parallelism)
            for _ in range(parallelism):
                self.cores.release()

    def seconds_for_cycles(self, cycles: float, parallelism: int = 1) -> float:
        """Service time for ``cycles`` at the current P-state (no queueing)."""
        if cycles < 0:
            raise HardwareError(f"{self.name}: negative cycle count {cycles}")
        return cycles / (self.effective_frequency_hz * max(1, parallelism))

    # -- power ---------------------------------------------------------------
    def _dynamic_range_watts(self) -> float:
        return ((self.spec.peak_watts - self.spec.idle_watts)
                * self._dvfs_fraction ** 3)

    def _update_power(self) -> None:
        if self._sleeping:
            self._set_power(self.spec.cstate_watts)
            return
        busy_fraction = self.busy_units / self.spec.cores
        self._set_power(self.spec.idle_watts
                        + self._dynamic_range_watts() * busy_fraction)

    def _on_activity_change(self) -> None:
        self._update_power()

    @property
    def active_power_per_unit_watts(self) -> float:
        """Full package power per busy core (Figure 2 accounting).

        One busy core on a c-core package is charged peak/c at the current
        P-state, so a fully-busy package is charged exactly its peak power.
        """
        full = self.spec.idle_watts + self._dynamic_range_watts()
        return full / self.spec.cores

    @property
    def capacity_units(self) -> int:
        return self.spec.cores
