"""Power delivery and cooling burden.

Studies cited by the paper found that "every 1 W used to power servers
requires an additional 0.5 W to 1 W of power for cooling equipment"
[PBS+03], and that power supplies lose a load-dependent fraction of the
draw.  :class:`BurdenModel` converts component (DC) power into wall /
facility power so experiments can report either.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import HardwareError


@dataclass(frozen=True)
class PsuSpec:
    """A power supply with a load-dependent efficiency curve.

    ``efficiency_curve`` maps load fraction (0..1 of ``rated_watts``) to
    efficiency; intermediate loads are linearly interpolated.  The typical
    shape is poor at low load, peaking near 50 %, dipping slightly at 100 %.
    """

    rated_watts: float = 1200.0
    efficiency_curve: tuple[tuple[float, float], ...] = (
        (0.0, 0.60), (0.2, 0.82), (0.5, 0.90), (1.0, 0.87),
    )

    def __post_init__(self) -> None:
        if self.rated_watts <= 0:
            raise HardwareError("PSU rating must be positive")
        curve = self.efficiency_curve
        if len(curve) < 2:
            raise HardwareError("efficiency curve needs >= 2 points")
        loads = [p[0] for p in curve]
        if loads != sorted(loads) or loads[0] != 0.0:
            raise HardwareError("efficiency curve must start at load 0 "
                                "and be sorted by load")
        if any(not 0 < eff <= 1 for _, eff in curve):
            raise HardwareError("efficiencies must be in (0, 1]")

    def efficiency(self, dc_watts: float) -> float:
        """Interpolated efficiency at the given DC output power."""
        if dc_watts < 0:
            raise HardwareError(f"negative DC power {dc_watts}")
        load = min(dc_watts / self.rated_watts, self.efficiency_curve[-1][0])
        curve = self.efficiency_curve
        for (l0, e0), (l1, e1) in zip(curve, curve[1:]):
            if load <= l1:
                if l1 == l0:
                    return e1
                frac = (load - l0) / (l1 - l0)
                return e0 + frac * (e1 - e0)
        return curve[-1][1]

    def input_watts(self, dc_watts: float) -> float:
        """AC input power required to deliver ``dc_watts``."""
        if dc_watts == 0:
            return 0.0
        return dc_watts / self.efficiency(dc_watts)


@dataclass(frozen=True)
class BurdenModel:
    """Wall/facility power as a function of component power.

    ``cooling_overhead`` is the [PBS+03] burdening factor: extra facility
    Watts per Watt delivered to the IT equipment (0.5-1.0 in the paper).
    """

    psu: Optional[PsuSpec] = None
    cooling_overhead: float = 0.5

    def __post_init__(self) -> None:
        if self.cooling_overhead < 0:
            raise HardwareError("cooling overhead cannot be negative")

    def wall_power_watts(self, dc_watts: float) -> float:
        """Facility power for a given component power."""
        if dc_watts < 0:
            raise HardwareError(f"negative DC power {dc_watts}")
        ac = self.psu.input_watts(dc_watts) if self.psu else dc_watts
        return ac * (1.0 + self.cooling_overhead)

    def pue(self, dc_watts: float) -> float:
        """Power usage effectiveness at the given load."""
        if dc_watts <= 0:
            raise HardwareError("PUE undefined at zero load")
        return self.wall_power_watts(dc_watts) / dc_watts


def aggregate_efficiency(psus: Sequence[PsuSpec], dc_watts: float) -> float:
    """Efficiency of load shared evenly across multiple supplies."""
    if not psus:
        raise HardwareError("need at least one PSU")
    share = dc_watts / len(psus)
    total_in = sum(p.input_watts(share) for p in psus)
    if total_in == 0:
        return 1.0
    return dc_watts / total_in
