"""RAID arrays over disk or SSD models.

The paper's Figure 1 system striped a 256 GB database across 36-204
spindles in RAID 5; repartitioning across fewer disks was "the most
effective means of varying power use".  :class:`RaidArray` stripes
requests across its members, runs the per-member transfers as parallel
simulation processes, and models RAID-5 parity overheads for writes.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Generator, Hashable, Optional, Sequence, Union

from repro.errors import HardwareError
from repro.hardware.disk import HardDisk
from repro.hardware.ssd import FlashSsd
from repro.units import KIB

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulation

Member = Union[HardDisk, FlashSsd]


class RaidLevel(enum.Enum):
    """Supported array organizations."""

    RAID0 = "raid0"
    RAID5 = "raid5"


class RaidArray:
    """A striped array of homogeneous members."""

    def __init__(self, sim: "Simulation", members: Sequence[Member],
                 level: RaidLevel = RaidLevel.RAID0,
                 stripe_unit_bytes: int = 256 * KIB,
                 name: str = "raid") -> None:
        if not members:
            raise HardwareError(f"{name}: array needs at least one member")
        if level is RaidLevel.RAID5 and len(members) < 3:
            raise HardwareError(f"{name}: RAID 5 needs at least 3 members")
        if stripe_unit_bytes <= 0:
            raise HardwareError(f"{name}: stripe unit must be positive")
        self.sim = sim
        self.members = list(members)
        self.level = level
        self.stripe_unit_bytes = stripe_unit_bytes
        self.name = name
        self._failed: set[int] = set()

    # -- geometry ------------------------------------------------------------
    @property
    def width(self) -> int:
        """Number of members."""
        return len(self.members)

    @property
    def capacity_bytes(self) -> int:
        """Usable capacity: parity costs one member's worth under RAID 5."""
        per_member = min(m.spec.capacity_bytes for m in self.members)
        if self.level is RaidLevel.RAID5:
            return per_member * (self.width - 1)
        return per_member * self.width

    def _data_members(self) -> int:
        """Members carrying data (not parity) in one full stripe."""
        if self.level is RaidLevel.RAID5:
            return self.width - 1
        return self.width

    def _split(self, nbytes: int) -> list[int]:
        """Partition a request into per-member byte counts.

        Reads (and full-stripe writes) spread evenly across the data
        members; with rotating parity every member carries data, so reads
        use all ``width`` spindles.
        """
        spindles = self.width
        base = nbytes // spindles
        remainder = nbytes - base * spindles
        # Spread the remainder a stripe-unit at a time.
        shares = []
        left = remainder
        for _ in range(spindles):
            extra = min(left, self.stripe_unit_bytes)
            shares.append(base + extra)
            left -= extra
        shares[-1] += left
        return shares

    # -- transfers --------------------------------------------------------
    def read(self, nbytes: int,
             stream: Optional[Hashable] = None) -> Generator:
        """Read ``nbytes`` striped across the array (process)."""
        if nbytes < 0:
            raise HardwareError(f"{self.name}: negative read size")
        if nbytes == 0:
            return
        yield from self._fan_out(self._split(nbytes), stream, is_write=False)

    def write(self, nbytes: int, stream: Optional[Hashable] = None,
              full_stripe: bool = True) -> Generator:
        """Write ``nbytes`` (process).

        RAID 5 charges parity: a full-stripe write adds ``1/(width-1)``
        extra bytes; a small (read-modify-write) write performs the
        classic 2-reads + 2-writes, modeled as a 4x byte amplification on
        the affected members.
        """
        if nbytes < 0:
            raise HardwareError(f"{self.name}: negative write size")
        if nbytes == 0:
            return
        if self.level is RaidLevel.RAID5:
            if full_stripe:
                amplified = nbytes * self.width / (self.width - 1)
            else:
                amplified = nbytes * 4
            nbytes = int(round(amplified))
        yield from self._fan_out(self._split(nbytes), stream, is_write=True)

    def read_batch(self, nbytes: float, n_requests: float) -> Generator:
        """A batch of random reads striped across the array (process).

        Bytes and positioning requests are spread evenly over the
        members, which serve their shares in parallel.
        """
        if nbytes < 0 or n_requests < 0:
            raise HardwareError(f"{self.name}: negative batch read")
        if nbytes == 0 and n_requests == 0:
            return
        children = []
        share_bytes = nbytes / self.width
        share_requests = n_requests / self.width
        for member in self.members:
            children.append(self.sim.spawn(
                member.read_batch(share_bytes, share_requests),
                name=f"{self.name}.{member.name}.batch"))
        yield self.sim.all_of(children)

    def _fan_out(self, shares: list[int], stream: Optional[Hashable],
                 is_write: bool) -> Generator:
        if self._failed and not is_write:
            shares = self._degrade_shares(shares)
        children = []
        for index, (member, share) in enumerate(zip(self.members, shares)):
            if share <= 0 or index in self._failed:
                continue
            op = member.write if is_write else member.read
            children.append(self.sim.spawn(
                op(share, stream=stream),
                name=f"{self.name}.{member.name}"))
        if children:
            yield self.sim.all_of(children)

    def _degrade_shares(self, shares: list[int]) -> list[int]:
        """Degraded RAID 5 read: the failed member's share is
        reconstructed by reading the corresponding chunks (data +
        parity) from every survivor — each survivor reads its own share
        plus an equal slice of the lost one."""
        lost = sum(shares[i] for i in self._failed)
        survivors = [i for i in range(self.width) if i not in self._failed]
        extra, remainder = divmod(lost, len(survivors))
        out = list(shares)
        for position, index in enumerate(survivors):
            out[index] += extra + (1 if position < remainder else 0)
        return out

    # -- service-time arithmetic --------------------------------------------
    def read_seconds(self, nbytes: int, positioned: bool = True) -> float:
        """Idealized (queue-free) service time: the slowest member share."""
        worst = 0.0
        for member, share in zip(self.members, self._split(nbytes)):
            if isinstance(member, HardDisk):
                t = member.service_seconds(share, positioned)
            else:
                t = member.read_seconds(share)
            worst = max(worst, t)
        return worst

    # -- failure and rebuild (RAID 5 degraded mode) ----------------------------
    @property
    def degraded(self) -> bool:
        """Whether the array is running with a failed member."""
        return bool(self._failed)

    def fail_member(self, index: int) -> None:
        """Mark one member failed (RAID 5 only; a second failure is
        data loss and is rejected)."""
        if self.level is not RaidLevel.RAID5:
            raise HardwareError(
                f"{self.name}: only RAID 5 supports degraded operation")
        if not 0 <= index < self.width:
            raise HardwareError(f"{self.name}: no member {index}")
        if self._failed and index not in self._failed:
            raise HardwareError(
                f"{self.name}: a second failure loses data")
        self._failed.add(index)

    def repair_member(self, index: int) -> None:
        """Mark a member healthy again (after rebuild)."""
        self._failed.discard(index)

    def rebuild(self, index: int) -> Generator:
        """Rebuild a failed member onto a fresh spare (process).

        Reads every survivor's full data share and writes the
        reconstructed content to the replaced member — the energy bill
        of redundancy repair.
        """
        if index not in self._failed:
            raise HardwareError(f"{self.name}: member {index} not failed")
        per_member = min(m.spec.capacity_bytes for m in self.members)
        readers = [self.sim.spawn(member.read(per_member,
                                              stream=f"rebuild-{i}"),
                                  name=f"{self.name}.rebuild.read{i}")
                   for i, member in enumerate(self.members)
                   if i != index]
        writer = self.sim.spawn(
            self.members[index].write(per_member, stream="rebuild-w"),
            name=f"{self.name}.rebuild.write")
        yield self.sim.all_of([*readers, writer])
        self.repair_member(index)

    # -- power management ---------------------------------------------------
    def spin_down(self) -> Generator:
        """Spin down every rotating member (process)."""
        children = [self.sim.spawn(m.spin_down())
                    for m in self.members if isinstance(m, HardDisk)]
        if children:
            yield self.sim.all_of(children)

    def spin_up(self) -> Generator:
        """Spin up every rotating member (process)."""
        children = [self.sim.spawn(m.spin_up())
                    for m in self.members if isinstance(m, HardDisk)]
        if children:
            yield self.sim.all_of(children)

    def power_watts(self) -> float:
        """Instantaneous aggregate power of the members."""
        return sum(m.power_watts for m in self.members)

    def __repr__(self) -> str:
        return (f"RaidArray({self.name!r}, {self.level.value}, "
                f"width={self.width})")
