"""Base device model.

A :class:`Device` is anything that draws power in the simulated machine.
Its power draw is a right-continuous step function of time, recorded in a
:class:`~repro.sim.tracing.TimeSeries` at every change, so that

    energy(t0, t1) = integral of power over [t0, t1]

holds exactly.  Subclasses change power by calling :meth:`_set_power`,
and account for activity via :meth:`_mark_busy` / :meth:`_mark_idle`
(which tracks unit-seconds of busy time — e.g. core-seconds for a CPU).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import HardwareError
from repro.sim.tracing import TimeSeries

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulation


class Device:
    """A powered component with activity accounting."""

    def __init__(self, sim: "Simulation", name: str,
                 initial_power_watts: float = 0.0) -> None:
        self.sim = sim
        self.name = name
        self.power_series = TimeSeries(name=name)
        self._created_at = sim.now
        self.power_series.record(sim.now, initial_power_watts)
        self._busy_units = 0
        self._busy_integral = 0.0
        self._last_busy_change = sim.now
        self._transition_energy = 0.0

    # -- power -----------------------------------------------------------
    @property
    def power_watts(self) -> float:
        """Instantaneous power draw."""
        return self.power_series.value_at(self.sim.now)

    def _set_power(self, watts: float) -> None:
        if watts < 0:
            raise HardwareError(f"{self.name}: negative power {watts}")
        self.power_series.record(self.sim.now, watts)

    def _charge_transition_energy(self, joules: float) -> None:
        """Add a lump of transition energy (spin-up spikes etc.)."""
        if joules < 0:
            raise HardwareError(f"{self.name}: negative transition energy")
        self._transition_energy += joules

    def energy_joules(self, t0: Optional[float] = None,
                      t1: Optional[float] = None) -> float:
        """Energy consumed over ``[t0, t1]`` (defaults: creation .. now).

        Includes lump transition energy, which is attributed to the whole
        lifetime (only full-lifetime queries include it; interval queries
        return the steady-state integral).
        """
        start = self._created_at if t0 is None else t0
        end = self.sim.now if t1 is None else t1
        steady = self.power_series.integrate(start, end)
        if t0 is None and t1 is None:
            return steady + self._transition_energy
        return steady

    def average_power_watts(self, t0: Optional[float] = None,
                            t1: Optional[float] = None) -> float:
        """Time-averaged power over ``[t0, t1]``."""
        start = self._created_at if t0 is None else t0
        end = self.sim.now if t1 is None else t1
        if end <= start:
            return self.power_watts
        return self.energy_joules(start, end) / (end - start)

    # -- activity ----------------------------------------------------------
    def _mark_busy(self, units: int = 1) -> None:
        """Record that ``units`` more internal units became busy."""
        self._account_busy()
        self._busy_units += units
        self._on_activity_change()

    def _mark_idle(self, units: int = 1) -> None:
        """Record that ``units`` internal units became idle."""
        if self._busy_units < units:
            raise HardwareError(
                f"{self.name}: marking idle more units than busy")
        self._account_busy()
        self._busy_units -= units
        self._on_activity_change()

    def _account_busy(self) -> None:
        now = self.sim.now
        self._busy_integral += self._busy_units * (now - self._last_busy_change)
        self._last_busy_change = now

    def _on_activity_change(self) -> None:
        """Hook: subclasses recompute power when activity changes."""

    @property
    def busy_units(self) -> int:
        """Internal units currently busy (cores, spindles, ...)."""
        return self._busy_units

    def busy_seconds(self) -> float:
        """Accumulated unit-seconds of busy time."""
        self._account_busy()
        return self._busy_integral

    def utilization(self, t0: Optional[float] = None,
                    t1: Optional[float] = None) -> float:
        """Busy unit-seconds per elapsed second, normalized by capacity.

        Subclasses with more than one unit override :attr:`capacity_units`.
        """
        start = self._created_at if t0 is None else t0
        end = self.sim.now if t1 is None else t1
        elapsed = end - start
        if elapsed <= 0:
            return 0.0
        return self.busy_seconds() / (elapsed * self.capacity_units)

    @property
    def capacity_units(self) -> int:
        """Number of parallel units in the device (1 unless overridden)."""
        return 1

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} {self.name!r} "
                f"{self.power_watts:.1f} W, busy={self._busy_units}>")
