"""Whole-server composition.

A :class:`Server` bundles a CPU, DRAM, storage devices, and a constant
base draw (fans, chipset, NICs) behind one :class:`EnergyMeter`, giving
experiments a single object with "wall plug" semantics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence, Union

from repro.errors import HardwareError
from repro.hardware.cpu import Cpu
from repro.hardware.device import Device
from repro.hardware.disk import HardDisk
from repro.hardware.memory import Dram
from repro.hardware.meter import EnergyMeter
from repro.hardware.psu import BurdenModel
from repro.hardware.ssd import FlashSsd

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulation

StorageDevice = Union[HardDisk, FlashSsd]


class BaseLoad(Device):
    """Constant power draw for components not modeled individually."""

    def __init__(self, sim: "Simulation", watts: float,
                 name: str = "base") -> None:
        if watts < 0:
            raise HardwareError("base load cannot be negative")
        super().__init__(sim, name, initial_power_watts=watts)
        self._watts = watts

    def set_watts(self, watts: float) -> None:
        """Change the base draw (e.g. when a blade is powered off)."""
        if watts < 0:
            raise HardwareError("base load cannot be negative")
        self._watts = watts
        self._set_power(watts)


class Server:
    """A CPU + DRAM + storage node with unified energy accounting."""

    def __init__(self, sim: "Simulation", name: str, cpu: Cpu, dram: Dram,
                 storage: Sequence[StorageDevice],
                 base_watts: float = 50.0,
                 burden: Optional[BurdenModel] = None) -> None:
        self.sim = sim
        self.name = name
        self.cpu = cpu
        self.dram = dram
        self.storage = list(storage)
        self.base = BaseLoad(sim, base_watts, name=f"{name}.base")
        self.meter = EnergyMeter(sim, burden=burden)
        self.meter.attach(cpu)
        self.meter.attach(dram)
        self.meter.attach(self.base)
        for device in self.storage:
            self.meter.attach(device)
        self._powered_on = True

    # -- power ------------------------------------------------------------
    @property
    def powered_on(self) -> bool:
        return self._powered_on

    def power_off(self) -> None:
        """Cut the whole node (ensemble consolidation, §2.4/[TWM+08]).

        The storage devices must be idle; rotating members are assumed to
        park.  Everything drops to zero draw.
        """
        if self.cpu.busy_units > 0:
            raise HardwareError(f"{self.name}: cannot power off a busy CPU")
        self.base.set_watts(0.0)
        self.cpu._set_power(0.0)
        self.cpu._sleeping = True
        self.dram._powered_bytes = 0
        self.dram._allocated_bytes = 0
        self.dram._set_power(0.0)
        for device in self.storage:
            device._set_power(0.0)
        self._powered_on = False

    def power_watts(self) -> float:
        """Instantaneous component power."""
        return self.meter.power_watts()

    def wall_power_watts(self) -> float:
        """Instantaneous burdened power."""
        dc = self.power_watts()
        if self.meter.burden is None:
            return dc
        return self.meter.burden.wall_power_watts(dc)

    def energy_joules(self, t0: Optional[float] = None,
                      t1: Optional[float] = None) -> float:
        """Component energy over the interval."""
        return self.meter.energy_joules(t0, t1)

    def idle_power_watts(self) -> float:
        """Component power when every device is idle (spec arithmetic)."""
        disks = sum(
            d.spec.idle_watts if isinstance(d, HardDisk) else d.spec.idle_watts
            for d in self.storage)
        return (self.cpu.spec.idle_watts
                + self.dram.residency_watts(self.dram.powered_bytes)
                + self.base._watts + disks)

    def peak_power_watts(self) -> float:
        """Component power with every device active (spec arithmetic)."""
        disks = 0.0
        for d in self.storage:
            if isinstance(d, HardDisk):
                disks += d.spec.active_watts
            else:
                disks += max(d.spec.read_watts, d.spec.write_watts)
        return (self.cpu.spec.peak_watts
                + self.dram.residency_watts(self.dram.capacity_bytes)
                + self.dram.spec.active_extra_watts
                + self.base._watts + disks)

    def __repr__(self) -> str:
        return (f"Server({self.name!r}, {len(self.storage)} storage devices, "
                f"{self.power_watts():.0f} W)")
