"""Calibration profiles for the paper's experimental systems.

Each factory assembles a :class:`~repro.hardware.server.Server` whose
device constants are pinned to the numbers the paper reports:

* :func:`dl785` — the Figure 1 system: an HP ProLiant DL785 tray with
  8 quad-core Opterons, 64 GB RAM, and 36-204 SCSI 15K-RPM drives in
  RAID 5, where the disk subsystem consumes "more than 50 % of the total
  system power".
* :func:`flash_scan_node` — the Figure 2 system: one CPU at 90 W active
  and three flash SSDs at 5 W aggregate.
* :func:`commodity` — a small generic box for examples and tests.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.hardware.cpu import Cpu, CpuSpec
from repro.hardware.disk import DiskSpec, HardDisk
from repro.hardware.memory import Dram, DramSpec
from repro.hardware.psu import BurdenModel, PsuSpec
from repro.hardware.raid import RaidArray, RaidLevel
from repro.hardware.server import Server
from repro.hardware.ssd import FlashSsd, SsdSpec
from repro.units import GB, GHZ, GIB, MB, MIB

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulation

# The paper's Figure 2 constants.
FIG2_CPU_ACTIVE_WATTS = 90.0
FIG2_SSD_COUNT = 3
FIG2_SSD_TOTAL_WATTS = 5.0

# The paper's Figure 1 disk-count sweep.
FIG1_DISK_COUNTS = (36, 66, 108, 204)


def dl785_disk_spec(index: int, group_factor: int = 1) -> DiskSpec:
    """One of the DL785's 73 GB 15K-RPM SCSI drives.

    With ``group_factor`` k > 1 the spec represents k physical spindles
    merged into one *representative* simulated spindle: bandwidth, power
    and capacity scale by k while positioning latencies stay per-disk
    (each real spindle still seeks for its share of a striped request),
    so aggregate behaviour is preserved with k-fold fewer simulation
    events.
    """
    return DiskSpec(
        name=f"disk{index:03d}",
        capacity_bytes=73 * GB * group_factor,
        bandwidth_bytes_per_s=90 * MB * group_factor,
        average_seek_seconds=0.0035,
        rpm=15000,
        per_request_overhead_seconds=0.0002,
        active_watts=17.0 * group_factor,
        idle_watts=12.0 * group_factor,
        standby_watts=2.5 * group_factor,
        spinup_seconds=6.0,
        spinup_joules=90.0 * group_factor,
        spindown_seconds=1.5,
        spindown_joules=6.0 * group_factor,
    )


def dl785(sim: "Simulation", n_disks: int = 204,
          burdened: bool = False,
          spindle_groups: int | None = None) -> tuple[Server, RaidArray]:
    """The Figure 1 server with ``n_disks`` spindles in RAID 5.

    Returns the server and the RAID array its database lives on.
    CPU constants model the 8-socket quad-core Opteron tray as a single
    32-core package; 64 GB of DRAM and a 150 W residual base load round
    out the non-disk power so that at 204 disks the disk subsystem is
    comfortably above half of total power, as the paper reports.

    ``spindle_groups`` simulates the array with that many representative
    spindles (see :func:`dl785_disk_spec`); ``n_disks`` must divide
    evenly into them.
    """
    if spindle_groups is None or spindle_groups >= n_disks:
        group_factor, width = 1, n_disks
    else:
        # largest divisor of n_disks not exceeding the requested groups,
        # so every representative spindle stands for the same disk count
        width = max(d for d in range(1, spindle_groups + 1)
                    if n_disks % d == 0)
        group_factor = n_disks // width
    cpu = Cpu(sim, CpuSpec(
        name="cpu", cores=32, frequency_hz=2.3 * GHZ,
        idle_watts=350.0, peak_watts=700.0, cstate_watts=80.0))
    dram = Dram(sim, DramSpec(
        name="dram", capacity_bytes=64 * GIB,
        background_watts_per_gib=0.6, active_extra_watts=8.0,
        bandwidth_bytes_per_s=20 * GB, rank_bytes=8 * GIB))
    disks = [HardDisk(sim, dl785_disk_spec(i, group_factor))
             for i in range(width)]
    burden = BurdenModel(psu=PsuSpec(rated_watts=6000.0),
                         cooling_overhead=0.5) if burdened else None
    server = Server(sim, f"dl785x{n_disks}", cpu, dram, disks,
                    base_watts=150.0, burden=burden)
    array = RaidArray(sim, disks, level=RaidLevel.RAID5,
                      stripe_unit_bytes=256 * 1024, name="msa70")
    return server, array


def flash_scan_ssd_spec(index: int) -> SsdSpec:
    """One of the Figure 2 flash drives.

    Three of them aggregate to 240 MB/s and 5 W active, which makes the
    10-second disk-bound uncompressed scan correspond to 2.4 GB of data —
    the paper's 5-of-7-attribute projection of ORDERS.
    """
    return SsdSpec(
        name=f"ssd{index}",
        capacity_bytes=64 * GB,
        read_bandwidth_bytes_per_s=80 * MB,
        write_bandwidth_bytes_per_s=60 * MB,
        per_request_latency_seconds=60e-6,
        read_watts=FIG2_SSD_TOTAL_WATTS / FIG2_SSD_COUNT,
        write_watts=FIG2_SSD_TOTAL_WATTS / FIG2_SSD_COUNT * 1.3,
        idle_watts=0.05,
    )


def flash_scan_node(sim: "Simulation") -> tuple[Server, RaidArray]:
    """The Figure 2 node: one 90 W CPU core and three flash SSDs.

    Returns the server and the RAID-0 array holding the scanned table.
    """
    cpu = Cpu(sim, CpuSpec(
        name="cpu", cores=1, frequency_hz=2.4 * GHZ,
        idle_watts=30.0, peak_watts=FIG2_CPU_ACTIVE_WATTS,
        cstate_watts=2.0,
        dvfs_fractions=(1.0, 0.85, 0.7, 0.55, 0.4)))
    dram = Dram(sim, DramSpec(
        name="dram", capacity_bytes=4 * GIB,
        background_watts_per_gib=0.5, active_extra_watts=2.0,
        bandwidth_bytes_per_s=10 * GB, rank_bytes=1 * GIB))
    ssds = [FlashSsd(sim, flash_scan_ssd_spec(i))
            for i in range(FIG2_SSD_COUNT)]
    server = Server(sim, "flash-scan-node", cpu, dram, ssds, base_watts=0.0)
    array = RaidArray(sim, ssds, level=RaidLevel.RAID0,
                      stripe_unit_bytes=1 * MIB, name="flash-array")
    return server, array


def commodity(sim: "Simulation", n_disks: int = 2,
              n_ssds: int = 1) -> tuple[Server, RaidArray]:
    """A small generic server for examples and tests.

    Returns the server and a RAID-0 array over its rotating disks (the
    SSDs are attached but unarrayed, for tiering experiments).
    """
    cpu = Cpu(sim, CpuSpec(
        name="cpu", cores=4, frequency_hz=3.0 * GHZ,
        idle_watts=12.0, peak_watts=65.0, cstate_watts=2.0))
    dram = Dram(sim, DramSpec(
        name="dram", capacity_bytes=8 * GIB,
        background_watts_per_gib=0.5, active_extra_watts=3.0,
        bandwidth_bytes_per_s=12 * GB, rank_bytes=2 * GIB))
    disks = [HardDisk(sim, DiskSpec(
        name=f"hdd{i}", capacity_bytes=500 * GB,
        bandwidth_bytes_per_s=120 * MB, average_seek_seconds=0.008,
        rpm=7200, active_watts=8.0, idle_watts=5.0, standby_watts=0.8,
        spinup_seconds=4.0, spinup_joules=40.0,
        spindown_seconds=1.0, spindown_joules=3.0))
        for i in range(n_disks)]
    ssds = [FlashSsd(sim, SsdSpec(
        name=f"nvme{i}", capacity_bytes=256 * GB,
        read_bandwidth_bytes_per_s=500 * MB,
        write_bandwidth_bytes_per_s=400 * MB,
        read_watts=3.0, write_watts=4.0, idle_watts=0.3))
        for i in range(n_ssds)]
    server = Server(sim, "commodity", cpu, dram, [*disks, *ssds],
                    base_watts=25.0)
    array = RaidArray(sim, disks, level=RaidLevel.RAID0, name="md0")
    return server, array
