"""Energy proportionality [BH07].

"Servers should use no power when not used and power only in proportion
to delivered performance" (paper §1).  This module quantifies how far a
device or server is from that ideal, and provides an idealized
proportional device for what-if comparisons (experiment A8).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from repro.errors import HardwareError
from repro.hardware.device import Device

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulation


def proportionality_index(utilizations: Sequence[float],
                          powers_watts: Sequence[float]) -> float:
    """Energy-proportionality index in [.., 1].

    Normalizes the measured power curve by its peak and compares the area
    under it to the ideal diagonal (power == utilization):

        EP = 2 - 2 * area(P_norm(u))

    1.0 means perfectly proportional; 0.0 means constant power at all
    loads; negative values mean worse than constant (higher relative
    power at low load).  Utilizations must span [0, 1] monotonically.
    """
    if len(utilizations) != len(powers_watts):
        raise HardwareError("utilization/power length mismatch")
    if len(utilizations) < 2:
        raise HardwareError("need at least two samples")
    if list(utilizations) != sorted(utilizations):
        raise HardwareError("utilizations must be sorted ascending")
    if abs(utilizations[0]) > 1e-9 or abs(utilizations[-1] - 1.0) > 1e-9:
        raise HardwareError("utilizations must span [0, 1]")
    peak = powers_watts[-1]
    if peak <= 0:
        raise HardwareError("peak power must be positive")
    area = 0.0
    for (u0, p0), (u1, p1) in zip(zip(utilizations, powers_watts),
                                  zip(utilizations[1:], powers_watts[1:])):
        area += 0.5 * (p0 + p1) / peak * (u1 - u0)
    return 2.0 - 2.0 * area


def dynamic_range(idle_watts: float, peak_watts: float) -> float:
    """Fraction of peak power that responds to load.

    The paper (§2.4) notes "most servers offer little power variance from
    no load to peak use"; this is that variance, as peak-normalized range.
    """
    if peak_watts <= 0:
        raise HardwareError("peak power must be positive")
    if idle_watts < 0 or idle_watts > peak_watts:
        raise HardwareError("idle power must be within [0, peak]")
    return (peak_watts - idle_watts) / peak_watts


def ideal_proportional_energy(device: Device,
                              peak_watts: Optional[float] = None,
                              t0: Optional[float] = None,
                              t1: Optional[float] = None) -> float:
    """Energy the device *would* have used were it perfectly proportional.

    Charges peak power for busy unit-seconds and nothing for idle time —
    the [BH07] ideal applied retroactively to a recorded run.
    """
    if peak_watts is None:
        per_unit = getattr(device, "active_power_per_unit_watts", None)
        if per_unit is None:
            raise HardwareError(
                f"{device.name}: no active power known; pass peak_watts")
        return per_unit * device.busy_seconds()
    if peak_watts < 0:
        raise HardwareError("peak power cannot be negative")
    return peak_watts / device.capacity_units * device.busy_seconds()


class IdealProportionalDevice(Device):
    """A synthetic device drawing power exactly proportional to load.

    Useful as a drop-in for sensitivity studies: run the same workload
    against real and ideal devices and compare energy (experiment A8).
    """

    def __init__(self, sim: "Simulation", name: str, peak_watts: float,
                 capacity: int = 1) -> None:
        if peak_watts < 0:
            raise HardwareError("peak power cannot be negative")
        if capacity < 1:
            raise HardwareError("capacity must be >= 1")
        super().__init__(sim, name, initial_power_watts=0.0)
        self.peak_watts = peak_watts
        self._capacity = capacity

    def occupy(self, seconds: float, units: int = 1):
        """Hold ``units`` of the device busy for ``seconds`` (process)."""
        if seconds < 0:
            raise HardwareError("negative duration")
        if not 1 <= units <= self._capacity:
            raise HardwareError(f"units {units} outside 1..{self._capacity}")
        self._mark_busy(units)
        try:
            yield self.sim.timeout(seconds)
        finally:
            self._mark_idle(units)

    def _on_activity_change(self) -> None:
        self._set_power(self.peak_watts * self.busy_units / self._capacity)

    @property
    def capacity_units(self) -> int:
        return self._capacity

    @property
    def active_power_per_unit_watts(self) -> float:
        return self.peak_watts / self._capacity
