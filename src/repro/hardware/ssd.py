"""Flash SSD model.

"An order of magnitude more energy efficient than regular hard drives"
(paper §3.2): no moving parts, so no positioning cost, near-zero idle
power, and asymmetric read/write bandwidth.  Figure 2's three flash
drives draw 5 W in aggregate while streaming.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator

from repro.errors import HardwareError
from repro.hardware.device import Device
from repro.sim.resources import Resource
from repro.units import GB, MB

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulation


@dataclass(frozen=True)
class SsdSpec:
    """Static parameters of a flash SSD."""

    name: str = "ssd"
    capacity_bytes: int = 128 * GB
    read_bandwidth_bytes_per_s: float = 250 * MB
    write_bandwidth_bytes_per_s: float = 180 * MB
    per_request_latency_seconds: float = 60e-6
    read_watts: float = 1.7
    write_watts: float = 2.2
    idle_watts: float = 0.1
    channels: int = 1

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise HardwareError(f"{self.name}: capacity must be positive")
        if (self.read_bandwidth_bytes_per_s <= 0
                or self.write_bandwidth_bytes_per_s <= 0):
            raise HardwareError(f"{self.name}: bandwidth must be positive")
        if not (0 <= self.idle_watts <= min(self.read_watts, self.write_watts)):
            raise HardwareError(
                f"{self.name}: need idle <= active power")
        if self.channels < 1:
            raise HardwareError(f"{self.name}: channels must be >= 1")


class FlashSsd(Device):
    """A flash drive with per-channel queueing."""

    def __init__(self, sim: "Simulation", spec: SsdSpec) -> None:
        super().__init__(sim, spec.name, initial_power_watts=spec.idle_watts)
        self.spec = spec
        self.channels = Resource(sim, capacity=spec.channels,
                                 name=f"{spec.name}.channels")
        self.bytes_read = 0
        self.bytes_written = 0
        self.requests_served = 0
        self._writing = 0

    # -- service-time arithmetic ---------------------------------------------
    def read_seconds(self, nbytes: int) -> float:
        """Service time for a read (no queueing)."""
        if nbytes < 0:
            raise HardwareError(f"{self.name}: negative transfer size")
        return (nbytes / self.spec.read_bandwidth_bytes_per_s
                + self.spec.per_request_latency_seconds)

    def write_seconds(self, nbytes: int) -> float:
        """Service time for a write (no queueing)."""
        if nbytes < 0:
            raise HardwareError(f"{self.name}: negative transfer size")
        return (nbytes / self.spec.write_bandwidth_bytes_per_s
                + self.spec.per_request_latency_seconds)

    # -- transfers --------------------------------------------------------
    def read(self, nbytes: int, stream=None) -> Generator:
        """Read ``nbytes`` (process).  ``stream`` accepted for API parity
        with :class:`~repro.hardware.disk.HardDisk`; flash has no
        positioning cost so it is ignored."""
        yield from self._transfer(nbytes, is_write=False)

    def write(self, nbytes: int, stream=None) -> Generator:
        """Write ``nbytes`` (process)."""
        yield from self._transfer(nbytes, is_write=True)

    def read_batch(self, nbytes: float, n_requests: float) -> Generator:
        """A batch of random reads in one simulation step (process)."""
        yield from self._transfer_batch(nbytes, n_requests, is_write=False)

    def write_batch(self, nbytes: float, n_requests: float) -> Generator:
        """A batch of random writes in one simulation step (process)."""
        yield from self._transfer_batch(nbytes, n_requests, is_write=True)

    def _transfer_batch(self, nbytes: float, n_requests: float,
                        is_write: bool) -> Generator:
        if nbytes < 0 or n_requests < 0:
            raise HardwareError(f"{self.name}: negative batch transfer")
        bandwidth = (self.spec.write_bandwidth_bytes_per_s if is_write
                     else self.spec.read_bandwidth_bytes_per_s)
        seconds = (n_requests * self.spec.per_request_latency_seconds
                   + nbytes / bandwidth)
        yield self.channels.acquire()
        self._mark_busy()
        if is_write:
            self._writing += 1
        self._update_power()
        try:
            yield self.sim.timeout(seconds)
        finally:
            self._mark_idle()
            if is_write:
                self._writing -= 1
            self._update_power()
            self.channels.release()
        self.requests_served += int(round(n_requests))
        if is_write:
            self.bytes_written += int(nbytes)
        else:
            self.bytes_read += int(nbytes)

    def _transfer(self, nbytes: int, is_write: bool) -> Generator:
        seconds = (self.write_seconds(nbytes) if is_write
                   else self.read_seconds(nbytes))
        yield self.channels.acquire()
        self._mark_busy()
        if is_write:
            self._writing += 1
        self._update_power()
        try:
            yield self.sim.timeout(seconds)
        finally:
            self._mark_idle()
            if is_write:
                self._writing -= 1
            self._update_power()
            self.channels.release()
        self.requests_served += 1
        if is_write:
            self.bytes_written += nbytes
        else:
            self.bytes_read += nbytes

    # -- power ---------------------------------------------------------------
    def _update_power(self) -> None:
        if self.busy_units == 0:
            self._set_power(self.spec.idle_watts)
        elif self._writing > 0:
            self._set_power(self.spec.write_watts)
        else:
            self._set_power(self.spec.read_watts)

    def _on_activity_change(self) -> None:
        # power already updated by _transfer, which knows read vs write
        pass

    @property
    def active_power_per_unit_watts(self) -> float:
        """Active power charged per busy channel-second (Figure 2 style)."""
        return self.spec.read_watts / self.spec.channels

    @property
    def capacity_units(self) -> int:
        return self.spec.channels
