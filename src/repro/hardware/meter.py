"""Energy metering.

The :class:`EnergyMeter` plays the role of the wall-plug power meter in
the paper's experiments: it aggregates the power step functions of all
attached devices and integrates them over any simulated interval, with
per-device breakdowns.  An optional :class:`~repro.hardware.psu.BurdenModel`
converts DC component power into burdened wall/facility power (PSU loss +
cooling, [PBS+03]).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import HardwareError
from repro.hardware.device import Device
from repro.telemetry.context import current_collector

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.psu import BurdenModel
    from repro.sim.engine import Simulation


class EnergyMeter:
    """Aggregates energy across a set of devices."""

    def __init__(self, sim: "Simulation",
                 burden: Optional["BurdenModel"] = None) -> None:
        self.sim = sim
        self.burden = burden
        self._devices: dict[str, Device] = {}
        self._marks: dict[str, float] = {}
        collector = current_collector()
        if collector is not None:
            # telemetry capture is on: let the collector discover this
            # run's devices without the experiment passing anything
            collector.register_meter(self)

    # -- device registry ---------------------------------------------------
    def attach(self, device: Device) -> Device:
        """Register a device; returns it for chaining."""
        if device.name in self._devices:
            raise HardwareError(f"device name {device.name!r} already attached")
        self._devices[device.name] = device
        return device

    def device(self, name: str) -> Device:
        """Look up an attached device by name."""
        try:
            return self._devices[name]
        except KeyError:
            raise HardwareError(f"no device named {name!r}") from None

    def devices(self) -> list[Device]:
        """All attached devices, sorted by name."""
        return [self._devices[k] for k in sorted(self._devices)]

    # -- marks (named time anchors) -----------------------------------------
    def mark(self, label: str) -> float:
        """Remember the current time under ``label`` (e.g. 'query-start')."""
        self._marks[label] = self.sim.now
        return self.sim.now

    def mark_time(self, label: str) -> float:
        """Retrieve a previously recorded mark."""
        try:
            return self._marks[label]
        except KeyError:
            raise HardwareError(f"no mark named {label!r}") from None

    # -- energy queries -----------------------------------------------------
    def _interval(self, t0: Optional[float], t1: Optional[float]
                  ) -> tuple[float, float]:
        start = 0.0 if t0 is None else t0
        end = self.sim.now if t1 is None else t1
        if end < start:
            raise HardwareError(f"bad metering interval [{start}, {end}]")
        return start, end

    def energy_joules(self, t0: Optional[float] = None,
                      t1: Optional[float] = None) -> float:
        """Total component (DC) energy over the interval."""
        start, end = self._interval(t0, t1)
        return sum(d.energy_joules(start, end) for d in self._devices.values())

    def wall_energy_joules(self, t0: Optional[float] = None,
                           t1: Optional[float] = None) -> float:
        """Burdened energy: PSU loss + cooling applied to component energy.

        Requires a burden model; equals :meth:`energy_joules` without one.
        """
        dc = self.energy_joules(t0, t1)
        if self.burden is None:
            return dc
        start, end = self._interval(t0, t1)
        elapsed = end - start
        if elapsed <= 0:
            return 0.0
        avg_dc_power = dc / elapsed
        return self.burden.wall_power_watts(avg_dc_power) * elapsed

    def breakdown_joules(self, t0: Optional[float] = None,
                         t1: Optional[float] = None) -> dict[str, float]:
        """Per-device energy over the interval."""
        start, end = self._interval(t0, t1)
        return {name: dev.energy_joules(start, end)
                for name, dev in sorted(self._devices.items())}

    def average_power_watts(self, t0: Optional[float] = None,
                            t1: Optional[float] = None) -> float:
        """Mean component power over the interval."""
        start, end = self._interval(t0, t1)
        if end <= start:
            return sum(d.power_watts for d in self._devices.values())
        return self.energy_joules(start, end) / (end - start)

    def power_watts(self) -> float:
        """Instantaneous total component power."""
        return sum(d.power_watts for d in self._devices.values())

    def active_energy_joules(self) -> float:
        """Busy-time-attributed energy: sum over devices of
        (busy unit-seconds x per-unit active power), for devices that
        expose ``active_power_per_unit_watts``.

        This implements the paper's Figure 2 accounting convention
        ("assuming that an idle CPU does not consume any power"): only
        time actually spent working is charged, at full active power.
        """
        total = 0.0
        for dev in self._devices.values():
            per_unit = getattr(dev, "active_power_per_unit_watts", None)
            if per_unit is None:
                continue
            total += per_unit * dev.busy_seconds()
        return total
